//! # apcm — top-level API and experiment runners
//!
//! Ties the workspace together and reproduces every table and figure of
//! the paper's evaluation:
//!
//! | experiment | module |
//! |---|---|
//! | Fig 3/4 — per-module CPU share + IPC (uplink/downlink) | [`experiments::fig03_04`] |
//! | Fig 5/6 — per-module top-down breakdown | [`experiments::fig05_06`] |
//! | Table 1 — wimpy/beefy cache sizes | [`experiments::table1`] |
//! | Fig 7 — per-instruction-class IPC / memory / core bound | [`experiments::fig07`] |
//! | Fig 8 — arrangement memory-bandwidth utilization | [`experiments::fig08`] |
//! | Fig 9 — SIMD module time vs register width | [`experiments::fig09`] |
//! | Fig 13 — per-packet processing time (UDP/TCP × size) | [`experiments::fig13`] |
//! | Fig 14 — arrangement vs calculation time @1500 B | [`experiments::fig14`] |
//! | Fig 15 — arrangement top-down + IPC, original vs APCM | [`experiments::fig15`] |
//! | Fig 16 — per-core bandwidth and cores for 300 Mbps | [`experiments::fig16`] |
//!
//! Regenerate everything with
//! `cargo run --release -p apcm --bin figures -- all` (results land in
//! `results/` as text, CSV and JSON) or a single one with e.g.
//! `-- fig15`; `--bin check` prints the paper-vs-measured verdicts.
//!
//! # Example
//!
//! ```
//! let fig15 = apcm::experiments::fig15::run();
//! let orig = fig15.value("SSE128/original", "backend").unwrap();
//! let apcm = fig15.value("SSE128/apcm", "backend").unwrap();
//! assert!(orig > 0.35 && apcm < 0.10); // the paper's 45 % → 3 %
//! ```

pub mod experiments;
pub mod report;
pub mod server;
pub mod workloads;

pub use report::{Figure, Row};
