//! Server profiles: the paper's wimpy and beefy testbed nodes.

use vran_uarch::CoreConfig;

/// Which testbed node to model (paper §3.1 / §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerProfile {
    /// Intel Core i7-8700 @ 3.20 GHz, 16 GB — the vRAN host ("wimpy").
    Wimpy,
    /// Intel Xeon W-2195 @ 2.30 GHz, 128 GB — the "beefy" alternative.
    Beefy,
}

impl ServerProfile {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            ServerProfile::Wimpy => "wimpy",
            ServerProfile::Beefy => "beefy",
        }
    }

    /// The core simulator configuration for this node.
    pub fn core_config(self) -> CoreConfig {
        match self {
            ServerProfile::Wimpy => CoreConfig::wimpy(),
            ServerProfile::Beefy => CoreConfig::beefy(),
        }
    }

    /// Table 1 totals in KiB (L1/L2/L3 across the package, as the
    /// paper reports them).
    pub const fn table1_kib(self) -> [u64; 3] {
        match self {
            ServerProfile::Wimpy => [384, 1536, 12288],
            ServerProfile::Beefy => [1152, 18432, 25344],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(ServerProfile::Wimpy.table1_kib(), [384, 1536, 12288]);
        assert_eq!(ServerProfile::Beefy.table1_kib(), [1152, 18432, 25344]);
    }

    #[test]
    fn configs_are_distinct() {
        let w = ServerProfile::Wimpy.core_config();
        let b = ServerProfile::Beefy.core_config();
        assert!(b.cache.l2.size_bytes > w.cache.l2.size_bytes);
        assert!(w.freq_ghz > b.freq_ghz);
    }
}
