//! Figure/table result containers and rendering.

use std::fmt::Write as _;
use vran_util::Json;

/// One labeled data row of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (module name, packet size, width, …).
    pub label: String,
    /// One value per column.
    pub values: Vec<f64>,
}

impl Row {
    /// Construct from anything stringifiable.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// A reproduced figure or table: labeled rows under named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier matching the paper ("fig15", "table1", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (not counting the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (what the paper reported, caveats).
    pub notes: Vec<String>,
}

impl Figure {
    /// New empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; panics if the arity disagrees with the header.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.values.len(),
            self.columns.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Fetch a value by row label and column name (test helper).
    pub fn value(&self, row_label: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|c| c == column)?;
        let r = self.rows.iter().find(|r| r.label == row_label)?;
        r.values.get(c).copied()
    }

    /// Render as CSV (header row, then one row per entry; the row
    /// label occupies the first column).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "label,{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{}",
                esc(&r.label),
                r.values
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }

    /// Serialize to a JSON document (pretty, stable field order).
    pub fn to_json(&self) -> String {
        let strs = |v: &[String]| Json::Arr(v.iter().map(Json::str).collect());
        Json::obj([
            ("id", Json::str(&self.id)),
            ("title", Json::str(&self.title)),
            ("columns", strs(&self.columns)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("label", Json::str(&r.label)),
                                (
                                    "values",
                                    Json::Arr(r.values.iter().map(|&v| Json::Num(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("notes", strs(&self.notes)),
        ])
        .to_string_pretty()
    }

    /// Parse a document produced by [`Figure::to_json`].
    pub fn from_json(text: &str) -> Option<Figure> {
        let v = Json::parse(text).ok()?;
        let strs = |field: &str| -> Option<Vec<String>> {
            v.get(field)?
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect()
        };
        let rows = v
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                let label = r.get("label")?.as_str()?.to_string();
                let values = r
                    .get("values")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<_>>()?;
                Some(Row { label, values })
            })
            .collect::<Option<_>>()?;
        Some(Figure {
            id: v.get("id")?.as_str()?.to_string(),
            title: v.get("title")?.as_str()?.to_string(),
            columns: strs("columns")?,
            rows,
            notes: strs("notes")?,
        })
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain([5])
            .max()
            .unwrap();
        let col_w: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for r in &self.rows {
            let _ = write!(out, "{:label_w$}", r.label);
            for (v, w) in r.values.iter().zip(&col_w) {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    let _ = write!(out, "  {v:>w$.3e}");
                } else {
                    let _ = write!(out, "  {v:>w$.3}");
                }
            }
            let _ = writeln!(out);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "demo", &["ipc", "backend"]);
        f.push(Row::new("baseline", vec![1.2, 0.45]));
        f.push(Row::new("apcm", vec![3.6, 0.03]));
        f.note("paper: 1.2→3.6");
        f
    }

    #[test]
    fn value_lookup() {
        let f = sample();
        assert_eq!(f.value("apcm", "ipc"), Some(3.6));
        assert_eq!(f.value("apcm", "nope"), None);
        assert_eq!(f.value("nope", "ipc"), None);
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("figX"));
        assert!(s.contains("baseline"));
        assert!(s.contains("3.6"));
        assert!(s.contains("paper: 1.2→3.6"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut f = Figure::new("f", "t", &["a"]);
        f.push(Row::new("r", vec![1.0, 2.0]));
    }

    #[test]
    fn csv_export() {
        let mut f = Figure::new("f", "t", &["a,b", "c"]);
        f.push(Row::new("row \"x\"", vec![1.5, -2.0]));
        let csv = f.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,\"a,b\",c"));
        assert_eq!(lines.next(), Some("\"row \"\"x\"\"\",1.5,-2"));
    }

    #[test]
    fn json_round_trip() {
        let f = sample();
        let s = f.to_json();
        let g = Figure::from_json(&s).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Figure::from_json("not json").is_none());
        assert!(Figure::from_json("{\"id\": \"x\"}").is_none());
    }
}
