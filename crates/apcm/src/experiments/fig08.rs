//! Figure 8b — register↔L1 memory-bandwidth utilization of the data
//! arrangement process, original vs APCM, across register widths.
//!
//! The paper's analysis: the original mechanism stores 16 bits at a
//! time, using 12.5 % (xmm), 6.25 % (ymm) and 3.125 % (zmm) of the
//! store path, ≈16 bits/cycle; APCM reaches ≈67/134/270 bits/cycle —
//! a 4×–16× improvement (§ Abstract, §5.1).

use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

/// Triples per kernel run (one maximum-size code block).
const K: usize = 6144;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig8",
        "Store-path bandwidth of the data arrangement process",
        &["store bits/cycle", "utilization %", "speedup vs original"],
    );
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let input = synthetic_interleaved(K, 3);
    for width in RegWidth::ALL {
        let mut base_bw = 0.0;
        for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
            let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
            let r = sim.run(&trace.expect("tracing"));
            let bw = r.store_bw_bits_per_cycle;
            if mech == Mechanism::Baseline {
                base_bw = bw;
            }
            f.push(Row::new(
                format!("{}/{}", width.name(), mech.name()),
                vec![
                    bw,
                    r.store_bw_utilization(width.bits()) * 100.0,
                    bw / base_bw,
                ],
            ));
        }
    }
    f.note("paper: original ≈16 bits/cycle (12.5 %/6.25 %/3.125 % of the path)");
    f.note("paper: APCM ≈67/134/270 bits/cycle → 4×–16× better utilization");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apcm_bandwidth_gain_is_4x_to_16x() {
        let f = run();
        let s128 = f.value("SSE128/apcm", "speedup vs original").unwrap();
        let s512 = f.value("AVX512/apcm", "speedup vs original").unwrap();
        assert!(
            (3.0..=8.0).contains(&s128),
            "xmm speedup ≈4×, got {s128:.1}"
        );
        assert!(s512 >= 10.0, "zmm speedup ≈16×, got {s512:.1}");
        assert!(s512 > s128, "gain must grow with width");
    }

    #[test]
    fn original_utilization_is_poor_and_shrinks_with_width() {
        let f = run();
        let u128 = f.value("SSE128/original", "utilization %").unwrap();
        let u512 = f.value("AVX512/original", "utilization %").unwrap();
        assert!(u128 < 25.0, "xmm original ≈12.5 %, got {u128:.1}");
        assert!(u512 < u128, "wider registers waste more of the path");
    }

    #[test]
    fn apcm_bits_per_cycle_band() {
        let f = run();
        let b = f.value("SSE128/apcm", "store bits/cycle").unwrap();
        assert!(
            (40.0..110.0).contains(&b),
            "paper says ≈67 bits/cycle, got {b:.0}"
        );
        let z = f.value("AVX512/apcm", "store bits/cycle").unwrap();
        assert!(z > 180.0, "paper says ≈270 bits/cycle at zmm, got {z:.0}");
    }
}
