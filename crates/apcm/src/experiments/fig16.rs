//! Figure 16 — per-core bandwidth and cores required for a 300 Mbps
//! eNodeB, original mechanism vs APCM.
//!
//! Paper anchors: Mbps/core 16.4→18.5 (SSE), 21.6→26.0 (AVX2),
//! 25.5→32.9 (AVX512); cores for 300 Mbps 18→16, 14→12, 12→9.

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

/// Target station bandwidth (Mbps) per the paper's reference \[19\].
pub const TARGET_MBPS: f64 = 300.0;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig16",
        "Bandwidth per core and cores for 300 Mbps",
        &[
            "Mbps/core orig",
            "Mbps/core apcm",
            "cores orig",
            "cores apcm",
        ],
    );
    let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    for w in RegWidth::ALL {
        f.push(Row::new(
            w.name(),
            vec![
                m.mbps_per_core(w, Mechanism::Baseline),
                m.mbps_per_core(w, apcm),
                m.cores_for(w, Mechanism::Baseline, TARGET_MBPS) as f64,
                m.cores_for(w, apcm, TARGET_MBPS) as f64,
            ],
        ));
    }
    f.note("paper: 16.4→18.5, 21.6→26.0, 25.5→32.9 Mbps/core (system utilization +12 %…+29 %)");
    f.note("paper: cores for 300 Mbps 18→16, 14→12, 12→9");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apcm_raises_per_core_bandwidth_everywhere() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let o = f.value(w, "Mbps/core orig").unwrap();
            let a = f.value(w, "Mbps/core apcm").unwrap();
            let gain = a / o - 1.0;
            assert!(
                (0.04..0.60).contains(&gain),
                "{w}: paper band is +12 %…+29 %, got {:.1} %",
                gain * 100.0
            );
        }
    }

    #[test]
    fn gain_grows_with_register_width() {
        let f = run();
        let g =
            |w: &str| f.value(w, "Mbps/core apcm").unwrap() / f.value(w, "Mbps/core orig").unwrap();
        assert!(g("AVX512") > g("SSE128"), "widest registers benefit most");
    }

    #[test]
    fn cores_never_increase_and_drop_at_avx512() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let o = f.value(w, "cores orig").unwrap();
            let a = f.value(w, "cores apcm").unwrap();
            assert!(a <= o, "{w}: APCM must not need more cores ({o} → {a})");
        }
        let o512 = f.value("AVX512", "cores orig").unwrap();
        let a512 = f.value("AVX512", "cores apcm").unwrap();
        assert!(a512 < o512, "AVX512 must save whole cores");
    }

    #[test]
    fn wider_registers_mean_fewer_cores() {
        let f = run();
        let c128 = f.value("SSE128", "cores apcm").unwrap();
        let c512 = f.value("AVX512", "cores apcm").unwrap();
        assert!(c512 < c128);
    }
}
