//! Table 1 — cache sizes of the wimpy and beefy nodes.

use crate::report::{Figure, Row};
use crate::server::ServerProfile;

/// Reproduce Table 1.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "table1",
        "Cache size (KiB) in wimpy and beefy node",
        &["L1 cache", "L2 cache", "L3 cache"],
    );
    for p in [ServerProfile::Wimpy, ServerProfile::Beefy] {
        let [l1, l2, l3] = p.table1_kib();
        f.push(Row::new(p.name(), vec![l1 as f64, l2 as f64, l3 as f64]));
    }
    f.note("paper Table 1: wimpy 384/1536/12288, beefy 1152/18432/25344 KiB");
    f
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_reproduction() {
        let f = super::run();
        assert_eq!(f.value("wimpy", "L1 cache"), Some(384.0));
        assert_eq!(f.value("beefy", "L2 cache"), Some(18432.0));
        assert_eq!(f.value("beefy", "L3 cache"), Some(25344.0));
    }
}
