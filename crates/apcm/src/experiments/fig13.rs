//! Figure 13 — processing time per packet under different packet
//! sizes, UDP and TCP, original mechanism vs APCM.
//!
//! Paper anchor: APCM reduces per-packet processing time by 12 %
//! (SSE128) to 20 % (AVX512) at every size and for both transports.

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_net::packet::Transport;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

/// The sweep of wire-level packet sizes (bytes).
pub const SIZES: [usize; 5] = [64, 256, 512, 1024, 1500];

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig13",
        "Processing time per packet (µs), original vs APCM",
        &[
            "SSE128 orig",
            "SSE128 apcm",
            "AVX256 orig",
            "AVX256 apcm",
            "AVX512 orig",
            "AVX512 apcm",
            "reduction@512 %",
        ],
    );
    let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    for transport in [Transport::Udp, Transport::Tcp] {
        for size in SIZES {
            let mut vals = Vec::new();
            for w in RegWidth::ALL {
                vals.push(
                    m.packet_time(w, Mechanism::Baseline, transport, size)
                        .total_us(),
                );
                vals.push(m.packet_time(w, apcm, transport, size).total_us());
            }
            let red = (1.0 - vals[5] / vals[4]) * 100.0;
            vals.push(red);
            f.push(Row::new(format!("{}-{}B", transport.name(), size), vals));
        }
    }
    f.note("paper: APCM cuts processing time 12 % (SSE128) … 20 % (AVX512), UDP and TCP alike");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apcm_always_wins() {
        let f = run();
        for r in &f.rows {
            for i in [0, 2, 4] {
                assert!(
                    r.values[i + 1] < r.values[i],
                    "{}: APCM must be faster (col {i}): {:?}",
                    r.label,
                    r.values
                );
            }
        }
    }

    #[test]
    fn reduction_band_matches_paper() {
        let f = run();
        for r in &f.rows {
            let red128 = 1.0 - r.values[1] / r.values[0];
            let red512 = 1.0 - r.values[5] / r.values[4];
            assert!(
                (0.04..0.40).contains(&red128),
                "{}: SSE128 reduction {red128:.3} implausible",
                r.label
            );
            assert!(
                red512 > red128,
                "{}: the win must grow with register width ({red128:.3} vs {red512:.3})",
                r.label
            );
        }
    }

    #[test]
    fn time_grows_with_size_and_tcp_exceeds_udp() {
        let f = run();
        let t = |label: &str| f.value(label, "SSE128 orig").unwrap();
        assert!(t("UDP-1500B") > t("UDP-64B"));
        assert!(t("TCP-512B") > t("UDP-512B"));
    }
}
