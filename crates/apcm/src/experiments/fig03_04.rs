//! Figures 3 & 4 — CPU utilization share and IPC of the main vRAN
//! modules, uplink and downlink.
//!
//! Paper anchors: DCI, rate matching and scrambling run near the ideal
//! IPC of 4; turbo decoding sits around 2.1 and dominates CPU time
//! (>50 % of the processing time, §5).

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use crate::workloads;
use vran_arrange::Mechanism;
use vran_net::latency::LatencyModel;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim, SimReport};

/// One subframe's workload at 5 MHz: ≈3 maximum code blocks.
const SUBFRAME_BITS: usize = 3 * 6144;
/// OFDM butterflies per subframe (FFT + equalization volume, 14
/// symbols of 512 points; the ×2 folds in channel-estimation FFT work
/// the OAI receiver performs alongside).
const OFDM_BUTTERFLIES: usize = 2 * 14 * 256 * 9;

/// A profiled module: name, scaled subframe cycles, reference report.
pub(crate) struct ModuleProfile {
    pub name: &'static str,
    pub cycles: f64,
    pub report: SimReport,
}

/// Simulate a reference trace and scale its cycle cost to the real
/// per-subframe volume (`factor`).
fn profiled(name: &'static str, trace: vran_simd::Trace, factor: f64) -> ModuleProfile {
    let report = CoreSim::new(CoreConfig::beefy().warmed()).run(&trace);
    ModuleProfile {
        name,
        cycles: report.cycles as f64 * factor,
        report,
    }
}

/// Per-module profiles for one subframe.
pub(crate) fn module_profiles(uplink: bool) -> Vec<ModuleProfile> {
    let mut out = Vec::new();
    if uplink {
        // OFDM demodulation (FFT + equalization share)
        out.push(profiled(
            "OFDM",
            workloads::ofdm_scalar_kernel(workloads::SMALL_WS, 4000),
            OFDM_BUTTERFLIES as f64 / 4000.0,
        ));
        out.push(profiled(
            "Demodulation",
            workloads::demodulation_twin(2000),
            (14.0 * 300.0) / 2000.0,
        ));
        out.push(profiled(
            "Rate Matching",
            workloads::rate_match_twin(6000, workloads::SMALL_WS),
            (2 * SUBFRAME_BITS) as f64 / 6000.0,
        ));
        out.push(profiled(
            "Scrambling",
            workloads::descrambling_trace(8000), // real traced kernel
            (2 * SUBFRAME_BITS) as f64 / 8000.0,
        ));
        // Turbo decoding = per-iteration arrangement + SISO kernels,
        // traced from the real implementations.
        let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
        let arr = m.arrangement_report(RegWidth::Sse128, Mechanism::Baseline);
        let dec = m.decoder_report(RegWidth::Sse128);
        let arr_cycles = m.arrangement_cycles(RegWidth::Sse128, Mechanism::Baseline, SUBFRAME_BITS)
            * 2.0
            * DECODER_ITERATIONS as f64;
        let dec_cycles = m.decoder_cycles(RegWidth::Sse128, SUBFRAME_BITS);
        // cycle-weighted fusion of the two reports
        let wa = arr_cycles / (arr_cycles + dec_cycles);
        let fused = SimReport {
            cycles: (arr_cycles + dec_cycles) as u64,
            ipc: arr.ipc * wa + dec.ipc * (1.0 - wa),
            topdown: vran_uarch::TopDown {
                retiring: arr.topdown.retiring * wa + dec.topdown.retiring * (1.0 - wa),
                frontend: arr.topdown.frontend * wa + dec.topdown.frontend * (1.0 - wa),
                bad_speculation: arr.topdown.bad_speculation * wa
                    + dec.topdown.bad_speculation * (1.0 - wa),
                backend_core: arr.topdown.backend_core * wa + dec.topdown.backend_core * (1.0 - wa),
                backend_mem: arr.topdown.backend_mem * wa + dec.topdown.backend_mem * (1.0 - wa),
                mem_levels: core::array::from_fn(|i| {
                    arr.topdown.mem_levels[i] * wa + dec.topdown.mem_levels[i] * (1.0 - wa)
                }),
            },
            ..dec.clone()
        };
        out.push(ModuleProfile {
            name: "Turbo Decoding",
            cycles: arr_cycles + dec_cycles,
            report: fused,
        });
        out.push(profiled("DCI", workloads::dci_twin(2000), 1.0));
    } else {
        out.push(profiled("DCI", workloads::dci_twin(2000), 1.0));
        out.push(profiled(
            "Turbo Encoding",
            workloads::turbo_encode_twin(5000),
            SUBFRAME_BITS as f64 / 5000.0,
        ));
        out.push(profiled(
            "Rate Matching",
            workloads::rate_match_twin(6000, workloads::SMALL_WS),
            (2 * SUBFRAME_BITS) as f64 / 6000.0,
        ));
        out.push(profiled(
            "Scrambling",
            workloads::scrambling_twin(8000),
            (2 * SUBFRAME_BITS) as f64 / 8000.0,
        ));
        out.push(profiled(
            "Modulation",
            workloads::demodulation_twin(2000),
            (14.0 * 300.0) / 2000.0,
        ));
        out.push(profiled(
            "OFDM",
            workloads::ofdm_scalar_kernel(workloads::SMALL_WS, 4000),
            OFDM_BUTTERFLIES as f64 / 4000.0,
        ));
    }
    out
}

fn build(id: &str, title: &str, uplink: bool) -> Figure {
    let mut f = Figure::new(id, title, &["CPU share %", "IPC"]);
    let mods = module_profiles(uplink);
    let total: f64 = mods.iter().map(|m| m.cycles).sum();
    for m in &mods {
        f.push(Row::new(
            m.name,
            vec![m.cycles / total * 100.0, m.report.ipc],
        ));
    }
    f.note("paper: DCI / rate matching / scrambling near ideal IPC 4; turbo decoding ≈2.1");
    f.note("paper §5: decoding occupies more than 50 % of vRAN processing time");
    f
}

/// Figure 3 (uplink).
pub fn uplink() -> Figure {
    build("fig3", "CPU utilization and IPC for uplink", true)
}

/// Figure 4 (downlink).
pub fn downlink() -> Figure {
    build("fig4", "CPU utilization and IPC for downlink", false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_decoding_dominates() {
        let f = uplink();
        let share = f.value("Turbo Decoding", "CPU share %").unwrap();
        assert!(
            share > 50.0,
            "paper: decoding >50 % of processing time, got {share:.1}"
        );
    }

    #[test]
    fn scalar_modules_run_near_ideal_ipc() {
        for f in [uplink(), downlink()] {
            for m in ["Rate Matching", "Scrambling", "DCI"] {
                let ipc = f.value(m, "IPC").unwrap();
                assert!(
                    ipc > 3.0,
                    "{} ({}): near-ideal scalar IPC expected, got {ipc:.2}",
                    m,
                    f.id
                );
            }
        }
    }

    #[test]
    fn turbo_decoding_ipc_is_depressed() {
        let f = uplink();
        let dec = f.value("Turbo Decoding", "IPC").unwrap();
        let scr = f.value("Scrambling", "IPC").unwrap();
        assert!(
            dec < scr - 0.5,
            "decoding IPC must trail scalar modules: {dec:.2} vs {scr:.2}"
        );
        assert!(dec < 3.2, "paper shows ≈2.1, got {dec:.2}");
    }

    #[test]
    fn shares_sum_to_hundred() {
        for f in [uplink(), downlink()] {
            let sum: f64 = f.rows.iter().map(|r| r.values[0]).sum();
            assert!((sum - 100.0).abs() < 1e-6, "{}: {sum}", f.id);
        }
    }
}
