//! Window-batching measurement (`abl-batch`): the real batched decoder
//! from `vran-phy::turbo::batch_decoder` vs serial single-block
//! decodes, validating the √B batching-efficiency factor the latency
//! model assumes (EXPERIMENTS.md "Calibration").

use crate::report::{Figure, Row};
use vran_phy::bits::random_bits;
use vran_phy::llr::{bit_to_llr, TurboLlrs};
use vran_phy::turbo::batch_decoder::BatchTurboDecoder;
use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
use vran_phy::turbo::TurboEncoder;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

const K: usize = 256;

fn input(seed: u64) -> TurboLlrs {
    let bits = random_bits(K, seed);
    let cw = TurboEncoder::new(K).encode(&bits);
    let d = cw.to_dstreams();
    let soft: [Vec<i16>; 3] = d
        .iter()
        .map(|s| s.iter().map(|&b| bit_to_llr(b, 50)).collect())
        .collect::<Vec<_>>()
        .try_into()
        .unwrap();
    TurboLlrs::from_dstreams(&soft, K)
}

/// Run the measurement.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "abl-batch",
        "Batched multi-window decoding: cycles per block per iteration",
        &["cycles/block", "speedup vs xmm", "model (sqrt B)"],
    );
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let (_, single_trace) =
        SimdTurboDecoder::new(K, 1, RegWidth::Sse128).decode_traced(&input(1), 1);
    let single = sim.run(&single_trace).cycles as f64;
    f.push(Row::new("xmm x1", vec![single, 1.0, 1.0]));
    for width in [RegWidth::Avx256, RegWidth::Avx512] {
        let b = width.lanes128();
        let inputs: Vec<TurboLlrs> = (0..b as u64).map(|g| input(10 + g)).collect();
        let batch = BatchTurboDecoder::new(K, 1, width);
        let (_, trace) = batch.decode_traced(&inputs, 1);
        let cycles = sim.run(&trace).cycles as f64 / b as f64;
        f.push(Row::new(
            format!("{} x{}", width.reg_name(), b),
            vec![cycles, single / cycles, (b as f64).sqrt()],
        ));
    }
    f.note("the latency model charges decoder cycles / sqrt(B); this measures the real kernel");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_speedup_brackets_the_model() {
        let f = run();
        let s2 = f.value("ymm x2", "speedup vs xmm").unwrap();
        let s4 = f.value("zmm x4", "speedup vs xmm").unwrap();
        assert!(s2 > 1.0 && s2 <= 2.2, "ymm batching speedup {s2:.2}");
        assert!(
            s4 > s2,
            "zmm must batch better than ymm: {s2:.2} vs {s4:.2}"
        );
        assert!(s4 <= 4.4, "cannot beat the lane advantage: {s4:.2}");
        // the √B model is the deliberately conservative floor (it also
        // absorbs end-to-end overheads the pure kernel doesn't pay);
        // the measured kernel must sit between the model and ideal
        let m2 = f.value("ymm x2", "model (sqrt B)").unwrap();
        let m4 = f.value("zmm x4", "model (sqrt B)").unwrap();
        assert!(
            s2 >= m2 * 0.85,
            "B=2 kernel far below model: {s2:.2} vs {m2:.2}"
        );
        assert!(
            s4 >= m4 * 0.85,
            "B=4 kernel far below model: {s4:.2} vs {m4:.2}"
        );
    }
}
