//! `gen-stride` — the paper's generalization claim, quantified: APCM
//! vs the extract baseline for de-interleave strides beyond the vRAN
//! triple (complex I/Q = 2, RGBA = 4, 8-channel audio = 8).

use crate::report::{Figure, Row};
use vran_arrange::StrideKernel;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

const N: usize = 4096;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "gen-stride",
        "APCM generalized to other de-interleave strides (SSE128)",
        &[
            "original cycles",
            "apcm cycles",
            "speedup",
            "apcm store bits/cycle",
        ],
    );
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    for s in 2..=8usize {
        let data: Vec<i16> = (0..s * N).map(|i| (i % 251) as i16 - 125).collect();
        let run = |apcm: bool| {
            let (_, t) = StrideKernel::new(RegWidth::Sse128, s, apcm).deinterleave(&data, true);
            sim.run(&t.unwrap())
        };
        let base = run(false);
        let fast = run(true);
        f.push(Row::new(
            format!("stride{s}"),
            vec![
                base.cycles as f64,
                fast.cycles as f64,
                base.cycles as f64 / fast.cycles as f64,
                fast.store_bw_bits_per_cycle,
            ],
        ));
    }
    f.note("paper §4.2: the arrangement inefficiency 'can generalize to other SIMD applications'");
    f.note("the win tapers toward stride = lane count (S² shuffles for S·L elements)");
    f
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_stride_wins_and_stride2_wins_big() {
        let f = super::run();
        for r in &f.rows {
            let speedup = r.values[2];
            assert!(speedup > 1.2, "{}: {speedup:.2}×", r.label);
        }
        assert!(f.value("stride2", "speedup").unwrap() > 3.0);
    }
}
