//! Figure 15 — top-down breakdown and IPC of the data arrangement
//! process, original vs APCM, per register width.
//!
//! Paper anchors: retiring 55.6/52/48 % → 97/96/95 %; backend bound
//! 44.4/48.2/52 % → 3/4/5 %; IPC 1.2/1.1/1.05 → 3.6/3.5/3.3.

use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

const K: usize = 6144;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig15",
        "Micro-architecture value under original mechanism and APCM",
        &["retiring", "frontend", "bad speculation", "backend", "IPC"],
    );
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let input = synthetic_interleaved(K, 11);
    for width in RegWidth::ALL {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Apcm(ApcmVariant::Shuffle),
            Mechanism::Apcm(ApcmVariant::MaskMerge),
        ] {
            let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
            let r = sim.run(&trace.expect("tracing"));
            f.push(Row::new(
                format!("{}/{}", width.name(), mech.name()),
                vec![
                    r.topdown.retiring,
                    r.topdown.frontend,
                    r.topdown.bad_speculation,
                    r.topdown.backend(),
                    r.ipc,
                ],
            ));
        }
    }
    f.note("paper: backend 44.4/48.2/52 % → 3/4/5 %; IPC 1.2/1.1/1.05 → 3.6/3.5/3.3");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_bound_collapses_under_apcm() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let orig = f.value(&format!("{w}/original"), "backend").unwrap();
            let apcm = f.value(&format!("{w}/apcm"), "backend").unwrap();
            assert!(orig > 0.3, "{w}: original backend ≈45-52 %, got {orig:.2}");
            assert!(apcm < 0.25, "{w}: APCM backend ≈3-5 %, got {apcm:.2}");
            assert!(
                apcm < orig / 2.0,
                "{w}: backbone claim, {orig:.2} → {apcm:.2}"
            );
        }
    }

    #[test]
    fn ipc_soars_under_apcm() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let orig = f.value(&format!("{w}/original"), "IPC").unwrap();
            let apcm = f.value(&format!("{w}/apcm"), "IPC").unwrap();
            assert!(orig < 1.8, "{w}: original IPC ≈1.05-1.2, got {orig:.2}");
            assert!(apcm > 2.4, "{w}: APCM IPC ≈3.3-3.6, got {apcm:.2}");
        }
    }

    #[test]
    fn retiring_rises_under_apcm() {
        let f = run();
        let orig = f.value("SSE128/original", "retiring").unwrap();
        let apcm = f.value("SSE128/apcm", "retiring").unwrap();
        assert!(orig < 0.7, "original retiring ≈55 %, got {orig:.2}");
        assert!(apcm > 0.7, "APCM retiring ≈97 %, got {apcm:.2}");
    }

    #[test]
    fn fused_ingest_keeps_the_apcm_microarchitecture_shape() {
        // The uplink hot path's fused mask/merge ingest must not give
        // back the paper's win: backend bound stays collapsed and IPC
        // stays in the APCM band at every width.
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let orig_be = f.value(&format!("{w}/original"), "backend").unwrap();
            let fused_be = f.value(&format!("{w}/apcm-fused"), "backend").unwrap();
            assert!(
                fused_be < 0.25,
                "{w}: fused backend must collapse, got {fused_be:.2}"
            );
            assert!(
                fused_be < orig_be / 2.0,
                "{w}: {orig_be:.2} → {fused_be:.2}"
            );
            let ipc = f.value(&format!("{w}/apcm-fused"), "IPC").unwrap();
            assert!(ipc > 2.4, "{w}: fused IPC in the APCM band, got {ipc:.2}");
            let ret = f.value(&format!("{w}/apcm-fused"), "retiring").unwrap();
            assert!(ret > 0.7, "{w}: fused retiring ≈95 %, got {ret:.2}");
        }
    }

    #[test]
    fn fused_ingest_congregates_on_the_alu_ports() {
        // Port-pressure shape of the fused zmm kernel: the vpand/vpor
        // congregation lands on the vector-ALU ports P0-P2, store
        // traffic drops to whole-register writes on P6/P7, and the
        // class mix is ALU-dominated — the Figure 2 consciousness the
        // paper's mechanism is named for.
        let sim = CoreSim::new(CoreConfig::beefy().warmed());
        let input = synthetic_interleaved(K, 11);
        let trace = |mech| {
            let (_, t) = ArrangeKernel::new(RegWidth::Avx512, mech).arrange(&input, true);
            t.expect("tracing")
        };
        let fused = sim.run(&trace(Mechanism::Apcm(ApcmVariant::MaskMerge)));
        let orig = sim.run(&trace(Mechanism::Baseline));
        let alu = |r: &vran_uarch::SimReport| r.port_util[0] + r.port_util[1] + r.port_util[2];
        let stores = |r: &vran_uarch::SimReport| r.port_util[6] + r.port_util[7];
        assert!(
            alu(&fused) > stores(&fused),
            "fused work lives on the ALU ports: alu {:.2} vs stores {:.2}",
            alu(&fused),
            stores(&fused)
        );
        assert!(
            stores(&fused) < stores(&orig) / 2.0,
            "whole-register stores relieve P6/P7: {:.2} vs {:.2}",
            stores(&fused),
            stores(&orig)
        );
        assert!(
            fused.class_hist.vec_alu > fused.class_hist.store,
            "ALU-dominated class mix: {:?}",
            fused.class_hist
        );
        assert_eq!(
            orig.class_hist.vec_alu, 0,
            "original issues no vector ALU work"
        );
    }

    #[test]
    fn original_ipc_declines_with_width() {
        let f = run();
        let i128 = f.value("SSE128/original", "IPC").unwrap();
        let i512 = f.value("AVX512/original", "IPC").unwrap();
        assert!(i512 <= i128 + 0.05, "paper: 1.2 → 1.05 going wider");
    }
}
