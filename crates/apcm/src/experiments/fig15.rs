//! Figure 15 — top-down breakdown and IPC of the data arrangement
//! process, original vs APCM, per register width.
//!
//! Paper anchors: retiring 55.6/52/48 % → 97/96/95 %; backend bound
//! 44.4/48.2/52 % → 3/4/5 %; IPC 1.2/1.1/1.05 → 3.6/3.5/3.3.

use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

const K: usize = 6144;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig15",
        "Micro-architecture value under original mechanism and APCM",
        &["retiring", "frontend", "bad speculation", "backend", "IPC"],
    );
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let input = synthetic_interleaved(K, 11);
    for width in RegWidth::ALL {
        for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
            let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
            let r = sim.run(&trace.expect("tracing"));
            f.push(Row::new(
                format!("{}/{}", width.name(), mech.name()),
                vec![
                    r.topdown.retiring,
                    r.topdown.frontend,
                    r.topdown.bad_speculation,
                    r.topdown.backend(),
                    r.ipc,
                ],
            ));
        }
    }
    f.note("paper: backend 44.4/48.2/52 % → 3/4/5 %; IPC 1.2/1.1/1.05 → 3.6/3.5/3.3");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_bound_collapses_under_apcm() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let orig = f.value(&format!("{w}/original"), "backend").unwrap();
            let apcm = f.value(&format!("{w}/apcm"), "backend").unwrap();
            assert!(orig > 0.3, "{w}: original backend ≈45-52 %, got {orig:.2}");
            assert!(apcm < 0.25, "{w}: APCM backend ≈3-5 %, got {apcm:.2}");
            assert!(
                apcm < orig / 2.0,
                "{w}: backbone claim, {orig:.2} → {apcm:.2}"
            );
        }
    }

    #[test]
    fn ipc_soars_under_apcm() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let orig = f.value(&format!("{w}/original"), "IPC").unwrap();
            let apcm = f.value(&format!("{w}/apcm"), "IPC").unwrap();
            assert!(orig < 1.8, "{w}: original IPC ≈1.05-1.2, got {orig:.2}");
            assert!(apcm > 2.4, "{w}: APCM IPC ≈3.3-3.6, got {apcm:.2}");
        }
    }

    #[test]
    fn retiring_rises_under_apcm() {
        let f = run();
        let orig = f.value("SSE128/original", "retiring").unwrap();
        let apcm = f.value("SSE128/apcm", "retiring").unwrap();
        assert!(orig < 0.7, "original retiring ≈55 %, got {orig:.2}");
        assert!(apcm > 0.7, "APCM retiring ≈97 %, got {apcm:.2}");
    }

    #[test]
    fn original_ipc_declines_with_width() {
        let f = run();
        let i128 = f.value("SSE128/original", "IPC").unwrap();
        let i512 = f.value("AVX512/original", "IPC").unwrap();
        assert!(i512 <= i128 + 0.05, "paper: 1.2 → 1.05 going wider");
    }
}
