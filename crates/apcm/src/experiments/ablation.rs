//! Ablation studies beyond the paper's figures.
//!
//! * [`ports`] — is APCM just compensating for a port-assignment
//!   quirk? Compare the *original* mechanism on a hypothetical core
//!   whose movement µops may borrow the ALU ports against APCM on the
//!   real port model.
//! * [`rob`] — how much out-of-order window does each mechanism need?
//! * [`issue_width`] — does a wider front end rescue the original
//!   mechanism?
//! * [`width_projection`] — the paper's forward-looking claim ("more
//!   than 50 % of CPU time … larger than 512 bit in next-generation
//!   processors, 4K bit in GPU"): project both mechanisms to
//!   hypothetical wider registers with the analytic model the paper
//!   itself uses in §5.1.

use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim, PortModel};

const K: usize = 6144;

fn run_with(cfg: CoreConfig, width: RegWidth, mech: Mechanism) -> vran_uarch::SimReport {
    let input = synthetic_interleaved(K, 5);
    let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
    CoreSim::new(cfg).run(&trace.expect("tracing"))
}

/// Port-model ablation.
pub fn ports() -> Figure {
    let mut f = Figure::new(
        "abl-ports",
        "Would a hardware fix (movement µops on ALU ports) replace APCM?",
        &["cycles", "IPC", "backend"],
    );
    let base = CoreConfig::beefy().warmed();
    let hw_fix = CoreConfig {
        ports: PortModel::movement_on_alu(),
        ..base
    };
    for (label, cfg, mech) in [
        ("original/paper-ports", base, Mechanism::Baseline),
        ("original/movement-on-alu", hw_fix, Mechanism::Baseline),
        (
            "apcm/paper-ports",
            base,
            Mechanism::Apcm(ApcmVariant::Shuffle),
        ),
    ] {
        let r = run_with(cfg, RegWidth::Sse128, mech);
        f.push(Row::new(
            label,
            vec![r.cycles as f64, r.ipc, r.topdown.backend()],
        ));
    }
    f.note("the hypothetical hardware fix helps the original mechanism but cannot reach APCM:");
    f.note("per-element extraction still issues 2 µops per 16 bits regardless of which port takes them");
    f
}

/// ROB-size sensitivity.
pub fn rob() -> Figure {
    let mut f = Figure::new(
        "abl-rob",
        "Cycles vs reorder-buffer size (SSE128)",
        &["original", "apcm"],
    );
    for rob in [16u32, 32, 64, 128, 224] {
        let cfg = CoreConfig {
            rob_size: rob,
            ..CoreConfig::beefy().warmed()
        };
        let o = run_with(cfg, RegWidth::Sse128, Mechanism::Baseline);
        let a = run_with(cfg, RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle));
        f.push(Row::new(
            format!("rob{rob}"),
            vec![o.cycles as f64, a.cycles as f64],
        ));
    }
    f.note(
        "both kernels are streaming; neither needs a deep window — the bottleneck is structural",
    );
    f
}

/// Issue-width sensitivity.
pub fn issue_width() -> Figure {
    let mut f = Figure::new(
        "abl-issue",
        "IPC vs front-end width (SSE128)",
        &["original IPC", "apcm IPC"],
    );
    for w in [2u32, 4, 6, 8] {
        let cfg = CoreConfig {
            issue_width: w,
            retire_width: w,
            ..CoreConfig::beefy().warmed()
        };
        let o = run_with(cfg, RegWidth::Sse128, Mechanism::Baseline);
        let a = run_with(cfg, RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle));
        f.push(Row::new(format!("issue{w}"), vec![o.ipc, a.ipc]));
    }
    f.note("the original mechanism is store-port bound: front-end width does not move it");
    f.note("APCM saturates the 3 ALU ports from issue width 4 upward");
    f
}

/// Analytic projection to hypothetical register widths (paper §5.1's
/// own arithmetic: APCM instruction count per 3-register group stays
/// ~17, so bandwidth scales with width; the original moves 16 bits per
/// extract, so its bandwidth is flat).
pub fn width_projection() -> Figure {
    let mut f = Figure::new(
        "proj-width",
        "Projected store-path bandwidth (bits/cycle) at future widths",
        &["original", "apcm", "apcm utilization %"],
    );
    // anchors measured at xmm
    let base = CoreConfig::beefy().warmed();
    let orig = run_with(base, RegWidth::Sse128, Mechanism::Baseline);
    let apcm = run_with(
        base,
        RegWidth::Sse128,
        Mechanism::Apcm(ApcmVariant::Shuffle),
    );
    let orig_bw = orig.store_bw_bits_per_cycle; // flat in width
    let apcm_cycles_per_group = apcm.cycles as f64 / (K as f64 / 8.0); // width-invariant
    for bits in [128u32, 256, 512, 1024, 2048, 4096] {
        let apcm_bw = 3.0 * bits as f64 / apcm_cycles_per_group;
        f.push(Row::new(
            format!("{bits}b"),
            vec![orig_bw, apcm_bw, apcm_bw / bits as f64 * 100.0],
        ));
    }
    f.note("paper §4.2: with the original mechanism 'the store operation times will be extremely");
    f.note("high and the bandwidth utilization significantly low when further utilizing GPU'");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_fix_helps_but_apcm_wins() {
        let f = ports();
        let orig = f.value("original/paper-ports", "cycles").unwrap();
        let fixed = f.value("original/movement-on-alu", "cycles").unwrap();
        let apcm = f.value("apcm/paper-ports", "cycles").unwrap();
        assert!(fixed < orig, "extra ports must help the original");
        assert!(
            apcm < fixed,
            "APCM must beat even the hardware fix (fewer µops per element)"
        );
    }

    #[test]
    fn rob_insensitivity() {
        let f = rob();
        let o16 = f.value("rob16", "original").unwrap();
        let o224 = f.value("rob224", "original").unwrap();
        assert!(
            o224 > o16 * 0.5,
            "original must not be window-starved: {o16} vs {o224}"
        );
        // APCM benefits from at least a modest window
        let a16 = f.value("rob16", "apcm").unwrap();
        let a224 = f.value("rob224", "apcm").unwrap();
        assert!(a224 <= a16, "more window must not hurt: {a16} vs {a224}");
    }

    #[test]
    fn issue_width_moves_apcm_not_original() {
        let f = issue_width();
        let o4 = f.value("issue4", "original IPC").unwrap();
        let o8 = f.value("issue8", "original IPC").unwrap();
        assert!(
            o8 < o4 * 1.3,
            "original is port-bound, not fetch-bound: {o4} → {o8}"
        );
        let a4 = f.value("issue4", "apcm IPC").unwrap();
        assert!(a4 > 3.0);
    }

    #[test]
    fn projection_reproduces_measured_anchors_and_diverges() {
        let f = width_projection();
        let a128 = f.value("128b", "apcm").unwrap();
        assert!(
            (60.0..90.0).contains(&a128),
            "anchor ≈72 bits/cycle, got {a128:.0}"
        );
        let o4096 = f.value("4096b", "original").unwrap();
        let a4096 = f.value("4096b", "apcm").unwrap();
        assert!(
            a4096 / o4096 > 100.0,
            "GPU-width gap must be enormous: {:.0}×",
            a4096 / o4096
        );
    }
}
