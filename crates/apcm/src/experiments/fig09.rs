//! Figure 9 — SIMD module processing time under SSE128/AVX256/AVX512:
//! the data arrangement's share of decoding, original vs APCM.
//!
//! Paper anchors: arrangement share of module time 13 %/17 %/19.5 %
//! (original) → 4.7 %/3.4 %/1.8 % (APCM); calculation time shrinks as
//! registers widen while the original arrangement does not.

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

/// Block volume: one maximum-size code block per pass.
const STEPS: usize = 6144;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig9",
        "SIMD module processing time per code block (µs)",
        &[
            "arrangement orig",
            "arrangement apcm",
            "calculation",
            "share orig %",
            "share apcm %",
        ],
    );
    let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    let freq_hz = m.core().freq_ghz * 1e9;
    let passes = 2.0 * DECODER_ITERATIONS as f64;
    for w in RegWidth::ALL {
        let arr_o = m.arrangement_cycles(w, Mechanism::Baseline, STEPS) * passes / freq_hz * 1e6;
        let arr_a = m.arrangement_cycles(w, apcm, STEPS) * passes / freq_hz * 1e6;
        let calc = m.decoder_cycles(w, STEPS) / freq_hz * 1e6;
        f.push(Row::new(
            w.name(),
            vec![
                arr_o,
                arr_a,
                calc,
                arr_o / (arr_o + calc) * 100.0,
                arr_a / (arr_a + calc) * 100.0,
            ],
        ));
    }
    f.note("paper: arrangement share 13/17/19.5 % (orig) → 4.7/3.4/1.8 % (APCM)");
    f.note("paper: with APCM the arrangement stops being a hotspot as width grows");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_share_grows_with_width_apcm_share_shrinks() {
        let f = run();
        let so: Vec<f64> = ["SSE128", "AVX256", "AVX512"]
            .iter()
            .map(|w| f.value(w, "share orig %").unwrap())
            .collect();
        let sa: Vec<f64> = ["SSE128", "AVX256", "AVX512"]
            .iter()
            .map(|w| f.value(w, "share apcm %").unwrap())
            .collect();
        assert!(so[2] > so[0], "original share must grow with width: {so:?}");
        assert!(sa[2] < sa[0], "APCM share must shrink with width: {sa:?}");
        assert!(
            sa.iter().zip(&so).all(|(a, o)| a < o),
            "APCM always below original"
        );
    }

    #[test]
    fn calculation_time_scales_with_width() {
        let f = run();
        let c128 = f.value("SSE128", "calculation").unwrap();
        let c512 = f.value("AVX512", "calculation").unwrap();
        assert!(
            c512 < c128,
            "wider registers must accelerate the calculation phase: {c128} vs {c512}"
        );
    }

    #[test]
    fn apcm_share_is_small() {
        let f = run();
        for w in ["SSE128", "AVX256", "AVX512"] {
            let s = f.value(w, "share apcm %").unwrap();
            assert!(
                s < 15.0,
                "{w}: APCM arrangement share must be minor, got {s:.1}%"
            );
        }
    }
}
