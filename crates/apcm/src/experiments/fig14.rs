//! Figure 14 — processing time of the data arrangement and calculation
//! procedures at the standard 1500 B packet size.
//!
//! Paper anchors: arrangement time falls 67 %/82 %/92 % under APCM at
//! 128/256/512 bits; under the original mechanism wider registers are
//! *slower* (+2.2 % ymm, +6.4 % zmm), under APCM they scale
//! (−49 % at 256, −51 % more at 512).

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_net::packet::Transport;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig14",
        "Arrangement vs calculation time at 1500 B (µs)",
        &[
            "arrangement orig",
            "arrangement apcm",
            "reduction %",
            "calculation",
            "other",
        ],
    );
    let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    for w in RegWidth::ALL {
        let orig = m.packet_time(w, Mechanism::Baseline, Transport::Udp, 1500);
        let opt = m.packet_time(w, apcm, Transport::Udp, 1500);
        f.push(Row::new(
            w.name(),
            vec![
                orig.arrangement_us,
                opt.arrangement_us,
                (1.0 - opt.arrangement_us / orig.arrangement_us) * 100.0,
                orig.calculation_us,
                orig.other_us,
            ],
        ));
    }
    f.note("paper: arrangement time −67 %/−82 %/−92 % at 128/256/512 bits");
    f.note("paper: original +2.2 % (ymm) and +6.4 % (zmm) vs one width down; APCM −49 %/−51 %");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_grows_with_width_toward_paper_band() {
        let f = run();
        let r: Vec<f64> = ["SSE128", "AVX256", "AVX512"]
            .iter()
            .map(|w| f.value(w, "reduction %").unwrap())
            .collect();
        assert!(r[0] > 50.0, "128-bit reduction ≈67 %, got {:.1}", r[0]);
        assert!(r[1] > r[0], "reduction must grow with width: {r:?}");
        assert!(r[2] > r[1], "reduction must grow with width: {r:?}");
        assert!(r[2] > 85.0, "512-bit reduction ≈92 %, got {:.1}", r[2]);
    }

    #[test]
    fn original_arrangement_does_not_improve_with_width() {
        let f = run();
        let a128 = f.value("SSE128", "arrangement orig").unwrap();
        let a256 = f.value("AVX256", "arrangement orig").unwrap();
        let a512 = f.value("AVX512", "arrangement orig").unwrap();
        assert!(
            a256 >= a128 * 0.97,
            "ymm must not beat xmm: {a128} vs {a256}"
        );
        assert!(
            a512 >= a256 * 0.97,
            "zmm must not beat ymm: {a256} vs {a512}"
        );
    }

    #[test]
    fn apcm_arrangement_halves_per_width_step() {
        let f = run();
        let a128 = f.value("SSE128", "arrangement apcm").unwrap();
        let a256 = f.value("AVX256", "arrangement apcm").unwrap();
        let a512 = f.value("AVX512", "arrangement apcm").unwrap();
        assert!(a256 < a128 * 0.65, "paper −49 % at 256: {a128} → {a256}");
        assert!(a512 < a256 * 0.65, "paper −51 % at 512: {a256} → {a512}");
    }
}
