//! `ber` — turbo-code waterfall validation.
//!
//! Not a paper figure, but the substrate check that makes every other
//! figure trustworthy: the rate-1/2 turbo code over QPSK/AWGN must
//! show the classic waterfall — orders of magnitude BER drop within
//! ~1 dB — against the uncoded baseline.

use crate::report::{Figure, Row};
use vran_phy::bits::random_bits;
use vran_phy::channel::AwgnChannel;
use vran_phy::llr::{llr_to_bit, TurboLlrs};
use vran_phy::modulation::Modulation;
use vran_phy::rate_match::RateMatcher;
use vran_phy::turbo::{TurboDecoder, TurboEncoder};

const K: usize = 1024;
const BLOCKS: usize = 4;

/// Coded + uncoded bit error rates at one Es/N0 point.
fn ber_at(snr_db: f32) -> (f64, f64) {
    let enc = TurboEncoder::new(K);
    let dec = TurboDecoder::new(K, 6);
    let rm = RateMatcher::new(K + 4);
    let e = 2 * K;
    let mut coded_errs = 0usize;
    let mut raw_errs = 0usize;
    let mut raw_bits = 0usize;
    for blk in 0..BLOCKS {
        let bits = random_bits(K, 1000 + blk as u64);
        let cw = enc.encode(&bits);
        let tx = rm.rate_match(&cw.to_dstreams(), e, 0);
        let syms = Modulation::Qpsk.modulate(&tx);
        let mut ch = AwgnChannel::new(snr_db, 77 + blk as u64);
        let rx = ch.apply(&syms);
        let scale = (ch.llr_scale() / 8.0).clamp(0.25, 16.0);
        let llrs = Modulation::Qpsk.demodulate(&rx, scale);
        raw_errs += llrs
            .iter()
            .zip(&tx)
            .filter(|(&l, &b)| llr_to_bit(l) != b)
            .count();
        raw_bits += tx.len();
        let d = rm.de_rate_match(&llrs, 0);
        let out = dec.decode(&TurboLlrs::from_dstreams(&d, K));
        coded_errs += out.bits.iter().zip(&bits).filter(|(a, b)| a != b).count();
    }
    (
        coded_errs as f64 / (K * BLOCKS) as f64,
        raw_errs as f64 / raw_bits as f64,
    )
}

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "ber",
        "Turbo rate-1/2 QPSK waterfall (K=1024, 6 iterations)",
        &["coded BER", "uncoded BER"],
    );
    for snr10 in [-20i32, -10, 0, 5, 10, 15, 20, 30] {
        let snr = snr10 as f32 / 10.0;
        let (coded, raw) = ber_at(snr);
        f.push(Row::new(format!("{snr:+.1}dB"), vec![coded, raw]));
    }
    f.note(
        "substrate validation: the waterfall protects every latency figure built on the decoder",
    );
    f
}

#[cfg(test)]
mod tests {
    #[test]
    fn waterfall_shape() {
        let f = super::run();
        let coded = |label: &str| f.value(label, "coded BER").unwrap();
        let raw = |label: &str| f.value(label, "uncoded BER").unwrap();
        // deep noise: coded BER near 0.5-ish (decoder can't help)
        assert!(coded("-2.0dB") > 0.05, "{}", coded("-2.0dB"));
        // waterfall: clean by +2 dB while the raw channel still errs
        assert_eq!(coded("+2.0dB"), 0.0, "turbo must be clean at 2 dB");
        assert!(
            raw("+2.0dB") > 0.01,
            "raw channel must still be noisy at 2 dB"
        );
        // monotone improvement across the sweep
        let points = [
            "-2.0dB", "-1.0dB", "+0.0dB", "+0.5dB", "+1.0dB", "+1.5dB", "+2.0dB",
        ];
        for w in points.windows(2) {
            assert!(
                coded(w[1]) <= coded(w[0]) + 1e-9,
                "BER must not rise with SNR: {} → {}",
                w[0],
                w[1]
            );
        }
    }
}
