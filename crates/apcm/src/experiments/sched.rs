//! `sched` — MAC scheduler policy comparison (cell throughput vs Jain
//! fairness), exercising the eNB L2 substrate end to end.

use crate::report::{Figure, Row};
use vran_net::scheduler::{CellScheduler, Policy, UeContext};

fn cell(policy: Policy) -> CellScheduler {
    // a 6-UE cell spanning center to edge
    let ues = (0..6)
        .map(|i| UeContext::new(i, 22.0 - 3.5 * i as f32))
        .collect();
    CellScheduler::new(ues, policy, 2024)
}

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "sched",
        "MAC scheduler policies over 10 000 subframes (6 UEs, 22…4.5 dB)",
        &["cell Mbps", "Jain fairness", "edge-UE Mbps"],
    );
    for (name, policy) in [
        ("round-robin", Policy::RoundRobin),
        ("proportional-fair", Policy::ProportionalFair),
        ("max-C/I", Policy::MaxCi),
    ] {
        let mut c = cell(policy);
        let (tput, fair) = c.run(10_000);
        // 10 000 subframes = 10 s of air time
        let edge = c.ues().last().expect("non-empty").served_bits as f64 / 10.0 / 1e6;
        f.push(Row::new(name, vec![tput, fair, edge]));
    }
    f.note("classic trade: max-C/I tops throughput but starves the edge; PF sits between");
    f
}

#[cfg(test)]
mod tests {
    #[test]
    fn policy_trade_off_shape() {
        let f = super::run();
        let t = |p: &str| f.value(p, "cell Mbps").unwrap();
        let j = |p: &str| f.value(p, "Jain fairness").unwrap();
        assert!(t("max-C/I") >= t("proportional-fair"));
        assert!(t("proportional-fair") > t("round-robin"));
        assert!(j("proportional-fair") > j("max-C/I"));
        let edge_ci = f.value("max-C/I", "edge-UE Mbps").unwrap();
        let edge_pf = f.value("proportional-fair", "edge-UE Mbps").unwrap();
        assert!(edge_pf > edge_ci, "PF must serve the edge better");
    }
}
