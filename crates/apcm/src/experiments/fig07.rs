//! Figure 7 — IPC, memory bound and core bound per instruction class,
//! on the wimpy and the beefy server.
//!
//! Reproduces the paper's two findings: (a) moving to the beefy node
//! eliminates memory bound but *increases* exposed core bound, leaving
//! overall backend bound similar; (b) per class, SIMD calculation
//! reaches IPC ≈ 2.5–2.8 (max ≈ 2.2 from dependences), data movement
//! (`_mm_extract`) ≈ 1.5, scalar OFDM ≈ 3.8.

use crate::report::{Figure, Row};
use crate::server::ServerProfile;
use crate::workloads::{self, LARGE_WS};
use vran_simd::Trace;
use vran_uarch::CoreSim;

// Enough repetitions that the streamed footprint (~10k cache lines ≈
// 640 KiB) overflows the wimpy node's 256 KiB L2 while fitting the
// beefy node's 1 MiB L2 — the Figure 7 contrast.
const REPS: usize = 40_000;

fn kernels() -> Vec<(&'static str, Trace)> {
    vec![
        ("_mm_adds", workloads::adds_kernel(LARGE_WS, REPS)),
        ("_mm_subs", workloads::subs_kernel(LARGE_WS, REPS)),
        ("_mm_max", workloads::max_kernel(LARGE_WS, REPS)),
        ("_mm_extract", workloads::extract_kernel(LARGE_WS, REPS)),
        ("do_OFDM", workloads::ofdm_scalar_kernel(LARGE_WS, REPS)),
    ]
}

/// Run the experiment.
pub fn run() -> Figure {
    let mut f = Figure::new(
        "fig7",
        "IPC, memory and core bound under beefy and wimpy server",
        &["IPC", "memory bound", "core bound"],
    );
    for server in [ServerProfile::Wimpy, ServerProfile::Beefy] {
        let sim = CoreSim::new(server.core_config().warmed());
        for (name, trace) in kernels() {
            let r = sim.run(&trace);
            f.push(Row::new(
                format!("{}/{}", server.name(), name),
                vec![r.ipc, r.topdown.backend_mem, r.topdown.backend_core],
            ));
        }
    }
    f.note(
        "paper: beefy eliminates memory bound, core bound deteriorates; overall backend similar",
    );
    f.note("paper IPC anchors: adds 2.8, subs 2.7, max 2.2, extract ~1.5, do_OFDM 3.8");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beefy_eliminates_memory_bound_core_bound_rises() {
        let f = run();
        for k in ["_mm_adds", "_mm_extract"] {
            let wm = f.value(&format!("wimpy/{k}"), "memory bound").unwrap();
            let bm = f.value(&format!("beefy/{k}"), "memory bound").unwrap();
            assert!(
                bm <= wm,
                "{k}: beefy memory bound must not exceed wimpy ({bm} vs {wm})"
            );
            let wc = f.value(&format!("wimpy/{k}"), "core bound").unwrap();
            let bc = f.value(&format!("beefy/{k}"), "core bound").unwrap();
            assert!(bc >= wc * 0.8, "{k}: core bound must not collapse on beefy");
        }
    }

    #[test]
    fn instruction_class_ordering_matches_paper() {
        let f = run();
        let ipc = |k: &str| f.value(&format!("beefy/{k}"), "IPC").unwrap();
        assert!(ipc("do_OFDM") > ipc("_mm_adds"), "scalar beats SIMD calc");
        assert!(ipc("_mm_adds") > ipc("_mm_max"), "dependences cost max");
        assert!(ipc("_mm_max") > ipc("_mm_extract"), "movement is the floor");
        assert!(ipc("_mm_extract") < 2.0, "extract below its 2-port ideal");
    }
}
