//! `e2e` — end-to-end latency budget.
//!
//! The paper's §4 opens with "average end-to-end delay of the current
//! vRAN software pipeline is 31 ms", motivating the whole optimization
//! effort. This experiment assembles an explicit budget: fixed radio
//! and stack components (documented constants) plus the measured
//! per-packet PHY processing from the latency model, for the original
//! mechanism and APCM.
//!
//! The point the budget makes is the paper's own framing: APCM's
//! 12–20 % win is on the *processing* component; the fixed radio
//! latencies bound how much of the 31 ms any CPU optimization can
//! recover — which is why the capacity view (Figure 16: more Mbps per
//! core) is the operationally meaningful framing of the same gain.

use crate::experiments::DECODER_ITERATIONS;
use crate::report::{Figure, Row};
use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_net::packet::Transport;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

/// Fixed budget components in µs (documented assumptions for a lightly
/// loaded FDD LTE path; the paper's 31 ms average includes queueing the
/// model below does not attempt to reproduce).
pub mod components {
    /// Uplink frame alignment: on average half a subframe.
    pub const FRAME_ALIGNMENT_US: f64 = 500.0;
    /// UE processing + scheduling grant round trip (SR → grant).
    pub const SCHEDULING_US: f64 = 8000.0;
    /// HARQ RTT share from the ~10 % first-transmission BLER operating
    /// point (0.1 × 8 ms).
    pub const HARQ_SHARE_US: f64 = 800.0;
    /// Transport to the EPC and core-network processing.
    pub const CORE_NETWORK_US: f64 = 1500.0;
    /// UE-side modem processing.
    pub const UE_PROCESSING_US: f64 = 2000.0;
}

/// Run the experiment.
pub fn run() -> Figure {
    use components::*;
    let fixed =
        FRAME_ALIGNMENT_US + SCHEDULING_US + HARQ_SHARE_US + CORE_NETWORK_US + UE_PROCESSING_US;
    let mut f = Figure::new(
        "e2e",
        "End-to-end latency budget, 1500 B uplink packet (µs)",
        &[
            "fixed radio/stack",
            "eNB processing",
            "total",
            "vs original %",
        ],
    );
    let mut m = LatencyModel::new(CoreConfig::beefy(), DECODER_ITERATIONS);
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    let mut base_total = 0.0;
    for (label, mech) in [("original", Mechanism::Baseline), ("apcm", apcm)] {
        for w in RegWidth::ALL {
            let proc = m.packet_time(w, mech, Transport::Udp, 1500).total_us();
            let total = fixed + proc;
            if label == "original" && w == RegWidth::Sse128 {
                base_total = total;
            }
            f.push(Row::new(
                format!("{label}/{}", w.name()),
                vec![fixed, proc, total, (1.0 - total / base_total) * 100.0],
            ));
        }
    }
    f.note("paper §4: measured e2e delay 31 ms on the real testbed (includes queueing/load)");
    f.note("fixed components bound what CPU optimization can recover; capacity (Fig 16) is the operational win");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_is_a_minority_of_e2e() {
        let f = run();
        let fixed = f.value("original/SSE128", "fixed radio/stack").unwrap();
        let proc = f.value("original/SSE128", "eNB processing").unwrap();
        assert!(
            fixed > proc,
            "fixed components dominate e2e: {fixed} vs {proc}"
        );
    }

    #[test]
    fn apcm_reduces_e2e_modestly() {
        let f = run();
        let red = f.value("apcm/AVX512", "vs original %").unwrap();
        assert!(red > 1.0, "APCM must shave visible e2e time: {red:.1}%");
        assert!(
            red < 15.0,
            "e2e gain is bounded by the fixed components: {red:.1}%"
        );
    }

    #[test]
    fn totals_are_consistent() {
        let f = run();
        for r in &f.rows {
            assert!(
                (r.values[0] + r.values[1] - r.values[2]).abs() < 1e-9,
                "{r:?}"
            );
        }
    }
}
