//! Figures 5 & 6 — top-down micro-architecture breakdown per module,
//! uplink and downlink.
//!
//! Paper anchors: frontend bound and bad speculation are negligible
//! across all modules; the dominant stall is backend bound, exceeding
//! 50 % for turbo decoding.

use super::fig03_04::module_profiles;
use crate::report::{Figure, Row};

fn build(id: &str, title: &str, uplink: bool) -> Figure {
    let mut f = Figure::new(
        id,
        title,
        &["retiring", "frontend", "bad speculation", "backend"],
    );
    for m in module_profiles(uplink) {
        let t = &m.report.topdown;
        f.push(Row::new(
            m.name,
            vec![t.retiring, t.frontend, t.bad_speculation, t.backend()],
        ));
    }
    f.note("paper: frontend and bad speculation negligible; backend bound dominates stalls");
    f.note("paper: turbo decoding backend bound exceeds 50 %");
    f
}

/// Figure 5 (uplink).
pub fn uplink() -> Figure {
    build("fig5", "Micro-architecture value for uplink", true)
}

/// Figure 6 (downlink).
pub fn downlink() -> Figure {
    build("fig6", "Micro-architecture value for downlink", false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_and_badspec_are_negligible() {
        for f in [uplink(), downlink()] {
            for r in &f.rows {
                assert!(
                    r.values[1] < 0.12,
                    "{} {}: frontend {:.3}",
                    f.id,
                    r.label,
                    r.values[1]
                );
                assert!(
                    r.values[2] < 0.15,
                    "{} {}: bad speculation {:.3}",
                    f.id,
                    r.label,
                    r.values[2]
                );
            }
        }
    }

    #[test]
    fn decoding_is_the_backend_hotspot() {
        // Paper: decoding backend bound >50 % on the wimpy testbed.
        // Our K-scaled decoder trace is L1-resident, so the absolute
        // level is lower (documented deviation in EXPERIMENTS.md);
        // the *ordering* — decoding clearly the most backend-bound
        // module — is the reproducible claim.
        let f = uplink();
        let dec = f.value("Turbo Decoding", "backend").unwrap();
        for other in ["Scrambling", "OFDM", "DCI"] {
            let o = f.value(other, "backend").unwrap();
            assert!(
                dec > o,
                "decoding must out-stall {other}: {dec:.3} vs {o:.3}"
            );
        }
        assert!(
            dec > 0.08,
            "decoding backend bound should be visible, got {dec:.3}"
        );
    }

    #[test]
    fn categories_sum_to_about_one() {
        for f in [uplink(), downlink()] {
            for r in &f.rows {
                let s: f64 = r.values.iter().sum();
                assert!(
                    (0.85..1.02).contains(&s),
                    "{} {}: top-down sum {s:.3}",
                    f.id,
                    r.label
                );
            }
        }
    }
}
