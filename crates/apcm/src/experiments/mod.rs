//! Experiment runners, one module per paper figure/table.
//!
//! Every runner is a pure function returning a [`crate::Figure`]; the
//! `figures` binary renders them to text and JSON under `results/`.

pub mod ablation;
pub mod batch_exp;
pub mod ber;
pub mod e2e;
pub mod fig03_04;
pub mod fig05_06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod sched;
pub mod stride_exp;
pub mod table1;

use crate::report::Figure;

/// An experiment runner.
pub type ExperimentFn = fn() -> Figure;

/// Registry of all experiments in paper order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig3", fig03_04::uplink as fn() -> Figure),
        ("fig4", fig03_04::downlink),
        ("fig5", fig05_06::uplink),
        ("fig6", fig05_06::downlink),
        ("table1", table1::run),
        ("fig7", fig07::run),
        ("fig8", fig08::run),
        ("fig9", fig09::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        // beyond-the-paper ablations (DESIGN.md §5 design choices)
        ("abl-ports", ablation::ports),
        ("abl-rob", ablation::rob),
        ("abl-issue", ablation::issue_width),
        ("abl-batch", batch_exp::run),
        ("gen-stride", stride_exp::run),
        ("proj-width", ablation::width_projection),
        ("e2e", e2e::run),
        ("ber", ber::run),
        ("sched", sched::run),
    ]
}

/// Look up one experiment by id.
pub fn by_id(id: &str) -> Option<ExperimentFn> {
    all().into_iter().find(|(k, _)| *k == id).map(|(_, f)| f)
}

/// The effective full-iteration count used by the latency-bearing
/// figures. OAI caps at more, but CRC-based early termination stops
/// most blocks after ~3 full iterations at operating SNR (our own
/// pipeline's `decode_with_crc` shows the same), so 3 is the
/// steady-state average a long-running profile sees.
pub const DECODER_ITERATIONS: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_paper_artifact() {
        let ids: Vec<&str> = all().iter().map(|(k, _)| *k).collect();
        for want in [
            "fig3", "fig4", "fig5", "fig6", "table1", "fig7", "fig8", "fig9", "fig13", "fig14",
            "fig15", "fig16",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        assert!(by_id("fig15").is_some());
        assert!(by_id("fig99").is_none());
    }
}
