//! Workload generators: instruction-class microkernels (Figure 7) and
//! traced twins of the scalar pipeline modules (Figures 3–6).
//!
//! The SIMD-accelerated hot paths (data arrangement, max-log-MAP
//! decoding) are traced from their *real* implementations in
//! `vran-arrange` / `vran-phy`. The scalar modules (scrambling, rate
//! matching, DCI, OFDM, encoding) run as plain Rust in the pipeline;
//! for the micro-architectural figures they are represented by
//! **traced twins** — synthetic µop streams with the same instruction
//! mix, dependency structure and memory footprint as the real code
//! (documented per twin below, per DESIGN.md §2). The tests pin each
//! twin's simulated profile to the band the paper reports.

use vran_simd::{Mem, MemRef, RegWidth, Trace, Vm};

/// Working set (in i16 elements) that fits every modeled cache — used
/// when a kernel should be compute-bound.
pub const SMALL_WS: usize = 4 << 10;
/// Working set that overflows the wimpy node's 256 KiB L2 but fits the
/// beefy node's 1 MiB L2 (the Figure 7 contrast).
pub const LARGE_WS: usize = 384 << 10;

fn vm_with_ws(ws: usize) -> (Vm, MemRef) {
    let mut mem = Mem::new();
    let buf = mem.alloc(ws.max(64));
    (Vm::tracing(mem), buf)
}

/// `_mm_adds_epi16` microkernel: two accumulator chains (the state-
/// metric updates of the decoder are serially dependent across trellis
/// steps) plus an independent add and a stream load every few steps,
/// and an interleaver-style *address-dependent* gather every 24 steps
/// — the hook through which the cache hierarchy becomes visible on the
/// wimpy node. Paper profile (beefy): IPC ≈ 2.8, backend ≈ 35 %.
pub fn adds_kernel(ws: usize, reps: usize) -> Trace {
    binary_alu_kernel(ws, reps, false)
}

/// `_mm_subs_epi16` microkernel — same structure as [`adds_kernel`]
/// with subtracts. Paper: IPC ≈ 2.7.
pub fn subs_kernel(ws: usize, reps: usize) -> Trace {
    binary_alu_kernel(ws, reps, true)
}

fn binary_alu_kernel(ws: usize, reps: usize, use_subs: bool) -> Trace {
    let (mut vm, buf) = vm_with_ws(ws);
    let l = RegWidth::Sse128.lanes();
    let span = (ws / l).max(4);
    let mut x = vm.load(RegWidth::Sse128, buf.slice(0, l));
    let y = vm.load(RegWidth::Sse128, buf.slice(l, l));
    let mut a1 = vm.splat(RegWidth::Sse128, 0);
    let mut a2 = vm.splat(RegWidth::Sse128, 1);
    for i in 0..reps {
        // two serial accumulator chains plus an independent op per
        // step: ≈3 ALU instr + 0.25 loads per cycle steady state
        a1 = if use_subs {
            vm.subs(a1, x)
        } else {
            vm.adds(a1, x)
        };
        a2 = if use_subs {
            vm.subs(a2, y)
        } else {
            vm.adds(a2, y)
        };
        let _ = if use_subs {
            vm.subs(x, y)
        } else {
            vm.adds(x, y)
        };
        let off = ((i / 4) * 7 % span) * l;
        if i % 128 == 127 {
            // interleaver gather: the next address depends on computed
            // data, exposing cache latency (Figure 7's wimpy bars)
            x = vm.load_indexed(RegWidth::Sse128, buf.slice(off, l), a1);
        } else if i % 4 == 3 {
            x = vm.load(RegWidth::Sse128, buf.slice(off, l));
        }
    }
    vm.take_trace()
}

/// `_mm_max_epi16` microkernel: the decoding algorithm's "unavoidable
/// data dependencies" (paper §4.2) — a pair of max chains where the
/// second feeds off the first. Paper profile: IPC ≈ 2.2.
pub fn max_kernel(ws: usize, reps: usize) -> Trace {
    let (mut vm, buf) = vm_with_ws(ws);
    let l = RegWidth::Sse128.lanes();
    let span = (ws / l).max(4);
    let mut x = vm.load(RegWidth::Sse128, buf.slice(0, l));
    let mut m1 = vm.splat(RegWidth::Sse128, i16::MIN);
    let mut m2 = vm.splat(RegWidth::Sse128, i16::MIN);
    for i in 0..reps {
        m1 = vm.max(m1, x);
        m2 = vm.max(m2, m1); // cascaded dependence, as in the ACS loop
        let off = ((i / 4) * 5 % span) * l;
        if i % 128 == 127 {
            x = vm.load_indexed(RegWidth::Sse128, buf.slice(off, l), m2);
        } else if i % 4 == 3 {
            x = vm.load(RegWidth::Sse128, buf.slice(off, l));
        }
    }
    vm.take_trace()
}

/// `_mm_extract` microkernel: the data-movement instruction stream of
/// the original arrangement (load, then `pextrw` every lane, plus the
/// pointer arithmetic the compiler emits). Paper profile: IPC ≈ 1.5,
/// backend ≈ 55 %.
pub fn extract_kernel(ws: usize, reps: usize) -> Trace {
    let (mut vm, buf) = vm_with_ws(ws + 16);
    let l = RegWidth::Sse128.lanes();
    let span = (ws / l).max(4);
    for i in 0..reps {
        let off = (i % span) * l;
        let r = vm.load(RegWidth::Sse128, buf.slice(off, l));
        vm.scalar_ops(2); // destination pointer updates
        for lane in 0..l {
            vm.extract_store(r, lane, buf.base + ws + lane);
        }
    }
    vm.take_trace()
}

/// "do OFDM" scalar microkernel: radix-2 butterfly structure — two
/// (partly index-dependent, bit-reversal style) loads, a handful of
/// independent scalar ALU ops, two stores. Paper profile: IPC ≈ 3.8,
/// negligible backend bound (beefy).
pub fn ofdm_scalar_kernel(ws: usize, butterflies: usize) -> Trace {
    let (mut vm, buf) = vm_with_ws(ws);
    for i in 0..butterflies {
        let span = ws.max(64);
        let a = (i * 17) % (span / 2);
        // twiddle/index arithmetic, then the butterfly's 6 scalar ops
        vm.scalar_ops(2);
        vm.copy16(buf.base + a, buf.base + span / 2 + a);
        vm.scalar_ops(6);
        vm.copy16(buf.base + span / 2 + a, buf.base + a);
    }
    vm.take_trace()
}

/// Scrambling twin: the Gold-sequence XOR loop — word loads, a few
/// shifts/xors, word stores; long independent stream. Near-ideal
/// scalar IPC.
pub fn scrambling_twin(bits: usize) -> Trace {
    let words = bits.div_ceil(16).max(1);
    let (mut vm, buf) = vm_with_ws(words + 1);
    for i in 0..words {
        vm.scalar_ops(3); // x1/x2 LFSR steps
        vm.copy16(buf.base + i, buf.base + i);
        vm.scalar_ops(1); // xor
    }
    vm.take_trace()
}

/// Receiver-side descrambling: the *real* SIMD LLR sign-flip kernel
/// from `vran-phy::scrambler::descramble_llrs_simd`, traced — not a
/// twin. Replaces the scrambling twin on the uplink (Figures 3/5),
/// where the profiled work is LLR-domain.
pub fn descrambling_trace(llrs: usize) -> Trace {
    use vran_phy::scrambler::descramble_llrs_simd;
    let mut mem = vran_simd::Mem::new();
    let vals: Vec<i16> = (0..llrs).map(|i| (i % 255) as i16 - 127).collect();
    let region = mem.alloc_from(&vals);
    let mut vm = vran_simd::Vm::tracing(mem);
    descramble_llrs_simd(&mut vm, region, 0x5A5A5, RegWidth::Sse128);
    vm.take_trace()
}

/// Rate-matching twin: sub-block interleaver gather — per output word
/// a little index arithmetic, a (mostly independent) table load and a
/// store. Every 16th load is part of a dependent chain, modeling the
/// serialized pointer walks in the circular-buffer readout; those
/// chains are what expose the cache hierarchy on the wimpy node while
/// the kernel stays near-ideal IPC on a warm beefy core.
pub fn rate_match_twin(bits: usize, ws: usize) -> Trace {
    let words = bits.div_ceil(16).max(1);
    let (mut vm, buf) = vm_with_ws(ws.max(words + 2));
    let mut idx = vm.splat(RegWidth::Sse128, 0);
    let l = RegWidth::Sse128.lanes();
    let span = (ws.max(64) / l).max(2);
    for i in 0..words {
        vm.scalar_ops(2); // permutation index computation
        let off = (i * 7 % span) * l;
        if i % 16 == 0 {
            idx = vm.load_indexed(RegWidth::Sse128, buf.slice(off, l), idx);
        } else {
            vm.load(RegWidth::Sse128, buf.slice(off, l));
        }
        vm.copy16(
            buf.base + (i % ws.max(64)),
            buf.base + ((i + 1) % ws.max(64)),
        );
    }
    vm.take_trace()
}

/// DCI twin: Viterbi add-compare-select — scalar ALU with a
/// data-dependent branch per step; a small deterministic fraction
/// mispredicts. Near-ideal IPC with a visible bad-speculation sliver.
pub fn dci_twin(steps: usize) -> Trace {
    let (mut vm, _buf) = vm_with_ws(64);
    for i in 0..steps {
        vm.scalar_ops(6); // branch metrics + compares
        vm.branch(i % 50 == 49); // 2% mispredict
    }
    vm.take_trace()
}

/// Turbo-encoder twin: bit-serial shift-register stepping — pure
/// scalar dependency-light ALU plus occasional stores.
pub fn turbo_encode_twin(bits: usize) -> Trace {
    let (mut vm, buf) = vm_with_ws(bits.div_ceil(16).max(64));
    for i in 0..bits {
        vm.scalar_ops(3); // feedback, parity, state update
        if i % 16 == 15 {
            vm.copy16(buf.base + (i / 16) % 64, buf.base + (i / 16) % 64);
        }
    }
    vm.take_trace()
}

/// Soft-demapper workload: the *real* fixed-point 16-QAM SIMD demapper
/// from `vran-phy::modulation_simd`, traced — `_mm_adds`/`_mm_subs`/
/// `_mm_max` over symbol blocks, the "Demodulation" bar of Figures
/// 3/5.
pub fn demodulation_twin(symbols: usize) -> Trace {
    use vran_phy::modulation_simd::demap_qam16_simd;
    let n = (2 * symbols).max(16); // I+Q samples
    let mut mem = vran_simd::Mem::new();
    let iq: Vec<i16> = (0..n).map(|i| ((i * 97) % 4096) as i16 - 2048).collect();
    let r = mem.alloc_from(&iq);
    let inner = mem.alloc(n);
    let outer = mem.alloc(n);
    let mut vm = vran_simd::Vm::tracing(mem);
    demap_qam16_simd(&mut vm, r, inner, outer, RegWidth::Sse128);
    vm.take_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vran_uarch::{CoreConfig, CoreSim};

    fn beefy(trace: &Trace) -> vran_uarch::SimReport {
        // Steady-state, as the paper's long-running profiles measure.
        CoreSim::new(CoreConfig::beefy().warmed()).run(trace)
    }

    #[test]
    fn adds_and_subs_profiles_match_paper_band() {
        for t in [adds_kernel(SMALL_WS, 4000), subs_kernel(SMALL_WS, 4000)] {
            let r = beefy(&t);
            assert!(
                (2.2..3.2).contains(&r.ipc),
                "SIMD calculation IPC should be ≈2.5–2.8, got {}",
                r.ipc
            );
        }
    }

    #[test]
    fn max_kernel_is_dependency_limited() {
        let r = beefy(&max_kernel(SMALL_WS, 4000));
        assert!(
            (1.7..2.6).contains(&r.ipc),
            "max chain IPC ≈ 2.2, got {}",
            r.ipc
        );
        let adds = beefy(&adds_kernel(SMALL_WS, 4000));
        assert!(r.ipc < adds.ipc, "max must trail adds (paper §4.2)");
    }

    #[test]
    fn extract_kernel_is_movement_bound() {
        let r = beefy(&extract_kernel(SMALL_WS, 1000));
        assert!(
            (1.0..1.9).contains(&r.ipc),
            "extract IPC ≈ 1.5, got {}",
            r.ipc
        );
        assert!(
            r.topdown.backend() > 0.3,
            "movement kernel backend should dominate stalls (paper ≈55 %), got {:?}",
            r.topdown
        );
        // store ports hot, vector ALU ports nearly idle (only the
        // kernel's few scalar ops borrow P0-P3) — the paper's
        // idle-port observation
        assert!(
            r.port_util[6] > 0.7 && r.port_util[7] > 0.7,
            "{:?}",
            r.port_util
        );
        assert!(r.port_util[2] < 0.2, "{:?}", r.port_util);
    }

    #[test]
    fn ofdm_kernel_is_near_ideal_scalar() {
        let r = beefy(&ofdm_scalar_kernel(SMALL_WS, 2000));
        assert!(r.ipc > 3.3, "do_OFDM IPC ≈ 3.8, got {}", r.ipc);
        assert!(r.topdown.backend() < 0.2, "{:?}", r.topdown);
    }

    #[test]
    fn scalar_twins_have_high_retiring() {
        for t in [
            scrambling_twin(10_000),
            turbo_encode_twin(5_000),
            dci_twin(2_000),
        ] {
            let r = beefy(&t);
            assert!(
                r.topdown.retiring > 0.6,
                "scalar twin retiring low: {:?}",
                r.topdown
            );
        }
    }

    #[test]
    fn dci_twin_shows_bad_speculation() {
        let r = beefy(&dci_twin(5_000));
        assert!(
            r.topdown.bad_speculation > 0.01 && r.topdown.bad_speculation < 0.25,
            "{:?}",
            r.topdown
        );
    }

    #[test]
    fn demodulation_twin_is_simd_calculation() {
        let r = beefy(&demodulation_twin(8_000));
        let h = r.class_hist;
        assert!(h.vec_alu > h.scalar_alu, "{h:?}");
        assert!((2.0..4.0).contains(&r.ipc), "{}", r.ipc);
    }

    #[test]
    fn large_working_set_hurts_wimpy_more() {
        // Figure 7's wimpy-vs-beefy contrast, via the rate-match twin
        // (the gather-heavy module).
        let t = rate_match_twin(60_000, LARGE_WS);
        let w = CoreSim::new(CoreConfig::wimpy().warmed()).run(&t);
        let b = CoreSim::new(CoreConfig::beefy().warmed()).run(&t);
        assert!(
            w.topdown.backend_mem > b.topdown.backend_mem,
            "wimpy {:?} vs beefy {:?}",
            w.topdown,
            b.topdown
        );
    }
}
