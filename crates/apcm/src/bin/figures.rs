//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p apcm --bin figures -- all
//! cargo run --release -p apcm --bin figures -- fig15 fig16
//! cargo run --release -p apcm --bin figures -- --list
//! ```
//!
//! Results are printed and written to `results/<id>.json` +
//! `results/<id>.txt`.

use apcm::experiments;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--list] [all | <id>...]  (ids: fig3 fig4 fig5 fig6 table1 fig7 fig8 fig9 fig13 fig14 fig15 fig16)");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for (id, _) in experiments::all() {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<(&'static str, experiments::ExperimentFn)> =
        if args.iter().any(|a| a == "all") {
            experiments::all()
        } else {
            args.iter()
                .map(|a| {
                    let f = experiments::by_id(a).unwrap_or_else(|| {
                        eprintln!("unknown experiment id: {a} (try --list)");
                        std::process::exit(2);
                    });
                    let id = experiments::all()
                        .into_iter()
                        .find(|(k, _)| *k == a.as_str())
                        .map(|(k, _)| k)
                        .unwrap();
                    (id, f)
                })
                .collect()
        };

    let outdir = Path::new("results");
    std::fs::create_dir_all(outdir).expect("create results/");
    for (id, runner) in selected {
        let t0 = std::time::Instant::now();
        let fig = runner();
        let rendered = fig.render();
        print!("{rendered}");
        println!("  [{} generated in {:.2?}]\n", id, t0.elapsed());
        std::fs::write(outdir.join(format!("{id}.txt")), &rendered).expect("write txt");
        std::fs::write(outdir.join(format!("{id}.csv")), fig.to_csv()).expect("write csv");
        std::fs::write(outdir.join(format!("{id}.json")), fig.to_json()).expect("write json");
    }
}
