//! Reproduction report: run every experiment, compare against the
//! paper's claims, and print a PASS/OFF verdict per claim.
//!
//! ```text
//! cargo run --release -p apcm --bin check
//! ```
//!
//! Exit status is non-zero if any claim lands outside its band, so this
//! doubles as a CI gate for the reproduction.

use apcm::experiments;

struct Claim {
    what: &'static str,
    paper: &'static str,
    measured: f64,
    lo: f64,
    hi: f64,
    unit: &'static str,
}

fn main() {
    let mut claims = Vec::new();
    let fig8 = experiments::fig08::run();
    let fig13 = experiments::fig13::run();
    let fig14 = experiments::fig14::run();
    let fig15 = experiments::fig15::run();
    let fig16 = experiments::fig16::run();

    let v = |f: &apcm::Figure, r: &str, c: &str| f.value(r, c).expect("figure cell");

    claims.push(Claim {
        what: "arrangement backend bound, original (128b)",
        paper: "44.4 %",
        measured: v(&fig15, "SSE128/original", "backend") * 100.0,
        lo: 35.0,
        hi: 60.0,
        unit: "%",
    });
    claims.push(Claim {
        what: "arrangement backend bound, APCM (128b)",
        paper: "3 %",
        measured: v(&fig15, "SSE128/apcm", "backend") * 100.0,
        lo: 0.0,
        hi: 10.0,
        unit: "%",
    });
    claims.push(Claim {
        what: "arrangement IPC, original (128b)",
        paper: "1.2",
        measured: v(&fig15, "SSE128/original", "IPC"),
        lo: 0.9,
        hi: 1.5,
        unit: "",
    });
    claims.push(Claim {
        what: "arrangement IPC, APCM (128b)",
        paper: "3.6",
        measured: v(&fig15, "SSE128/apcm", "IPC"),
        lo: 3.3,
        hi: 4.0,
        unit: "",
    });
    claims.push(Claim {
        what: "store-path bandwidth, original (128b)",
        paper: "≈16 bits/cycle (12.5 %)",
        measured: v(&fig8, "SSE128/original", "store bits/cycle"),
        lo: 12.0,
        hi: 20.0,
        unit: "bits/cy",
    });
    claims.push(Claim {
        what: "bandwidth speedup at 128b",
        paper: "≈4×",
        measured: v(&fig8, "SSE128/apcm", "speedup vs original"),
        lo: 3.5,
        hi: 6.0,
        unit: "×",
    });
    claims.push(Claim {
        what: "bandwidth speedup at 512b",
        paper: "≈16×",
        measured: v(&fig8, "AVX512/apcm", "speedup vs original"),
        lo: 14.0,
        hi: 24.0,
        unit: "×",
    });
    claims.push(Claim {
        what: "arrangement CPU-time reduction (128b)",
        paper: "67 %",
        measured: v(&fig14, "SSE128", "reduction %"),
        lo: 55.0,
        hi: 88.0,
        unit: "%",
    });
    claims.push(Claim {
        what: "arrangement CPU-time reduction (512b)",
        paper: "92 %",
        measured: v(&fig14, "AVX512", "reduction %"),
        lo: 85.0,
        hi: 99.0,
        unit: "%",
    });
    let udp1500 = fig13
        .rows
        .iter()
        .find(|r| r.label == "UDP-1500B")
        .expect("row");
    claims.push(Claim {
        what: "packet-time reduction, 1500 B UDP (128b)",
        paper: "12 %",
        measured: (1.0 - udp1500.values[1] / udp1500.values[0]) * 100.0,
        lo: 7.0,
        hi: 18.0,
        unit: "%",
    });
    claims.push(Claim {
        what: "packet-time reduction, 1500 B UDP (512b)",
        paper: "20 %",
        measured: (1.0 - udp1500.values[5] / udp1500.values[4]) * 100.0,
        lo: 15.0,
        hi: 28.0,
        unit: "%",
    });
    claims.push(Claim {
        what: "Mbps/core, original (128b)",
        paper: "16.4",
        measured: v(&fig16, "SSE128", "Mbps/core orig"),
        lo: 12.0,
        hi: 21.0,
        unit: "Mbps",
    });
    claims.push(Claim {
        what: "Mbps/core, APCM (512b)",
        paper: "32.9",
        measured: v(&fig16, "AVX512", "Mbps/core apcm"),
        lo: 26.0,
        hi: 40.0,
        unit: "Mbps",
    });
    claims.push(Claim {
        what: "cores for 300 Mbps, APCM (512b)",
        paper: "9",
        measured: v(&fig16, "AVX512", "cores apcm"),
        lo: 8.0,
        hi: 11.0,
        unit: "cores",
    });

    println!("== APCM reproduction report ==\n");
    println!(
        "{:<48} {:>24} {:>14}  verdict",
        "claim", "paper", "measured"
    );
    let mut failures = 0;
    for c in &claims {
        let ok = (c.lo..=c.hi).contains(&c.measured);
        if !ok {
            failures += 1;
        }
        println!(
            "{:<48} {:>24} {:>11.2} {:<3} {}",
            c.what,
            c.paper,
            c.measured,
            c.unit,
            if ok { "PASS" } else { "OFF-BAND" }
        );
    }
    println!(
        "\n{} of {} claims within band",
        claims.len() - failures,
        claims.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
