//! Standalone kernel profiler: pick a workload, width, mechanism and
//! server, get the simulated VTune-style report.
//!
//! ```text
//! cargo run --release -p apcm --bin profile -- arrangement --mech apcm --width avx512
//! cargo run --release -p apcm --bin profile -- decoder --k 1024
//! cargo run --release -p apcm --bin profile -- stride --stride 4 --mech original
//! cargo run --release -p apcm --bin profile -- adds --server wimpy
//! ```

use apcm::workloads;
use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism, StrideKernel};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::{RegWidth, Trace};
use vran_uarch::{bounds, CoreConfig, CoreSim};

struct Args {
    workload: String,
    width: RegWidth,
    mech: Mechanism,
    server: CoreConfig,
    k: usize,
    stride: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: profile <arrangement|decoder|stride|adds|subs|max|extract|ofdm> \
         [--width sse128|avx256|avx512] [--mech original|apcm|maskrotate] \
         [--server beefy|wimpy] [--k N] [--stride S]"
    );
    std::process::exit(2);
}

fn parse() -> Args {
    let mut args = Args {
        workload: String::new(),
        width: RegWidth::Sse128,
        mech: Mechanism::Apcm(ApcmVariant::Shuffle),
        server: CoreConfig::beefy().warmed(),
        k: 6144,
        stride: 3,
    };
    let mut it = std::env::args().skip(1);
    args.workload = it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        let val = it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--width" => {
                args.width = match val.to_lowercase().as_str() {
                    "sse128" | "xmm" | "128" => RegWidth::Sse128,
                    "avx256" | "ymm" | "256" => RegWidth::Avx256,
                    "avx512" | "zmm" | "512" => RegWidth::Avx512,
                    _ => usage(),
                }
            }
            "--mech" => {
                args.mech = match val.to_lowercase().as_str() {
                    "original" | "baseline" => Mechanism::Baseline,
                    "apcm" | "shuffle" => Mechanism::Apcm(ApcmVariant::Shuffle),
                    "maskrotate" => Mechanism::Apcm(ApcmVariant::MaskRotate),
                    _ => usage(),
                }
            }
            "--server" => {
                args.server = match val.to_lowercase().as_str() {
                    "beefy" => CoreConfig::beefy().warmed(),
                    "wimpy" => CoreConfig::wimpy().warmed(),
                    _ => usage(),
                }
            }
            "--k" => args.k = val.parse().unwrap_or_else(|_| usage()),
            "--stride" => args.stride = val.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

fn build_trace(args: &Args) -> Trace {
    match args.workload.as_str() {
        "arrangement" => {
            let input = synthetic_interleaved(args.k, 1);
            let (_, t) = ArrangeKernel::new(args.width, args.mech).arrange(&input, true);
            t.expect("tracing")
        }
        "decoder" => {
            use vran_phy::bits::random_bits;
            use vran_phy::llr::{bit_to_llr, TurboLlrs};
            use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
            use vran_phy::turbo::TurboEncoder;
            let k = vran_phy::interleaver::QppInterleaver::next_legal_k(args.k.min(6144))
                .expect("legal K");
            let bits = random_bits(k, 3);
            let cw = TurboEncoder::new(k).encode(&bits);
            let d = cw.to_dstreams();
            let soft: [Vec<i16>; 3] = d
                .iter()
                .map(|s| s.iter().map(|&b| bit_to_llr(b, 60)).collect())
                .collect::<Vec<_>>()
                .try_into()
                .unwrap();
            let input = TurboLlrs::from_dstreams(&soft, k);
            let (_, t) = SimdTurboDecoder::new(k, 1, args.width).decode_traced(&input, 1);
            t
        }
        "stride" => {
            let data: Vec<i16> = (0..args.stride * args.k).map(|i| i as i16).collect();
            let apcm = !matches!(args.mech, Mechanism::Baseline);
            let (_, t) = StrideKernel::new(args.width, args.stride, apcm).deinterleave(&data, true);
            t.expect("tracing")
        }
        "adds" => workloads::adds_kernel(workloads::LARGE_WS, 20_000),
        "subs" => workloads::subs_kernel(workloads::LARGE_WS, 20_000),
        "max" => workloads::max_kernel(workloads::LARGE_WS, 20_000),
        "extract" => workloads::extract_kernel(workloads::LARGE_WS, 4_000),
        "ofdm" => workloads::ofdm_scalar_kernel(workloads::SMALL_WS, 8_000),
        _ => usage(),
    }
}

fn main() {
    let args = parse();
    let trace = build_trace(&args);
    let sim = CoreSim::new(args.server);
    let r = sim.run(&trace);
    let b = bounds(&trace, &args.server);
    let t = &r.topdown;

    println!("workload        {}", args.workload);
    println!("µops            {}", r.uops);
    println!("instructions    {}", r.instructions);
    println!(
        "cycles          {}  ({:.2} µs @ {:.1} GHz)",
        r.cycles, r.time_us, args.server.freq_ghz
    );
    println!("IPC             {:.3}   (µPC {:.3})", r.ipc, r.upc);
    println!();
    println!(
        "top-down        retiring {:5.1}%  frontend {:4.1}%  badspec {:4.1}%  backend {:5.1}%",
        t.retiring * 100.0,
        t.frontend * 100.0,
        t.bad_speculation * 100.0,
        t.backend() * 100.0
    );
    println!(
        "  backend       core {:5.1}%  memory {:5.1}%  (L2 {:4.1}% | L3 {:4.1}% | DRAM {:4.1}%)",
        t.backend_core * 100.0,
        t.backend_mem * 100.0,
        t.mem_levels[0] * 100.0,
        t.mem_levels[1] * 100.0,
        t.mem_levels[2] * 100.0
    );
    println!();
    print!("port util      ");
    for (p, u) in r.port_util.iter().enumerate() {
        print!(" P{p} {:4.0}%", u * 100.0);
    }
    println!();
    println!(
        "store path      {:.1} bits/cycle ({} bytes total)",
        r.store_bw_bits_per_cycle, r.store_bytes
    );
    println!(
        "load path       {:.1} bits/cycle ({} bytes total)",
        r.load_bw_bits_per_cycle, r.load_bytes
    );
    println!();
    println!(
        "analytic bounds dependency {}  ports {}  frontend {}  → binding: {} \
         (achieved {} = {:.2}× floor)",
        b.dependency,
        b.resource,
        b.frontend,
        b.binding(),
        r.cycles,
        r.cycles as f64 / b.overall().max(1) as f64
    );
    let c = r.cache;
    println!(
        "cache           {} accesses: L1 {:.1}%  L2 {}  L3 {}  DRAM {}",
        c.accesses,
        c.l1_hit_rate() * 100.0,
        c.l2_hits,
        c.l3_hits,
        c.dram
    );
}
