//! Fused APCM ingest: mask/merge congregation straight into the
//! decoder's staging buffers.
//!
//! [`crate::native`]'s APCM kernels segregate the interleaved
//! `[S1 YP1 YP2]` triples with full 16-bit permutes — `vpermi2w` at
//! 512 bits costs two port-5 µops per cluster (six per 3-register
//! group). This module is the paper's §5.1 mask/merge/shifted-reload
//! formulation instead: each cluster is congregated with `vpand`
//! residue masks and `vpor` merges, which issue on the plentiful
//! vector-ALU ports (p0/p1/p5), leaving exactly **one** permute per
//! output register to undo the fixed lane rotation the merge produces.
//! Per 96-element zmm group that is 9 `vpand` + 6 `vpor` + 3 `vpermw`
//! — half the port-5 shuffle traffic of the permute-only kernel, with
//! the congregation work spread across the ALU ports the decoder's
//! max-log-MAP loop leaves idle (Figs 13–16 shape).
//!
//! Why the merge works: a W-lane register holds positions
//! `Wj .. Wj+W` of the triple stream, so cluster `c`'s elements sit in
//! lanes `l ≡ c − Wj (mod 3)`. With `W ∈ {8, 32}` (both `≡ 2 mod 3`)
//! the residue class rotates by one per register, the three masked
//! registers are lane-disjoint, and their OR packs all `W` cluster
//! elements into one register — element `i` in lane `(3i + c) mod W`,
//! a fixed permutation because `gcd(3, W) = 1`. One `vpermw`
//! (`pshufb` at 128 bits) restores natural order.
//!
//! The "shifted reload" is the three group loads at element offsets
//! `+0 / +W / +2W`: every cluster re-reads the same three registers,
//! so the loads amortize over all three merges.
//!
//! Unlike [`crate::native::deinterleave_into`], the entry point here
//! writes three **caller-owned slices** — the uplink pipeline points
//! them at pooled per-block stream buffers so demapper output lands
//! directly in the layout the quad-in-zmm batch decoder reads, with no
//! intermediate copy.
//!
//! AVX2 is deliberately absent, as in [`crate::native`]: 256-bit x86
//! has no cross-lane 16-bit permute, so the restore step would decay
//! into the §5.2 extract ladder. 128 and 512 bits are the clean
//! points; AVX2-only hosts take the SSSE3 tier.

use vran_phy::llr::Llr;
use vran_simd::host::{self, HostIsa};

/// Available fused-ingest implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedImpl {
    /// Portable scalar loop (always available; the oracle).
    Scalar,
    /// Mask/merge at 128 bits: 9 `pand` + 6 `por` + 3 `pshufb` per
    /// 24-element group.
    MaskMergeSsse3,
    /// Mask/merge at 512 bits: 9 `vpand` + 6 `vpor` + 3 `vpermw` per
    /// 96-element group.
    MaskMergeAvx512,
}

impl FusedImpl {
    /// Bench label.
    pub fn name(self) -> &'static str {
        match self {
            FusedImpl::Scalar => "fused-scalar",
            FusedImpl::MaskMergeSsse3 => "fused-maskmerge-ssse3",
            FusedImpl::MaskMergeAvx512 => "fused-maskmerge-avx512",
        }
    }

    /// The [`HostIsa`] level this implementation requires.
    pub fn required_isa(self) -> HostIsa {
        match self {
            FusedImpl::Scalar => HostIsa::Scalar,
            FusedImpl::MaskMergeSsse3 => HostIsa::Ssse3,
            FusedImpl::MaskMergeAvx512 => HostIsa::Avx512bw,
        }
    }
}

/// The fused implementations usable on this host, scalar first.
pub fn available_fused() -> Vec<FusedImpl> {
    [
        FusedImpl::Scalar,
        FusedImpl::MaskMergeSsse3,
        FusedImpl::MaskMergeAvx512,
    ]
    .into_iter()
    .filter(|imp| host::has(imp.required_isa()))
    .collect()
}

/// The fastest fused-ingest implementation the host supports.
pub fn best_fused() -> FusedImpl {
    if host::has(HostIsa::Avx512bw) {
        FusedImpl::MaskMergeAvx512
    } else if host::has(HostIsa::Ssse3) {
        FusedImpl::MaskMergeSsse3
    } else {
        FusedImpl::Scalar
    }
}

/// De-interleave the first `3k` LLRs of `input` into three caller-owned
/// `k`-element slices with the chosen implementation. `input` may be
/// longer than `3k` (the de-rate-matcher's triple-interleaved buffer
/// carries the four tail triples after position `3k`); the excess is
/// ignored. Panics if the host lacks the required feature (check
/// [`available_fused`] first).
pub fn fused_ingest_into(
    imp: FusedImpl,
    input: &[Llr],
    k: usize,
    sys: &mut [Llr],
    p1: &mut [Llr],
    p2: &mut [Llr],
) {
    assert!(input.len() >= 3 * k, "need 3k interleaved LLRs");
    assert!(sys.len() == k && p1.len() == k && p2.len() == k);
    match imp {
        FusedImpl::Scalar => scalar(input, 0, k, sys, p1, p2),
        #[cfg(target_arch = "x86_64")]
        FusedImpl::MaskMergeSsse3 => unsafe { x86::mask_merge_ssse3(input, k, sys, p1, p2) },
        #[cfg(target_arch = "x86_64")]
        FusedImpl::MaskMergeAvx512 => unsafe { x86::mask_merge_avx512(input, k, sys, p1, p2) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar(input, 0, k, sys, p1, p2),
    }
}

/// Scalar reference / tail shared by the vector kernels.
fn scalar(input: &[Llr], from: usize, k: usize, sys: &mut [Llr], p1: &mut [Llr], p2: &mut [Llr]) {
    for t in from..k {
        sys[t] = input[3 * t];
        p1[t] = input[3 * t + 1];
        p2[t] = input[3 * t + 2];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Residue-class lane mask for source register `j` of a group,
    /// cluster `c`, at `W` lanes: lane `l` is kept iff
    /// `(W·j + l) ≡ c (mod 3)`.
    fn lane_mask<const W: usize>(j: usize, c: usize) -> [i16; W] {
        core::array::from_fn(|l| if (W * j + l) % 3 == c % 3 { -1 } else { 0 })
    }

    /// Restore permutation for cluster `c` at `W` lanes: after the OR
    /// merge, element `i` sits in lane `(3i + c) mod W`; the permute
    /// index for destination lane `i` is exactly that source lane.
    fn restore_idx<const W: usize>(c: usize) -> [i16; W] {
        core::array::from_fn(|i| ((3 * i + c) % W) as i16)
    }

    #[target_feature(enable = "ssse3")]
    pub unsafe fn mask_merge_ssse3(
        input: &[Llr],
        k: usize,
        sys: &mut [Llr],
        p1: &mut [Llr],
        p2: &mut [Llr],
    ) {
        const W: usize = 8;
        let groups = k / W;
        // per (cluster, source register) residue masks…
        let mut masks = [[_mm_setzero_si128(); 3]; 3];
        // …and the per-cluster pshufb restore control (word permute as
        // byte pairs).
        let mut restore = [_mm_setzero_si128(); 3];
        for c in 0..3 {
            for (j, m) in masks[c].iter_mut().enumerate() {
                *m = _mm_loadu_si128(lane_mask::<W>(j, c).as_ptr() as *const __m128i);
            }
            let idx = restore_idx::<W>(c);
            let mut ctl = [0i8; 16];
            for (i, &s) in idx.iter().enumerate() {
                ctl[2 * i] = (2 * s) as i8;
                ctl[2 * i + 1] = (2 * s + 1) as i8;
            }
            restore[c] = _mm_loadu_si128(ctl.as_ptr() as *const __m128i);
        }
        let streams: [*mut i16; 3] = [sys.as_mut_ptr(), p1.as_mut_ptr(), p2.as_mut_ptr()];
        for g in 0..groups {
            let gbase = g * 3 * W;
            // The shifted reloads: same group, three W-element offsets.
            let r0 = _mm_loadu_si128(input.as_ptr().add(gbase) as *const __m128i);
            let r1 = _mm_loadu_si128(input.as_ptr().add(gbase + W) as *const __m128i);
            let r2 = _mm_loadu_si128(input.as_ptr().add(gbase + 2 * W) as *const __m128i);
            for (c, stream) in streams.iter().enumerate() {
                let a = _mm_and_si128(r0, masks[c][0]);
                let b = _mm_and_si128(r1, masks[c][1]);
                let d = _mm_and_si128(r2, masks[c][2]);
                let merged = _mm_or_si128(_mm_or_si128(a, b), d);
                let o = _mm_shuffle_epi8(merged, restore[c]);
                _mm_storeu_si128(stream.add(g * W) as *mut __m128i, o);
            }
        }
        scalar(input, groups * W, k, sys, p1, p2);
    }

    #[target_feature(enable = "avx512bw", enable = "avx512f")]
    pub unsafe fn mask_merge_avx512(
        input: &[Llr],
        k: usize,
        sys: &mut [Llr],
        p1: &mut [Llr],
        p2: &mut [Llr],
    ) {
        const W: usize = 32;
        let groups = k / W;
        let mut masks = [[_mm512_setzero_si512(); 3]; 3];
        let mut restore = [_mm512_setzero_si512(); 3];
        for c in 0..3 {
            for (j, m) in masks[c].iter_mut().enumerate() {
                *m = _mm512_loadu_si512(lane_mask::<W>(j, c).as_ptr() as *const _);
            }
            restore[c] = _mm512_loadu_si512(restore_idx::<W>(c).as_ptr() as *const _);
        }
        let streams: [*mut i16; 3] = [sys.as_mut_ptr(), p1.as_mut_ptr(), p2.as_mut_ptr()];
        for g in 0..groups {
            let gbase = g * 3 * W;
            let r0 = _mm512_loadu_si512(input.as_ptr().add(gbase) as *const _);
            let r1 = _mm512_loadu_si512(input.as_ptr().add(gbase + W) as *const _);
            let r2 = _mm512_loadu_si512(input.as_ptr().add(gbase + 2 * W) as *const _);
            for (c, stream) in streams.iter().enumerate() {
                let a = _mm512_and_si512(r0, masks[c][0]);
                let b = _mm512_and_si512(r1, masks[c][1]);
                let d = _mm512_and_si512(r2, masks[c][2]);
                let merged = _mm512_or_si512(_mm512_or_si512(a, b), d);
                let o = _mm512_permutexvar_epi16(restore[c], merged);
                _mm512_storeu_si512(stream.add(g * W) as *mut _, o);
            }
        }
        scalar(input, groups * W, k, sys, p1, p2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Llr> {
        (0..n)
            .map(|i| ((i as i64 * 31337 + 11) % 5000 - 2500) as i16)
            .collect()
    }

    fn run(imp: FusedImpl, input: &[Llr], k: usize) -> [Vec<Llr>; 3] {
        let mut sys = vec![0; k];
        let mut p1 = vec![0; k];
        let mut p2 = vec![0; k];
        fused_ingest_into(imp, input, k, &mut sys, &mut p1, &mut p2);
        [sys, p1, p2]
    }

    #[test]
    fn scalar_reference_is_a_deinterleave() {
        let k = 50;
        let input = sample(3 * k);
        let [sys, p1, p2] = run(FusedImpl::Scalar, &input, k);
        for t in 0..k {
            assert_eq!(sys[t], input[3 * t]);
            assert_eq!(p1[t], input[3 * t + 1]);
            assert_eq!(p2[t], input[3 * t + 2]);
        }
    }

    #[test]
    fn every_available_impl_matches_scalar() {
        // Group-multiple, off-group and tiny K at both vector widths.
        for k in [8usize, 32, 40, 96, 104, 999, 6144] {
            let input = sample(3 * k);
            let expect = run(FusedImpl::Scalar, &input, k);
            for imp in available_fused() {
                assert_eq!(run(imp, &input, k), expect, "{} K={k}", imp.name());
            }
        }
    }

    #[test]
    fn excess_input_beyond_3k_is_ignored() {
        // The de-rate-matcher's interleaved buffer is 3(K+4) long; the
        // kernels must only read the first 3K.
        let k = 96;
        let mut input = sample(3 * (k + 4));
        let expect = run(FusedImpl::Scalar, &input, k);
        for imp in available_fused() {
            assert_eq!(run(imp, &input, k), expect, "{}", imp.name());
        }
        // Mutating the tail region changes nothing.
        for v in input[3 * k..].iter_mut() {
            *v = i16::MAX;
        }
        for imp in available_fused() {
            assert_eq!(run(imp, &input, k), expect, "{} tail bleed", imp.name());
        }
    }

    #[test]
    fn matches_native_deinterleave() {
        use crate::native;
        let k = 6144;
        let input = sample(3 * k);
        let native_out = native::deinterleave(native::NativeImpl::Scalar, &input, k);
        for imp in available_fused() {
            let [sys, p1, p2] = run(imp, &input, k);
            assert_eq!(sys, native_out.sys, "{}", imp.name());
            assert_eq!(p1, native_out.p1, "{}", imp.name());
            assert_eq!(p2, native_out.p2, "{}", imp.name());
        }
    }

    #[test]
    fn best_fused_is_available() {
        assert!(available_fused().contains(&best_fused()));
    }

    #[test]
    fn available_always_contains_scalar_first() {
        assert_eq!(available_fused()[0], FusedImpl::Scalar);
    }

    #[test]
    fn names_and_isa_levels_are_consistent() {
        let names: std::collections::HashSet<_> =
            available_fused().iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), available_fused().len());
        for imp in available_fused() {
            assert!(host::has(imp.required_isa()), "{}", imp.name());
        }
    }
}
