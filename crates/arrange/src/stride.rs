//! Generalized stride-S de-interleaving — the paper's closing claim
//! ("it turns out to be a major performance issue for a vRAN system and
//! can generalize to other SIMD applications", §4.2).
//!
//! The vRAN case is stride 3 (S1/YP1/YP2 triples). The same two
//! mechanisms apply to any stride: complex I/Q streams (stride 2),
//! RGBA pixels (stride 4), audio channel de-interleaving (stride N).
//! [`StrideKernel`] implements both mechanisms for `2 ≤ S ≤ 8`:
//!
//! * baseline — `pextrw` every element to its stream (movement ports
//!   only, invariant cost per element);
//! * APCM — one lane-shuffle per (source register, stream) plus an OR
//!   reduction on the vector ALU ports, then whole-register stores:
//!   `S · S` shuffles + `S·(S−1)` ORs per `S`-register group producing
//!   `S` output registers.
//!
//! The MaskRotate variant does **not** generalize to even strides (when
//! `gcd(lanes, S) ≠ 1` the mask-congregation leaves colliding lanes —
//! see `mask_rotate_requires_coprime_stride`), which is why the
//! shuffle formulation is the one worth generalizing.

use vran_simd::{Mem, MemRef, RegWidth, Trace, Vm};

/// Natural-order shuffle table for generalized stride: output stream
/// `c`'s lane `i` takes global group position `S·i + c`; the table for
/// source register `j` selects it when that position lives in `j`.
fn stride_shuffle(width: RegWidth, s: usize, j: usize, c: usize) -> Vec<Option<u8>> {
    let l = width.lanes();
    (0..l)
        .map(|i| {
            let p = s * i + c;
            (p / l == j).then_some((p % l) as u8)
        })
        .collect()
}

/// A configured stride-S de-interleave kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideKernel {
    /// Register width.
    pub width: RegWidth,
    /// Stride (number of interleaved streams), 2..=8.
    pub stride: usize,
    /// Use APCM (vector-ALU batching) instead of the extract baseline.
    pub apcm: bool,
}

impl StrideKernel {
    /// New kernel; `stride` must be in `2..=8`.
    pub fn new(width: RegWidth, stride: usize, apcm: bool) -> Self {
        assert!(
            (2..=8).contains(&stride),
            "stride {stride} out of the supported range"
        );
        Self {
            width,
            stride,
            apcm,
        }
    }

    /// De-interleave `n` elements per stream from `input`
    /// (`stride · n` interleaved elements) into `outs` (one region per
    /// stream, each `n` long).
    pub fn run(&self, vm: &mut Vm, input: MemRef, outs: &[MemRef], n: usize) {
        let s = self.stride;
        assert_eq!(outs.len(), s, "need one output region per stream");
        assert_eq!(input.len, s * n, "input must hold stride·n elements");
        assert!(outs.iter().all(|o| o.len == n));
        let l = self.width.lanes();
        let groups = n / l;

        if self.apcm {
            let tables: Vec<Vec<Vec<Option<u8>>>> = (0..s)
                .map(|c| {
                    (0..s)
                        .map(|j| stride_shuffle(self.width, s, j, c))
                        .collect()
                })
                .collect();
            for g in 0..groups {
                let gbase = g * s * l;
                let regs: Vec<_> = (0..s)
                    .map(|j| vm.load(self.width, input.slice(gbase + j * l, l)))
                    .collect();
                for (c, out) in outs.iter().enumerate() {
                    let mut acc = None;
                    for (j, &r) in regs.iter().enumerate() {
                        let sh = vm.shuffle(r, &tables[c][j]);
                        acc = Some(match acc {
                            None => sh,
                            Some(a) => vm.or(a, sh),
                        });
                    }
                    vm.store(acc.expect("stride ≥ 2"), out.slice(g * l, l));
                }
            }
        } else {
            for g in 0..groups {
                let gbase = g * s * l;
                for j in 0..s {
                    let r = vm.load(self.width, input.slice(gbase + j * l, l));
                    // width penalties as in the vRAN baseline are
                    // deliberately omitted here: this generic kernel
                    // models the 128-bit case promoted lane-wise
                    for lane in 0..l {
                        let p = gbase + j * l + lane;
                        vm.extract_store(r, lane, outs[p % s].base + p / s);
                    }
                }
            }
        }
        // scalar tail
        for t in (groups * l)..n {
            for (c, out) in outs.iter().enumerate() {
                vm.copy16(input.base + s * t + c, out.base + t);
            }
        }
    }

    /// Convenience: run over `data` (`stride · n` elements) and return
    /// the streams plus an optional trace.
    pub fn deinterleave(&self, data: &[i16], tracing: bool) -> (Vec<Vec<i16>>, Option<Trace>) {
        let s = self.stride;
        assert_eq!(data.len() % s, 0);
        let n = data.len() / s;
        let mut mem = Mem::new();
        let input = mem.alloc_from(data);
        let outs: Vec<MemRef> = (0..s).map(|_| mem.alloc(n)).collect();
        let mut vm = if tracing {
            Vm::tracing(mem)
        } else {
            Vm::native(mem)
        };
        self.run(&mut vm, input, &outs, n);
        let streams = outs.iter().map(|o| vm.mem().read(*o).to_vec()).collect();
        let trace = tracing.then(|| vm.take_trace());
        (streams, trace)
    }
}

/// Scalar oracle.
pub fn deinterleave_scalar(data: &[i16], stride: usize) -> Vec<Vec<i16>> {
    let n = data.len() / stride;
    (0..stride)
        .map(|c| (0..n).map(|t| data[stride * t + c]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use vran_uarch::{CoreConfig, CoreSim};

    fn sample(len: usize) -> Vec<i16> {
        (0..len)
            .map(|i| ((i as i64 * 31 + 17) % 3000 - 1500) as i16)
            .collect()
    }

    #[test]
    fn all_strides_match_oracle() {
        for s in 2..=8usize {
            for w in RegWidth::ALL {
                for apcm in [false, true] {
                    let n = 3 * w.lanes() * s + 5; // ragged tail too
                    let data = sample(s * n);
                    let (got, _) = StrideKernel::new(w, s, apcm).deinterleave(&data, false);
                    assert_eq!(
                        got,
                        deinterleave_scalar(&data, s),
                        "stride {s} width {w} apcm {apcm}"
                    );
                }
            }
        }
    }

    #[test]
    fn apcm_advantage_holds_at_every_stride() {
        // The paper's generalization claim, quantified: simulate both
        // mechanisms per stride and require a healthy cycle advantage.
        // The advantage diminishes as the stride approaches the lane
        // count (S² shuffles for S·L elements → one shuffle per element
        // at S = L), but never inverts: at stride 8 with 8 lanes APCM
        // still wins ~1.6×.
        let sim = CoreSim::new(CoreConfig::beefy().warmed());
        let mut speedups = Vec::new();
        for s in [2usize, 3, 4, 8] {
            let n = 2048;
            let data = sample(s * n);
            let run = |apcm: bool| {
                let (_, t) = StrideKernel::new(RegWidth::Sse128, s, apcm).deinterleave(&data, true);
                sim.run(&t.unwrap()).cycles
            };
            let speedup = run(false) as f64 / run(true) as f64;
            let floor = if s <= 4 { 2.0 } else { 1.3 };
            assert!(
                speedup > floor,
                "stride {s}: APCM must hold its advantage, got {speedup:.2}×"
            );
            speedups.push(speedup);
        }
        assert!(
            speedups.windows(2).all(|w| w[1] <= w[0] * 1.15),
            "advantage should taper with stride: {speedups:?}"
        );
    }

    #[test]
    fn apcm_cost_grows_with_stride_but_stays_alu_bound() {
        // S² shuffles per S outputs → cost per element grows ~linearly
        // in S; it must remain vector-ALU work throughout.
        let n = 1024;
        for s in [2usize, 4, 8] {
            let data = sample(s * n);
            let (_, t) = StrideKernel::new(RegWidth::Sse128, s, true).deinterleave(&data, true);
            let h = t.unwrap().class_histogram();
            assert!(h.vec_alu > h.store, "stride {s}: {h:?}");
        }
    }

    #[test]
    fn mask_rotate_requires_coprime_stride() {
        // Structural demonstration of why only the shuffle variant
        // generalizes: with gcd(lanes, stride) ≠ 1 the congregated
        // order is not a permutation of the group.
        for s in [2usize, 4] {
            let l = RegWidth::Sse128.lanes();
            // count residues covered at lane 0: positions {0, l, 2l, …}
            let covered: std::collections::HashSet<usize> = (0..s).map(|j| (j * l) % s).collect();
            assert!(
                covered.len() < s,
                "stride {s} with 8 lanes must collide (gcd ≠ 1), covered {covered:?}"
            );
        }
        // and the vRAN stride 3 is fine:
        assert_eq!(tables::congregated_order(RegWidth::Sse128, 0).len(), 8);
    }

    #[test]
    fn stride3_agrees_with_the_vran_kernel() {
        use vran_phy::llr::InterleavedLlrs;
        let k = 96;
        let data = sample(3 * k);
        let (got, _) = StrideKernel::new(RegWidth::Sse128, 3, true).deinterleave(&data, false);
        let il = InterleavedLlrs { k, data };
        let expect = il.deinterleave_scalar();
        assert_eq!(got[0], expect.sys);
        assert_eq!(got[1], expect.p1);
        assert_eq!(got[2], expect.p2);
    }

    #[test]
    #[should_panic(expected = "out of the supported range")]
    fn stride_bounds_enforced() {
        let _ = StrideKernel::new(RegWidth::Sse128, 9, true);
    }
}
