//! Real `std::arch` implementations of the arrangement kernels for
//! wall-clock benchmarking on the host CPU.
//!
//! The VM kernels in [`crate::kernel`] are the instruments for the
//! paper's micro-architectural figures; these native ports exist so the
//! benchmark harness can also demonstrate the effect on real hardware
//! (`vran-bench/benches/native_arrange.rs`). Selection is by runtime
//! feature detection with a scalar fallback, so the workspace builds
//! and tests on any target.
//!
//! A note on AVX2: x86 gained a full 16-bit cross-lane permute
//! (`vpermw`) only with AVX-512BW. Without it, a 256-bit APCM needs
//! in-lane `pshufb` plus cross-lane fix-ups — OAI's code instead steps
//! down to xmm extracts, which is exactly the §5.2 penalty the paper
//! measures. We therefore provide native APCM at 128 bits (SSSE3
//! `pshufb`) and 512 bits (AVX-512BW `vpermi2w`), the two clean points.

use vran_phy::llr::SoftStreams;
use vran_simd::host::{self, HostIsa};

/// Available native kernel implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeImpl {
    /// Portable scalar loop (always available; the oracle).
    Scalar,
    /// Original mechanism, SSE2 `pextrw` per element.
    BaselineSse2,
    /// APCM, SSSE3 `pshufb` + `por` (128-bit).
    ApcmSsse3,
    /// Original mechanism at 512 bits: `vextracti32x8` / `vextracti128`
    /// / `pextrw` ladder.
    BaselineAvx512,
    /// APCM at 512 bits: two `vpermi2w` per cluster.
    ApcmAvx512,
}

impl NativeImpl {
    /// Bench label.
    pub fn name(self) -> &'static str {
        match self {
            NativeImpl::Scalar => "scalar",
            NativeImpl::BaselineSse2 => "original-sse2",
            NativeImpl::ApcmSsse3 => "apcm-ssse3",
            NativeImpl::BaselineAvx512 => "original-avx512",
            NativeImpl::ApcmAvx512 => "apcm-avx512",
        }
    }

    /// The [`HostIsa`] level this implementation requires.
    pub fn required_isa(self) -> HostIsa {
        match self {
            NativeImpl::Scalar => HostIsa::Scalar,
            NativeImpl::BaselineSse2 => HostIsa::Sse2,
            NativeImpl::ApcmSsse3 => HostIsa::Ssse3,
            NativeImpl::BaselineAvx512 | NativeImpl::ApcmAvx512 => HostIsa::Avx512bw,
        }
    }
}

/// The implementations usable on this host, scalar first.
pub fn available() -> Vec<NativeImpl> {
    [
        NativeImpl::Scalar,
        NativeImpl::BaselineSse2,
        NativeImpl::ApcmSsse3,
        NativeImpl::BaselineAvx512,
        NativeImpl::ApcmAvx512,
    ]
    .into_iter()
    .filter(|imp| host::has(imp.required_isa()))
    .collect()
}

/// The fastest arrangement (APCM) implementation the host supports.
pub fn best_apcm() -> NativeImpl {
    if host::has(HostIsa::Avx512bw) {
        NativeImpl::ApcmAvx512
    } else if host::has(HostIsa::Ssse3) {
        NativeImpl::ApcmSsse3
    } else {
        NativeImpl::Scalar
    }
}

/// De-interleave `3k` triple-interleaved LLRs into three arrays using
/// the chosen implementation. Panics if the host lacks the required
/// feature (check [`available`] first).
pub fn deinterleave(imp: NativeImpl, input: &[i16], k: usize) -> SoftStreams {
    let mut out = SoftStreams::zeros(k);
    deinterleave_into(imp, input, k, &mut out);
    out
}

/// Allocation-free variant of [`deinterleave`]: writes into `out`,
/// which must already hold `k`-element streams.
pub fn deinterleave_into(imp: NativeImpl, input: &[i16], k: usize, out: &mut SoftStreams) {
    assert_eq!(input.len(), 3 * k);
    assert!(out.sys.len() == k && out.p1.len() == k && out.p2.len() == k);
    match imp {
        NativeImpl::Scalar => scalar(input, k, out),
        #[cfg(target_arch = "x86_64")]
        NativeImpl::BaselineSse2 => unsafe { baseline_sse2(input, k, out) },
        #[cfg(target_arch = "x86_64")]
        NativeImpl::ApcmSsse3 => unsafe { apcm_ssse3(input, k, out) },
        #[cfg(target_arch = "x86_64")]
        NativeImpl::BaselineAvx512 => unsafe { baseline_avx512(input, k, out) },
        #[cfg(target_arch = "x86_64")]
        NativeImpl::ApcmAvx512 => unsafe { apcm_avx512(input, k, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar(input, k, out),
    }
}

fn scalar(input: &[i16], k: usize, out: &mut SoftStreams) {
    for t in 0..k {
        out.sys[t] = input[3 * t];
        out.p1[t] = input[3 * t + 1];
        out.p2[t] = input[3 * t + 2];
    }
}

/// Scalar tail shared by the vector kernels.
fn tail(input: &[i16], from: usize, k: usize, out: &mut SoftStreams) {
    for t in from..k {
        out.sys[t] = input[3 * t];
        out.p1[t] = input[3 * t + 1];
        out.p2[t] = input[3 * t + 2];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use crate::tables;
    use std::arch::x86_64::*;
    use vran_simd::RegWidth;

    #[inline]
    unsafe fn extract16(r: __m128i, lane: usize) -> i16 {
        (match lane {
            0 => _mm_extract_epi16(r, 0),
            1 => _mm_extract_epi16(r, 1),
            2 => _mm_extract_epi16(r, 2),
            3 => _mm_extract_epi16(r, 3),
            4 => _mm_extract_epi16(r, 4),
            5 => _mm_extract_epi16(r, 5),
            6 => _mm_extract_epi16(r, 6),
            _ => _mm_extract_epi16(r, 7),
        }) as i16
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn baseline_sse2(input: &[i16], k: usize, out: &mut SoftStreams) {
        let groups = k / 8;
        let streams: [*mut i16; 3] = [
            out.sys.as_mut_ptr(),
            out.p1.as_mut_ptr(),
            out.p2.as_mut_ptr(),
        ];
        for g in 0..groups {
            let gbase = g * 24;
            for j in 0..3 {
                let r = _mm_loadu_si128(input.as_ptr().add(gbase + j * 8) as *const __m128i);
                for lane in 0..8 {
                    let p = gbase + j * 8 + lane;
                    *streams[p % 3].add(p / 3) = extract16(r, lane);
                }
            }
        }
        tail(input, groups * 8, k, out);
    }

    /// Byte-level pshufb control from a lane-level shuffle table.
    fn pshufb_control(table: &[Option<u8>]) -> [i8; 16] {
        let mut c = [-1i8; 16]; // 0x80 = zero the byte
        for (i, sel) in table.iter().enumerate() {
            if let Some(s) = sel {
                c[2 * i] = (2 * s) as i8;
                c[2 * i + 1] = (2 * s + 1) as i8;
            }
        }
        c
    }

    #[target_feature(enable = "ssse3")]
    pub unsafe fn apcm_ssse3(input: &[i16], k: usize, out: &mut SoftStreams) {
        let groups = k / 8;
        // control vectors per (cluster, source register)
        let mut ctrl = [[_mm_setzero_si128(); 3]; 3];
        for (c, row) in ctrl.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let t = tables::natural_shuffle(RegWidth::Sse128, j, c);
                *slot = _mm_loadu_si128(pshufb_control(&t).as_ptr() as *const __m128i);
            }
        }
        let streams: [*mut i16; 3] = [
            out.sys.as_mut_ptr(),
            out.p1.as_mut_ptr(),
            out.p2.as_mut_ptr(),
        ];
        for g in 0..groups {
            let gbase = g * 24;
            let r0 = _mm_loadu_si128(input.as_ptr().add(gbase) as *const __m128i);
            let r1 = _mm_loadu_si128(input.as_ptr().add(gbase + 8) as *const __m128i);
            let r2 = _mm_loadu_si128(input.as_ptr().add(gbase + 16) as *const __m128i);
            for (c, stream) in streams.iter().enumerate() {
                let s0 = _mm_shuffle_epi8(r0, ctrl[c][0]);
                let s1 = _mm_shuffle_epi8(r1, ctrl[c][1]);
                let s2 = _mm_shuffle_epi8(r2, ctrl[c][2]);
                let o = _mm_or_si128(_mm_or_si128(s0, s1), s2);
                _mm_storeu_si128(stream.add(g * 8) as *mut __m128i, o);
            }
        }
        tail(input, groups * 8, k, out);
    }

    #[target_feature(enable = "avx512bw", enable = "avx512f")]
    pub unsafe fn baseline_avx512(input: &[i16], k: usize, out: &mut SoftStreams) {
        let groups = k / 32;
        let streams: [*mut i16; 3] = [
            out.sys.as_mut_ptr(),
            out.p1.as_mut_ptr(),
            out.p2.as_mut_ptr(),
        ];
        for g in 0..groups {
            let gbase = g * 96;
            for j in 0..3 {
                let src = input.as_ptr().add(gbase + j * 32);
                // Faithful §5.2 ladder: take the low 256, extract both
                // xmm halves; reload; take the high 256; repeat.
                let z = _mm512_loadu_si512(src as *const _);
                let lo256 = _mm512_extracti64x4_epi64(z, 0);
                let z2 = _mm512_loadu_si512(src as *const _); // reload
                let hi256 = _mm512_extracti64x4_epi64(z2, 1);
                for (h256, base) in [(lo256, 0usize), (hi256, 16)] {
                    for half in 0..2 {
                        let x = if half == 0 {
                            _mm256_extracti128_si256(h256, 0)
                        } else {
                            _mm256_extracti128_si256(h256, 1)
                        };
                        for lane in 0..8 {
                            let p = gbase + j * 32 + base + half * 8 + lane;
                            *streams[p % 3].add(p / 3) = extract16(x, lane);
                        }
                    }
                }
            }
        }
        tail(input, groups * 32, k, out);
    }

    #[target_feature(enable = "avx512bw", enable = "avx512f")]
    pub unsafe fn apcm_avx512(input: &[i16], k: usize, out: &mut SoftStreams) {
        let groups = k / 32;
        // Stage-1 index: gather cluster elements living in r0|r1
        // (positions 0..64); stage-2 index: keep stage-1 lanes or pull
        // from r2 (positions 64..96 → b-half selectors 32..63).
        let mut idx1 = [[0i16; 32]; 3];
        let mut idx2 = [[0i16; 32]; 3];
        for c in 0..3 {
            for i in 0..32 {
                let p = 3 * i + c;
                if p < 64 {
                    idx1[c][i] = p as i16;
                    idx2[c][i] = i as i16;
                } else {
                    idx1[c][i] = 0;
                    idx2[c][i] = (32 + (p - 64)) as i16;
                }
            }
        }
        let streams: [*mut i16; 3] = [
            out.sys.as_mut_ptr(),
            out.p1.as_mut_ptr(),
            out.p2.as_mut_ptr(),
        ];
        let i1: Vec<__m512i> = (0..3)
            .map(|c| _mm512_loadu_si512(idx1[c].as_ptr() as *const _))
            .collect();
        let i2: Vec<__m512i> = (0..3)
            .map(|c| _mm512_loadu_si512(idx2[c].as_ptr() as *const _))
            .collect();
        for g in 0..groups {
            let gbase = g * 96;
            let r0 = _mm512_loadu_si512(input.as_ptr().add(gbase) as *const _);
            let r1 = _mm512_loadu_si512(input.as_ptr().add(gbase + 32) as *const _);
            let r2 = _mm512_loadu_si512(input.as_ptr().add(gbase + 64) as *const _);
            for (c, stream) in streams.iter().enumerate() {
                let t = _mm512_permutex2var_epi16(r0, i1[c], r1);
                let o = _mm512_permutex2var_epi16(t, i2[c], r2);
                _mm512_storeu_si512(stream.add(g * 32) as *mut _, o);
            }
        }
        tail(input, groups * 32, k, out);
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{apcm_avx512, apcm_ssse3, baseline_avx512, baseline_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: usize) -> Vec<i16> {
        (0..3 * k)
            .map(|i| ((i as i64 * 40503 + 7) % 5000 - 2500) as i16)
            .collect()
    }

    #[test]
    fn scalar_reference_is_a_deinterleave() {
        let k = 50;
        let input = sample(k);
        let out = deinterleave(NativeImpl::Scalar, &input, k);
        for t in 0..k {
            assert_eq!(out.sys[t], input[3 * t]);
            assert_eq!(out.p1[t], input[3 * t + 1]);
            assert_eq!(out.p2[t], input[3 * t + 2]);
        }
    }

    #[test]
    fn every_available_impl_matches_scalar() {
        for k in [32usize, 96, 104, 6144] {
            let input = sample(k);
            let expect = deinterleave(NativeImpl::Scalar, &input, k);
            for imp in available() {
                let got = deinterleave(imp, &input, k);
                assert_eq!(got, expect, "{} K={k}", imp.name());
            }
        }
    }

    #[test]
    fn available_always_contains_scalar() {
        assert_eq!(available()[0], NativeImpl::Scalar);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = available().iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), available().len());
    }

    #[test]
    fn available_matches_host_isa_levels() {
        for imp in available() {
            assert!(host::has(imp.required_isa()), "{}", imp.name());
        }
    }

    #[test]
    fn deinterleave_into_reuses_buffers() {
        let k = 96;
        let input = sample(k);
        let expect = deinterleave(NativeImpl::Scalar, &input, k);
        let mut out = SoftStreams::zeros(k);
        for imp in available() {
            let ptr = out.sys.as_ptr();
            deinterleave_into(imp, &input, k, &mut out);
            assert_eq!(out, expect, "{}", imp.name());
            assert_eq!(out.sys.as_ptr(), ptr, "{} must not reallocate", imp.name());
        }
    }

    #[test]
    fn best_apcm_is_available() {
        assert!(available().contains(&best_apcm()));
    }
}
