//! Mask, shuffle and permutation tables for the arrangement kernels.
//!
//! A "group" is three consecutive registers of `L = width.lanes()` i16
//! lanes, holding `L` interleaved triples (`3L` elements). Element at
//! global group position `p = j·L + i` (register `j`, lane `i`) belongs
//! to cluster `p mod 3` (0 = S1, 1 = YP1, 2 = YP2) and triple `p / 3`.

use vran_simd::{RegWidth, VecVal};

/// Cluster-select mask for register `j` of a group: lane `i` is all-ones
/// iff element `(j·L + i) mod 3 == cluster`. These are the `vpand`
/// filter constants of the paper's Figure 10 step 2.
pub fn cluster_mask(width: RegWidth, j: usize, cluster: usize) -> VecVal {
    assert!(j < 3 && cluster < 3);
    let l = width.lanes();
    let lanes: Vec<i16> = (0..l)
        .map(|i| if (j * l + i) % 3 == cluster { -1 } else { 0 })
        .collect();
    VecVal::from_lanes(width, &lanes)
}

/// The group-wise output order produced by mask-congregation: entry `i`
/// is the triple index whose cluster element lands in lane `i` after
/// OR-ing the three masked registers (before any rotation). For the
/// cluster `c`, lane `i` receives the unique group position
/// `p ∈ {i, L+i, 2L+i}` with `p ≡ c (mod 3)`; the triple is `p / 3`.
pub fn congregated_order(width: RegWidth, cluster: usize) -> Vec<usize> {
    let l = width.lanes();
    (0..l)
        .map(|i| {
            let p = (0..3)
                .map(|j| j * l + i)
                .find(|p| p % 3 == cluster)
                .expect("every residue is covered because L mod 3 ≠ 0");
            p / 3
        })
        .collect()
}

/// Lanes to rotate cluster `c`'s congregated register left so that all
/// three clusters share S1's order (paper Figure 10 step 4: "left
/// rotate 16 bits" = 1 lane for YP1, "32 bits" = 2 lanes for YP2).
pub fn alignment_rotation(width: RegWidth, cluster: usize) -> usize {
    let s1 = congregated_order(width, 0);
    let c = congregated_order(width, cluster);
    let l = width.lanes();
    (0..l)
        .find(|&r| (0..l).all(|i| c[(i + r) % l] == s1[i]))
        .expect("congregated orders are rotations of each other")
}

/// The shared group permutation after alignment: `perm[i]` = triple
/// index held at output lane `i` (equals S1's congregated order).
pub fn group_permutation(width: RegWidth) -> Vec<usize> {
    congregated_order(width, 0)
}

/// Restore permutation for the fused mask/merge ingest: `table[t]`
/// selects the congregated lane holding triple `t`'s cluster element,
/// i.e. the inverse of [`congregated_order`]. One `vpermw` with this
/// control per output register turns the mask/OR congregation into
/// natural decoder order — the fused kernel's replacement for the
/// paper-literal rotation + group depermute.
pub fn fused_restore(width: RegWidth, cluster: usize) -> Vec<Option<u8>> {
    let order = congregated_order(width, cluster);
    let mut table = vec![None; width.lanes()];
    for (lane, &t) in order.iter().enumerate() {
        table[t] = Some(lane as u8);
    }
    table
}

/// Shuffle table for the natural-order APCM variant: for output
/// register of `cluster` and source register `j`, `table[i]` selects
/// the source lane holding triple `i`'s cluster element, or `None`
/// (zero) when that element lives in another register.
pub fn natural_shuffle(width: RegWidth, j: usize, cluster: usize) -> Vec<Option<u8>> {
    let l = width.lanes();
    (0..l)
        .map(|i| {
            let p = 3 * i + cluster; // global group position of triple i's element
            (p / l == j).then_some((p % l) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_each_register() {
        for w in RegWidth::ALL {
            for j in 0..3 {
                let masks: Vec<VecVal> = (0..3).map(|c| cluster_mask(w, j, c)).collect();
                for i in 0..w.lanes() {
                    let set: Vec<usize> = (0..3).filter(|&c| masks[c].lane(i) == -1).collect();
                    assert_eq!(
                        set.len(),
                        1,
                        "lane {i} of reg {j} must be in exactly one mask"
                    );
                    assert_eq!(set[0], (j * w.lanes() + i) % 3);
                }
            }
        }
    }

    #[test]
    fn congregated_order_matches_paper_figure10() {
        // Figure 10 (xmm): S1 order [S1₁ S1₄ S1₇ S1₂ S1₅ S1₈ S1₃ S1₆]
        // → 0-based triples [0,3,6,1,4,7,2,5].
        assert_eq!(
            congregated_order(RegWidth::Sse128, 0),
            vec![0, 3, 6, 1, 4, 7, 2, 5]
        );
        // YP1 congregated: [YP1₆ YP1₁ YP1₄ YP1₇ YP1₂ YP1₅ YP1₈ YP1₃]
        assert_eq!(
            congregated_order(RegWidth::Sse128, 1),
            vec![5, 0, 3, 6, 1, 4, 7, 2]
        );
        // YP2 congregated: [YP2₃ YP2₆ YP2₁ YP2₄ YP2₇ YP2₂ YP2₅ YP2₈]
        assert_eq!(
            congregated_order(RegWidth::Sse128, 2),
            vec![2, 5, 0, 3, 6, 1, 4, 7]
        );
    }

    #[test]
    fn alignment_rotations_match_paper() {
        // Figure 10 step 4: YP1 rotates one lane (16 bits), YP2 two
        // lanes (32 bits) — at every width.
        for w in RegWidth::ALL {
            assert_eq!(alignment_rotation(w, 0), 0, "{w}");
            assert_eq!(alignment_rotation(w, 1), 1, "{w}");
            assert_eq!(alignment_rotation(w, 2), 2, "{w}");
        }
    }

    #[test]
    fn group_permutation_is_a_permutation() {
        for w in RegWidth::ALL {
            let p = group_permutation(w);
            let mut seen = vec![false; w.lanes()];
            for &t in &p {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
    }

    #[test]
    fn fused_restore_inverts_the_congregated_order() {
        for w in RegWidth::ALL {
            for c in 0..3 {
                let order = congregated_order(w, c);
                let restore = fused_restore(w, c);
                for (t, entry) in restore.iter().enumerate() {
                    let lane = entry.expect("congregation fills every lane") as usize;
                    assert_eq!(
                        order[lane], t,
                        "{w} cluster {c}: lane {lane} holds triple {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn natural_shuffles_cover_each_output_lane_once() {
        for w in RegWidth::ALL {
            for c in 0..3 {
                let tables: Vec<Vec<Option<u8>>> =
                    (0..3).map(|j| natural_shuffle(w, j, c)).collect();
                for i in 0..w.lanes() {
                    let hits: usize = tables.iter().filter(|t| t[i].is_some()).count();
                    assert_eq!(hits, 1, "output lane {i} of cluster {c} covered once");
                }
            }
        }
    }
}
