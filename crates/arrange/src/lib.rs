//! # vran-arrange — the data arrangement process, original vs APCM
//!
//! The paper's subject. The vRAN decoder front end receives LLRs as
//! interleaved `[S1ₖ YP1ₖ YP2ₖ]` triples and must segregate them into
//! three linear arrays before the SIMD decoder can consume them
//! (Figure 8a). Two mechanisms are implemented over the `vran-simd` VM:
//!
//! * [`kernel::Mechanism::Baseline`] — the original OAI approach
//!   (paper §5.2 "original data arrangement process"): `pextrw` every
//!   16-bit element from the vector register to its destination array.
//!   All work lands on the two store ports; wider registers are
//!   *slower* because ymm needs `vextracti128` hops and zmm needs
//!   `vextracti32x8` plus a full reload (`vmovdqa64`) for the upper
//!   half.
//! * [`kernel::Mechanism::Apcm`] — Arithmetic Ports Consciousness
//!   Mechanism (paper §5.1/§5.2): batch the clusters on the otherwise
//!   idle vector ALU ports, then store whole registers. Two variants:
//!   [`kernel::ApcmVariant::MaskRotate`] is the paper's literal
//!   `vpand`/`vpor` congregation + lane rotation (17 ALU instructions
//!   per 3-register group, Figure 10/11) whose output is group-wise
//!   permuted; [`kernel::ApcmVariant::Shuffle`] spends 15 shuffle/OR
//!   instructions to produce natural element order directly, which is
//!   what the decoder pipeline consumes;
//!   [`kernel::ApcmVariant::MaskMerge`] models the fused uplink ingest
//!   ([`fused_ingest_into`]) — mask/OR congregation plus one restore
//!   `vpermw` per output register (18 ALU instructions per group),
//!   natural order with a third of Shuffle's lane-crossing traffic.
//!
//! Both mechanisms are validated against the scalar oracle
//! (`InterleavedLlrs::deinterleave_scalar`) and against each other, and
//! both must drive the turbo decoder to identical transport blocks
//! (integration tests in `tests/`).
//!
//! [`native`] additionally provides `std::arch` implementations of the
//! 128-bit kernels (and the AVX-512BW `vpermw` APCM) for real
//! wall-clock benchmarking on the host CPU.
//!
//! # Example
//!
//! ```
//! use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
//! use vran_phy::llr::InterleavedLlrs;
//! use vran_simd::RegWidth;
//!
//! // 16 interleaved [S1 YP1 YP2] triples
//! let input = InterleavedLlrs { k: 16, data: (0..48).collect() };
//!
//! let baseline = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline);
//! let apcm = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle));
//!
//! let (a, trace_a) = baseline.arrange(&input, true);
//! let (b, trace_b) = apcm.arrange(&input, true);
//! assert_eq!(a, b); // identical results…
//!
//! // …entirely different instruction mixes (the paper's point)
//! let (ha, hb) = (trace_a.unwrap().class_histogram(), trace_b.unwrap().class_histogram());
//! assert_eq!(ha.vec_alu, 0); // original: pure data movement
//! assert!(hb.vec_alu > hb.store); // APCM: vector-ALU batching
//! ```

pub mod fused;
pub mod kernel;
pub mod native;
pub mod stride;
pub mod tables;

pub use fused::{available_fused, best_fused, fused_ingest_into, FusedImpl};
pub use kernel::{ApcmVariant, ArrangeKernel, Mechanism, OutRegions};
pub use stride::StrideKernel;
