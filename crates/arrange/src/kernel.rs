//! The arrangement kernels over the `vran-simd` VM.

use crate::tables;
use vran_phy::llr::{InterleavedLlrs, SoftStreams};
use vran_simd::{Mem, MemRef, RegWidth, Trace, Vm};

/// Which APCM formulation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApcmVariant {
    /// Paper-literal Figure 10/11: `vpand` filtering (9), `vpor`
    /// combination (6), lane rotation for alignment (2) — 17 vector-ALU
    /// instructions per group. Output arrays are group-wise permuted by
    /// [`tables::group_permutation`]; the paper realizes the rotation
    /// with the Figure 12 shifted-load mimic, which is port-equivalent
    /// to the single shuffle µop used here (see DESIGN.md).
    MaskRotate,
    /// Natural-order formulation: one lane-shuffle per source register
    /// (9) plus `vpor` combination (6) — 15 vector-ALU instructions per
    /// group, output directly consumable by the decoder.
    Shuffle,
    /// Fused-ingest formulation (the native hot path's
    /// `vran_arrange::fused_ingest_into`): `vpand` filtering (9) and
    /// `vpor` congregation (6) exactly as MaskRotate, then ONE restore
    /// `vpermw` per output register (3) instead of the rotation +
    /// group-wise depermute — 18 vector-ALU instructions per group,
    /// output directly consumable by the decoder. Trades MaskRotate's
    /// deferred permutation for Shuffle's natural order while keeping
    /// two thirds of the lane-crossing traffic off the shuffle unit.
    MaskMerge,
}

/// The arrangement mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Original extract-per-element process (paper §5.2), including the
    /// ymm `vextracti128` and zmm `vextracti32x8`+reload penalties.
    Baseline,
    /// Arithmetic Ports Consciousness Mechanism.
    Apcm(ApcmVariant),
}

impl Mechanism {
    /// Short label for figures and bench IDs.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Baseline => "original",
            Mechanism::Apcm(ApcmVariant::MaskRotate) => "apcm-maskrotate",
            Mechanism::Apcm(ApcmVariant::Shuffle) => "apcm",
            Mechanism::Apcm(ApcmVariant::MaskMerge) => "apcm-fused",
        }
    }
}

/// Output array regions (each `k` elements) inside the VM memory.
#[derive(Debug, Clone, Copy)]
pub struct OutRegions {
    /// Systematic destination.
    pub sys: MemRef,
    /// First parity destination.
    pub p1: MemRef,
    /// Second parity destination.
    pub p2: MemRef,
}

/// A configured arrangement kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrangeKernel {
    /// Register width the kernel is compiled for.
    pub width: RegWidth,
    /// Mechanism under test.
    pub mech: Mechanism,
}

impl ArrangeKernel {
    /// New kernel.
    pub fn new(width: RegWidth, mech: Mechanism) -> Self {
        Self { width, mech }
    }

    /// Triples per full group (= lanes per register).
    pub fn group_triples(&self) -> usize {
        self.width.lanes()
    }

    /// Run the kernel inside `vm`: read `3k` interleaved elements from
    /// `input`, write the three `k`-element arrays in `out`.
    pub fn run(&self, vm: &mut Vm, input: MemRef, out: OutRegions, k: usize) {
        assert_eq!(input.len, 3 * k, "input must hold 3K interleaved elements");
        assert!(out.sys.len == k && out.p1.len == k && out.p2.len == k);
        let l = self.width.lanes();
        let groups = k / l;
        match self.mech {
            Mechanism::Baseline => self.run_baseline(vm, input, out, groups),
            Mechanism::Apcm(v) => self.run_apcm(vm, input, out, groups, v),
        }
        // Scalar tail for K not divisible by the lane count (both
        // mechanisms share it, so comparisons stay fair).
        for t in (groups * l)..k {
            vm.copy16(input.base + 3 * t, out.sys.base + t);
            vm.copy16(input.base + 3 * t + 1, out.p1.base + t);
            vm.copy16(input.base + 3 * t + 2, out.p2.base + t);
        }
    }

    /// Original mechanism: load three registers, `pextrw` every element
    /// to its destination. Width penalties per paper §5.2.
    fn run_baseline(&self, vm: &mut Vm, input: MemRef, out: OutRegions, groups: usize) {
        let l = self.width.lanes();
        let dst = |cluster: usize, t: usize| match cluster {
            0 => out.sys.base + t,
            1 => out.p1.base + t,
            _ => out.p2.base + t,
        };
        for g in 0..groups {
            let gbase = g * 3 * l;
            for j in 0..3 {
                let src = input.slice(gbase + j * l, l);
                // Each element's global position decides its target.
                let target = |lane: usize| {
                    let p = gbase + j * l + lane;
                    dst(p % 3, p / 3)
                };
                match self.width {
                    RegWidth::Sse128 => {
                        let r = vm.load(self.width, src);
                        for lane in 0..8 {
                            vm.extract_store(r, lane, target(lane));
                        }
                    }
                    RegWidth::Avx256 => {
                        let r = vm.load(self.width, src);
                        // pextrw reaches only the low xmm; the upper
                        // half needs a vextracti128 hop first.
                        let lo = vm.extract128(r, 0);
                        for lane in 0..8 {
                            vm.extract_store(lo, lane, target(lane));
                        }
                        let hi = vm.extract128(r, 1);
                        for lane in 0..8 {
                            vm.extract_store(hi, lane, target(8 + lane));
                        }
                    }
                    RegWidth::Avx512 => {
                        // vextracti32x8 clobbers the source zmm, forcing
                        // a vmovdqa64 reload before the upper half
                        // (paper: "another load operation is required").
                        let r = vm.load(self.width, src);
                        let lo256 = vm.extract256_clobber(r, 0);
                        for half in 0..2 {
                            let x = vm.extract128(lo256, half);
                            for lane in 0..8 {
                                vm.extract_store(x, lane, target(half * 8 + lane));
                            }
                        }
                        let r2 = vm.load(self.width, src); // reload
                        let hi256 = vm.extract256_clobber(r2, 1);
                        for half in 0..2 {
                            let x = vm.extract128(hi256, half);
                            for lane in 0..8 {
                                vm.extract_store(x, lane, target(16 + half * 8 + lane));
                            }
                        }
                    }
                }
            }
        }
    }

    /// APCM: batch clusters on the vector ALU ports, then store whole
    /// registers.
    fn run_apcm(
        &self,
        vm: &mut Vm,
        input: MemRef,
        out: OutRegions,
        groups: usize,
        variant: ApcmVariant,
    ) {
        let w = self.width;
        let l = w.lanes();
        let outs = [out.sys, out.p1, out.p2];

        match variant {
            ApcmVariant::Shuffle => {
                // Tables are constants, conceptually embedded in the
                // instruction stream (pshufb control registers loaded
                // once — the const_vec cost is hoisted).
                let tbls: Vec<Vec<Vec<Option<u8>>>> = (0..3)
                    .map(|c| (0..3).map(|j| tables::natural_shuffle(w, j, c)).collect())
                    .collect();
                for g in 0..groups {
                    let gbase = g * 3 * l;
                    let regs: Vec<_> = (0..3)
                        .map(|j| vm.load(w, input.slice(gbase + j * l, l)))
                        .collect();
                    for (c, dst) in outs.iter().enumerate() {
                        let s0 = vm.shuffle(regs[0], &tbls[c][0]);
                        let s1 = vm.shuffle(regs[1], &tbls[c][1]);
                        let s2 = vm.shuffle(regs[2], &tbls[c][2]);
                        let o01 = vm.or(s0, s1);
                        let all = vm.or(o01, s2);
                        vm.store(all, dst.slice(g * l, l));
                    }
                }
            }
            ApcmVariant::MaskRotate => {
                // Figure 10: masks loaded once, then per group
                // 9 vpand + 6 vpor + 2 rotations + 3 stores.
                let masks: Vec<Vec<_>> = (0..3)
                    .map(|c| {
                        (0..3)
                            .map(|j| vm.const_vec(tables::cluster_mask(w, j, c)))
                            .collect()
                    })
                    .collect();
                for g in 0..groups {
                    let gbase = g * 3 * l;
                    let regs: Vec<_> = (0..3)
                        .map(|j| vm.load(w, input.slice(gbase + j * l, l)))
                        .collect();
                    for (c, dst) in outs.iter().enumerate() {
                        let m0 = vm.and(regs[0], masks[c][0]);
                        let m1 = vm.and(regs[1], masks[c][1]);
                        let m2 = vm.and(regs[2], masks[c][2]);
                        let o01 = vm.or(m0, m1);
                        let cong = vm.or(o01, m2);
                        let rot = tables::alignment_rotation(w, c);
                        let aligned = if rot == 0 {
                            cong
                        } else {
                            vm.rotate_lanes_left(cong, rot)
                        };
                        vm.store(aligned, dst.slice(g * l, l));
                    }
                }
            }
            ApcmVariant::MaskMerge => {
                // The fused-ingest mix: masks loaded once, then per
                // group 9 vpand + 6 vpor + 3 restore vpermw + 3 stores.
                let masks: Vec<Vec<_>> = (0..3)
                    .map(|c| {
                        (0..3)
                            .map(|j| vm.const_vec(tables::cluster_mask(w, j, c)))
                            .collect()
                    })
                    .collect();
                let restores: Vec<Vec<Option<u8>>> =
                    (0..3).map(|c| tables::fused_restore(w, c)).collect();
                for g in 0..groups {
                    let gbase = g * 3 * l;
                    let regs: Vec<_> = (0..3)
                        .map(|j| vm.load(w, input.slice(gbase + j * l, l)))
                        .collect();
                    for (c, dst) in outs.iter().enumerate() {
                        let m0 = vm.and(regs[0], masks[c][0]);
                        let m1 = vm.and(regs[1], masks[c][1]);
                        let m2 = vm.and(regs[2], masks[c][2]);
                        let o01 = vm.or(m0, m1);
                        let cong = vm.or(o01, m2);
                        let natural = vm.shuffle(cong, &restores[c]);
                        vm.store(natural, dst.slice(g * l, l));
                    }
                }
            }
        }
    }

    /// Convenience wrapper: stage `interleaved` into a fresh VM, run,
    /// and return the arranged streams (plus the µop trace when
    /// `tracing`).
    pub fn arrange(
        &self,
        interleaved: &InterleavedLlrs,
        tracing: bool,
    ) -> (SoftStreams, Option<Trace>) {
        let k = interleaved.k;
        let mut mem = Mem::new();
        let input = mem.alloc_from(&interleaved.data);
        let sys = mem.alloc(k);
        let p1 = mem.alloc(k);
        let p2 = mem.alloc(k);
        let mut vm = if tracing {
            Vm::tracing(mem)
        } else {
            Vm::native(mem)
        };
        self.run(&mut vm, input, OutRegions { sys, p1, p2 }, k);
        let streams = SoftStreams {
            sys: vm.mem().read(sys).to_vec(),
            p1: vm.mem().read(p1).to_vec(),
            p2: vm.mem().read(p2).to_vec(),
        };
        let trace = tracing.then(|| vm.take_trace());
        (streams, trace)
    }

    /// Undo the MaskRotate group permutation (scalar helper used by
    /// tests and by consumers of the paper-literal variant).
    pub fn depermute(&self, streams: &SoftStreams) -> SoftStreams {
        match self.mech {
            Mechanism::Apcm(ApcmVariant::MaskRotate) => {
                let l = self.width.lanes();
                let perm = tables::group_permutation(self.width);
                let k = streams.len();
                let mut out = SoftStreams::zeros(k);
                let groups = k / l;
                for g in 0..groups {
                    for (i, &p) in perm.iter().enumerate().take(l) {
                        let t = g * l + p;
                        out.sys[t] = streams.sys[g * l + i];
                        out.p1[t] = streams.p1[g * l + i];
                        out.p2[t] = streams.p2[g * l + i];
                    }
                }
                for t in groups * l..k {
                    out.sys[t] = streams.sys[t];
                    out.p1[t] = streams.p1[t];
                    out.p2[t] = streams.p2[t];
                }
                out
            }
            _ => streams.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vran_simd::{OpClass, OpKind};

    fn sample(k: usize) -> InterleavedLlrs {
        let data: Vec<i16> = (0..3 * k)
            .map(|i| ((i as i64 * 2654435761 + 12345) % 4001 - 2000) as i16)
            .collect();
        InterleavedLlrs { k, data }
    }

    fn all_kernels() -> Vec<ArrangeKernel> {
        let mut v = Vec::new();
        for w in RegWidth::ALL {
            for m in [
                Mechanism::Baseline,
                Mechanism::Apcm(ApcmVariant::Shuffle),
                Mechanism::Apcm(ApcmVariant::MaskRotate),
                Mechanism::Apcm(ApcmVariant::MaskMerge),
            ] {
                v.push(ArrangeKernel::new(w, m));
            }
        }
        v
    }

    #[test]
    fn all_mechanisms_match_the_scalar_oracle() {
        let input = sample(192); // divisible by 32
        let expect = input.deinterleave_scalar();
        for kern in all_kernels() {
            let (got, _) = kern.arrange(&input, false);
            let got = kern.depermute(&got);
            assert_eq!(
                got,
                expect,
                "{:?} {} mismatch",
                kern.width,
                kern.mech.name()
            );
        }
    }

    #[test]
    fn ragged_lengths_use_the_scalar_tail() {
        // K = 40 is not divisible by 16 or 32 lanes.
        let input = sample(40);
        let expect = input.deinterleave_scalar();
        for kern in all_kernels() {
            let (got, _) = kern.arrange(&input, false);
            let got = kern.depermute(&got);
            assert_eq!(got, expect, "{:?} {}", kern.width, kern.mech.name());
        }
    }

    #[test]
    fn baseline_is_movement_dominated_apcm_is_alu_dominated() {
        let input = sample(96);
        let (_, bt) =
            ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline).arrange(&input, true);
        let (_, at) = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle))
            .arrange(&input, true);
        let bh = bt.unwrap().class_histogram();
        let ah = at.unwrap().class_histogram();
        assert_eq!(bh.vec_alu, 0, "baseline issues no vector ALU work: {bh:?}");
        assert!(bh.movement_fraction() > 0.95, "{bh:?}");
        assert!(ah.vec_alu > ah.store, "APCM runs on the ALU ports: {ah:?}");
    }

    #[test]
    fn paper_instruction_counts_per_group() {
        // One full xmm group (8 triples): MaskRotate = 9 vpand + 6 vpor
        // + 2 rotations = 17 ALU instructions (paper §5.1), plus 3
        // loads and 3 stores. Mask materialization is hoisted (loads).
        let input = sample(8);
        let (_, t) = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::MaskRotate))
            .arrange(&input, true);
        let t = t.unwrap();
        let ands = t.ops.iter().filter(|o| o.kind == OpKind::VAnd).count();
        let ors = t.ops.iter().filter(|o| o.kind == OpKind::VOr).count();
        let shufs = t.ops.iter().filter(|o| o.kind == OpKind::VShuffle).count();
        assert_eq!(ands, 9);
        assert_eq!(ors, 6);
        assert_eq!(shufs, 2);
        let stores = t.ops.iter().filter(|o| o.kind == OpKind::VStore).count();
        assert_eq!(stores, 3);
    }

    #[test]
    fn fused_instruction_counts_per_group() {
        // One full xmm group under the fused-ingest formulation:
        // 9 vpand + 6 vpor + 3 restore vpermw, plus 3 loads and 3
        // stores. Two thirds fewer shuffle µops than the Shuffle
        // variant's 9, and no deferred depermute like MaskRotate.
        let input = sample(8);
        let (_, t) = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::MaskMerge))
            .arrange(&input, true);
        let t = t.unwrap();
        let count = |k: OpKind| t.ops.iter().filter(|o| o.kind == k).count();
        assert_eq!(count(OpKind::VAnd), 9);
        assert_eq!(count(OpKind::VOr), 6);
        assert_eq!(count(OpKind::VShuffle), 3);
        assert_eq!(count(OpKind::VStore), 3);
    }

    #[test]
    fn fused_needs_no_depermute() {
        // Unlike MaskRotate, the fused variant's output is already in
        // natural decoder order — depermute must be the identity path.
        let input = sample(64);
        let kern = ArrangeKernel::new(RegWidth::Avx512, Mechanism::Apcm(ApcmVariant::MaskMerge));
        let (got, _) = kern.arrange(&input, false);
        assert_eq!(got, input.deinterleave_scalar());
    }

    #[test]
    fn fused_shuffle_traffic_is_a_third_of_the_shuffle_variant() {
        // Same 96 triples: the Shuffle variant crosses lanes once per
        // source register (9/group), the fused variant once per output
        // register (3/group). The vpand/vpor make-up work lands on the
        // three ALU ports instead of the shuffle unit.
        let input = sample(96);
        let shufs = |v| {
            let (_, t) =
                ArrangeKernel::new(RegWidth::Avx512, Mechanism::Apcm(v)).arrange(&input, true);
            t.unwrap()
                .ops
                .iter()
                .filter(|o| o.kind == OpKind::VShuffle)
                .count()
        };
        assert_eq!(
            shufs(ApcmVariant::MaskMerge) * 3,
            shufs(ApcmVariant::Shuffle)
        );
    }

    #[test]
    fn baseline_zmm_pays_reload_penalty() {
        let input = sample(32); // one zmm group
        let run = |w| {
            let (_, t) = ArrangeKernel::new(w, Mechanism::Baseline).arrange(&sample(32), true);
            t.unwrap()
        };
        let _ = input;
        let t512 = run(RegWidth::Avx512);
        let loads = t512.ops.iter().filter(|o| o.kind == OpKind::VLoad).count();
        // 32 triples = 3 zmm registers, each loaded twice (reload after
        // vextracti32x8 clobber).
        assert_eq!(loads, 6);
        let ex256 = t512
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Extract256)
            .count();
        assert_eq!(ex256, 6);
        let ex128 = t512
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Extract128)
            .count();
        assert_eq!(ex128, 12);
        // the per-element extracts are unchanged: 96 pextrw
        let pex = t512
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::ExtractLane)
            .count();
        assert_eq!(pex, 96);
    }

    #[test]
    fn baseline_instruction_count_grows_with_width_for_same_work() {
        // Same 96 triples, three widths: the original mechanism issues
        // MORE instructions as registers widen (the paper's §6
        // "performance deteriorates when extending the registers").
        let input = sample(96);
        let count = |w| {
            let (_, t) = ArrangeKernel::new(w, Mechanism::Baseline).arrange(&input, true);
            t.unwrap().instr_count()
        };
        let c128 = count(RegWidth::Sse128);
        let c256 = count(RegWidth::Avx256);
        let c512 = count(RegWidth::Avx512);
        assert!(c256 > c128, "{c256} vs {c128}");
        assert!(c512 > c256, "{c512} vs {c256}");
    }

    #[test]
    fn apcm_instruction_count_shrinks_with_width_for_same_work() {
        let input = sample(96);
        let count = |w| {
            let (_, t) =
                ArrangeKernel::new(w, Mechanism::Apcm(ApcmVariant::Shuffle)).arrange(&input, true);
            t.unwrap().instr_count()
        };
        let c128 = count(RegWidth::Sse128);
        let c256 = count(RegWidth::Avx256);
        let c512 = count(RegWidth::Avx512);
        assert!(c256 < c128, "{c256} vs {c128}");
        assert!(c512 < c256, "{c512} vs {c256}");
    }

    #[test]
    fn store_bytes_equal_across_mechanisms() {
        // Both mechanisms move the same payload; only the instruction
        // mix differs. (Baseline stores 2 bytes at a time, APCM whole
        // registers — totals match.)
        let input = sample(96);
        let payload = |m| {
            let (_, t) = ArrangeKernel::new(RegWidth::Sse128, m).arrange(&input, true);
            t.unwrap().store_bytes()
        };
        assert_eq!(
            payload(Mechanism::Baseline),
            payload(Mechanism::Apcm(ApcmVariant::Shuffle))
        );
    }

    #[test]
    fn trace_uop_classes_are_as_designed() {
        let input = sample(64);
        let (_, t) =
            ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline).arrange(&input, true);
        for op in &t.unwrap().ops {
            assert!(
                matches!(op.kind.class(), OpClass::Load | OpClass::Store),
                "baseline must be pure movement, found {:?}",
                op.kind
            );
        }
    }
}
