//! The `fused_exactness` sweep: fused APCM ingest vs the scalar
//! reference across **all 188** TS 36.212 block sizes and **every**
//! host-ISA tier.
//!
//! The uplink pipeline makes `fused_ingest_into` the default native
//! ingest path on the strength of this sweep (see
//! `PipelineConfig::fused_ingest`): whatever K the segmenter picks and
//! whatever tier the dispatcher lands on — AVX-512BW zmm, SSSE3 xmm or
//! the scalar floor — the fused kernel must reproduce the scalar
//! deinterleave bit for bit, including the ragged scalar tail and the
//! four tail triples that ride beyond `3K` in the de-rate-matcher's
//! interleaved buffer.
//!
//! Lives in its own integration-test binary because the ISA ceiling is
//! process-global; the sweep loops the tiers inside one `#[test]` so
//! masked regions never overlap.

use vran_arrange::{available_fused, best_fused, fused_ingest_into, FusedImpl};
use vran_phy::interleaver::QPP_TABLE;
use vran_phy::llr::Llr;
use vran_simd::host::{set_isa_ceiling, HostIsa};

/// Deterministic non-trivial LLRs; tail region beyond `3k` poisoned to
/// catch any kernel reading past the K-th triple.
fn interleaved(k: usize) -> Vec<Llr> {
    let mut v: Vec<Llr> = (0..3 * k)
        .map(|i| ((i as i64 * 2654435761 + k as i64 * 97) % 5003 - 2501) as i16)
        .collect();
    v.extend(std::iter::repeat_n(i16::MAX, 12)); // 4 tail triples
    v
}

fn run(imp: FusedImpl, input: &[Llr], k: usize) -> [Vec<Llr>; 3] {
    let mut sys = vec![0; k];
    let mut p1 = vec![0; k];
    let mut p2 = vec![0; k];
    fused_ingest_into(imp, input, k, &mut sys, &mut p1, &mut p2);
    [sys, p1, p2]
}

/// The dispatch tier `best_fused` must pick under each ceiling (when
/// the host itself is capable enough to reach it).
fn expected_best(ceiling: HostIsa) -> FusedImpl {
    match ceiling {
        HostIsa::Scalar | HostIsa::Sse2 => FusedImpl::Scalar,
        HostIsa::Ssse3 | HostIsa::Avx2 => FusedImpl::MaskMergeSsse3,
        HostIsa::Avx512bw => FusedImpl::MaskMergeAvx512,
    }
}

#[test]
fn all_188_block_sizes_bit_exact_at_every_isa_tier() {
    // Reference outputs computed once, at full host capability, with
    // the always-available scalar implementation.
    let cases: Vec<(usize, Vec<Llr>)> = QPP_TABLE
        .iter()
        .map(|row| {
            let k = row.k as usize;
            (k, interleaved(k))
        })
        .collect();
    assert_eq!(cases.len(), 188, "the registry drives the sweep");

    for ceiling in HostIsa::all() {
        set_isa_ceiling(Some(ceiling));
        let best = best_fused();
        // On a fully-capable host the ceiling alone decides the tier;
        // on a weaker host the pick degrades further, which
        // `available_fused` containment below still validates.
        if vran_simd::host::has(expected_best(ceiling).required_isa()) {
            assert_eq!(best, expected_best(ceiling), "ceiling {}", ceiling.name());
        }
        assert!(available_fused().contains(&best));

        for (k, input) in &cases {
            let expect = run(FusedImpl::Scalar, input, *k);
            for imp in available_fused() {
                assert_eq!(
                    run(imp, input, *k),
                    expect,
                    "K={k} {} under {} ceiling",
                    imp.name(),
                    ceiling.name()
                );
            }
        }
    }
    set_isa_ceiling(None);
}

#[test]
fn sweep_covers_both_vector_group_shapes() {
    // Sanity on the registry itself: every TS 36.212 K is a multiple
    // of 8 (whole xmm groups, never a ragged 128-bit tail), but the
    // zmm kernel sees both whole-group K and K with a 8/16/24-element
    // scalar tail — so the sweep above exercises every code path that
    // exists on real block sizes.
    let ks: Vec<usize> = QPP_TABLE.iter().map(|r| r.k as usize).collect();
    assert!(ks.iter().all(|k| k % 8 == 0), "standard K are xmm-whole");
    assert!(ks.iter().any(|k| k % 32 == 0), "whole zmm groups");
    assert!(ks.iter().any(|k| k % 32 != 0), "zmm scalar tails");
}
