//! Bit-vector helpers shared across the PHY chain.
//!
//! The 3GPP specs describe everything in terms of bit sequences; we keep
//! bits as `u8 ∈ {0,1}` in `Vec<u8>` for clarity (the hot paths operate
//! on LLRs, not bits, so this costs nothing that matters).

/// Pack a `{0,1}` bit slice MSB-first into bytes (final partial byte is
/// left-aligned, zero-padded).
pub fn pack_msb(bits: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        debug_assert!(b <= 1, "non-binary bit {b}");
        out[i / 8] |= (b & 1) << (7 - (i % 8));
    }
    out
}

/// Unpack bytes MSB-first into `n` bits.
pub fn unpack_msb(bytes: &[u8], n: usize) -> Vec<u8> {
    assert!(
        n <= bytes.len() * 8,
        "asked for {n} bits from {} bytes",
        bytes.len()
    );
    (0..n)
        .map(|i| (bytes[i / 8] >> (7 - (i % 8))) & 1)
        .collect()
}

/// Pack a `{0,1}` bit slice LSB-first into 64-bit words: bit `i` of the
/// stream lands at bit `i % 64` of word `i / 64`, and the final partial
/// word is zero-padded. `out` must hold exactly `bits.len().div_ceil(64)`
/// words.
///
/// The packed-word turbo encoder and rate matcher run on this layout:
/// LSB-first means a left shift moves data *forward in time*, so the
/// RSC recurrences become plain shift/XOR word arithmetic. The inner
/// loop gathers 8 bits per step with a multiply: for bytes
/// `b₀..b₇ ∈ {0,1}` read as a little-endian `u64`, the product with
/// `0x0102_0408_1020_4080` places `Σ bⱼ · 2ʲ` in the top byte, and no
/// two partial products collide (term `bⱼ · 2^{8j}` times factor bit
/// `2^{56−7i}` lands at `56 + 8(j−i) + i`, unique per `(i, j)` pair),
/// so the sum is carry-free.
pub fn pack_lsb_words(bits: &[u8], out: &mut [u64]) {
    assert_eq!(
        out.len(),
        bits.len().div_ceil(64),
        "output must hold exactly {} words",
        bits.len().div_ceil(64)
    );
    out.fill(0);
    let mut chunks = bits.chunks_exact(8);
    let mut i = 0usize;
    for c in chunks.by_ref() {
        let chunk = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        debug_assert!(chunk & !0x0101_0101_0101_0101 == 0, "non-binary bits");
        let byte = chunk.wrapping_mul(0x0102_0408_1020_4080) >> 56;
        out[i >> 6] |= byte << (i & 63);
        i += 8;
    }
    for &b in chunks.remainder() {
        debug_assert!(b <= 1, "non-binary bit {b}");
        out[i >> 6] |= u64::from(b & 1) << (i & 63);
        i += 1;
    }
}

/// LSB-first word packing into a fresh vector (see [`pack_lsb_words`]).
pub fn packed_lsb_words(bits: &[u8]) -> Vec<u64> {
    let mut out = vec![0u64; bits.len().div_ceil(64)];
    pack_lsb_words(bits, &mut out);
    out
}

/// Unpack `n` LSB-first bits from 64-bit words (see [`pack_lsb_words`]).
pub fn unpack_lsb_words(words: &[u64], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    extend_bits_from_words(words, n, &mut out);
    out
}

/// LSB-first expansion of every byte value into eight `{0,1}` bytes, so
/// unpacking moves 8 bits per table lookup instead of one per shift.
const BYTE_BITS: [[u8; 8]; 256] = {
    let mut t = [[0u8; 8]; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut j = 0;
        while j < 8 {
            t[b][j] = ((b >> j) & 1) as u8;
            j += 1;
        }
        b += 1;
    }
    t
};

/// Append the first `n` LSB-first bits of `words` to `out` as
/// `u8 ∈ {0,1}` values.
pub fn extend_bits_from_words(words: &[u64], n: usize, out: &mut Vec<u8>) {
    assert!(
        n <= words.len() * 64,
        "asked for {n} bits from {} words",
        words.len()
    );
    out.reserve(n);
    let mut left = n;
    for &w in words {
        if left == 0 {
            break;
        }
        for byte in w.to_le_bytes() {
            if left >= 8 {
                out.extend_from_slice(&BYTE_BITS[byte as usize]);
                left -= 8;
            } else {
                out.extend_from_slice(&BYTE_BITS[byte as usize][..left]);
                left = 0;
                break;
            }
        }
    }
}

/// XOR two equal-length bit slices into a fresh vector.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Count positions where two bit slices differ.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Deterministic pseudo-random bit vector (for workload generation).
pub fn random_bits(n: usize, seed: u64) -> Vec<u8> {
    // xorshift64*: reproducible across platforms, no dependency needed.
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            ((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let bits: Vec<u8> = random_bits(77, 42);
        let packed = pack_msb(&bits);
        assert_eq!(packed.len(), 10);
        assert_eq!(unpack_msb(&packed, 77), bits);
    }

    #[test]
    fn pack_is_msb_first() {
        assert_eq!(pack_msb(&[1, 0, 0, 0, 0, 0, 0, 1]), vec![0x81]);
        assert_eq!(pack_msb(&[1]), vec![0x80]);
    }

    #[test]
    fn xor_and_hamming() {
        let a = [1, 0, 1, 1];
        let b = [1, 1, 0, 1];
        assert_eq!(xor_bits(&a, &b), vec![0, 1, 1, 0]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn lsb_word_pack_unpack_round_trip() {
        for n in [0usize, 1, 7, 8, 63, 64, 65, 129, 777] {
            let bits = random_bits(n, n as u64 + 11);
            let words = packed_lsb_words(&bits);
            assert_eq!(words.len(), n.div_ceil(64));
            assert_eq!(unpack_lsb_words(&words, n), bits);
        }
    }

    #[test]
    fn lsb_word_pack_matches_per_bit_reference() {
        let bits = random_bits(300, 99);
        let words = packed_lsb_words(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(((words[i / 64] >> (i % 64)) & 1) as u8, b, "bit {i}");
        }
        // padding beyond the stream must be zero
        assert_eq!(words[4] >> (300 - 256), 0);
    }

    #[test]
    fn lsb_word_pack_is_lsb_first() {
        assert_eq!(packed_lsb_words(&[1, 0, 0, 0, 0, 0, 0, 1]), vec![0x81]);
        assert_eq!(packed_lsb_words(&[0, 1]), vec![0x02]);
    }

    #[test]
    fn random_bits_deterministic_and_balanced() {
        let a = random_bits(4096, 7);
        let b = random_bits(4096, 7);
        assert_eq!(a, b);
        let ones: usize = a.iter().map(|&x| x as usize).sum();
        assert!(
            (1500..2600).contains(&ones),
            "biased bit source: {ones}/4096 ones"
        );
        assert_ne!(a, random_bits(4096, 8), "seed must matter");
    }
}
