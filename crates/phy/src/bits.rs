//! Bit-vector helpers shared across the PHY chain.
//!
//! The 3GPP specs describe everything in terms of bit sequences; we keep
//! bits as `u8 ∈ {0,1}` in `Vec<u8>` for clarity (the hot paths operate
//! on LLRs, not bits, so this costs nothing that matters).

/// Pack a `{0,1}` bit slice MSB-first into bytes (final partial byte is
/// left-aligned, zero-padded).
pub fn pack_msb(bits: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        debug_assert!(b <= 1, "non-binary bit {b}");
        out[i / 8] |= (b & 1) << (7 - (i % 8));
    }
    out
}

/// Unpack bytes MSB-first into `n` bits.
pub fn unpack_msb(bytes: &[u8], n: usize) -> Vec<u8> {
    assert!(
        n <= bytes.len() * 8,
        "asked for {n} bits from {} bytes",
        bytes.len()
    );
    (0..n)
        .map(|i| (bytes[i / 8] >> (7 - (i % 8))) & 1)
        .collect()
}

/// XOR two equal-length bit slices into a fresh vector.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Count positions where two bit slices differ.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Deterministic pseudo-random bit vector (for workload generation).
pub fn random_bits(n: usize, seed: u64) -> Vec<u8> {
    // xorshift64*: reproducible across platforms, no dependency needed.
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            ((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let bits: Vec<u8> = random_bits(77, 42);
        let packed = pack_msb(&bits);
        assert_eq!(packed.len(), 10);
        assert_eq!(unpack_msb(&packed, 77), bits);
    }

    #[test]
    fn pack_is_msb_first() {
        assert_eq!(pack_msb(&[1, 0, 0, 0, 0, 0, 0, 1]), vec![0x81]);
        assert_eq!(pack_msb(&[1]), vec![0x80]);
    }

    #[test]
    fn xor_and_hamming() {
        let a = [1, 0, 1, 1];
        let b = [1, 1, 0, 1];
        assert_eq!(xor_bits(&a, &b), vec![0, 1, 1, 0]);
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn random_bits_deterministic_and_balanced() {
        let a = random_bits(4096, 7);
        let b = random_bits(4096, 7);
        assert_eq!(a, b);
        let ones: usize = a.iter().map(|&x| x as usize).sum();
        assert!(
            (1500..2600).contains(&ones),
            "biased bit source: {ones}/4096 ones"
        );
        assert_ne!(a, random_bits(4096, 8), "seed must matter");
    }
}
