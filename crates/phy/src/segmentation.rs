//! TS 36.212 §5.1.2 code block segmentation.
//!
//! Transport blocks (with their CRC24A) longer than 6144 bits are split
//! into code blocks, each receiving its own CRC24B; filler bits pad the
//! first block up to the chosen QPP sizes.

use crate::crc::CRC24B;
use crate::interleaver::QppInterleaver;

/// Maximum code block size Z.
pub const Z_MAX: usize = 6144;
/// CRC length L attached per code block when C > 1.
const L: usize = 24;

/// Structural errors from the typed (non-panicking) segmentation API.
/// The legacy `plan`/`segment`/`desegment` methods keep their original
/// panic-on-misuse contract by delegating to the `try_` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegError {
    /// Zero-length transport block.
    EmptyBlock,
    /// `segment` input length differs from the planned B.
    LengthMismatch {
        /// Planned B.
        expected: usize,
        /// Actual input length.
        got: usize,
    },
    /// `desegment` was handed the wrong number of code blocks.
    WrongBlockCount {
        /// Planned C.
        expected: usize,
        /// Blocks received.
        got: usize,
    },
    /// A `desegment` code block has the wrong size.
    WrongBlockSize {
        /// Which block.
        index: usize,
        /// Planned K for that block.
        expected: usize,
        /// Actual block length.
        got: usize,
    },
}

impl std::fmt::Display for SegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegError::EmptyBlock => write!(f, "empty transport block"),
            SegError::LengthMismatch { expected, got } => {
                write!(f, "input length {got} != planned B {expected}")
            }
            SegError::WrongBlockCount { expected, got } => {
                write!(f, "{got} code blocks != planned C {expected}")
            }
            SegError::WrongBlockSize {
                index,
                expected,
                got,
            } => write!(f, "block {index} has {got} bits != planned K {expected}"),
        }
    }
}

impl std::error::Error for SegError {}

/// The segmentation plan for a transport block of `b` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    /// Input length B (bits, including the TB CRC).
    pub b: usize,
    /// Number of code blocks C.
    pub c: usize,
    /// Larger block size K+.
    pub k_plus: usize,
    /// Smaller block size K− (0 when unused).
    pub k_minus: usize,
    /// Number of K− blocks.
    pub c_minus: usize,
    /// Number of K+ blocks.
    pub c_plus: usize,
    /// Filler bits prepended to the first block.
    pub f: usize,
}

impl Segmentation {
    /// Compute the spec's segmentation for `b` input bits.
    pub fn plan(b: usize) -> Self {
        Self::try_plan(b).expect("empty transport block")
    }

    /// Non-panicking [`Segmentation::plan`]: rejects an empty transport
    /// block instead of asserting.
    pub fn try_plan(b: usize) -> Result<Self, SegError> {
        if b == 0 {
            return Err(SegError::EmptyBlock);
        }
        let (c, b_prime) = if b <= Z_MAX {
            (1, b)
        } else {
            let c = b.div_ceil(Z_MAX - L);
            (c, b + c * L)
        };
        let k_plus = QppInterleaver::next_legal_k(b_prime.div_ceil(c))
            .expect("B'/C exceeds the largest code block size");
        let (k_minus, c_minus, c_plus) = if c == 1 {
            (0, 0, 1)
        } else {
            // largest legal K < K+
            let k_minus = crate::interleaver::QPP_TABLE
                .iter()
                .map(|r| r.k as usize)
                .rfind(|&k| k < k_plus)
                .unwrap_or(k_plus);
            let dk = k_plus - k_minus;
            match (c * k_plus - b_prime).checked_div(dk) {
                None => (k_minus, 0, c),
                Some(c_minus) => (k_minus, c_minus, c - c_minus),
            }
        };
        let f = c_plus * k_plus + c_minus * k_minus - b_prime;
        Ok(Self {
            b,
            c,
            k_plus,
            k_minus,
            c_minus,
            c_plus,
            f,
        })
    }

    /// Block size of code block `i` (K− blocks come first, per spec).
    pub fn k_of(&self, i: usize) -> usize {
        assert!(i < self.c);
        if i < self.c_minus {
            self.k_minus
        } else {
            self.k_plus
        }
    }

    /// Split `bits` (length B) into code blocks, adding filler and
    /// per-block CRC24B when C > 1.
    pub fn segment(&self, bits: &[u8]) -> Vec<Vec<u8>> {
        self.try_segment(bits).expect("input length matches plan")
    }

    /// Non-panicking [`Segmentation::segment`]: rejects a bit slice
    /// whose length differs from the planned B.
    pub fn try_segment(&self, bits: &[u8]) -> Result<Vec<Vec<u8>>, SegError> {
        if bits.len() != self.b {
            return Err(SegError::LengthMismatch {
                expected: self.b,
                got: bits.len(),
            });
        }
        let mut out = Vec::with_capacity(self.c);
        let mut pos = 0;
        for i in 0..self.c {
            let k = self.k_of(i);
            let payload = if self.c == 1 { k } else { k - L };
            let filler = if i == 0 { self.f } else { 0 };
            let take = payload - filler;
            let mut blk = vec![0u8; filler];
            blk.extend_from_slice(&bits[pos..pos + take]);
            pos += take;
            if self.c > 1 {
                blk = CRC24B.attach(&blk);
            }
            debug_assert_eq!(blk.len(), k);
            out.push(blk);
        }
        debug_assert_eq!(pos, self.b);
        Ok(out)
    }

    /// Reassemble decoded code blocks into the transport-level bit
    /// stream, stripping filler and per-block CRCs; returns `None` if
    /// any per-block CRC fails.
    pub fn desegment(&self, blocks: &[Vec<u8>]) -> Option<Vec<u8>> {
        self.try_desegment(blocks)
            .expect("block set matches segmentation plan")
    }

    /// Non-panicking [`Segmentation::desegment`]: a structurally
    /// inconsistent block set (wrong count or wrong sizes — e.g. a
    /// sender lying about its code-block count) is an `Err`; a clean
    /// structure whose per-block CRC fails is `Ok(None)`.
    pub fn try_desegment(&self, blocks: &[Vec<u8>]) -> Result<Option<Vec<u8>>, SegError> {
        if blocks.len() != self.c {
            return Err(SegError::WrongBlockCount {
                expected: self.c,
                got: blocks.len(),
            });
        }
        let mut out = Vec::with_capacity(self.b);
        for (i, blk) in blocks.iter().enumerate() {
            if blk.len() != self.k_of(i) {
                return Err(SegError::WrongBlockSize {
                    index: i,
                    expected: self.k_of(i),
                    got: blk.len(),
                });
            }
            let payload: &[u8] = if self.c > 1 {
                match CRC24B.check(blk) {
                    Some(p) => p,
                    None => return Ok(None),
                }
            } else {
                blk
            };
            let skip = if i == 0 { self.f } else { 0 };
            out.extend_from_slice(&payload[skip..]);
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn small_blocks_are_single_segment() {
        let s = Segmentation::plan(100);
        assert_eq!(s.c, 1);
        assert_eq!(s.k_plus, 104);
        assert_eq!(s.f, 4);
        assert_eq!(s.c_plus, 1);
    }

    #[test]
    fn exact_fit_has_no_filler() {
        let s = Segmentation::plan(512);
        assert_eq!((s.c, s.k_plus, s.f), (1, 512, 0));
    }

    #[test]
    fn large_blocks_split() {
        let s = Segmentation::plan(10000);
        assert_eq!(s.c, 2);
        // B' = 10000 + 48 = 10048; K+ = next(5024) = 5056
        assert_eq!(s.k_plus, 5056);
        assert!(s.c_plus >= 1);
        // total capacity matches B' + filler
        assert_eq!(s.c_plus * s.k_plus + s.c_minus * s.k_minus, 10048 + s.f);
    }

    #[test]
    fn segment_sizes_are_all_legal() {
        for b in [40usize, 1000, 6144, 6145, 20000, 100_000] {
            let s = Segmentation::plan(b);
            for i in 0..s.c {
                assert!(
                    QppInterleaver::is_legal_k(s.k_of(i)),
                    "B={b}: illegal block size {}",
                    s.k_of(i)
                );
            }
        }
    }

    #[test]
    fn segment_desegment_round_trip_single() {
        let bits = random_bits(1000, 6);
        let s = Segmentation::plan(1000);
        let blocks = s.segment(&bits);
        assert_eq!(blocks.len(), 1);
        assert_eq!(s.desegment(&blocks).unwrap(), bits);
    }

    #[test]
    fn segment_desegment_round_trip_multi() {
        let bits = random_bits(15000, 7);
        let s = Segmentation::plan(15000);
        assert!(s.c > 1);
        let blocks = s.segment(&bits);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.len(), s.k_of(i));
        }
        assert_eq!(s.desegment(&blocks).unwrap(), bits);
    }

    #[test]
    fn corrupted_block_crc_detected() {
        let bits = random_bits(15000, 8);
        let s = Segmentation::plan(15000);
        let mut blocks = s.segment(&bits);
        blocks[1][10] ^= 1;
        assert!(s.desegment(&blocks).is_none());
    }

    #[test]
    fn try_api_rejects_structural_lies_without_panicking() {
        assert_eq!(Segmentation::try_plan(0), Err(SegError::EmptyBlock));

        let s = Segmentation::plan(15000);
        let bits = random_bits(15000, 11);
        assert!(matches!(
            s.try_segment(&bits[..100]),
            Err(SegError::LengthMismatch {
                expected: 15000,
                got: 100
            })
        ));

        let blocks = s.segment(&bits);
        // Lie about the block count.
        assert!(matches!(
            s.try_desegment(&blocks[..1]),
            Err(SegError::WrongBlockCount { .. })
        ));
        // Lie about a block size.
        let mut short = blocks.clone();
        short[1].pop();
        assert!(matches!(
            s.try_desegment(&short),
            Err(SegError::WrongBlockSize { index: 1, .. })
        ));
        // A clean structure with a corrupted payload is Ok(None), not Err.
        let mut corrupt = blocks.clone();
        corrupt[0][30] ^= 1;
        assert_eq!(s.try_desegment(&corrupt), Ok(None));
        // And the honest set round-trips.
        assert_eq!(s.try_desegment(&blocks).unwrap().unwrap(), bits);
    }

    #[test]
    fn filler_bits_are_zero_prefix_of_first_block() {
        let s = Segmentation::plan(100);
        let bits = random_bits(100, 2);
        let blocks = s.segment(&bits);
        assert_eq!(&blocks[0][..s.f], &vec![0u8; s.f][..]);
        assert_eq!(&blocks[0][s.f..], &bits[..]);
    }
}
