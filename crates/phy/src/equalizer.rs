//! Block-fading channel, pilot-based channel estimation, and zero-
//! forcing equalization.
//!
//! The paper's testbed ran over a real RF front-end; the AWGN
//! substitute in [`crate::channel`] is flat. This module adds the next
//! level of fidelity: a per-subcarrier Rayleigh gain (block fading —
//! constant over a slot), LTE-style scattered pilots, least-squares
//! channel estimation with linear interpolation, and ZF equalization
//! with noise-variance-aware LLR weighting.

use crate::modulation::Cplx;
use vran_util::rng::SmallRng;

/// A frequency-selective block-fading channel: one complex gain per
/// subcarrier, constant for the life of the struct.
#[derive(Debug, Clone)]
pub struct FadingChannel {
    gains: Vec<Cplx>,
    sigma: f32,
    rng: SmallRng,
}

impl FadingChannel {
    /// Rayleigh-fading channel over `subcarriers` with AWGN at
    /// `snr_db`. `delay_spread` controls frequency selectivity: the
    /// gain is a sum of `delay_spread` random taps, so adjacent
    /// subcarriers stay correlated (a real channel is smooth in
    /// frequency — the estimator depends on that).
    pub fn new(subcarriers: usize, snr_db: f32, delay_spread: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let taps = delay_spread.clamp(1, 16);
        let gauss = {
            let g = move |r: &mut SmallRng| r.gauss_f32();
            let h: Vec<Cplx> = (0..taps)
                .map(|_| {
                    let s = (2.0 * taps as f32).sqrt();
                    Cplx::new(g(&mut rng) / s, g(&mut rng) / s)
                })
                .collect();
            move |k: usize, n: usize| {
                // frequency response of the tap delay line at bin k
                let mut acc = Cplx::default();
                for (t, ht) in h.iter().enumerate() {
                    let ph = -2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32;
                    acc = acc.add(ht.mul(Cplx::new(ph.cos(), ph.sin())));
                }
                acc
            }
        };
        let gains = (0..subcarriers)
            .map(|k| gauss(k, subcarriers.max(64)))
            .collect();
        let snr = 10f32.powf(snr_db / 10.0);
        Self {
            gains,
            sigma: (1.0 / (2.0 * snr)).sqrt(),
            rng,
        }
    }

    /// Per-axis noise standard deviation.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// True channel gains (test oracle).
    pub fn gains(&self) -> &[Cplx] {
        &self.gains
    }

    /// Apply fading + noise to one OFDM symbol's worth of subcarrier
    /// values (frequency-domain model).
    pub fn apply(&mut self, symbols: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(symbols.len(), self.gains.len());
        let gauss = |r: &mut SmallRng| r.gauss_f32();
        symbols
            .iter()
            .zip(&self.gains)
            .map(|(s, h)| {
                let y = s.mul(*h);
                Cplx::new(
                    y.re + self.sigma * gauss(&mut self.rng),
                    y.im + self.sigma * gauss(&mut self.rng),
                )
            })
            .collect()
    }
}

/// Scattered-pilot channel estimator + zero-forcing equalizer.
#[derive(Debug, Clone)]
pub struct Equalizer {
    /// Pilot spacing in subcarriers (LTE CRS density ≈ every 6th).
    pub pilot_spacing: usize,
}

/// The known pilot symbol (unit power, 45°).
pub fn pilot_symbol() -> Cplx {
    let a = std::f32::consts::FRAC_1_SQRT_2;
    Cplx::new(a, a)
}

impl Equalizer {
    /// Standard LTE-like density.
    pub fn lte() -> Self {
        Self { pilot_spacing: 6 }
    }

    /// Indices that carry pilots for `n` subcarriers.
    pub fn pilot_positions(&self, n: usize) -> Vec<usize> {
        (0..n).step_by(self.pilot_spacing).collect()
    }

    /// Insert pilots into a data stream: returns the transmit grid and
    /// the number of data symbols consumed.
    pub fn insert_pilots(&self, data: &[Cplx], n: usize) -> (Vec<Cplx>, usize) {
        let pilots = self.pilot_positions(n);
        let mut grid = vec![Cplx::default(); n];
        let mut di = 0;
        for (k, g) in grid.iter_mut().enumerate() {
            if pilots.binary_search(&k).is_ok() {
                *g = pilot_symbol();
            } else if di < data.len() {
                *g = data[di];
                di += 1;
            }
        }
        (grid, di)
    }

    /// Least-squares estimate at pilots + linear interpolation between
    /// them (edges extend the nearest estimate).
    pub fn estimate(&self, received: &[Cplx]) -> Vec<Cplx> {
        let n = received.len();
        let pilots = self.pilot_positions(n);
        let p = pilot_symbol();
        let inv = 1.0 / p.norm_sq();
        // H = Y * conj(P) / |P|^2 at pilot positions
        let h_at: Vec<Cplx> = pilots
            .iter()
            .map(|&k| {
                received[k]
                    .mul(Cplx::new(p.re, -p.im))
                    .mul(Cplx::new(inv, 0.0))
            })
            .collect();
        let mut h = vec![Cplx::default(); n];
        #[allow(clippy::needless_range_loop)] // k indexes pilots AND h
        for k in 0..n {
            // bracket k between pilots
            let idx = k / self.pilot_spacing;
            let (k0, h0) = (
                pilots[idx.min(pilots.len() - 1)],
                h_at[idx.min(h_at.len() - 1)],
            );
            if idx + 1 >= pilots.len() {
                h[k] = h0;
                continue;
            }
            let (k1, h1) = (pilots[idx + 1], h_at[idx + 1]);
            let t = (k - k0) as f32 / (k1 - k0) as f32;
            h[k] = Cplx::new(h0.re + (h1.re - h0.re) * t, h0.im + (h1.im - h0.im) * t);
        }
        h
    }

    /// Zero-forcing equalization: `x̂ = y · conj(ĥ) / |ĥ|²`, returning
    /// the equalized data symbols (pilot positions removed) together
    /// with per-symbol reliability weights `|ĥ|²` for LLR scaling.
    pub fn equalize(&self, received: &[Cplx], h: &[Cplx]) -> (Vec<Cplx>, Vec<f32>) {
        assert_eq!(received.len(), h.len());
        let n = received.len();
        let pilots = self.pilot_positions(n);
        let mut out = Vec::with_capacity(n - pilots.len());
        let mut weights = Vec::with_capacity(n - pilots.len());
        for k in 0..n {
            if pilots.binary_search(&k).is_ok() {
                continue;
            }
            let g = h[k].norm_sq().max(1e-9);
            let e = received[k].mul(Cplx::new(h[k].re / g, -h[k].im / g));
            out.push(e);
            weights.push(g);
        }
        (out, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::modulation::Modulation;

    #[test]
    fn fading_gains_are_frequency_correlated() {
        let ch = FadingChannel::new(300, 20.0, 4, 7);
        let g = ch.gains();
        // adjacent subcarriers nearly equal, far apart ones not
        let near: f32 = (0..299).map(|k| g[k].sub(g[k + 1]).norm_sq()).sum::<f32>() / 299.0;
        let far: f32 = (0..150)
            .map(|k| g[k].sub(g[k + 150]).norm_sq())
            .sum::<f32>()
            / 150.0;
        assert!(
            near * 4.0 < far,
            "channel must be smooth in frequency: near {near}, far {far}"
        );
    }

    #[test]
    fn estimator_recovers_the_channel_at_high_snr() {
        let n = 300;
        let eq = Equalizer::lte();
        let mut ch = FadingChannel::new(n, 35.0, 3, 11);
        let data =
            Modulation::Qpsk.modulate(&random_bits(2 * (n - eq.pilot_positions(n).len()), 1));
        let (grid, _) = eq.insert_pilots(&data, n);
        let rx = ch.apply(&grid);
        let h_est = eq.estimate(&rx);
        let err: f32 = h_est
            .iter()
            .zip(ch.gains())
            .map(|(a, b)| a.sub(*b).norm_sq())
            .sum::<f32>()
            / n as f32;
        let pow: f32 = ch.gains().iter().map(|g| g.norm_sq()).sum::<f32>() / n as f32;
        assert!(err / pow < 0.05, "estimation NMSE too high: {}", err / pow);
    }

    #[test]
    fn equalized_qpsk_demaps_correctly() {
        let n = 300;
        let eq = Equalizer::lte();
        let n_data = n - eq.pilot_positions(n).len();
        let bits = random_bits(2 * n_data, 3);
        let data = Modulation::Qpsk.modulate(&bits);
        let mut ch = FadingChannel::new(n, 25.0, 3, 13);
        let (grid, used) = eq.insert_pilots(&data, n);
        assert_eq!(used, n_data);
        let rx = ch.apply(&grid);
        let h = eq.estimate(&rx);
        let (eq_syms, weights) = eq.equalize(&rx, &h);
        assert_eq!(eq_syms.len(), n_data);
        let llrs = Modulation::Qpsk.demodulate(&eq_syms, 1.0);
        let errs = llrs
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| u8::from(l < 0) != b)
            .count();
        // Rayleigh deep fades can cost an isolated bit even at high
        // SNR (the reason the turbo code exists); demand quasi-clean.
        assert!(
            errs <= 3,
            "25 dB equalized QPSK should be quasi-clean: {errs} errors"
        );
        assert!(weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn without_equalization_fading_destroys_the_constellation() {
        let n = 300;
        let eq = Equalizer::lte();
        let n_data = n - eq.pilot_positions(n).len();
        let bits = random_bits(2 * n_data, 5);
        let data = Modulation::Qpsk.modulate(&bits);
        let mut ch = FadingChannel::new(n, 30.0, 3, 17);
        let (grid, _) = eq.insert_pilots(&data, n);
        let rx = ch.apply(&grid);
        // demap directly, skipping equalization
        let raw: Vec<Cplx> = {
            let pilots = eq.pilot_positions(n);
            (0..n)
                .filter(|k| pilots.binary_search(k).is_err())
                .map(|k| rx[k])
                .collect()
        };
        let llrs = Modulation::Qpsk.demodulate(&raw, 1.0);
        let errs = llrs
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| u8::from(l < 0) != b)
            .count();
        assert!(
            errs > n_data / 8,
            "random phases must scramble unequalized QPSK: only {errs} errors"
        );
    }

    #[test]
    fn pilot_insertion_is_invertible_bookkeeping() {
        let eq = Equalizer::lte();
        let n = 120;
        let pilots = eq.pilot_positions(n);
        assert_eq!(pilots.len(), 20);
        let data = vec![Cplx::new(1.0, -1.0); 100];
        let (grid, used) = eq.insert_pilots(&data, n);
        assert_eq!(used, 100);
        for (k, g) in grid.iter().enumerate() {
            if pilots.binary_search(&k).is_ok() {
                assert_eq!(*g, pilot_symbol());
            }
        }
    }
}
