//! PDCCH / DCI path: TS 36.212 §5.1.3.1 tail-biting convolutional code
//! (rate 1/3, constraint length 7) and an exact tail-biting Viterbi
//! decoder.
//!
//! The DCI module appears in the paper's Figures 3–6 as one of the
//! profiled pipeline stages ("DCI", near-ideal IPC: its decoder is
//! branchy scalar code with good port balance).

/// Generator polynomials G0=133, G1=171, G2=165 (octal), taps over the
/// current input + 6-bit state.
const GENS: [u8; 3] = [0o133_u8, 0o171_u8, 0o165_u8];
const MEM: usize = 6;
const NSTATES: usize = 1 << MEM;

/// Output bits for `input` entering `state` (state = previous 6 inputs,
/// most recent in the MSB).
#[inline]
fn branch_output(state: u8, input: u8) -> [u8; 3] {
    // register = [input, state bits newest→oldest]
    let reg = ((input as u32) << MEM) | state as u32;
    core::array::from_fn(|g| (((reg & GENS[g] as u32).count_ones()) & 1) as u8)
}

/// Next state after shifting `input` in.
#[inline]
fn step_state(state: u8, input: u8) -> u8 {
    (((state as u32) >> 1) | ((input as u32) << (MEM - 1))) as u8
}

/// Tail-biting convolutional encoder: the shift register is initialized
/// with the last 6 information bits, so the trellis starts and ends in
/// the same state. Output is the three streams interleaved
/// `g0 g1 g2 g0 g1 g2 …` (3·len bits).
pub fn conv_encode(bits: &[u8]) -> Vec<u8> {
    assert!(bits.len() >= MEM, "tail-biting needs at least {MEM} bits");
    // Initial state = the state reached after shifting in the last 6
    // information bits; the trellis then provably ends where it began.
    let mut state: u8 = 0;
    for &b in &bits[bits.len() - MEM..] {
        state = step_state(state, b);
    }
    let mut out = Vec::with_capacity(bits.len() * 3);
    for &b in bits {
        out.extend(branch_output(state, b));
        state = step_state(state, b);
    }
    out
}

/// Like [`conv_encode`] but returning the three generator streams
/// separately (`d⁽⁰⁾ d⁽¹⁾ d⁽²⁾`), the form §5.1.4.2 rate matching
/// consumes.
pub fn conv_encode_streams(bits: &[u8]) -> [Vec<u8>; 3] {
    let inter = conv_encode(bits);
    let n = bits.len();
    let mut out = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];
    for (i, &b) in inter.iter().enumerate() {
        out[i % 3].push(b);
    }
    out
}

/// Re-interleave per-stream LLRs into the `g0 g1 g2` triple order
/// [`viterbi_decode_tb`] expects.
pub fn llrs_from_streams(streams: &[Vec<i16>; 3]) -> Vec<i16> {
    let n = streams[0].len();
    assert!(streams.iter().all(|s| s.len() == n));
    let mut out = Vec::with_capacity(3 * n);
    for k in 0..n {
        for s in streams {
            out.push(s[k]);
        }
    }
    out
}

/// Exact tail-biting Viterbi decoder over LLRs (positive → bit 0):
/// runs a constrained Viterbi per candidate start state and keeps the
/// best path whose end state equals its start state. DCI payloads are
/// short (tens of bits), so the 64× loop is cheap and exact.
pub fn viterbi_decode_tb(llrs: &[i16], nbits: usize) -> Vec<u8> {
    assert_eq!(llrs.len(), nbits * 3, "need 3 LLRs per information bit");
    let mut best: Option<(i64, Vec<u8>)> = None;
    for start in 0..NSTATES as u8 {
        if let Some((metric, bits)) = viterbi_fixed(llrs, nbits, start) {
            if best.as_ref().map(|(m, _)| metric > *m).unwrap_or(true) {
                best = Some((metric, bits));
            }
        }
    }
    best.expect("at least one start state must survive").1
}

/// Viterbi with fixed start == end state; returns (metric, bits).
fn viterbi_fixed(llrs: &[i16], nbits: usize, start: u8) -> Option<(i64, Vec<u8>)> {
    const DEAD: i64 = i64::MIN / 4;
    let mut metric = [DEAD; NSTATES];
    metric[start as usize] = 0;
    // survivors[k][state] = (prev_state, input)
    let mut surv = vec![[(0u8, 0u8); NSTATES]; nbits];
    for k in 0..nbits {
        let y = &llrs[3 * k..3 * k + 3];
        let mut next = [DEAD; NSTATES];
        for s in 0..NSTATES as u8 {
            if metric[s as usize] <= DEAD {
                continue;
            }
            for u in 0..2u8 {
                let out = branch_output(s, u);
                // correlate: bit 0 ↦ +LLR, bit 1 ↦ −LLR
                let bm: i64 = out
                    .iter()
                    .zip(y)
                    .map(|(&o, &l)| if o == 0 { l as i64 } else { -(l as i64) })
                    .sum();
                let ns = step_state(s, u) as usize;
                let cand = metric[s as usize] + bm;
                if cand > next[ns] {
                    next[ns] = cand;
                    surv[k][ns] = (s, u);
                }
            }
        }
        metric = next;
    }
    if metric[start as usize] <= DEAD {
        return None;
    }
    // traceback from the tail-biting end state
    let mut bits = vec![0u8; nbits];
    let mut s = start;
    for k in (0..nbits).rev() {
        let (ps, u) = surv[k][s as usize];
        bits[k] = u;
        s = ps;
    }
    // the path is only valid if it truly started at `start`
    (s == start).then_some((metric[start as usize], bits))
}

/// Wrap-around Viterbi (WAVA): the practical tail-biting decoder.
///
/// Instead of the exact 64-restart search of [`viterbi_decode_tb`],
/// run an ordinary Viterbi over the circularly-extended sequence for
/// `passes` wraps with all-equal initial metrics, then trace back from
/// the best end state through the final copy. One wrap is usually
/// enough at operating SNR; the exact decoder remains the oracle.
pub fn viterbi_decode_tb_wava(llrs: &[i16], nbits: usize, passes: usize) -> Vec<u8> {
    assert_eq!(llrs.len(), nbits * 3);
    assert!(passes >= 1);
    let total = nbits * (passes + 1);
    let mut metric = [0i64; NSTATES];
    let mut surv = vec![[(0u8, 0u8); NSTATES]; total];
    for (k, surv_k) in surv.iter_mut().enumerate() {
        let pos = k % nbits;
        let y = &llrs[3 * pos..3 * pos + 3];
        let mut next = [i64::MIN / 4; NSTATES];
        for s in 0..NSTATES as u8 {
            for u in 0..2u8 {
                let out = branch_output(s, u);
                let bm: i64 = out
                    .iter()
                    .zip(y)
                    .map(|(&o, &l)| if o == 0 { l as i64 } else { -(l as i64) })
                    .sum();
                let ns = step_state(s, u) as usize;
                let cand = metric[s as usize] + bm;
                if cand > next[ns] {
                    next[ns] = cand;
                    surv_k[ns] = (s, u);
                }
            }
        }
        // normalize to keep metrics bounded over many wraps
        let best = *next.iter().max().expect("non-empty");
        for m in next.iter_mut() {
            *m -= best;
        }
        metric = next;
    }
    // best end state, trace back through the final copy
    let mut s = (0..NSTATES as u8)
        .max_by_key(|&s| metric[s as usize])
        .expect("non-empty");
    let mut bits = vec![0u8; nbits];
    for k in (total - nbits..total).rev() {
        let (ps, u) = surv[k][s as usize];
        bits[k - (total - nbits)] = u;
        s = ps;
    }
    bits
}

/// A minimal DCI format-1A-style payload (the fields the pipeline
/// exercises; exact field widths vary per bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dci {
    /// Resource block assignment (11 bits here, 5 MHz).
    pub rb_assignment: u16,
    /// Modulation and coding scheme (5 bits).
    pub mcs: u8,
    /// HARQ process number (3 bits).
    pub harq: u8,
    /// New data indicator.
    pub ndi: bool,
    /// Redundancy version (2 bits).
    pub rv: u8,
}

impl Dci {
    /// Payload width in bits.
    pub const BITS: usize = 22;

    /// Pack to bits (MSB first per field).
    pub fn to_bits(self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::BITS);
        let mut push = |val: u32, n: usize| {
            for i in (0..n).rev() {
                v.push(((val >> i) & 1) as u8);
            }
        };
        push(self.rb_assignment as u32 & 0x7FF, 11);
        push(self.mcs as u32 & 0x1F, 5);
        push(self.harq as u32 & 0x7, 3);
        push(self.ndi as u32, 1);
        push(self.rv as u32 & 0x3, 2);
        v
    }

    /// Unpack from bits.
    pub fn from_bits(bits: &[u8]) -> Self {
        assert_eq!(bits.len(), Self::BITS);
        let mut pos = 0;
        let mut take = |n: usize| {
            let mut v = 0u32;
            for _ in 0..n {
                v = (v << 1) | bits[pos] as u32;
                pos += 1;
            }
            v
        };
        Self {
            rb_assignment: take(11) as u16,
            mcs: take(5) as u8,
            harq: take(3) as u8,
            ndi: take(1) != 0,
            rv: take(2) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn encoder_is_tail_biting() {
        // Encoding a rotated message with a rotated start must produce a
        // rotated codeword — the defining circulant property.
        let bits = random_bits(40, 11);
        let mut rot = bits.clone();
        rot.rotate_left(1);
        let c1 = conv_encode(&bits);
        let mut c2 = conv_encode(&rot);
        c2.rotate_right(3);
        assert_eq!(c1, c2, "tail-biting code must be circulant");
    }

    #[test]
    fn encode_decode_noiseless() {
        for seed in 0..4 {
            let bits = random_bits(30, seed);
            let coded = conv_encode(&bits);
            let llrs: Vec<i16> = coded
                .iter()
                .map(|&b| if b == 0 { 100 } else { -100 })
                .collect();
            assert_eq!(viterbi_decode_tb(&llrs, 30), bits, "seed {seed}");
        }
    }

    #[test]
    fn decoder_corrects_errors() {
        let bits = random_bits(40, 5);
        let coded = conv_encode(&bits);
        let mut llrs: Vec<i16> = coded
            .iter()
            .map(|&b| if b == 0 { 100 } else { -100 })
            .collect();
        // flip 8 scattered coded bits of 120
        for i in [3usize, 17, 31, 45, 59, 73, 87, 101] {
            llrs[i] = -llrs[i] / 2;
        }
        assert_eq!(viterbi_decode_tb(&llrs, 40), bits);
    }

    #[test]
    fn all_zero_message_encodes_to_zero() {
        let coded = conv_encode(&[0u8; 20]);
        assert!(coded.iter().all(|&b| b == 0));
    }

    #[test]
    fn rate_is_one_third() {
        assert_eq!(conv_encode(&random_bits(22, 1)).len(), 66);
    }

    #[test]
    fn wava_matches_exact_decoder_on_clean_input() {
        for seed in 0..6 {
            let bits = random_bits(40, seed + 20);
            let coded = conv_encode(&bits);
            let llrs: Vec<i16> = coded
                .iter()
                .map(|&b| if b == 0 { 90 } else { -90 })
                .collect();
            assert_eq!(viterbi_decode_tb_wava(&llrs, 40, 1), bits, "seed {seed}");
            assert_eq!(
                viterbi_decode_tb_wava(&llrs, 40, 2),
                bits,
                "seed {seed} (2 passes)"
            );
        }
    }

    #[test]
    fn wava_matches_exact_decoder_under_noise() {
        let bits = random_bits(44, 9);
        let coded = conv_encode(&bits);
        let mut llrs: Vec<i16> = coded
            .iter()
            .map(|&b| if b == 0 { 60 } else { -60 })
            .collect();
        for i in (0..llrs.len()).step_by(11) {
            llrs[i] = -llrs[i] / 2; // ~9 % inverted
        }
        let exact = viterbi_decode_tb(&llrs, 44);
        let wava = viterbi_decode_tb_wava(&llrs, 44, 2);
        assert_eq!(exact, bits);
        assert_eq!(
            wava, exact,
            "two-wrap WAVA should match the exact search here"
        );
    }

    #[test]
    fn dci_round_trip() {
        let d = Dci {
            rb_assignment: 0x35A,
            mcs: 17,
            harq: 5,
            ndi: true,
            rv: 2,
        };
        assert_eq!(Dci::from_bits(&d.to_bits()), d);
        let bits = d.to_bits();
        assert_eq!(bits.len(), Dci::BITS);
        // through the channel coding
        let coded = conv_encode(&bits);
        let llrs: Vec<i16> = coded
            .iter()
            .map(|&b| if b == 0 { 90 } else { -90 })
            .collect();
        let rx = viterbi_decode_tb(&llrs, Dci::BITS);
        assert_eq!(Dci::from_bits(&rx), d);
    }
}
