//! TS 36.212 §5.1.3.2.3 QPP turbo-code internal interleaver.
//!
//! The permutation is `π(i) = (f1·i + f2·i²) mod K` with `(f1, f2)`
//! drawn from Table 5.1.3-3 for each of the 188 legal block sizes
//! `K ∈ {40, 48, …, 6144}`. Quadratic permutation polynomials with the
//! table's coefficients are bijections on `Z_K`; the tests verify this
//! for every row (a mistyped coefficient would fail loudly).

/// One row of Table 5.1.3-3: block size and the two QPP coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QppRow {
    /// Code block size K (bits).
    pub k: u32,
    /// Linear coefficient f1.
    pub f1: u32,
    /// Quadratic coefficient f2.
    pub f2: u32,
}

/// TS 36.212 Table 5.1.3-3 (all 188 block sizes).
pub const QPP_TABLE: [QppRow; 188] = {
    const fn r(k: u32, f1: u32, f2: u32) -> QppRow {
        QppRow { k, f1, f2 }
    }
    [
        r(40, 3, 10),
        r(48, 7, 12),
        r(56, 19, 42),
        r(64, 7, 16),
        r(72, 7, 18),
        r(80, 11, 20),
        r(88, 5, 22),
        r(96, 11, 24),
        r(104, 7, 26),
        r(112, 41, 84),
        r(120, 103, 90),
        r(128, 15, 32),
        r(136, 9, 34),
        r(144, 17, 108),
        r(152, 9, 38),
        r(160, 21, 120),
        r(168, 101, 84),
        r(176, 21, 44),
        r(184, 57, 46),
        r(192, 23, 48),
        r(200, 13, 50),
        r(208, 27, 52),
        r(216, 11, 36),
        r(224, 27, 56),
        r(232, 85, 58),
        r(240, 29, 60),
        r(248, 33, 62),
        r(256, 15, 32),
        r(264, 17, 198),
        r(272, 33, 68),
        r(280, 103, 210),
        r(288, 19, 36),
        r(296, 19, 74),
        r(304, 37, 76),
        r(312, 19, 78),
        r(320, 21, 120),
        r(328, 21, 82),
        r(336, 115, 84),
        r(344, 193, 86),
        r(352, 21, 44),
        r(360, 133, 90),
        r(368, 81, 46),
        r(376, 45, 94),
        r(384, 23, 48),
        r(392, 243, 98),
        r(400, 151, 40),
        r(408, 155, 102),
        r(416, 25, 52),
        r(424, 51, 106),
        r(432, 47, 72),
        r(440, 91, 110),
        r(448, 29, 168),
        r(456, 29, 114),
        r(464, 247, 58),
        r(472, 29, 118),
        r(480, 89, 180),
        r(488, 91, 122),
        r(496, 157, 62),
        r(504, 55, 84),
        r(512, 31, 64),
        r(528, 17, 66),
        r(544, 35, 68),
        r(560, 227, 420),
        r(576, 65, 96),
        r(592, 19, 74),
        r(608, 37, 76),
        r(624, 41, 234),
        r(640, 39, 80),
        r(656, 185, 82),
        r(672, 43, 252),
        r(688, 21, 86),
        r(704, 155, 44),
        r(720, 79, 120),
        r(736, 139, 92),
        r(752, 23, 94),
        r(768, 217, 48),
        r(784, 25, 98),
        r(800, 17, 80),
        r(816, 127, 102),
        r(832, 25, 52),
        r(848, 239, 106),
        r(864, 17, 48),
        r(880, 137, 110),
        r(896, 215, 112),
        r(912, 29, 114),
        r(928, 15, 58),
        r(944, 147, 118),
        r(960, 29, 60),
        r(976, 59, 122),
        r(992, 65, 124),
        r(1008, 55, 84),
        r(1024, 31, 64),
        r(1056, 17, 66),
        r(1088, 171, 204),
        r(1120, 67, 140),
        r(1152, 35, 72),
        r(1184, 19, 74),
        r(1216, 39, 76),
        r(1248, 19, 78),
        r(1280, 199, 240),
        r(1312, 21, 82),
        r(1344, 211, 252),
        r(1376, 21, 86),
        r(1408, 43, 88),
        r(1440, 149, 60),
        r(1472, 45, 92),
        r(1504, 49, 846),
        r(1536, 71, 48),
        r(1568, 13, 28),
        r(1600, 17, 80),
        r(1632, 25, 102),
        r(1664, 183, 104),
        r(1696, 55, 954),
        r(1728, 127, 96),
        r(1760, 27, 110),
        r(1792, 29, 112),
        r(1824, 29, 114),
        r(1856, 57, 116),
        r(1888, 45, 354),
        r(1920, 31, 120),
        r(1952, 59, 610),
        r(1984, 185, 124),
        r(2016, 113, 420),
        r(2048, 31, 64),
        r(2112, 17, 66),
        r(2176, 171, 136),
        r(2240, 209, 420),
        r(2304, 253, 216),
        r(2368, 367, 444),
        r(2432, 265, 456),
        r(2496, 181, 468),
        r(2560, 39, 80),
        r(2624, 27, 164),
        r(2688, 127, 504),
        r(2752, 143, 172),
        r(2816, 43, 88),
        r(2880, 29, 300),
        r(2944, 45, 92),
        r(3008, 157, 188),
        r(3072, 47, 96),
        r(3136, 13, 28),
        r(3200, 111, 240),
        r(3264, 443, 204),
        r(3328, 51, 104),
        r(3392, 51, 212),
        r(3456, 451, 192),
        r(3520, 257, 220),
        r(3584, 57, 336),
        r(3648, 313, 228),
        r(3712, 271, 232),
        r(3776, 179, 236),
        r(3840, 331, 120),
        r(3904, 363, 244),
        r(3968, 375, 248),
        r(4032, 127, 168),
        r(4096, 31, 64),
        r(4160, 33, 130),
        r(4224, 43, 264),
        r(4288, 33, 134),
        r(4352, 477, 408),
        r(4416, 35, 138),
        r(4480, 233, 280),
        r(4544, 357, 142),
        r(4608, 337, 480),
        r(4672, 37, 146),
        r(4736, 71, 444),
        r(4800, 71, 120),
        r(4864, 37, 152),
        r(4928, 39, 462),
        r(4992, 127, 234),
        r(5056, 39, 158),
        r(5120, 39, 80),
        r(5184, 31, 96),
        r(5248, 113, 902),
        r(5312, 41, 166),
        r(5376, 251, 336),
        r(5440, 43, 170),
        r(5504, 21, 86),
        r(5568, 43, 174),
        r(5632, 45, 176),
        r(5696, 45, 178),
        r(5760, 161, 120),
        r(5824, 89, 182),
        r(5888, 323, 184),
        r(5952, 47, 186),
        r(6016, 23, 94),
        r(6080, 47, 190),
        r(6144, 263, 480),
    ]
};

/// A QPP interleaver instantiated for one block size, with precomputed
/// forward and inverse permutations.
#[derive(Debug, Clone)]
pub struct QppInterleaver {
    k: usize,
    forward: Vec<u32>, // forward[i] = π(i)
    inverse: Vec<u32>, // inverse[π(i)] = i
}

impl QppInterleaver {
    /// Build the interleaver for block size `k`; `k` must be one of the
    /// 188 legal sizes.
    pub fn new(k: usize) -> Self {
        let row = QPP_TABLE
            .iter()
            .find(|r| r.k as usize == k)
            .unwrap_or_else(|| panic!("{k} is not a legal turbo code block size"));
        let (f1, f2) = (row.f1 as u64, row.f2 as u64);
        let ku = k as u64;
        let mut forward = vec![0u32; k];
        let mut inverse = vec![u32::MAX; k];
        for i in 0..ku {
            // (f1*i + f2*i*i) mod K without overflow: i < 6144 so the
            // products fit in u64 comfortably.
            let p = (f1 * i + ((f2 * i) % ku) * i) % ku;
            forward[i as usize] = p as u32;
            inverse[p as usize] = i as u32;
        }
        debug_assert!(
            inverse.iter().all(|&x| x != u32::MAX),
            "QPP not bijective for K={k}"
        );
        Self {
            k,
            forward,
            inverse,
        }
    }

    /// Whether `k` is one of the 188 legal block sizes.
    pub fn is_legal_k(k: usize) -> bool {
        QPP_TABLE.iter().any(|r| r.k as usize == k)
    }

    /// Smallest legal block size ≥ `k` (code-block segmentation helper);
    /// `None` if `k` exceeds 6144.
    pub fn next_legal_k(k: usize) -> Option<usize> {
        QPP_TABLE.iter().map(|r| r.k as usize).find(|&kk| kk >= k)
    }

    /// The block size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Forward-permuted index: π(i).
    #[inline]
    pub fn pi(&self, i: usize) -> usize {
        self.forward[i] as usize
    }

    /// The full forward permutation table (`table[i] = π(i)`), for hot
    /// loops that iterate it rather than calling [`Self::pi`] per
    /// element.
    #[inline]
    pub fn pi_table(&self) -> &[u32] {
        &self.forward
    }

    /// The full inverse permutation table (`table[π(i)] = i`).
    #[inline]
    pub fn pi_inv_table(&self) -> &[u32] {
        &self.inverse
    }

    /// Inverse-permuted index: π⁻¹(j).
    #[inline]
    pub fn pi_inv(&self, j: usize) -> usize {
        self.inverse[j] as usize
    }

    /// Interleave: `out[i] = input[π(i)]` (the order the second
    /// constituent encoder reads the block).
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.k);
        self.forward.iter().map(|&p| input[p as usize]).collect()
    }

    /// De-interleave: inverse of [`QppInterleaver::interleave`].
    pub fn deinterleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.k);
        self.inverse.iter().map(|&p| input[p as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_expected_shape() {
        assert_eq!(QPP_TABLE.len(), 188);
        assert_eq!(QPP_TABLE[0].k, 40);
        assert_eq!(QPP_TABLE[187].k, 6144);
        // K spacing per spec: 8 up to 512, 16 to 1024, 32 to 2048, 64 beyond.
        for w in QPP_TABLE.windows(2) {
            let (a, b) = (w[0].k, w[1].k);
            let step = b - a;
            let expected = if b <= 512 {
                8
            } else if b <= 1024 {
                16
            } else if b <= 2048 {
                32
            } else {
                64
            };
            assert_eq!(step, expected, "bad K spacing at {a}→{b}");
        }
    }

    #[test]
    fn every_row_is_a_bijection() {
        // The critical structural property; a mistyped coefficient
        // would break it.
        for row in &QPP_TABLE {
            let il = QppInterleaver::new(row.k as usize);
            let mut seen = vec![false; row.k as usize];
            for i in 0..row.k as usize {
                let p = il.pi(i);
                assert!(!seen[p], "K={} duplicates π({i})={p}", row.k);
                seen[p] = true;
            }
        }
    }

    #[test]
    fn inverse_really_inverts() {
        for k in [40usize, 512, 1504, 6144] {
            let il = QppInterleaver::new(k);
            for i in 0..k {
                assert_eq!(il.pi_inv(il.pi(i)), i);
            }
        }
    }

    #[test]
    fn interleave_round_trip() {
        let il = QppInterleaver::new(104);
        let data: Vec<u16> = (0..104).collect();
        let inter = il.interleave(&data);
        assert_ne!(inter, data, "permutation must not be identity");
        assert_eq!(il.deinterleave(&inter), data);
    }

    #[test]
    fn pi_zero_is_zero() {
        // π(0) = 0 for every QPP (no constant term).
        for k in [40usize, 2048, 6144] {
            assert_eq!(QppInterleaver::new(k).pi(0), 0);
        }
    }

    #[test]
    fn k40_matches_spec_formula() {
        // Hand-computed from f1=3, f2=10, K=40:
        // π(1) = 13, π(2) = 46 mod 40 = 6, π(3) = 99 mod 40 = 19.
        let il = QppInterleaver::new(40);
        assert_eq!(il.pi(1), 13);
        assert_eq!(il.pi(2), 6);
        assert_eq!(il.pi(3), 19);
    }

    #[test]
    fn next_legal_k_rounds_up() {
        assert_eq!(QppInterleaver::next_legal_k(40), Some(40));
        assert_eq!(QppInterleaver::next_legal_k(41), Some(48));
        assert_eq!(QppInterleaver::next_legal_k(513), Some(528));
        assert_eq!(QppInterleaver::next_legal_k(6144), Some(6144));
        assert_eq!(QppInterleaver::next_legal_k(6145), None);
    }

    #[test]
    #[should_panic(expected = "not a legal")]
    fn illegal_k_panics() {
        let _ = QppInterleaver::new(41);
    }
}
