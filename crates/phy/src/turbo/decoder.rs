//! Scalar fixed-point max-log-MAP iterative turbo decoder.
//!
//! This is the reference ("oracle") implementation: it performs exactly
//! the same i16 saturating operations, in the same order, as the SIMD
//! kernel in [`super::simd_decoder`], so the two are bit-exact. That
//! contract is what lets the arrangement experiments claim functional
//! equivalence: baseline-arranged and APCM-arranged inputs feed the same
//! decoder and must produce identical transport blocks.
//!
//! Algorithm notes:
//!
//! * Branch metrics are halved on entry (`γ₀ = (Lₛ + Lₐ) >> 1`,
//!   `γₚ = Lₚ >> 1`) so path metrics stay within i16 with saturating
//!   arithmetic, the standard OAI fixed-point trick.
//! * Path metrics are normalized by subtracting state 0's metric each
//!   step (cheap to broadcast in SIMD).
//! * Extrinsic information is scaled by 0.75 between half-iterations
//!   (`e ← (e >> 1) + (e >> 2)`), the usual max-log correction factor.
//! * Trellis termination: β is initialized by walking the 3 tail steps
//!   backward from the all-zero state, using the received tail LLRs.

use super::trellis::{self, STATES};
use crate::crc::Crc;
use crate::interleaver::QppInterleaver;
use crate::llr::{adds16, llr_to_bit, max16, srai16, subs16, Llr, TurboLlrs};

/// Metric assigned to unreachable states. Far below any real metric but
/// with headroom so saturating arithmetic cannot wrap it into
/// plausibility.
pub const NEG_INF: Llr = -8192;

/// Result of a decode call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Hard-decision information bits (length K).
    pub bits: Vec<u8>,
    /// Full iterations actually run (≤ the configured maximum when
    /// early stopping is active).
    pub iterations_run: usize,
    /// CRC verdict when an early-stop CRC was supplied.
    pub crc_ok: Option<bool>,
}

/// Branch-metric pair for one trellis step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Gamma {
    /// `(Lₛ + Lₐ) >> 1` — the systematic + a-priori half-metric.
    pub g0: Llr,
    /// `Lₚ >> 1` — the parity half-metric.
    pub gp: Llr,
}

impl Gamma {
    #[inline]
    pub(crate) fn new(ls: Llr, la: Llr, lp: Llr) -> Self {
        Self {
            g0: srai16(adds16(ls, la), 1),
            gp: srai16(lp, 1),
        }
    }

    /// Metric of a transition carrying info bit `u` and parity bit `p`
    /// (bit 0 ↦ +1). Exactly `adds16(±g0, ±gp)` — the same op the SIMD
    /// kernel's mask-blend produces.
    #[inline]
    pub(crate) fn branch(self, u: u8, p: u8) -> Llr {
        let g0s = if u == 0 { self.g0 } else { subs16(0, self.g0) };
        let gps = if p == 0 { self.gp } else { subs16(0, self.gp) };
        adds16(g0s, gps)
    }
}

/// Extrinsic scaling by 0.75: `(e >> 1) + (e >> 2)`.
#[inline]
pub(crate) fn scale_extrinsic(e: Llr) -> Llr {
    adds16(srai16(e, 1), srai16(e, 2))
}

/// Walk the three termination steps backward to produce β at step K.
/// Shared by both decoder implementations (tail work is O(1) and
/// special-cased in OAI too).
pub(crate) fn beta_init_from_tails(tail_sys: &[Llr; 3], tail_par: &[Llr; 3]) -> [Llr; STATES] {
    let mut beta = [NEG_INF; STATES];
    beta[0] = 0;
    for t in (0..3).rev() {
        let g = Gamma::new(tail_sys[t], 0, tail_par[t]);
        let mut prev = [NEG_INF; STATES];
        for (s, pb) in prev.iter_mut().enumerate() {
            // In termination the input is fixed by the state.
            let u = trellis::term_input(s as u8);
            let p = trellis::parity(s as u8, u);
            let ns = trellis::next_state(s as u8, u) as usize;
            *pb = adds16(beta[ns], g.branch(u, p));
        }
        let n = prev[0];
        for pb in &mut prev {
            *pb = subs16(*pb, n);
        }
        beta = prev;
    }
    beta
}

/// One soft-in/soft-out max-log-MAP pass over a constituent trellis.
/// Returns `(extrinsic, posterior)` LLRs, both length K.
pub(crate) fn siso(
    sys: &[Llr],
    par: &[Llr],
    apriori: &[Llr],
    tail_sys: &[Llr; 3],
    tail_par: &[Llr; 3],
) -> (Vec<Llr>, Vec<Llr>) {
    let k = sys.len();
    assert!(par.len() == k && apriori.len() == k);

    let gammas: Vec<Gamma> = (0..k)
        .map(|i| Gamma::new(sys[i], apriori[i], par[i]))
        .collect();

    // Forward recursion, storing α for every step.
    let mut alphas: Vec<[Llr; STATES]> = Vec::with_capacity(k + 1);
    let mut alpha = [NEG_INF; STATES];
    alpha[0] = 0;
    alphas.push(alpha);
    for g in &gammas {
        let mut next = [NEG_INF; STATES];
        for (ns, nb) in next.iter_mut().enumerate() {
            // NEG_INF is both fold identity and a deliberate path-
            // metric floor: it stops saturated wrong-path metrics from
            // blowing up the extrinsics (standard fixed-point hygiene).
            // The SIMD kernels clamp with an explicit max against
            // NEG_INF to stay bit-exact with this.
            let mut best = NEG_INF;
            for u in 0..2u8 {
                let s = trellis::pred_state(ns as u8, u) as usize;
                let p = trellis::parity(s as u8, u);
                best = max16(best, adds16(alpha[s], g.branch(u, p)));
            }
            *nb = best;
        }
        let n = next[0];
        for nb in &mut next {
            *nb = subs16(*nb, n);
        }
        alpha = next;
        alphas.push(alpha);
    }

    // Backward recursion + extrinsic, fused (β[k+1] is live while the
    // step-k extrinsic is computed).
    let mut ext = vec![0 as Llr; k];
    let mut post = vec![0 as Llr; k];
    let mut beta = beta_init_from_tails(tail_sys, tail_par);
    for i in (0..k).rev() {
        let g = gammas[i];
        let a = &alphas[i];
        // extrinsic: best path metric per hypothesis u
        let mut m = [NEG_INF; 2]; // floored fold identity (see α note)
        #[allow(clippy::needless_range_loop)] // s is a trellis state id
        for s in 0..STATES {
            for u in 0..2u8 {
                let p = trellis::parity(s as u8, u);
                let ns = trellis::next_state(s as u8, u) as usize;
                let metric = adds16(adds16(a[s], g.branch(u, p)), beta[ns]);
                m[u as usize] = max16(m[u as usize], metric);
            }
        }
        let l = subs16(m[0], m[1]);
        post[i] = l;
        // The u-dependent part of γ contributes 2·g0 to L; remove it
        // (and the a-priori with it) to leave the extrinsic.
        ext[i] = subs16(l, adds16(g.g0, g.g0));
        // β update
        let mut prev = [NEG_INF; STATES];
        for (s, pb) in prev.iter_mut().enumerate() {
            let mut best = NEG_INF; // floored fold identity (see α note)
            for u in 0..2u8 {
                let p = trellis::parity(s as u8, u);
                let ns = trellis::next_state(s as u8, u) as usize;
                best = max16(best, adds16(beta[ns], g.branch(u, p)));
            }
            *pb = best;
        }
        let n = prev[0];
        for pb in &mut prev {
            *pb = subs16(*pb, n);
        }
        beta = prev;
    }
    (ext, post)
}

/// Iterative turbo decoder for one block size.
#[derive(Debug, Clone)]
pub struct TurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
}

impl TurboDecoder {
    /// Decoder for block size `k` with the given maximum number of full
    /// iterations (OAI default territory: 5–8).
    pub fn new(k: usize, max_iterations: usize) -> Self {
        assert!(max_iterations >= 1);
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Configured iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// The interleaver (shared structure with the encoder).
    pub fn interleaver(&self) -> &QppInterleaver {
        &self.il
    }

    /// Decode; runs all configured iterations.
    pub fn decode(&self, input: &TurboLlrs) -> DecodeOutcome {
        self.decode_inner(input, None)
    }

    /// Decode with CRC-based early stopping: after each full iteration
    /// the hard decision is checked against `crc`, and decoding stops as
    /// soon as it passes (the OAI/FlexRAN optimization).
    pub fn decode_with_crc(&self, input: &TurboLlrs, crc: &Crc) -> DecodeOutcome {
        self.decode_inner(input, Some(crc))
    }

    /// Decode under an externally clamped iteration budget (the
    /// deadline-degradation hook): runs at most
    /// `min(cap, max_iterations)` full iterations (floor 1), with
    /// optional CRC early stopping. Lets a deadline-pressed pipeline
    /// trade BLER for latency without rebuilding its cached per-K
    /// decoders.
    pub fn decode_capped(&self, input: &TurboLlrs, cap: usize, crc: Option<&Crc>) -> DecodeOutcome {
        let iters = cap.clamp(1, self.max_iterations);
        self.decode_limited(input, iters, crc)
    }

    fn decode_inner(&self, input: &TurboLlrs, crc: Option<&Crc>) -> DecodeOutcome {
        self.decode_limited(input, self.max_iterations, crc)
    }

    fn decode_limited(
        &self,
        input: &TurboLlrs,
        iterations: usize,
        crc: Option<&Crc>,
    ) -> DecodeOutcome {
        let k = self.il.k();
        assert_eq!(input.k, k, "input block size mismatch");
        let s = &input.streams;
        let sys_pi = self.il.interleave(&s.sys);

        let mut la1 = vec![0 as Llr; k];
        let mut bits = vec![0u8; k];
        let mut iterations_run = 0;
        let mut crc_ok = None;

        for _ in 0..iterations {
            iterations_run += 1;
            let (e1, _) = siso(&s.sys, &s.p1, &la1, &input.tails.sys1, &input.tails.p1);
            let la2: Vec<Llr> = self
                .il
                .interleave(&e1.iter().map(|&e| scale_extrinsic(e)).collect::<Vec<_>>());
            let (e2, post2) = siso(&sys_pi, &s.p2, &la2, &input.tails.sys2, &input.tails.p2);
            la1 = self
                .il
                .deinterleave(&e2.iter().map(|&e| scale_extrinsic(e)).collect::<Vec<_>>());
            // Decision from decoder 2's posterior, mapped back to
            // natural order.
            let post = self.il.deinterleave(&post2);
            for (b, &l) in bits.iter_mut().zip(&post) {
                *b = llr_to_bit(l);
            }
            if let Some(c) = crc {
                let ok = c.check(&bits).is_some();
                crc_ok = Some(ok);
                if ok {
                    break;
                }
            }
        }
        DecodeOutcome {
            bits,
            iterations_run,
            crc_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::crc::CRC24B;
    use crate::llr::{bit_to_llr, TurboLlrs};
    use crate::turbo::TurboEncoder;

    /// Encode, convert to LLRs of magnitude `mag`, optionally flip some
    /// coded bits, return decoder input.
    fn make_input(bits: &[u8], k: usize, mag: Llr, flip: &[usize]) -> TurboLlrs {
        let cw = TurboEncoder::new(k).encode(bits);
        let mut d = cw.to_dstreams();
        for &f in flip {
            let stream = f % 3;
            let pos = (f / 3) % (k + 4);
            d[stream][pos] ^= 1;
        }
        let soft: [Vec<Llr>; 3] = d
            .iter()
            .map(|st| st.iter().map(|&b| bit_to_llr(b, mag)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        TurboLlrs::from_dstreams(&soft, k)
    }

    #[test]
    fn noiseless_block_decodes_exactly() {
        for k in [40usize, 104, 512] {
            let bits = random_bits(k, k as u64);
            let input = make_input(&bits, k, 100, &[]);
            let out = TurboDecoder::new(k, 4).decode(&input);
            assert_eq!(out.bits, bits, "K={k}");
            assert_eq!(out.iterations_run, 4);
        }
    }

    #[test]
    fn corrects_flipped_bits() {
        let k = 256;
        let bits = random_bits(k, 77);
        // flip a scattering of coded bits (~5% of 3K+12)
        let flips: Vec<usize> = (0..38).map(|i| i * 20 + 3).collect();
        let input = make_input(&bits, k, 100, &flips);
        let out = TurboDecoder::new(k, 8).decode(&input);
        assert_eq!(out.bits, bits, "turbo code must correct scattered errors");
    }

    #[test]
    fn erased_systematic_still_decodes() {
        // Zero out a run of systematic LLRs; the parities carry it.
        let k = 512;
        let bits = random_bits(k, 99);
        let mut input = make_input(&bits, k, 100, &[]);
        for i in 100..160 {
            input.streams.sys[i] = 0;
        }
        let out = TurboDecoder::new(k, 8).decode(&input);
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn crc_early_stop_saves_iterations() {
        let k = 104;
        let payload = random_bits(k - 24, 5);
        let block = CRC24B.attach(&payload);
        assert_eq!(block.len(), k);
        let input = make_input(&block, k, 100, &[]);
        let dec = TurboDecoder::new(k, 8);
        let out = dec.decode_with_crc(&input, &CRC24B);
        assert_eq!(out.crc_ok, Some(true));
        assert!(out.iterations_run < 8, "clean block must stop early");
        assert_eq!(out.bits, block);
    }

    #[test]
    fn crc_reports_failure_on_garbage() {
        let k = 104;
        // random LLRs — undecodable
        let mut input = make_input(&random_bits(k, 1), k, 4, &[]);
        let noise = random_bits(3 * k, 1234);
        for i in 0..k {
            input.streams.sys[i] = if noise[i] == 1 { 4 } else { -4 };
            input.streams.p1[i] = if noise[i + k] == 1 { 4 } else { -4 };
            input.streams.p2[i] = if noise[i + 2 * k] == 1 { 4 } else { -4 };
        }
        let out = TurboDecoder::new(k, 2).decode_with_crc(&input, &CRC24B);
        assert_eq!(out.crc_ok, Some(false));
        assert_eq!(out.iterations_run, 2);
    }

    #[test]
    fn extrinsic_scaling_is_three_quarters() {
        assert_eq!(scale_extrinsic(100), 75);
        assert_eq!(scale_extrinsic(-100), -75);
        assert_eq!(scale_extrinsic(-101), -77); // floor shifts on negatives
        assert_eq!(scale_extrinsic(0), 0);
        assert_eq!(scale_extrinsic(4), 3);
    }

    #[test]
    fn beta_init_prefers_tail_consistent_states() {
        // With strong tail LLRs for the all-zero tail, state 0 should
        // carry the best β at step K.
        let b = beta_init_from_tails(&[100, 100, 100], &[100, 100, 100]);
        assert_eq!(b[0], 0, "normalized to state 0");
        assert!(b.iter().skip(1).all(|&x| x <= 0), "{b:?}");
    }

    #[test]
    fn gamma_branch_signs() {
        let g = Gamma::new(10, 2, 6); // g0 = 6, gp = 3
        assert_eq!(g.branch(0, 0), 9);
        assert_eq!(g.branch(0, 1), 3);
        assert_eq!(g.branch(1, 0), -3);
        assert_eq!(g.branch(1, 1), -9);
    }

    #[test]
    fn capped_decode_respects_budget() {
        let k = 104;
        let bits = random_bits(k, 21);
        let input = make_input(&bits, k, 100, &[]);
        let dec = TurboDecoder::new(k, 8);
        // Cap below the configured max limits work done.
        let out = dec.decode_capped(&input, 2, None);
        assert_eq!(out.iterations_run, 2);
        assert_eq!(out.bits, bits, "clean block decodes even when capped");
        // Cap of 0 floors at one iteration; cap above max clamps down.
        assert_eq!(dec.decode_capped(&input, 0, None).iterations_run, 1);
        assert_eq!(dec.decode_capped(&input, 99, None).iterations_run, 8);
    }

    #[test]
    fn mismatched_block_size_panics() {
        let input = make_input(&random_bits(40, 1), 40, 50, &[]);
        let dec = TurboDecoder::new(48, 2);
        let r = std::panic::catch_unwind(|| dec.decode(&input));
        assert!(r.is_err());
    }
}
