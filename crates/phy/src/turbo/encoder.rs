//! TS 36.212 §5.1.3.2 turbo encoder.

use super::trellis;
use crate::interleaver::QppInterleaver;

/// Encoded output of one code block: systematic and two parity streams
/// of length `K`, plus the 12 tail bits arranged per the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurboCodeword {
    /// Block size K.
    pub k: usize,
    /// Systematic bits `x_k` (the input block).
    pub sys: Vec<u8>,
    /// First constituent parity `z_k`.
    pub p1: Vec<u8>,
    /// Second constituent parity `z'_k` (interleaved input).
    pub p2: Vec<u8>,
    /// Encoder-1 termination: `x_K, x_{K+1}, x_{K+2}`.
    pub tail_sys1: [u8; 3],
    /// Encoder-1 termination parity: `z_K, z_{K+1}, z_{K+2}`.
    pub tail_p1: [u8; 3],
    /// Encoder-2 termination: `x'_K, x'_{K+1}, x'_{K+2}`.
    pub tail_sys2: [u8; 3],
    /// Encoder-2 termination parity: `z'_K, z'_{K+1}, z'_{K+2}`.
    pub tail_p2: [u8; 3],
}

impl TurboCodeword {
    /// Assemble the spec's three output streams `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾`, each of
    /// length `K + 4`, with the tail-bit arrangement of §5.1.3.2.2:
    ///
    /// ```text
    /// d0: x_0..x_{K-1},  x_K,     z_{K+1}, x'_K,     z'_{K+1}
    /// d1: z_0..z_{K-1},  z_K,     x_{K+2}, z'_K,     x'_{K+2}
    /// d2: z'_0..z'_{K-1}, x_{K+1}, z_{K+2}, x'_{K+1}, z'_{K+2}
    /// ```
    pub fn to_dstreams(&self) -> [Vec<u8>; 3] {
        let mut d0 = self.sys.clone();
        let mut d1 = self.p1.clone();
        let mut d2 = self.p2.clone();
        d0.extend([
            self.tail_sys1[0],
            self.tail_p1[1],
            self.tail_sys2[0],
            self.tail_p2[1],
        ]);
        d1.extend([
            self.tail_p1[0],
            self.tail_sys1[2],
            self.tail_p2[0],
            self.tail_sys2[2],
        ]);
        d2.extend([
            self.tail_sys1[1],
            self.tail_p1[2],
            self.tail_sys2[1],
            self.tail_p2[2],
        ]);
        [d0, d1, d2]
    }

    /// Total number of coded bits (3K + 12).
    pub fn coded_len(&self) -> usize {
        3 * self.k + 12
    }
}

/// The turbo encoder for one block size.
#[derive(Debug, Clone)]
pub struct TurboEncoder {
    il: QppInterleaver,
}

impl TurboEncoder {
    /// Encoder for block size `k` (must be a legal QPP size).
    pub fn new(k: usize) -> Self {
        Self {
            il: QppInterleaver::new(k),
        }
    }

    /// The interleaver in use (shared with the decoder).
    pub fn interleaver(&self) -> &QppInterleaver {
        &self.il
    }

    /// Encode one block of `K` information bits.
    pub fn encode(&self, bits: &[u8]) -> TurboCodeword {
        let k = self.il.k();
        assert_eq!(bits.len(), k, "block must be exactly K={k} bits");
        let interleaved = self.il.interleave(bits);
        let (p1, tail_sys1, tail_p1) = Self::rsc_encode(bits);
        let (p2, tail_sys2, tail_p2) = Self::rsc_encode(&interleaved);
        TurboCodeword {
            k,
            sys: bits.to_vec(),
            p1,
            p2,
            tail_sys1,
            tail_p1,
            tail_sys2,
            tail_p2,
        }
    }

    /// One RSC constituent pass: parity stream plus termination bits.
    fn rsc_encode(bits: &[u8]) -> (Vec<u8>, [u8; 3], [u8; 3]) {
        let mut s = 0u8;
        let mut parity = Vec::with_capacity(bits.len());
        for &u in bits {
            parity.push(trellis::parity(s, u));
            s = trellis::next_state(s, u);
        }
        let mut tail_sys = [0u8; 3];
        let mut tail_p = [0u8; 3];
        for i in 0..3 {
            let u = trellis::term_input(s);
            tail_sys[i] = u;
            tail_p[i] = trellis::parity(s, u);
            s = trellis::next_state(s, u);
        }
        debug_assert_eq!(s, 0, "trellis must terminate in the zero state");
        (parity, tail_sys, tail_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn output_lengths_and_rate() {
        let enc = TurboEncoder::new(40);
        let cw = enc.encode(&random_bits(40, 1));
        assert_eq!(cw.sys.len(), 40);
        assert_eq!(cw.p1.len(), 40);
        assert_eq!(cw.p2.len(), 40);
        assert_eq!(cw.coded_len(), 132); // 3K + 12
        let [d0, d1, d2] = cw.to_dstreams();
        assert_eq!(d0.len(), 44);
        assert_eq!(d1.len(), 44);
        assert_eq!(d2.len(), 44);
    }

    #[test]
    fn systematic_stream_is_the_input() {
        let enc = TurboEncoder::new(64);
        let bits = random_bits(64, 2);
        let cw = enc.encode(&bits);
        assert_eq!(cw.sys, bits);
        let [d0, ..] = cw.to_dstreams();
        assert_eq!(&d0[..64], &bits[..]);
    }

    #[test]
    fn all_zero_input_yields_all_zero_codeword() {
        // Linear code: 0 → 0 (including tails: termination from state 0
        // is the zero transition).
        let enc = TurboEncoder::new(40);
        let cw = enc.encode(&[0; 40]);
        assert!(cw.p1.iter().all(|&b| b == 0));
        assert!(cw.p2.iter().all(|&b| b == 0));
        assert_eq!(cw.tail_sys1, [0; 3]);
        assert_eq!(cw.tail_p2, [0; 3]);
    }

    #[test]
    fn encoder_is_linear_over_gf2() {
        let enc = TurboEncoder::new(104);
        let a = random_bits(104, 3);
        let b = random_bits(104, 4);
        let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ca = enc.encode(&a);
        let cb = enc.encode(&b);
        let cab = enc.encode(&ab);
        for i in 0..104 {
            assert_eq!(cab.p1[i], ca.p1[i] ^ cb.p1[i], "p1 not linear at {i}");
            assert_eq!(cab.p2[i], ca.p2[i] ^ cb.p2[i], "p2 not linear at {i}");
        }
    }

    #[test]
    fn parity_streams_differ_for_random_input() {
        let enc = TurboEncoder::new(512);
        let cw = enc.encode(&random_bits(512, 5));
        assert_ne!(cw.p1, cw.p2, "interleaving must decorrelate the parities");
        // parity streams carry information (not constant)
        assert!(cw.p1.contains(&1));
        assert!(cw.p1.contains(&0));
    }

    #[test]
    fn single_bit_difference_propagates_widely_in_p2() {
        // The interleaver spreads a single flipped input bit far apart
        // in the second parity stream — the essence of turbo coding.
        let enc = TurboEncoder::new(256);
        let a = vec![0u8; 256];
        let mut b = a.clone();
        b[100] = 1;
        let ca = enc.encode(&a);
        let cb = enc.encode(&b);
        let diff1: usize = ca.p1.iter().zip(&cb.p1).filter(|(x, y)| x != y).count();
        let diff2: usize = ca.p2.iter().zip(&cb.p2).filter(|(x, y)| x != y).count();
        assert!(diff1 > 4, "IIR parity must smear the impulse: {diff1}");
        assert!(
            diff2 > 4,
            "interleaved parity must smear the impulse: {diff2}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly K")]
    fn wrong_block_size_panics() {
        TurboEncoder::new(40).encode(&[0; 39]);
    }
}
