//! Real-intrinsics max-log-MAP turbo decoder for the host CPU.
//!
//! The VM kernel in [`super::simd_decoder`] is an *instrument*: it
//! interprets the decoder's SIMD instruction stream so `vran-uarch`
//! can account ports and µops. This module is the *fast path*: the
//! same algorithm, phase for phase, written against `std::arch` so
//! the uplink pipeline decodes on the host's actual vector units.
//!
//! Mirrored structure (and the bit-exactness contract with
//! [`super::decoder`]):
//!
//! * **γ phase** — lane-parallel over the arranged `S1`/`YP1`/`YP2`
//!   streams: `γ₀ = (Lₛ + Lₐ) >> 1` and `γₚ = Lₚ >> 1`, eight trellis
//!   steps per `_mm_adds_epi16`/`_mm_srai_epi16`.
//! * **α phase** — all 8 trellis states live in one xmm register; the
//!   per-input-bit predecessor gather is a lane shuffle
//!   (`_mm_shuffle_epi8` under SSSE3, a
//!   `_mm_shufflelo_epi16`/`_mm_shufflehi_epi16`/`_mm_shuffle_epi32`
//!   decomposition under bare SSE2), followed by saturating add, max
//!   against the `NEG_INF` floor, and a broadcast-lane-0 normalize.
//! * **β + extrinsic phase** — fused like the scalar reference: the
//!   successor gather, a horizontal-max tree
//!   (`_mm_srli_si128`/`_mm_max_epi16`) per bit hypothesis, and the
//!   `L − 2·γ₀` extrinsic, then the β update reusing the same gathered
//!   registers.
//!
//! Every arithmetic instruction is a saturating i16 op applied to the
//! same operands in the same order as the scalar oracle, and `max` on
//! i16 is exact, associative and commutative — so decoded bits,
//! extrinsics, posteriors *and* iteration counts are identical on
//! every ISA level (enforced by the property tests below).
//!
//! Dispatch is by [`std::arch::is_x86_feature_detected!`] via
//! [`vran_simd::host`], with a portable scalar fallback, following
//! `vran-arrange`'s native kernels.

use super::decoder::{beta_init_from_tails, scale_extrinsic, DecodeOutcome, NEG_INF};
use super::trellis::{self, STATES};
use crate::crc::Crc;
use crate::interleaver::QppInterleaver;
use crate::llr::{adds16, llr_to_bit, max16, srai16, subs16, Llr, TailLlrs, TurboLlrs};
use vran_simd::host::{self, HostIsa};

/// ISA level a [`NativeTurboDecoder`] runs its SISO kernel at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecoderIsa {
    /// Portable scalar lanes — always available, the dispatch floor.
    Scalar,
    /// 128-bit kernel with `shufflelo/hi + shuffle_epi32` state gathers.
    Sse2,
    /// 128-bit kernel with single-µop `pshufb` state gathers.
    Ssse3,
    /// 128-bit kernel, VEX-encoded: `pshufb` gathers plus
    /// `vpbroadcastw` γ broadcasts straight from memory, which moves
    /// the per-step broadcasts off the shuffle port entirely.
    Avx2,
}

impl DecoderIsa {
    /// Stable lowercase label for bench metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            DecoderIsa::Scalar => "scalar",
            DecoderIsa::Sse2 => "sse2",
            DecoderIsa::Ssse3 => "ssse3",
            DecoderIsa::Avx2 => "avx2",
        }
    }

    /// The [`HostIsa`] feature level this kernel requires.
    pub fn required_isa(self) -> HostIsa {
        match self {
            DecoderIsa::Scalar => HostIsa::Scalar,
            DecoderIsa::Sse2 => HostIsa::Sse2,
            DecoderIsa::Ssse3 => HostIsa::Ssse3,
            DecoderIsa::Avx2 => HostIsa::Avx2,
        }
    }

    /// Levels usable on this host, ascending; `Scalar` always first.
    pub fn available() -> Vec<DecoderIsa> {
        [
            DecoderIsa::Scalar,
            DecoderIsa::Sse2,
            DecoderIsa::Ssse3,
            DecoderIsa::Avx2,
        ]
        .into_iter()
        .filter(|isa| host::has(isa.required_isa()))
        .collect()
    }

    /// The most capable level the host supports.
    pub fn best() -> DecoderIsa {
        *DecoderIsa::available()
            .last()
            .expect("scalar always present")
    }
}

/// Reusable decode working memory: branch metrics, the α trellis,
/// extrinsic/a-priori buffers. Owned by long-lived callers (the uplink
/// pipeline) so the per-code-block hot loop performs no heap
/// allocations after warm-up; the allocation/reuse counters make that
/// claim checkable.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    g0: Vec<Llr>,
    gp: Vec<Llr>,
    alpha: Vec<Llr>,
    ext: Vec<Llr>,
    post: Vec<i32>,
    la1: Vec<Llr>,
    la2: Vec<Llr>,
    sys_pi: Vec<Llr>,
    allocations: u64,
    reuses: u64,
}

impl DecodeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for block length `k`, growing only when the
    /// retained capacity is insufficient.
    fn ensure(&mut self, k: usize) {
        let mut grew = false;
        {
            let mut fit = |v: &mut Vec<Llr>, n: usize| {
                grew |= v.capacity() < n;
                v.resize(n, 0);
            };
            fit(&mut self.g0, k);
            fit(&mut self.gp, k);
            fit(&mut self.alpha, (k + 1) * STATES);
            fit(&mut self.ext, k);
            fit(&mut self.la1, k);
            fit(&mut self.la2, k);
            fit(&mut self.sys_pi, k);
        }
        grew |= self.post.capacity() < k;
        self.post.resize(k, 0);
        if grew {
            self.allocations += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Times `ensure` had to grow at least one buffer.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Times `ensure` was served entirely from retained capacity
    /// (i.e. heap allocations avoided).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// Iterative turbo decoder running real SIMD kernels, bit-exact with
/// [`super::decoder::TurboDecoder`].
#[derive(Debug, Clone)]
pub struct NativeTurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
    isa: DecoderIsa,
}

impl NativeTurboDecoder {
    /// Decoder for block size `k` dispatching to the best ISA level the
    /// host supports.
    pub fn new(k: usize, max_iterations: usize) -> Self {
        Self::with_isa(k, max_iterations, DecoderIsa::best())
    }

    /// Decoder pinned to a specific ISA level (for A/B testing and
    /// reproducibility). Panics if the host lacks the feature — check
    /// [`DecoderIsa::available`] first.
    pub fn with_isa(k: usize, max_iterations: usize, isa: DecoderIsa) -> Self {
        assert!(max_iterations >= 1);
        assert!(
            host::has(isa.required_isa()),
            "host lacks {} support",
            isa.name()
        );
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
            isa,
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Configured iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// The ISA level this decoder dispatches to.
    pub fn isa(&self) -> DecoderIsa {
        self.isa
    }

    /// Decode; runs all configured iterations.
    pub fn decode(&self, input: &TurboLlrs) -> DecodeOutcome {
        self.decode_scratch(input, None, &mut DecodeScratch::new())
    }

    /// Decode with CRC-based early stopping (see
    /// [`super::decoder::TurboDecoder::decode_with_crc`]).
    pub fn decode_with_crc(&self, input: &TurboLlrs, crc: &Crc) -> DecodeOutcome {
        self.decode_scratch(input, Some(crc), &mut DecodeScratch::new())
    }

    /// Decode reusing caller-owned scratch (allocation-free after
    /// warm-up, except the returned bit vector).
    pub fn decode_scratch(
        &self,
        input: &TurboLlrs,
        crc: Option<&Crc>,
        scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        assert_eq!(input.k, self.il.k(), "input block size mismatch");
        let mut bits = Vec::new();
        let (iterations_run, crc_ok) = self.decode_streams_into(
            &input.streams.sys,
            &input.streams.p1,
            &input.streams.p2,
            &input.tails,
            crc,
            scratch,
            &mut bits,
        );
        DecodeOutcome {
            bits,
            iterations_run,
            crc_ok,
        }
    }

    /// Lowest-level entry: decode from raw arranged streams into a
    /// caller-owned bit buffer. Performs no heap allocation once
    /// `scratch` and `bits` have warmed up to this block size.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_streams_into(
        &self,
        sys: &[Llr],
        p1: &[Llr],
        p2: &[Llr],
        tails: &TailLlrs,
        crc: Option<&Crc>,
        scratch: &mut DecodeScratch,
        bits: &mut Vec<u8>,
    ) -> (usize, Option<bool>) {
        self.decode_streams_capped_into(sys, p1, p2, tails, self.max_iterations, crc, scratch, bits)
    }

    /// [`NativeTurboDecoder::decode_streams_into`] under an externally
    /// clamped iteration budget (`min(cap, max_iterations)`, floor 1)
    /// — the deadline-degradation hook, matching
    /// [`super::decoder::TurboDecoder::decode_capped`].
    #[allow(clippy::too_many_arguments)]
    pub fn decode_streams_capped_into(
        &self,
        sys: &[Llr],
        p1: &[Llr],
        p2: &[Llr],
        tails: &TailLlrs,
        cap: usize,
        crc: Option<&Crc>,
        scratch: &mut DecodeScratch,
        bits: &mut Vec<u8>,
    ) -> (usize, Option<bool>) {
        let iterations = cap.clamp(1, self.max_iterations);
        let k = self.il.k();
        assert!(sys.len() == k && p1.len() == k && p2.len() == k);
        assert_eq!(k % STATES, 0, "legal QPP sizes are multiples of 8");
        scratch.ensure(k);
        bits.resize(k, 0);
        let DecodeScratch {
            g0,
            gp,
            alpha,
            ext,
            post,
            la1,
            la2,
            sys_pi,
            ..
        } = scratch;
        let pi = self.il.pi_table();
        let pi_inv = self.il.pi_inv_table();
        // Safety for the unchecked gathers below: both tables are
        // permutations of `0..k` by construction (the interleaver
        // round-trip tests lock that down), and every gathered buffer
        // was just sized to `k` by `ensure`.
        debug_assert!(pi.len() == k && pi_inv.len() == k);

        for (s, &p) in sys_pi.iter_mut().zip(pi) {
            *s = unsafe { *sys.get_unchecked(p as usize) };
        }
        la1.fill(0);
        let mut iterations_run = 0;
        let mut crc_ok = None;

        for it in 0..iterations {
            iterations_run += 1;
            siso_into(
                self.isa,
                sys,
                p1,
                la1,
                &tails.sys1,
                &tails.p1,
                g0,
                gp,
                alpha,
                ext,
                post,
            );
            // The oracle scales the whole extrinsic array and then
            // permutes; scaling is element-wise, so fusing it into the
            // gather is value-identical and saves a pass.
            for (l, &p) in la2.iter_mut().zip(pi) {
                *l = scale_extrinsic(unsafe { *ext.get_unchecked(p as usize) });
            }
            siso_into(
                self.isa,
                sys_pi,
                p2,
                la2,
                &tails.sys2,
                &tails.p2,
                g0,
                gp,
                alpha,
                ext,
                post,
            );
            for (l, &p) in la1.iter_mut().zip(pi_inv) {
                *l = scale_extrinsic(unsafe { *ext.get_unchecked(p as usize) });
            }
            // Hard decisions are observable only through the CRC check
            // and the final output, so without a CRC the de-permuting
            // bit pass runs once, after the last iteration.
            if crc.is_some() || it + 1 == iterations {
                for (b, &p) in bits.iter_mut().zip(pi_inv) {
                    *b = llr_to_bit(unsafe { *post.get_unchecked(p as usize) } as Llr);
                }
            }
            if let Some(c) = crc {
                let ok = c.check(bits).is_some();
                crc_ok = Some(ok);
                if ok {
                    break;
                }
            }
        }
        (iterations_run, crc_ok)
    }
}

/// One SISO pass at the chosen ISA level, writing into caller buffers.
/// `g0`/`gp` receive the halved branch metrics, `alpha` the full
/// `(K+1)×8` forward trellis, `ext`/`post` the extrinsic and posterior
/// LLRs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn siso_into(
    isa: DecoderIsa,
    sys: &[Llr],
    par: &[Llr],
    apriori: &[Llr],
    tail_sys: &[Llr; 3],
    tail_par: &[Llr; 3],
    g0: &mut [Llr],
    gp: &mut [Llr],
    alpha: &mut [Llr],
    ext: &mut [Llr],
    post: &mut [i32],
) {
    match isa {
        DecoderIsa::Scalar => siso_scalar(
            sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
        ),
        #[cfg(target_arch = "x86_64")]
        DecoderIsa::Sse2 => unsafe {
            x86::siso_sse2(
                sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
            )
        },
        #[cfg(target_arch = "x86_64")]
        DecoderIsa::Ssse3 => unsafe {
            x86::siso_ssse3(
                sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
            )
        },
        #[cfg(target_arch = "x86_64")]
        DecoderIsa::Avx2 => unsafe {
            x86::siso_avx2(
                sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => siso_scalar(
            sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
        ),
    }
}

/// `±γ₀ then ±γₚ` — the exact op pairing of
/// [`super::decoder::Gamma::branch`], kept scalar here for the fallback
/// kernel.
#[inline]
fn branch(g0: Llr, gp: Llr, u: u8, p: u8) -> Llr {
    let g0s = if u == 0 { g0 } else { subs16(0, g0) };
    let gps = if p == 0 { gp } else { subs16(0, gp) };
    adds16(g0s, gps)
}

/// Portable fallback: the scalar reference algorithm writing into the
/// scratch buffers (no per-call allocation), op-for-op identical to
/// [`super::decoder::siso`].
#[allow(clippy::too_many_arguments)]
fn siso_scalar(
    sys: &[Llr],
    par: &[Llr],
    apriori: &[Llr],
    tail_sys: &[Llr; 3],
    tail_par: &[Llr; 3],
    g0: &mut [Llr],
    gp: &mut [Llr],
    alpha: &mut [Llr],
    ext: &mut [Llr],
    post: &mut [i32],
) {
    let k = sys.len();
    for i in 0..k {
        g0[i] = srai16(adds16(sys[i], apriori[i]), 1);
        gp[i] = srai16(par[i], 1);
    }

    let mut a = [NEG_INF; STATES];
    a[0] = 0;
    alpha[..STATES].copy_from_slice(&a);
    for i in 0..k {
        let mut next = [NEG_INF; STATES];
        for (ns, nb) in next.iter_mut().enumerate() {
            let mut best = NEG_INF;
            for u in 0..2u8 {
                let s = trellis::pred_state(ns as u8, u) as usize;
                let p = trellis::parity(s as u8, u);
                best = max16(best, adds16(a[s], branch(g0[i], gp[i], u, p)));
            }
            *nb = best;
        }
        let n = next[0];
        for nb in &mut next {
            *nb = subs16(*nb, n);
        }
        a = next;
        alpha[(i + 1) * STATES..(i + 2) * STATES].copy_from_slice(&a);
    }

    let mut beta = beta_init_from_tails(tail_sys, tail_par);
    for i in (0..k).rev() {
        let av = &alpha[i * STATES..(i + 1) * STATES];
        let mut m = [NEG_INF; 2];
        #[allow(clippy::needless_range_loop)] // s is a trellis state id
        for s in 0..STATES {
            for u in 0..2u8 {
                let p = trellis::parity(s as u8, u);
                let ns = trellis::next_state(s as u8, u) as usize;
                let metric = adds16(adds16(av[s], branch(g0[i], gp[i], u, p)), beta[ns]);
                m[u as usize] = max16(m[u as usize], metric);
            }
        }
        let l = subs16(m[0], m[1]);
        post[i] = l as i32;
        ext[i] = subs16(l, adds16(g0[i], g0[i]));
        let mut prev = [NEG_INF; STATES];
        for (s, pb) in prev.iter_mut().enumerate() {
            let mut best = NEG_INF;
            for u in 0..2u8 {
                let p = trellis::parity(s as u8, u);
                let ns = trellis::next_state(s as u8, u) as usize;
                best = max16(best, adds16(beta[ns], branch(g0[i], gp[i], u, p)));
            }
            *pb = best;
        }
        let n = prev[0];
        for pb in &mut prev {
            *pb = subs16(*pb, n);
        }
        beta = prev;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Byte-level `pshufb` control replicating a lane-level i16 gather.
    fn lane_ctrl(table: [u8; STATES]) -> [i8; 16] {
        let mut c = [0i8; 16];
        for (i, &s) in table.iter().enumerate() {
            c[2 * i] = (2 * s) as i8;
            c[2 * i + 1] = (2 * s + 1) as i8;
        }
        c
    }

    /// All-ones lanes where the transition parity is 0 (keep `+γₚ`),
    /// zero lanes where it is 1 (select `−γₚ`).
    fn parity_mask(par: [u8; STATES]) -> [i16; STATES] {
        core::array::from_fn(|i| if par[i] == 0 { -1 } else { 0 })
    }

    /// `+1` lanes where the transition parity keeps `+γₚ`, `−1` where
    /// it selects `−γₚ` — the `_mm_sign_epi16` control equivalent of
    /// [`parity_mask`].
    fn sign_vec(par: [u8; STATES]) -> [i16; STATES] {
        core::array::from_fn(|i| if par[i] == 0 { 1 } else { -1 })
    }

    struct Ctl {
        pred0: __m128i,
        pred1: __m128i,
        next0: __m128i,
        next1: __m128i,
        bcast0: __m128i,
        /// Per-lane broadcast controls (`bcast[j]` replicates lane `j`).
        bcast: [__m128i; STATES],
        m_pp0: __m128i,
        m_pp1: __m128i,
        m_np0: __m128i,
        m_np1: __m128i,
        sgn_pp0: __m128i,
        sgn_pp1: __m128i,
        sgn_np0: __m128i,
        sgn_np1: __m128i,
        floor: __m128i,
    }

    #[inline(always)]
    unsafe fn load_i8x16(a: [i8; 16]) -> __m128i {
        _mm_loadu_si128(a.as_ptr() as *const __m128i)
    }

    #[inline(always)]
    unsafe fn load_i16x8(a: [i16; 8]) -> __m128i {
        _mm_loadu_si128(a.as_ptr() as *const __m128i)
    }

    #[inline(always)]
    unsafe fn make_ctl() -> Ctl {
        // The pshufb controls go through `black_box` so LLVM keeps the
        // single-µop `pshufb` the kernel was scheduled around: with the
        // control visible as a constant, the x86 shuffle lowering
        // re-expands each gather into a 3-deep
        // `pshufd`+`pshuflw`+`pshufhw` chain, which is three
        // shuffle-port µops (and +2 cycles of recurrence latency) per
        // trellis step. One opaque register copy per SISO call buys
        // that back everywhere.
        use core::hint::black_box;
        let mut bcast = [_mm_setzero_si128(); STATES];
        for (j, c) in bcast.iter_mut().enumerate() {
            *c = black_box(load_i8x16(lane_ctrl([j as u8; STATES])));
        }
        Ctl {
            pred0: black_box(load_i8x16(lane_ctrl(trellis::pred_table(0)))),
            pred1: black_box(load_i8x16(lane_ctrl(trellis::pred_table(1)))),
            next0: black_box(load_i8x16(lane_ctrl(trellis::next_table(0)))),
            next1: black_box(load_i8x16(lane_ctrl(trellis::next_table(1)))),
            bcast0: black_box(load_i8x16([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])),
            bcast,
            m_pp0: load_i16x8(parity_mask(trellis::pred_parity(0))),
            m_pp1: load_i16x8(parity_mask(trellis::pred_parity(1))),
            m_np0: load_i16x8(parity_mask(trellis::next_parity(0))),
            m_np1: load_i16x8(parity_mask(trellis::next_parity(1))),
            sgn_pp0: load_i16x8(sign_vec(trellis::pred_parity(0))),
            sgn_pp1: load_i16x8(sign_vec(trellis::pred_parity(1))),
            sgn_np0: load_i16x8(sign_vec(trellis::next_parity(0))),
            sgn_np1: load_i16x8(sign_vec(trellis::next_parity(1))),
            floor: _mm_set1_epi16(NEG_INF),
        }
    }

    /// `(a & m) | (b & !m)` — full-lane mask select.
    #[inline(always)]
    unsafe fn blend_mask(a: __m128i, b: __m128i, m: __m128i) -> __m128i {
        _mm_or_si128(_mm_and_si128(a, m), _mm_andnot_si128(m, b))
    }

    // The four trellis lane gathers. Under SSSE3 each is one `pshufb`;
    // under bare SSE2 each decomposes into `shufflelo/hi` (within
    // 64-bit halves) plus `shuffle_epi32` steps, with a two-path mask
    // blend where the gather crosses halves per 32-bit pair. The
    // immediates are derived from `trellis::pred_table`/`next_table`
    // and locked down by `sse2_gathers_match_trellis_tables` below.

    /// Gather `pred_table(0) = [0,3,4,7,1,2,5,6]`.
    #[inline(always)]
    unsafe fn perm_pred0<const PSHUFB: bool>(x: __m128i, c: __m128i) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(x, c)
        } else {
            let t = _mm_shufflehi_epi16(_mm_shufflelo_epi16(x, 0x9C), 0x9C);
            _mm_shuffle_epi32(t, 0xD8)
        }
    }

    /// Gather `pred_table(1) = [1,2,5,6,0,3,4,7]`.
    #[inline(always)]
    unsafe fn perm_pred1<const PSHUFB: bool>(x: __m128i, c: __m128i) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(x, c)
        } else {
            let t = _mm_shufflehi_epi16(_mm_shufflelo_epi16(x, 0xC9), 0xC9);
            _mm_shuffle_epi32(t, 0xD8)
        }
    }

    const M_NEXT0: [i16; 8] = [-1, 0, 0, -1, 0, -1, -1, 0];
    const M_NEXT1: [i16; 8] = [0, -1, -1, 0, -1, 0, 0, -1];

    /// Gather `next_table(0) = [0,4,5,1,2,6,7,3]`.
    #[inline(always)]
    unsafe fn perm_next0<const PSHUFB: bool>(x: __m128i, c: __m128i) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(x, c)
        } else {
            let a = _mm_shufflehi_epi16(_mm_shufflelo_epi16(x, 0x40), 0x38);
            let xs = _mm_shuffle_epi32(x, 0x4E);
            let b = _mm_shufflehi_epi16(_mm_shufflelo_epi16(xs, 0x10), 0xC2);
            blend_mask(a, b, load_i16x8(M_NEXT0))
        }
    }

    /// Gather `next_table(1) = [4,0,1,5,6,2,3,7]`.
    #[inline(always)]
    unsafe fn perm_next1<const PSHUFB: bool>(x: __m128i, c: __m128i) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(x, c)
        } else {
            let a = _mm_shufflehi_epi16(_mm_shufflelo_epi16(x, 0x10), 0xC2);
            let xs = _mm_shuffle_epi32(x, 0x4E);
            let b = _mm_shufflehi_epi16(_mm_shufflelo_epi16(xs, 0x40), 0x38);
            blend_mask(a, b, load_i16x8(M_NEXT1))
        }
    }

    /// Broadcast lane 0 to all lanes (for the state-0 normalize).
    #[inline(always)]
    unsafe fn bcast_lane0<const PSHUFB: bool>(x: __m128i, c: __m128i) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(x, c)
        } else {
            _mm_shuffle_epi32(_mm_shufflelo_epi16(x, 0x00), 0x00)
        }
    }

    /// Broadcast lane `j` of a group register to all lanes — the γ
    /// broadcast for step `base + j`, fed from one 8-step group load
    /// instead of a per-step scalar load. Under SSSE3 one `pshufb`;
    /// under SSE2 a two-shuffle pair whose immediates constant-fold
    /// once the fixed 8-step inner loops unroll.
    #[inline(always)]
    unsafe fn bcast_lane<const PSHUFB: bool>(
        g: __m128i,
        j: usize,
        ctls: &[__m128i; STATES],
    ) -> __m128i {
        if PSHUFB {
            _mm_shuffle_epi8(g, ctls[j])
        } else {
            match j {
                0 => _mm_shuffle_epi32(_mm_shufflelo_epi16(g, 0x00), 0x00),
                1 => _mm_shuffle_epi32(_mm_shufflelo_epi16(g, 0x55), 0x00),
                2 => _mm_shuffle_epi32(_mm_shufflelo_epi16(g, 0xAA), 0x00),
                3 => _mm_shuffle_epi32(_mm_shufflelo_epi16(g, 0xFF), 0x00),
                4 => _mm_shuffle_epi32(_mm_shufflehi_epi16(g, 0x00), 0xAA),
                5 => _mm_shuffle_epi32(_mm_shufflehi_epi16(g, 0x55), 0xAA),
                6 => _mm_shuffle_epi32(_mm_shufflehi_epi16(g, 0xAA), 0xAA),
                _ => _mm_shuffle_epi32(_mm_shufflehi_epi16(g, 0xFF), 0xAA),
            }
        }
    }

    /// γ broadcast for step `base + j`: lane `j` of the 8-step group
    /// register under SSE2/SSSE3, or — under `MEMB` — a
    /// `vpbroadcastw m16` straight from the metric buffer, a pure load
    /// µop on AVX2 hosts. Caller guarantees `step < buf.len()`.
    #[inline(always)]
    unsafe fn gamma_bcast<const PSHUFB: bool, const MEMB: bool>(
        buf: &[Llr],
        step: usize,
        grp: __m128i,
        j: usize,
        ctls: &[__m128i; STATES],
    ) -> __m128i {
        if MEMB {
            _mm_set1_epi16(*buf.get_unchecked(step))
        } else {
            bcast_lane::<PSHUFB>(grp, j, ctls)
        }
    }

    /// The branch-metric pair `(γ(u=0), γ(u=1))` for one trellis step,
    /// preserving the scalar op pairing `adds16(±γ₀, ±γₚ)`. The SSSE3
    /// arm negates `γₚ` with `sign_epi16`; that is exact here because
    /// `|γ| ≤ 2¹⁴` after the `>>1` halving, so the non-saturating
    /// negate equals `subs16(0, ·)` on every reachable input.
    #[inline(always)]
    unsafe fn gammas<const PSHUFB: bool>(
        g0b: __m128i,
        gpb: __m128i,
        keep0: __m128i,
        keep1: __m128i,
        sgn0: __m128i,
        sgn1: __m128i,
    ) -> (__m128i, __m128i) {
        let zero = _mm_setzero_si128();
        let ng0 = _mm_subs_epi16(zero, g0b);
        if PSHUFB {
            (
                _mm_adds_epi16(g0b, _mm_sign_epi16(gpb, sgn0)),
                _mm_adds_epi16(ng0, _mm_sign_epi16(gpb, sgn1)),
            )
        } else {
            let ngp = _mm_subs_epi16(zero, gpb);
            (
                _mm_adds_epi16(g0b, blend_mask(gpb, ngp, keep0)),
                _mm_adds_epi16(ng0, blend_mask(gpb, ngp, keep1)),
            )
        }
    }

    /// Joint horizontal max of two hypothesis metric vectors: returns
    /// a register with `max lanes of t0` in lane 0 and
    /// `max lanes of t1` in lane 1, so both reductions share a single
    /// shuffle/max tree. Interleaving the inputs first makes every
    /// later max combine a `t0` partial in the even lanes and a `t1`
    /// partial in the odd lanes; `max_epi16` is lane-wise, so the two
    /// reductions never mix.
    #[inline(always)]
    unsafe fn hmax2x8(t0: __m128i, t1: __m128i) -> __m128i {
        let y = _mm_max_epi16(_mm_unpacklo_epi16(t0, t1), _mm_unpackhi_epi16(t0, t1));
        let z = _mm_max_epi16(y, _mm_srli_si128(y, 8));
        _mm_max_epi16(z, _mm_srli_si128(z, 4))
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse2")]
    pub unsafe fn siso_sse2(
        sys: &[Llr],
        par: &[Llr],
        apriori: &[Llr],
        tail_sys: &[Llr; 3],
        tail_par: &[Llr; 3],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        siso_body::<false, false>(
            sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
        )
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "ssse3")]
    pub unsafe fn siso_ssse3(
        sys: &[Llr],
        par: &[Llr],
        apriori: &[Llr],
        tail_sys: &[Llr; 3],
        tail_par: &[Llr; 3],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        siso_body::<true, false>(
            sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
        )
    }

    /// Same 128-bit kernel, VEX-encoded: under AVX2 the `MEMB` arm
    /// turns each per-step γ broadcast into a `vpbroadcastw m16`,
    /// which is a pure load µop — the broadcasts leave the shuffle
    /// port to the four trellis gathers and the normalize.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn siso_avx2(
        sys: &[Llr],
        par: &[Llr],
        apriori: &[Llr],
        tail_sys: &[Llr; 3],
        tail_par: &[Llr; 3],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        siso_body::<true, true>(
            sys, par, apriori, tail_sys, tail_par, g0, gp, alpha, ext, post,
        )
    }

    const ALPHA0: [i16; 8] = [
        0, NEG_INF, NEG_INF, NEG_INF, NEG_INF, NEG_INF, NEG_INF, NEG_INF,
    ];

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn siso_body<const PSHUFB: bool, const MEMB: bool>(
        sys: &[Llr],
        par: &[Llr],
        apriori: &[Llr],
        tail_sys: &[Llr; 3],
        tail_par: &[Llr; 3],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        let k = sys.len();
        debug_assert!(k.is_multiple_of(STATES) && par.len() == k && apriori.len() == k);
        debug_assert!(g0.len() == k && gp.len() == k);
        debug_assert!(ext.len() == k && post.len() == k);
        debug_assert!(alpha.len() == (k + 1) * STATES);
        let ctl = make_ctl();

        // γ phase: eight trellis steps per register over the arranged
        // streams — this is what the data arrangement process feeds.
        // The MEMB path also stages the doubled metric `2·γ₀` the
        // extrinsic needs, so the β loop can broadcast it from memory
        // instead of re-deriving it in (and spilling to) scalar
        // registers.
        let mut i = 0;
        while i < k {
            let ls = _mm_loadu_si128(sys.as_ptr().add(i) as *const __m128i);
            let lav = _mm_loadu_si128(apriori.as_ptr().add(i) as *const __m128i);
            let lp = _mm_loadu_si128(par.as_ptr().add(i) as *const __m128i);
            let g0v = _mm_srai_epi16(_mm_adds_epi16(ls, lav), 1);
            let gpv = _mm_srai_epi16(lp, 1);
            _mm_storeu_si128(g0.as_mut_ptr().add(i) as *mut __m128i, g0v);
            _mm_storeu_si128(gp.as_mut_ptr().add(i) as *mut __m128i, gpv);
            i += 8;
        }

        // Forward α: 8 states in one xmm; the per-step γ broadcasts
        // come out of one group load per 8 steps.
        let mut a = load_i16x8(ALPHA0);
        _mm_storeu_si128(alpha.as_mut_ptr() as *mut __m128i, a);
        let mut base = 0;
        while base < k {
            // Dead (and eliminated) under MEMB — the broadcasts read
            // straight from memory there.
            let g0g = _mm_loadu_si128(g0.as_ptr().add(base) as *const __m128i);
            let gpg = _mm_loadu_si128(gp.as_ptr().add(base) as *const __m128i);
            for j in 0..STATES {
                let g0b = gamma_bcast::<PSHUFB, MEMB>(g0, base + j, g0g, j, &ctl.bcast);
                let gpb = gamma_bcast::<PSHUFB, MEMB>(gp, base + j, gpg, j, &ctl.bcast);
                let (gam0, gam1) =
                    gammas::<PSHUFB>(g0b, gpb, ctl.m_pp0, ctl.m_pp1, ctl.sgn_pp0, ctl.sgn_pp1);
                let a0 = perm_pred0::<PSHUFB>(a, ctl.pred0);
                let a1 = perm_pred1::<PSHUFB>(a, ctl.pred1);
                let c0 = _mm_adds_epi16(a0, gam0);
                let c1 = _mm_adds_epi16(a1, gam1);
                let m = _mm_max_epi16(_mm_max_epi16(c0, c1), ctl.floor);
                let n = bcast_lane0::<PSHUFB>(m, ctl.bcast0);
                a = _mm_subs_epi16(m, n);
                _mm_storeu_si128(
                    alpha.as_mut_ptr().add((base + j + 1) * STATES) as *mut __m128i,
                    a,
                );
            }
            base += STATES;
        }

        // Backward β fused with the extrinsic.
        let binit = beta_init_from_tails(tail_sys, tail_par);
        let mut b = _mm_loadu_si128(binit.as_ptr() as *const __m128i);
        let mut base = k;
        while base > 0 {
            base -= STATES;
            let g0g = _mm_loadu_si128(g0.as_ptr().add(base) as *const __m128i);
            let gpg = _mm_loadu_si128(gp.as_ptr().add(base) as *const __m128i);
            for j in (0..STATES).rev() {
                let step = base + j;
                let g0b = gamma_bcast::<PSHUFB, MEMB>(g0, step, g0g, j, &ctl.bcast);
                let gpb = gamma_bcast::<PSHUFB, MEMB>(gp, step, gpg, j, &ctl.bcast);
                let (gam0, gam1) =
                    gammas::<PSHUFB>(g0b, gpb, ctl.m_np0, ctl.m_np1, ctl.sgn_np0, ctl.sgn_np1);
                let b0 = perm_next0::<PSHUFB>(b, ctl.next0);
                let b1 = perm_next1::<PSHUFB>(b, ctl.next1);
                let av = _mm_loadu_si128(alpha.as_ptr().add(step * STATES) as *const __m128i);
                // Per-source-state path metric (α + γ) + β[next], per
                // bit hypothesis; horizontal max then the NEG_INF fold
                // floor.
                let t0 = _mm_adds_epi16(_mm_adds_epi16(av, gam0), b0);
                let t1 = _mm_adds_epi16(_mm_adds_epi16(av, gam1), b1);
                // Reduction, NEG_INF fold floor, hypothesis
                // subtraction and extrinsic all stay in lane 0 of
                // vector registers — i16 max is order-free and the
                // lane-wise saturating ops are the scalar ops, so this
                // equals the oracle's per-state fold exactly. (A
                // scalar `max16`/`subs16` tail lowers to ~20 µops of
                // cmp/cmov saturation per step and forces `g0[step]`
                // out of the broadcast register.)
                let lv = if MEMB {
                    // SSE4.1 `phminposuw` runs the whole 8-lane
                    // reduction in one port-0 µop. Signed order maps
                    // to unsigned order under `x ^ 0x7FFF` with
                    // min/max swapped, so
                    // `max_i16(x) = minpos_u16(x ^ 0x7FFF) ^ 0x7FFF`
                    // — exact on every input. (Lanes 1..8 of the
                    // minpos result hold the index and zeros; only
                    // lane 0 is consumed.)
                    let k7 = _mm_set1_epi16(0x7FFF);
                    let m0 = _mm_xor_si128(_mm_minpos_epu16(_mm_xor_si128(t0, k7)), k7);
                    let m1 = _mm_xor_si128(_mm_minpos_epu16(_mm_xor_si128(t1, k7)), k7);
                    _mm_subs_epi16(_mm_max_epi16(m0, ctl.floor), _mm_max_epi16(m1, ctl.floor))
                } else {
                    let wf = _mm_max_epi16(hmax2x8(t0, t1), ctl.floor);
                    _mm_subs_epi16(wf, _mm_srli_si128(wf, 2))
                };
                // In-bounds by the debug_asserts above (`step < k` and
                // every buffer is `k` long). Only the posterior is
                // stored here; the extrinsic peels off lane-parallel
                // after the loop, which keeps `g0b` single-use so the
                // broadcast stays a memory-operand `vpbroadcastw`.
                *post.get_unchecked_mut(step) = _mm_cvtsi128_si32(lv);
                // β update reusing the gathered successors.
                let c0 = _mm_adds_epi16(b0, gam0);
                let c1 = _mm_adds_epi16(b1, gam1);
                let m = _mm_max_epi16(_mm_max_epi16(c0, c1), ctl.floor);
                let n = bcast_lane0::<PSHUFB>(m, ctl.bcast0);
                b = _mm_subs_epi16(m, n);
            }
        }

        // Extrinsic peel-off, eight steps per register:
        // `ext = L − 2·γ₀`. The same saturating ops on the same values
        // as the oracle's in-loop subtraction — hoisting it out of the
        // β recurrence costs nothing in exactness (each lane is an
        // independent scalar computation) and keeps the hot loop free
        // of a second per-step store.
        let mut i = 0;
        while i < k {
            // Recover the i16 posterior from each dword's low half:
            // shift-up/shift-down sign-extends, and the saturating
            // pack is exact because every lane is an in-range i16.
            let p0 = _mm_loadu_si128(post.as_ptr().add(i) as *const __m128i);
            let p1 = _mm_loadu_si128(post.as_ptr().add(i + 4) as *const __m128i);
            let w0 = _mm_srai_epi32(_mm_slli_epi32(p0, 16), 16);
            let w1 = _mm_srai_epi32(_mm_slli_epi32(p1, 16), 16);
            let pv = _mm_packs_epi32(w0, w1);
            let g0v = _mm_loadu_si128(g0.as_ptr().add(i) as *const __m128i);
            let evv = _mm_subs_epi16(pv, _mm_adds_epi16(g0v, g0v));
            _mm_storeu_si128(ext.as_mut_ptr().add(i) as *mut __m128i, evv);
            i += 8;
        }
    }

    /// Test hook: run every lane gather on `[0..8]` so the shuffle
    /// immediates can be checked against the trellis tables.
    #[cfg(test)]
    pub mod probe {
        use super::*;

        unsafe fn run<const PSHUFB: bool>() -> [[i16; 8]; 5] {
            let ctl = make_ctl();
            let x = load_i16x8([0, 1, 2, 3, 4, 5, 6, 7]);
            let mut out = [[0i16; 8]; 5];
            let regs = [
                perm_pred0::<PSHUFB>(x, ctl.pred0),
                perm_pred1::<PSHUFB>(x, ctl.pred1),
                perm_next0::<PSHUFB>(x, ctl.next0),
                perm_next1::<PSHUFB>(x, ctl.next1),
                bcast_lane0::<PSHUFB>(x, ctl.bcast0),
            ];
            for (o, r) in out.iter_mut().zip(regs) {
                _mm_storeu_si128(o.as_mut_ptr() as *mut __m128i, r);
            }
            out
        }

        #[target_feature(enable = "sse2")]
        pub unsafe fn gathers_sse2() -> [[i16; 8]; 5] {
            run::<false>()
        }

        #[target_feature(enable = "ssse3")]
        pub unsafe fn gathers_ssse3() -> [[i16; 8]; 5] {
            run::<true>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::crc::CRC24B;
    use crate::interleaver::QPP_TABLE;
    use crate::llr::bit_to_llr;
    use crate::turbo::decoder::{siso, TurboDecoder};
    use crate::turbo::TurboEncoder;
    use vran_util::proptest::prelude::*;
    use vran_util::rng::SmallRng;

    /// Encode random bits at size `k`, map to LLRs of magnitude `mag`,
    /// then perturb every LLR with uniform noise in `±noise`.
    fn noisy_input(k: usize, mag: Llr, noise: i16, seed: u64) -> (Vec<u8>, TurboLlrs) {
        let bits = random_bits(k, seed);
        let cw = TurboEncoder::new(k).encode(&bits);
        let d = cw.to_dstreams();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37);
        let soft: [Vec<Llr>; 3] = d
            .iter()
            .map(|st| {
                st.iter()
                    .map(|&b| {
                        let n = if noise > 0 {
                            (rng.next_u64() % (2 * noise as u64 + 1)) as i16 - noise
                        } else {
                            0
                        };
                        adds16(bit_to_llr(b, mag), n)
                    })
                    .collect()
            })
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        (bits, TurboLlrs::from_dstreams(&soft, k))
    }

    #[test]
    fn available_isas_start_with_scalar() {
        let isas = DecoderIsa::available();
        assert_eq!(isas[0], DecoderIsa::Scalar);
        assert!(isas.windows(2).all(|w| w[0] < w[1]));
        assert!(isas.contains(&DecoderIsa::best()));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_gathers_match_trellis_tables() {
        let expect = |t: [u8; STATES]| -> [i16; 8] { core::array::from_fn(|i| t[i] as i16) };
        let tables = [
            expect(trellis::pred_table(0)),
            expect(trellis::pred_table(1)),
            expect(trellis::next_table(0)),
            expect(trellis::next_table(1)),
            [0i16; 8],
        ];
        for isa in DecoderIsa::available() {
            let got = match isa {
                DecoderIsa::Sse2 => unsafe { x86::probe::gathers_sse2() },
                // The Avx2 kernel runs the same pshufb gather arm.
                DecoderIsa::Ssse3 | DecoderIsa::Avx2 => unsafe { x86::probe::gathers_ssse3() },
                DecoderIsa::Scalar => continue,
            };
            assert_eq!(got, tables, "{}", isa.name());
        }
    }

    #[test]
    fn noiseless_block_decodes_exactly_on_every_isa() {
        for k in [40usize, 104, 512] {
            let (bits, input) = noisy_input(k, 100, 0, k as u64);
            for isa in DecoderIsa::available() {
                let out = NativeTurboDecoder::with_isa(k, 4, isa).decode(&input);
                assert_eq!(out.bits, bits, "{} K={k}", isa.name());
                assert_eq!(out.iterations_run, 4);
            }
        }
    }

    #[test]
    fn matches_scalar_oracle_across_block_sizes() {
        // K ∈ {40 .. 6144}: smallest, a mid-size, and the largest QPP
        // sizes, under enough noise that iterations do real work.
        for k in [40usize, 496, 2048, 6144] {
            let (_, input) = noisy_input(k, 24, 20, 3 * k as u64 + 1);
            let reference = TurboDecoder::new(k, 3).decode(&input);
            for isa in DecoderIsa::available() {
                let out = NativeTurboDecoder::with_isa(k, 3, isa).decode(&input);
                assert_eq!(out, reference, "{} K={k}", isa.name());
            }
        }
    }

    #[test]
    fn crc_early_stop_matches_scalar_iteration_count() {
        let k = 104;
        let payload = random_bits(k - 24, 5);
        let block = CRC24B.attach(&payload);
        let cw = TurboEncoder::new(k).encode(&block);
        let soft: [Vec<Llr>; 3] = cw
            .to_dstreams()
            .iter()
            .map(|st| st.iter().map(|&b| bit_to_llr(b, 100)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let input = TurboLlrs::from_dstreams(&soft, k);
        let reference = TurboDecoder::new(k, 8).decode_with_crc(&input, &CRC24B);
        assert_eq!(reference.crc_ok, Some(true));
        for isa in DecoderIsa::available() {
            let out = NativeTurboDecoder::with_isa(k, 8, isa).decode_with_crc(&input, &CRC24B);
            assert_eq!(out, reference, "{}", isa.name());
        }
    }

    #[test]
    fn capped_streams_decode_matches_scalar_cap() {
        let k = 104;
        let (_, input) = noisy_input(k, 24, 20, 17);
        let reference = TurboDecoder::new(k, 8).decode_capped(&input, 2, None);
        for isa in DecoderIsa::available() {
            let dec = NativeTurboDecoder::with_isa(k, 8, isa);
            let mut scratch = DecodeScratch::new();
            let mut bits = Vec::new();
            let (iters, crc_ok) = dec.decode_streams_capped_into(
                &input.streams.sys,
                &input.streams.p1,
                &input.streams.p2,
                &input.tails,
                2,
                None,
                &mut scratch,
                &mut bits,
            );
            assert_eq!(iters, 2, "{}", isa.name());
            assert_eq!(crc_ok, None);
            assert_eq!(bits, reference.bits, "{}", isa.name());
        }
    }

    #[test]
    fn scratch_reuse_allocates_once_per_block_size() {
        let k = 256;
        let (_, input) = noisy_input(k, 30, 10, 9);
        let dec = NativeTurboDecoder::new(k, 2);
        let mut scratch = DecodeScratch::new();
        let first = dec.decode_scratch(&input, None, &mut scratch);
        assert_eq!(scratch.allocations(), 1);
        assert_eq!(scratch.reuses(), 0);
        for _ in 0..3 {
            let again = dec.decode_scratch(&input, None, &mut scratch);
            assert_eq!(again, first);
        }
        assert_eq!(scratch.allocations(), 1, "warm scratch must not grow");
        assert_eq!(scratch.reuses(), 3);
    }

    #[test]
    fn scratch_shrinks_without_reallocating() {
        let mut scratch = DecodeScratch::new();
        scratch.ensure(512);
        scratch.ensure(40);
        scratch.ensure(512);
        assert_eq!(scratch.allocations(), 1);
        assert_eq!(scratch.reuses(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn siso_bit_exact_with_scalar_reference(
            sys in prop::collection::vec(-700i16..700, 40),
            par in prop::collection::vec(-700i16..700, 40),
            la in prop::collection::vec(-700i16..700, 40),
            t in prop::collection::vec(-700i16..700, 6),
        ) {
            let tail_sys = [t[0], t[1], t[2]];
            let tail_par = [t[3], t[4], t[5]];
            let (ext_ref, post_ref) = siso(&sys, &par, &la, &tail_sys, &tail_par);
            let k = sys.len();
            let (mut g0, mut gp) = (vec![0; k], vec![0; k]);
            let mut alpha = vec![0; (k + 1) * STATES];
            let (mut ext, mut post) = (vec![0 as Llr; k], vec![0i32; k]);
            for isa in DecoderIsa::available() {
                siso_into(
                    isa, &sys, &par, &la, &tail_sys, &tail_par,
                    &mut g0, &mut gp, &mut alpha, &mut ext, &mut post,
                );
                prop_assert_eq!(&ext, &ext_ref, "extrinsic diverged on {}", isa.name());
                let post_lo: Vec<Llr> = post.iter().map(|&p| p as Llr).collect();
                prop_assert_eq!(&post_lo, &post_ref, "posterior diverged on {}", isa.name());
            }
        }

        #[test]
        fn decode_bit_exact_across_random_sizes_and_noise(
            row in 0usize..QPP_TABLE.len(),
            mag in 8i16..60,
            noise in 0i16..48,
            seed in 1u64..1_000_000,
        ) {
            let k = QPP_TABLE[row].k as usize;
            prop_assume!(k <= 1024); // keep the property-run time bounded
            let (_, input) = noisy_input(k, mag, noise, seed);
            let reference = TurboDecoder::new(k, 2).decode(&input);
            for isa in DecoderIsa::available() {
                let out = NativeTurboDecoder::with_isa(k, 2, isa).decode(&input);
                prop_assert_eq!(
                    &out.bits, &reference.bits,
                    "bits diverged on {} K={}", isa.name(), k
                );
                prop_assert_eq!(out.iterations_run, reference.iterations_run);
            }
        }
    }
}
