//! Width-batched SIMD max-log-MAP: decode `B = width/128` independent
//! code blocks simultaneously, one block per 128-bit lane group.
//!
//! This is how production decoders (OAI, FlexRAN) actually exploit ymm
//! and zmm registers: the 8-state α/β recursions cannot widen (a block
//! has exactly 8 states), so wider registers carry *more blocks*. The
//! `vran-net` latency model assumes this batching with a √B efficiency
//! factor; this module implements it for real, so the assumption can be
//! measured (see the `batching_efficiency` test and the
//! `abl-batch` experiment).
//!
//! Layout: lane group `g` of every state vector holds block `g`'s eight
//! state metrics. Branch metrics are staged *block-interleaved* —
//! `γ[k·B + g]` — so one narrow load plus one lane-replicating shuffle
//! broadcasts each block's scalar into its group.
//!
//! Bit-exactness: every lane group performs exactly the operations of
//! the single-block kernel in [`super::simd_decoder`], so batched
//! decoding is bit-identical to `B` separate decodes (enforced by
//! tests).

use super::decoder::{beta_init_from_tails, scale_extrinsic, DecodeOutcome, NEG_INF};
use super::trellis::{self, STATES};
use crate::interleaver::QppInterleaver;
use crate::llr::{llr_to_bit, Llr, TurboLlrs};
use vran_simd::{Mem, MemRef, RegWidth, Trace, VReg, VecVal, Vm};

/// Replicate an 8-lane table across every 128-bit group of `width`,
/// offsetting the selectors into the local group.
fn group_table(width: RegWidth, table: [u8; STATES]) -> Vec<Option<u8>> {
    let groups = width.lanes128();
    let mut out = Vec::with_capacity(width.lanes());
    for g in 0..groups {
        for &t in &table {
            out.push(Some((g * STATES) as u8 + t));
        }
    }
    out
}

/// Table that broadcasts lane `g` (a packed per-block scalar) into the
/// whole of group `g`.
fn group_broadcast_table(width: RegWidth) -> Vec<Option<u8>> {
    let groups = width.lanes128();
    (0..groups)
        .flat_map(|g| std::iter::repeat_n(Some(g as u8), STATES))
        .collect()
}

/// Per-group parity mask replicated across groups.
fn group_parity_mask(width: RegWidth, parities: [u8; STATES]) -> VecVal {
    let lanes: Vec<i16> = (0..width.lanes())
        .map(|l| if parities[l % STATES] == 0 { -1 } else { 0 })
        .collect();
    VecVal::from_lanes(width, &lanes)
}

/// Rotate-left within each 128-bit group by `n` lanes.
fn group_rotate_table(width: RegWidth, n: usize) -> Vec<Option<u8>> {
    let groups = width.lanes128();
    let mut out = Vec::with_capacity(width.lanes());
    for g in 0..groups {
        for i in 0..STATES {
            out.push(Some((g * STATES + (i + n) % STATES) as u8));
        }
    }
    out
}

/// Batched decoder: `B = width.lanes128()` blocks of identical size per
/// pass.
#[derive(Debug, Clone)]
pub struct BatchTurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
    width: RegWidth,
}

impl BatchTurboDecoder {
    /// Decoder for `width.lanes128()` parallel blocks of size `k`.
    pub fn new(k: usize, max_iterations: usize, width: RegWidth) -> Self {
        assert!(max_iterations >= 1);
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
            width,
        }
    }

    /// Number of blocks decoded per call.
    pub fn batch(&self) -> usize {
        self.width.lanes128()
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Decode a batch natively; `inputs.len()` must equal
    /// [`BatchTurboDecoder::batch`].
    pub fn decode_native(&self, inputs: &[TurboLlrs]) -> Vec<DecodeOutcome> {
        let (out, _) = self.run(inputs, false, self.max_iterations);
        out
    }

    /// Decode in tracing mode with an explicit iteration count.
    pub fn decode_traced(
        &self,
        inputs: &[TurboLlrs],
        iterations: usize,
    ) -> (Vec<DecodeOutcome>, Trace) {
        let (out, trace) = self.run(inputs, true, iterations);
        (out, trace.expect("tracing"))
    }

    fn run(
        &self,
        inputs: &[TurboLlrs],
        tracing: bool,
        iterations: usize,
    ) -> (Vec<DecodeOutcome>, Option<Trace>) {
        let b = self.batch();
        let k = self.il.k();
        assert_eq!(inputs.len(), b, "batch needs exactly {b} blocks");
        for input in inputs {
            assert_eq!(input.k, k, "all blocks in a batch share K");
        }

        let mut mem = Mem::new();
        // Block-interleaved stream staging: s[k·B + g] = block g's value.
        let stage = |mem: &mut Mem, f: &dyn Fn(&TurboLlrs) -> &[Llr]| -> MemRef {
            let r = mem.alloc(k * b);
            for (g, input) in inputs.iter().enumerate() {
                let src = f(input);
                for (step, &v) in src.iter().enumerate().take(k) {
                    mem.set(r.base + step * b + g, v);
                }
            }
            r
        };
        let sys = stage(&mut mem, &|i| &i.streams.sys);
        let p1 = stage(&mut mem, &|i| &i.streams.p1);
        let p2 = stage(&mut mem, &|i| &i.streams.p2);
        // interleaved systematic for decoder 2
        let sys_pi = {
            let r = mem.alloc(k * b);
            for (g, input) in inputs.iter().enumerate() {
                for j in 0..k {
                    mem.set(r.base + j * b + g, input.streams.sys[self.il.pi(j)]);
                }
            }
            r
        };
        let la1 = mem.alloc(k * b);
        let la2 = mem.alloc(k * b);
        let g0 = mem.alloc(k * b);
        let gp = mem.alloc(k * b);
        let alpha_arr = mem.alloc((k + 1) * self.width.lanes());
        let ext = mem.alloc(k * b);
        let post = mem.alloc(k * b);

        let mut vm = if tracing {
            Vm::tracing(mem)
        } else {
            Vm::native(mem)
        };

        let mut bits = vec![vec![0u8; k]; b];
        let mut iterations_run = 0;
        for _ in 0..iterations {
            iterations_run += 1;
            self.siso(
                &mut vm, sys, p1, la1, inputs, false, g0, gp, alpha_arr, ext, post,
            );
            for g in 0..b {
                for j in 0..k {
                    vm.scalar_map16(
                        ext.base + self.il.pi(j) * b + g,
                        la2.base + j * b + g,
                        scale_extrinsic,
                    );
                }
            }
            self.siso(
                &mut vm, sys_pi, p2, la2, inputs, true, g0, gp, alpha_arr, ext, post,
            );
            for g in 0..b {
                for i in 0..k {
                    vm.scalar_map16(
                        ext.base + self.il.pi_inv(i) * b + g,
                        la1.base + i * b + g,
                        scale_extrinsic,
                    );
                }
            }
            for (g, blk) in bits.iter_mut().enumerate() {
                for (i, bit) in blk.iter_mut().enumerate() {
                    *bit = llr_to_bit(vm.mem().get(post.base + self.il.pi_inv(i) * b + g));
                }
            }
        }
        let outcomes = bits
            .into_iter()
            .map(|bits| DecodeOutcome {
                bits,
                iterations_run,
                crc_ok: None,
            })
            .collect();
        (outcomes, tracing.then(|| vm.take_trace()))
    }

    /// One batched SISO pass over `B` blocks.
    #[allow(clippy::too_many_arguments)]
    fn siso(
        &self,
        vm: &mut Vm,
        sys: MemRef,
        par: MemRef,
        la: MemRef,
        inputs: &[TurboLlrs],
        second: bool,
        g0: MemRef,
        gp: MemRef,
        alpha_arr: MemRef,
        ext: MemRef,
        post: MemRef,
    ) {
        let w = self.width;
        let b = self.batch();
        let k = self.il.k();
        let lanes = w.lanes();

        // ---- γ phase: full-width streaming over k·B values ----
        let mut off = 0;
        while off + lanes <= k * b {
            let ls = vm.load(w, sys.slice(off, lanes));
            let lav = vm.load(w, la.slice(off, lanes));
            let sum = vm.adds(ls, lav);
            let g0v = vm.srai(sum, 1);
            vm.store(g0v, g0.slice(off, lanes));
            let lp = vm.load(w, par.slice(off, lanes));
            let gpv = vm.srai(lp, 1);
            vm.store(gpv, gp.slice(off, lanes));
            off += lanes;
        }
        // K is always a multiple of 8 and lanes = 8·B, so k·B divides
        // evenly — no ragged tail.
        debug_assert_eq!(off, k * b);

        // ---- constants ----
        let zero = vm.splat(w, 0);
        // path-metric floor, matching the scalar/xmm decoders
        let floor = vm.splat(w, NEG_INF);
        let m_pp0 = vm.const_vec(group_parity_mask(w, trellis::pred_parity(0)));
        let m_pp1 = vm.const_vec(group_parity_mask(w, trellis::pred_parity(1)));
        let m_np0 = vm.const_vec(group_parity_mask(w, trellis::next_parity(0)));
        let m_np1 = vm.const_vec(group_parity_mask(w, trellis::next_parity(1)));
        let pred0 = group_table(w, trellis::pred_table(0));
        let pred1 = group_table(w, trellis::pred_table(1));
        let next0 = group_table(w, trellis::next_table(0));
        let next1 = group_table(w, trellis::next_table(1));
        let bcast = group_broadcast_table(w);
        let bcast0 = group_rotate_table(w, 0); // lane g*8 broadcast helper below
        let _ = bcast0;
        // broadcast of each group's lane 0 across its group
        let group_lane0: Vec<Option<u8>> = (0..w.lanes())
            .map(|l| Some(((l / STATES) * STATES) as u8))
            .collect();

        let blend = |vm: &mut Vm, gpv: VReg, neg: VReg, mask: VReg| {
            let pos = vm.and(gpv, mask);
            let n = vm.andnot(mask, neg);
            vm.or(pos, n)
        };

        // Per-step broadcast: load the B packed scalars at γ[step·B..]
        // into the low lanes, then replicate into groups. The packed
        // load reads B i16 values; model it as one narrow load.
        let packed = |vm: &mut Vm, region: MemRef, step: usize| -> VReg {
            // Load a full register whose low B lanes are the packed
            // values (the rest are irrelevant — masked by the shuffle).
            let base = step * b;
            let avail = region.len - base;
            let r = if avail >= w.lanes() {
                vm.load(w, region.slice(base, w.lanes()))
            } else {
                // near the end of the array: back up so the load fits
                let start = region.len - w.lanes();
                let v = vm.load(w, region.slice(start, w.lanes()));
                // rotate the wanted lanes down to position 0
                vm.rotate_lanes_left(v, base - start)
            };
            vm.shuffle(r, &bcast)
        };

        // ---- α recursion ----
        let mut alpha0 = vec![NEG_INF; w.lanes()];
        for g in 0..b {
            alpha0[g * STATES] = 0;
        }
        let mut alpha = vm.const_vec(VecVal::from_lanes(w, &alpha0));
        vm.store(alpha, alpha_arr.slice(0, w.lanes()));
        for step in 0..k {
            let g0k = packed(vm, g0, step);
            let gpk = packed(vm, gp, step);
            let neg_gp = vm.subs(zero, gpk);
            let neg_g0 = vm.subs(zero, g0k);
            let gp_s0 = blend(vm, gpk, neg_gp, m_pp0);
            let gp_s1 = blend(vm, gpk, neg_gp, m_pp1);
            let gam0 = vm.adds(g0k, gp_s0);
            let gam1 = vm.adds(neg_g0, gp_s1);
            let a0 = vm.shuffle(alpha, &pred0);
            let a1 = vm.shuffle(alpha, &pred1);
            let c0 = vm.adds(a0, gam0);
            let c1 = vm.adds(a1, gam1);
            let m01 = vm.max(c0, c1);
            let amax = vm.max(m01, floor);
            let norm = vm.shuffle(amax, &group_lane0);
            alpha = vm.subs(amax, norm);
            vm.store(alpha, alpha_arr.slice((step + 1) * w.lanes(), w.lanes()));
        }

        // ---- β + extrinsic ----
        let mut binit = Vec::with_capacity(w.lanes());
        for input in inputs {
            let (ts, tp) = if second {
                (&input.tails.sys2, &input.tails.p2)
            } else {
                (&input.tails.sys1, &input.tails.p1)
            };
            binit.extend_from_slice(&beta_init_from_tails(ts, tp));
        }
        let mut beta = vm.const_vec(VecVal::from_lanes(w, &binit));
        for step in (0..k).rev() {
            let g0k = packed(vm, g0, step);
            let gpk = packed(vm, gp, step);
            let neg_gp = vm.subs(zero, gpk);
            let neg_g0 = vm.subs(zero, g0k);
            let gp_n0 = blend(vm, gpk, neg_gp, m_np0);
            let gp_n1 = blend(vm, gpk, neg_gp, m_np1);
            let gam0 = vm.adds(g0k, gp_n0);
            let gam1 = vm.adds(neg_g0, gp_n1);
            let b0 = vm.shuffle(beta, &next0);
            let b1 = vm.shuffle(beta, &next1);

            let ak = vm.load(w, alpha_arr.slice(step * w.lanes(), w.lanes()));
            let ag0 = vm.adds(ak, gam0);
            let ag1 = vm.adds(ak, gam1);
            let t0 = vm.adds(ag0, b0);
            let t1 = vm.adds(ag1, b1);
            let h0 = group_hmax(vm, t0, w);
            let h1 = group_hmax(vm, t1, w);
            let m0 = vm.max(h0, floor);
            let m1 = vm.max(h1, floor);
            let lvec = vm.subs(m0, m1);
            let g0x2 = vm.adds(g0k, g0k);
            let evec = vm.subs(lvec, g0x2);
            for g in 0..b {
                vm.extract_store(lvec, g * STATES, post.base + step * b + g);
                vm.extract_store(evec, g * STATES, ext.base + step * b + g);
            }

            let c0 = vm.adds(b0, gam0);
            let c1 = vm.adds(b1, gam1);
            let m01b = vm.max(c0, c1);
            let bmax = vm.max(m01b, floor);
            let bn = vm.shuffle(bmax, &group_lane0);
            beta = vm.subs(bmax, bn);
        }
    }
}

/// Horizontal max within each 128-bit group (group-local rotate/max
/// tree) — every lane of a group ends up holding that group's max.
fn group_hmax(vm: &mut Vm, t: VReg, w: RegWidth) -> VReg {
    let r4 = group_rotate_table(w, 4);
    let r2 = group_rotate_table(w, 2);
    let r1 = group_rotate_table(w, 1);
    let s4 = vm.shuffle(t, &r4);
    let m4 = vm.max(t, s4);
    let s2 = vm.shuffle(m4, &r2);
    let m2 = vm.max(m4, s2);
    let s1 = vm.shuffle(m2, &r1);
    vm.max(m2, s1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::llr::bit_to_llr;
    use crate::turbo::simd_decoder::SimdTurboDecoder;
    use crate::turbo::{TurboDecoder, TurboEncoder};
    use vran_uarch::{CoreConfig, CoreSim};

    fn make_input(k: usize, seed: u64) -> (Vec<u8>, TurboLlrs) {
        let bits = random_bits(k, seed);
        let cw = TurboEncoder::new(k).encode(&bits);
        let d = cw.to_dstreams();
        let soft: [Vec<Llr>; 3] = d
            .iter()
            .map(|s| s.iter().map(|&b| bit_to_llr(b, 50)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        (bits, TurboLlrs::from_dstreams(&soft, k))
    }

    #[test]
    fn single_group_batch_matches_simd_decoder() {
        // B = 1 (xmm): the batched kernel degenerates to the plain one.
        let k = 64;
        let (bits, input) = make_input(k, 5);
        let batched = BatchTurboDecoder::new(k, 2, RegWidth::Sse128);
        let out = batched.decode_native(std::slice::from_ref(&input));
        let single = SimdTurboDecoder::new(k, 2, RegWidth::Sse128).decode_native(&input);
        assert_eq!(out[0].bits, single.bits);
        assert_eq!(out[0].bits, bits);
    }

    #[test]
    fn batched_zmm_equals_four_independent_decodes() {
        let k = 64;
        let inputs: Vec<(Vec<u8>, TurboLlrs)> = (0..4).map(|g| make_input(k, 100 + g)).collect();
        let batch = BatchTurboDecoder::new(k, 3, RegWidth::Avx512);
        let outs = batch.decode_native(&inputs.iter().map(|(_, i)| i.clone()).collect::<Vec<_>>());
        assert_eq!(batch.batch(), 4);
        let scalar = TurboDecoder::new(k, 3);
        for (g, (bits, input)) in inputs.iter().enumerate() {
            let single = scalar.decode(input);
            assert_eq!(
                outs[g].bits, single.bits,
                "block {g} diverged from scalar decode"
            );
            assert_eq!(&outs[g].bits, bits, "block {g} must decode correctly");
        }
    }

    #[test]
    fn batched_ymm_equals_two_independent_decodes() {
        let k = 40;
        let inputs: Vec<(Vec<u8>, TurboLlrs)> = (0..2).map(|g| make_input(k, 77 + g)).collect();
        let batch = BatchTurboDecoder::new(k, 2, RegWidth::Avx256);
        let outs = batch.decode_native(&inputs.iter().map(|(_, i)| i.clone()).collect::<Vec<_>>());
        for (g, (bits, _)) in inputs.iter().enumerate() {
            assert_eq!(&outs[g].bits, bits);
        }
    }

    #[test]
    fn batching_efficiency_beats_serial_singles() {
        // The latency model assumes B blocks in one zmm pass cost less
        // than B separate xmm passes. Measure it.
        let k = 64;
        let inputs: Vec<TurboLlrs> = (0..4).map(|g| make_input(k, 200 + g).1).collect();
        let sim = CoreSim::new(CoreConfig::beefy().warmed());

        let (_, single_trace) =
            SimdTurboDecoder::new(k, 1, RegWidth::Sse128).decode_traced(&inputs[0], 1);
        let single = sim.run(&single_trace).cycles;

        let batch = BatchTurboDecoder::new(k, 1, RegWidth::Avx512);
        let (_, batch_trace) = batch.decode_traced(&inputs, 1);
        let batched = sim.run(&batch_trace).cycles;

        let speedup = 4.0 * single as f64 / batched as f64;
        assert!(
            speedup > 1.3,
            "batched zmm decode must beat 4 serial xmm decodes: {speedup:.2}× \
             ({single} cycles single vs {batched} for 4 blocks)"
        );
        assert!(
            speedup < 4.5,
            "speedup cannot exceed the lane advantage: {speedup:.2}×"
        );
    }

    #[test]
    #[should_panic(expected = "batch needs exactly")]
    fn wrong_batch_size_panics() {
        let (_, input) = make_input(40, 1);
        let _ = BatchTurboDecoder::new(40, 1, RegWidth::Avx512).decode_native(&[input]);
    }
}
