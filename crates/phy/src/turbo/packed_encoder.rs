//! Bitsliced packed-word turbo encoder: 64 trellis steps per `u64`
//! word, 128/256 per register under SSE2/AVX2.
//!
//! The scalar encoder in [`super::encoder`] walks the 8-state RSC
//! trellis one bit at a time — a serial dependence chain of scalar-port
//! work, the transmit-side mirror of the Fig. 6 problem APCM attacks on
//! the receive side. But the encoder is *linear over GF(2)*
//! (property-tested in `encoder.rs`), so the whole constituent pass is
//! carry-less polynomial arithmetic and can be bitsliced:
//!
//! * The feedback register solves `A · g0 = U` with `g0 = 1 + D² + D³`.
//!   Writing `g0 = 1 + p` with `p = D² + D³`, the inverse series
//!   truncates: `1/g0 = Σ pⁱ = (1+p)(1+p²)(1+p⁴)(1+p⁸)(1+p¹⁶) …`
//!   (mod `D^W`), because `pⁱ` has minimum degree `2i`. Over GF(2) each
//!   squaring is free — `p^{2ʲ} = D^{2^{j+1}} + D^{3·2ʲ}` — so one
//!   64-bit word of feedback costs **five** shift-XOR doubling steps
//!   (`log₂ 32`), a 128-bit register six, a 256-bit register seven.
//! * The parity stream is then a plain convolution
//!   `Z = A · g1 = A · (1 + D + D³)`: two more shifts.
//! * Word boundaries only couple through the top **three** feedback
//!   bits of the previous word (deg g0 = 3), folded in as scalar XORs
//!   before the in-word division.
//!
//! Bits are packed LSB-first ([`crate::bits::pack_lsb_words`]), so a
//! left shift moves *forward in time* and the recurrences above are
//! exactly `t ^= (t << a) ^ (t << b)` chains — pure vector-ALU
//! mask/merge/shift work on ports the scalar trellis walk cannot use.
//! Runtime dispatch mirrors [`super::native_decoder`]: a portable
//! `u64` kernel is the floor, SSE2/AVX2 kernels widen the same
//! arithmetic, and every level is bit-exact with the scalar oracle by
//! construction (enforced by property tests across all 188 QPP sizes).
//!
//! Trellis termination is inherently serial but only 3 steps per
//! constituent; those six bits come from the scalar trellis functions
//! applied to the final packed state.

use super::encoder::TurboCodeword;
use super::trellis;
use crate::bits::{pack_lsb_words, unpack_lsb_words};
use crate::interleaver::QppInterleaver;
use vran_simd::host::{self, HostIsa};

/// Word width a [`PackedTurboEncoder`] advances the trellis at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EncoderIsa {
    /// Portable `u64` kernel — always available, the dispatch floor
    /// (and already 64 trellis steps per word).
    Word64,
    /// 128-bit kernel: one extra `(1 + p³²)` doubling step per
    /// register, lane-crossing shifts via `pslldq`.
    Sse2,
    /// 256-bit kernel: `(1 + p³²)(1 + p⁶⁴)` doubling steps, lane moves
    /// via `vpermq` (AVX2's byte shifts do not cross 128-bit lanes).
    Avx2,
    /// 512-bit kernel: one more `(1 + p¹²⁸)` doubling factor for 512
    /// trellis steps per register; whole-register qword moves via
    /// `valignq` against zero (which, unlike the byte shifts, crosses
    /// every lane).
    Avx512,
}

impl EncoderIsa {
    /// Stable lowercase label for bench metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            EncoderIsa::Word64 => "word64",
            EncoderIsa::Sse2 => "sse2",
            EncoderIsa::Avx2 => "avx2",
            EncoderIsa::Avx512 => "avx512",
        }
    }

    /// The [`HostIsa`] feature level this kernel requires.
    pub fn required_isa(self) -> HostIsa {
        match self {
            EncoderIsa::Word64 => HostIsa::Scalar,
            EncoderIsa::Sse2 => HostIsa::Sse2,
            EncoderIsa::Avx2 => HostIsa::Avx2,
            EncoderIsa::Avx512 => HostIsa::Avx512bw,
        }
    }

    /// Levels usable on this host, ascending; `Word64` always first.
    pub fn available() -> Vec<EncoderIsa> {
        [
            EncoderIsa::Word64,
            EncoderIsa::Sse2,
            EncoderIsa::Avx2,
            EncoderIsa::Avx512,
        ]
        .into_iter()
        .filter(|isa| host::has(isa.required_isa()))
        .collect()
    }

    /// The most capable level the host supports.
    pub fn best() -> EncoderIsa {
        *EncoderIsa::available()
            .last()
            .expect("word64 always present")
    }
}

/// Reusable encode working memory: packed input, interleaved gather
/// staging, the feedback stream and the three packed d-streams. Owned
/// by long-lived callers (the pipelines) so the per-code-block hot loop
/// performs no heap allocations after warm-up; the allocation/reuse
/// counters make that claim checkable.
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    in_w: Vec<u64>,
    il_b: Vec<u8>,
    il_w: Vec<u64>,
    a_w: Vec<u64>,
    d: [Vec<u64>; 3],
    allocations: u64,
    reuses: u64,
}

impl EncodeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size (and zero) every buffer for block length `k`, growing only
    /// when the retained capacity is insufficient.
    fn ensure(&mut self, k: usize) {
        let nw = k.div_ceil(64);
        let ndw = (k + 4).div_ceil(64);
        let mut grew = false;
        {
            let mut fit = |v: &mut Vec<u64>, n: usize| {
                grew |= v.capacity() < n;
                v.clear();
                v.resize(n, 0);
            };
            fit(&mut self.in_w, nw);
            fit(&mut self.il_w, nw);
            fit(&mut self.a_w, nw);
            for s in &mut self.d {
                fit(s, ndw);
            }
        }
        grew |= self.il_b.capacity() < k;
        self.il_b.clear();
        self.il_b.resize(k, 0);
        if grew {
            self.allocations += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// The three packed d-streams of the last encode, `K + 4` bits each
    /// (LSB-first), tail bits arranged per TS 36.212 §5.1.3.2.2 —
    /// word-for-word what [`crate::rate_match::PackedRateMatcher`]
    /// consumes.
    pub fn dstream_words(&self) -> [&[u64]; 3] {
        [&self.d[0], &self.d[1], &self.d[2]]
    }

    /// Times `ensure` had to grow at least one buffer.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Times `ensure` was served entirely from retained capacity
    /// (i.e. heap allocations avoided).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// The packed-word turbo encoder for one block size.
#[derive(Debug, Clone)]
pub struct PackedTurboEncoder {
    il: QppInterleaver,
    isa: EncoderIsa,
}

impl PackedTurboEncoder {
    /// Encoder for block size `k` at the best ISA level the host
    /// supports.
    pub fn new(k: usize) -> Self {
        Self::with_isa(k, EncoderIsa::best())
    }

    /// Encoder pinned to a specific ISA level (tests, benchmarks).
    pub fn with_isa(k: usize, isa: EncoderIsa) -> Self {
        assert!(
            host::has(isa.required_isa()),
            "host lacks {} support",
            isa.name()
        );
        Self {
            il: QppInterleaver::new(k),
            isa,
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// The ISA level this encoder dispatches to.
    pub fn isa(&self) -> EncoderIsa {
        self.isa
    }

    /// The interleaver in use (shared with the decoder).
    pub fn interleaver(&self) -> &QppInterleaver {
        &self.il
    }

    /// Encode one block into the scalar-oracle [`TurboCodeword`] shape
    /// (convenience path; the pipelines use
    /// [`Self::encode_dstreams_into`] to stay packed end to end).
    pub fn encode(&self, bits: &[u8]) -> TurboCodeword {
        let mut scratch = EncodeScratch::new();
        self.encode_dstreams_into(bits, &mut scratch);
        let k = self.il.k();
        let d0 = unpack_lsb_words(&scratch.d[0], k + 4);
        let d1 = unpack_lsb_words(&scratch.d[1], k + 4);
        let d2 = unpack_lsb_words(&scratch.d[2], k + 4);
        // invert the §5.1.3.2.2 d-stream tail arrangement
        TurboCodeword {
            k,
            sys: d0[..k].to_vec(),
            p1: d1[..k].to_vec(),
            p2: d2[..k].to_vec(),
            tail_sys1: [d0[k], d2[k], d1[k + 1]],
            tail_p1: [d1[k], d0[k + 1], d2[k + 1]],
            tail_sys2: [d0[k + 2], d2[k + 2], d1[k + 3]],
            tail_p2: [d1[k + 2], d0[k + 3], d2[k + 3]],
        }
    }

    /// Encode one block of `K` information bits straight into packed
    /// d-streams (`K + 4` bits each, tail arrangement included),
    /// allocation-free after scratch warm-up.
    pub fn encode_dstreams_into(&self, bits: &[u8], scratch: &mut EncodeScratch) {
        let k = self.il.k();
        assert_eq!(bits.len(), k, "block must be exactly K={k} bits");
        scratch.ensure(k);
        let nw = k.div_ceil(64);

        // constituent 1: systematic is the input, parity into d1
        pack_lsb_words(bits, &mut scratch.in_w);
        let s1 = rsc_packed(
            self.isa,
            &scratch.in_w,
            k,
            &mut scratch.a_w,
            &mut scratch.d[1][..nw],
        );
        scratch.d[0][..nw].copy_from_slice(&scratch.in_w);

        // constituent 2: byte-gather the interleaved input, then pack
        // 8 bits per multiply — far cheaper than per-bit word inserts
        for (b, &p) in scratch.il_b.iter_mut().zip(self.il.pi_table()) {
            *b = bits[p as usize];
        }
        pack_lsb_words(&scratch.il_b, &mut scratch.il_w);
        let s2 = rsc_packed(
            self.isa,
            &scratch.il_w,
            k,
            &mut scratch.a_w,
            &mut scratch.d[2][..nw],
        );

        // the IIR feedback keeps running into the zero padding, so the
        // parity words carry garbage above bit K-1 — clear it before
        // placing the tail bits
        if k & 63 != 0 {
            let mask = (1u64 << (k & 63)) - 1;
            scratch.d[1][nw - 1] &= mask;
            scratch.d[2][nw - 1] &= mask;
        }

        // trellis termination: 3 serial steps per constituent from the
        // extracted final states, arranged per §5.1.3.2.2
        let (ts1, tp1) = terminate(s1);
        let (ts2, tp2) = terminate(s2);
        set_bits(&mut scratch.d[0], k, [ts1[0], tp1[1], ts2[0], tp2[1]]);
        set_bits(&mut scratch.d[1], k, [tp1[0], ts1[2], tp2[0], ts2[2]]);
        set_bits(&mut scratch.d[2], k, [ts1[1], tp1[2], ts2[1], tp2[2]]);
    }
}

/// Three termination steps from trellis state `s`: the (tail input,
/// tail parity) sequences that drive the feedback register to zero.
fn terminate(mut s: u8) -> ([u8; 3], [u8; 3]) {
    let mut tail_sys = [0u8; 3];
    let mut tail_p = [0u8; 3];
    for i in 0..3 {
        let u = trellis::term_input(s);
        tail_sys[i] = u;
        tail_p[i] = trellis::parity(s, u);
        s = trellis::next_state(s, u);
    }
    debug_assert_eq!(s, 0, "trellis must terminate in the zero state");
    (tail_sys, tail_p)
}

/// OR four tail bits into a packed stream at bit offsets `k..k+4`.
fn set_bits(words: &mut [u64], k: usize, tail: [u8; 4]) {
    for (i, b) in tail.into_iter().enumerate() {
        words[(k + i) >> 6] |= u64::from(b) << ((k + i) & 63);
    }
}

/// Run one RSC constituent over `nbits` packed input bits: writes the
/// feedback stream to `a` and the parity stream to `z` (both
/// `nbits.div_ceil(64)` words, garbage above bit `nbits-1` of the last
/// word is never read) and returns the trellis state after the last
/// information bit.
fn rsc_packed(isa: EncoderIsa, u: &[u64], nbits: usize, a: &mut [u64], z: &mut [u64]) -> u8 {
    match isa {
        EncoderIsa::Word64 => rsc_words_u64(u, a, z),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: with_isa / best() guarantee the feature is present.
        EncoderIsa::Sse2 => unsafe { rsc_words_sse2(u, a, z) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        EncoderIsa::Avx2 => unsafe { rsc_words_avx2(u, a, z) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        EncoderIsa::Avx512 => unsafe { rsc_words_avx512(u, a, z) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rsc_words_u64(u, a, z),
    }
    final_state(a, nbits)
}

/// Trellis state `(a₋₁ << 2) | (a₋₂ << 1) | a₋₃` read from the last
/// three feedback bits of the packed stream.
fn final_state(a: &[u64], nbits: usize) -> u8 {
    debug_assert!(nbits >= 3);
    let bit = |i: usize| ((a[i >> 6] >> (i & 63)) & 1) as u8;
    (bit(nbits - 1) << 2) | (bit(nbits - 2) << 1) | bit(nbits - 3)
}

/// One 64-step trellis advance: feedback word and parity word from an
/// input word plus the previous feedback word (for the cross-word
/// taps). The five doubling steps compute `t · 1/g0 mod D⁶⁴`.
#[inline]
fn rsc_word(u: u64, prev_a: u64) -> (u64, u64) {
    // fold the previous word's top three feedback bits into the first
    // taps of this word: u'₀ gets a₋₂⊕a₋₃, u'₁ gets a₋₁⊕a₋₂, u'₂ gets a₋₁
    let mut t = u ^ (prev_a >> 62) ^ (prev_a >> 61);
    t ^= (t << 2) ^ (t << 3); //  × (1 + p),    p  = D² + D³
    t ^= (t << 4) ^ (t << 6); //  × (1 + p²)
    t ^= (t << 8) ^ (t << 12); // × (1 + p⁴)
    t ^= (t << 16) ^ (t << 24); // × (1 + p⁸)
    t ^= (t << 32) ^ (t << 48); // × (1 + p¹⁶)
                                // z = a · (1 + D + D³), with the a₋₁/a₋₃ taps of bits 0..2 coming
                                // from the previous word
    let z = t ^ (t << 1) ^ (t << 3) ^ (prev_a >> 63) ^ (prev_a >> 61);
    (t, z)
}

/// Portable kernel: 64 trellis steps per iteration.
fn rsc_words_u64(u: &[u64], a: &mut [u64], z: &mut [u64]) {
    let mut prev = 0u64;
    for ((&uw, aw), zw) in u.iter().zip(a.iter_mut()).zip(z.iter_mut()) {
        let (an, zn) = rsc_word(uw, prev);
        *aw = an;
        *zw = zn;
        prev = an;
    }
}

/// SSE2 kernel: 128 trellis steps per register. Identical math to
/// [`rsc_word`] plus a sixth doubling step `(1 + p³²)`, whose
/// `D⁶⁴`/`D⁹⁶` shifts cross the 64-bit lanes via `pslldq`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn rsc_words_sse2(u: &[u64], a: &mut [u64], z: &mut [u64]) {
    use core::arch::x86_64::*;
    // full-register left shift by 0 < n < 64: per-lane shift plus the
    // bits that cross the lane boundary
    macro_rules! shl {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm_or_si128(
                _mm_slli_epi64::<$n>(x),
                _mm_srli_epi64::<{ 64 - $n }>(_mm_slli_si128::<8>(x)),
            )
        }};
    }
    let mut prev_hi = 0u64;
    let mut i = 0;
    while i + 2 <= u.len() {
        // cross-register taps folded scalar into the low lane only
        let lo = u[i] ^ (prev_hi >> 62) ^ (prev_hi >> 61);
        let mut t = _mm_set_epi64x(u[i + 1] as i64, lo as i64);
        t = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 2), shl!(t, 3)));
        t = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 4), shl!(t, 6)));
        t = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 8), shl!(t, 12)));
        t = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 16), shl!(t, 24)));
        t = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 32), shl!(t, 48)));
        let t64 = _mm_slli_si128::<8>(t); // × (1 + p³²): D⁶⁴ + D⁹⁶
        t = _mm_xor_si128(t, _mm_xor_si128(t64, shl!(t64, 32)));
        _mm_storeu_si128(a.as_mut_ptr().add(i).cast(), t);
        let zz = _mm_xor_si128(t, _mm_xor_si128(shl!(t, 1), shl!(t, 3)));
        _mm_storeu_si128(z.as_mut_ptr().add(i).cast(), zz);
        z[i] ^= (prev_hi >> 63) ^ (prev_hi >> 61);
        prev_hi = a[i + 1];
        i += 2;
    }
    while i < u.len() {
        let (an, zn) = rsc_word(u[i], prev_hi);
        a[i] = an;
        z[i] = zn;
        prev_hi = an;
        i += 1;
    }
}

/// AVX2 kernel: 256 trellis steps per register, seven doubling steps.
/// `_mm256_slli_si256` only shifts within 128-bit lanes, so whole-
/// register lane moves go through `vpermq` + a blend-with-zero.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rsc_words_avx2(u: &[u64], a: &mut [u64], z: &mut [u64]) {
    use core::arch::x86_64::*;
    // whole-register << 64: every 64-bit lane up one, lane 0 zeroed
    macro_rules! up1 {
        ($x:expr) => {
            _mm256_blend_epi32::<0x03>(_mm256_permute4x64_epi64::<0x90>($x), _mm256_setzero_si256())
        };
    }
    // full-register left shift by 0 < n < 64
    macro_rules! shl {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm256_or_si256(
                _mm256_slli_epi64::<$n>(x),
                _mm256_srli_epi64::<{ 64 - $n }>(up1!(x)),
            )
        }};
    }
    let mut prev_hi = 0u64;
    let mut i = 0;
    while i + 4 <= u.len() {
        let lo = u[i] ^ (prev_hi >> 62) ^ (prev_hi >> 61);
        let fix = _mm256_set_epi64x(0, 0, 0, (lo ^ u[i]) as i64);
        let mut t = _mm256_xor_si256(_mm256_loadu_si256(u.as_ptr().add(i).cast()), fix);
        t = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 2), shl!(t, 3)));
        t = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 4), shl!(t, 6)));
        t = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 8), shl!(t, 12)));
        t = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 16), shl!(t, 24)));
        t = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 32), shl!(t, 48)));
        let t64 = up1!(t); // × (1 + p³²): D⁶⁴ + D⁹⁶
        t = _mm256_xor_si256(t, _mm256_xor_si256(t64, shl!(t64, 32)));
        // × (1 + p⁶⁴): D¹²⁸ + D¹⁹² via vpermq lane broadcasts
        let t128 =
            _mm256_blend_epi32::<0x0F>(_mm256_permute4x64_epi64::<0x40>(t), _mm256_setzero_si256());
        let t192 =
            _mm256_blend_epi32::<0x3F>(_mm256_permute4x64_epi64::<0x00>(t), _mm256_setzero_si256());
        t = _mm256_xor_si256(t, _mm256_xor_si256(t128, t192));
        _mm256_storeu_si256(a.as_mut_ptr().add(i).cast(), t);
        let zz = _mm256_xor_si256(t, _mm256_xor_si256(shl!(t, 1), shl!(t, 3)));
        _mm256_storeu_si256(z.as_mut_ptr().add(i).cast(), zz);
        z[i] ^= (prev_hi >> 63) ^ (prev_hi >> 61);
        prev_hi = a[i + 3];
        i += 4;
    }
    while i < u.len() {
        let (an, zn) = rsc_word(u[i], prev_hi);
        a[i] = an;
        z[i] = zn;
        prev_hi = an;
        i += 1;
    }
}

/// AVX-512 kernel: 512 trellis steps per register, eight doubling
/// steps. Unlike SSE2/AVX2, whole-register qword moves are a single
/// `valignq` against zero — no lane-boundary patch-up — so the extra
/// `(1 + p¹²⁸)` factor (`D²⁵⁶ + D³⁸⁴`) costs just two shift-XORs. Only
/// AVX-512F ops are needed, but dispatch gates on the host ladder's
/// `Avx512bw` level (which probes `avx512f` too).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn rsc_words_avx512(u: &[u64], a: &mut [u64], z: &mut [u64]) {
    use core::arch::x86_64::*;
    // whole-register shift up by $q qwords (64·$q bits), zero-filled:
    // valignq picks qwords $q .. $q+7 of zero:x
    macro_rules! up {
        ($x:expr, $q:literal) => {
            _mm512_alignr_epi64::<{ 8 - $q }>($x, _mm512_setzero_si512())
        };
    }
    // full-register left shift by 0 < n < 64
    macro_rules! shl {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm512_or_si512(
                _mm512_slli_epi64::<$n>(x),
                _mm512_srli_epi64::<{ 64 - $n }>(up!(x, 1)),
            )
        }};
    }
    let mut prev_hi = 0u64;
    let mut i = 0;
    while i + 8 <= u.len() {
        let lo = u[i] ^ (prev_hi >> 62) ^ (prev_hi >> 61);
        let fix = _mm512_set_epi64(0, 0, 0, 0, 0, 0, 0, (lo ^ u[i]) as i64);
        let mut t = _mm512_xor_si512(_mm512_loadu_si512(u.as_ptr().add(i).cast()), fix);
        t = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 2), shl!(t, 3)));
        t = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 4), shl!(t, 6)));
        t = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 8), shl!(t, 12)));
        t = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 16), shl!(t, 24)));
        t = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 32), shl!(t, 48)));
        let t64 = up!(t, 1); // × (1 + p³²): D⁶⁴ + D⁹⁶
        t = _mm512_xor_si512(t, _mm512_xor_si512(t64, shl!(t64, 32)));
        // × (1 + p⁶⁴): D¹²⁸ + D¹⁹²
        t = _mm512_xor_si512(t, _mm512_xor_si512(up!(t, 2), up!(t, 3)));
        // × (1 + p¹²⁸): D²⁵⁶ + D³⁸⁴
        t = _mm512_xor_si512(t, _mm512_xor_si512(up!(t, 4), up!(t, 6)));
        _mm512_storeu_si512(a.as_mut_ptr().add(i).cast(), t);
        let zz = _mm512_xor_si512(t, _mm512_xor_si512(shl!(t, 1), shl!(t, 3)));
        _mm512_storeu_si512(z.as_mut_ptr().add(i).cast(), zz);
        z[i] ^= (prev_hi >> 63) ^ (prev_hi >> 61);
        prev_hi = a[i + 7];
        i += 8;
    }
    while i < u.len() {
        let (an, zn) = rsc_word(u[i], prev_hi);
        a[i] = an;
        z[i] = zn;
        prev_hi = an;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::turbo::TurboEncoder;

    #[test]
    fn word64_is_always_available_and_first() {
        let avail = EncoderIsa::available();
        assert_eq!(avail[0], EncoderIsa::Word64);
        assert!(avail.contains(&EncoderIsa::best()));
    }

    #[test]
    fn packed_matches_scalar_oracle_on_every_isa() {
        // word-boundary shapes: sub-word, exactly 1/2/many words, and
        // the largest K
        for k in [40usize, 64, 104, 128, 256, 512, 2048, 6144] {
            let bits = random_bits(k, k as u64);
            let oracle = TurboEncoder::new(k).encode(&bits);
            for isa in EncoderIsa::available() {
                let got = PackedTurboEncoder::with_isa(k, isa).encode(&bits);
                assert_eq!(got, oracle, "K={k} isa={}", isa.name());
            }
        }
    }

    #[test]
    fn packed_dstreams_match_oracle_dstreams() {
        let k = 6144;
        let bits = random_bits(k, 9);
        let oracle = TurboEncoder::new(k).encode(&bits).to_dstreams();
        let enc = PackedTurboEncoder::new(k);
        let mut scratch = EncodeScratch::new();
        enc.encode_dstreams_into(&bits, &mut scratch);
        for (got, want) in scratch.dstream_words().into_iter().zip(&oracle) {
            assert_eq!(unpack_lsb_words(got, k + 4), *want);
        }
    }

    #[test]
    fn packed_all_zero_input_yields_all_zero_dstreams() {
        let enc = PackedTurboEncoder::new(40);
        let mut scratch = EncodeScratch::new();
        enc.encode_dstreams_into(&[0; 40], &mut scratch);
        for s in scratch.dstream_words() {
            assert!(s.iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn packed_impulse_feedback_is_iir() {
        // a single 1 at t=0 must smear through the feedback register —
        // the IIR 1/g0 series — exactly as the trellis walk produces it
        let mut bits = vec![0u8; 128];
        bits[0] = 1;
        let oracle = TurboEncoder::new(128).encode(&bits);
        for isa in EncoderIsa::available() {
            let got = PackedTurboEncoder::with_isa(128, isa).encode(&bits);
            assert_eq!(got, oracle, "isa {}", isa.name());
        }
        assert!(oracle.p1[64..].contains(&1), "IIR must cross the word");
    }

    #[test]
    fn packed_scratch_stops_allocating_after_warmup() {
        let enc = PackedTurboEncoder::new(6144);
        let bits = random_bits(6144, 3);
        let mut scratch = EncodeScratch::new();
        enc.encode_dstreams_into(&bits, &mut scratch);
        let after_warmup = scratch.allocations();
        for _ in 0..5 {
            enc.encode_dstreams_into(&bits, &mut scratch);
        }
        assert_eq!(scratch.allocations(), after_warmup);
        assert_eq!(scratch.reuses(), 5);
    }

    #[test]
    fn scratch_shrinks_and_regrows_across_block_sizes() {
        let big = PackedTurboEncoder::new(6144);
        let small = PackedTurboEncoder::new(40);
        let mut scratch = EncodeScratch::new();
        big.encode_dstreams_into(&random_bits(6144, 1), &mut scratch);
        small.encode_dstreams_into(&random_bits(40, 2), &mut scratch);
        // shrinking reuses capacity
        assert_eq!(scratch.reuses(), 1);
        let b = random_bits(6144, 4);
        let oracle = TurboEncoder::new(6144).encode(&b);
        big.encode_dstreams_into(&b, &mut scratch);
        let got = unpack_lsb_words(scratch.dstream_words()[1], 6144);
        assert_eq!(got, oracle.p1, "stale scratch state leaked");
    }

    #[test]
    #[should_panic(expected = "exactly K")]
    fn wrong_block_size_panics() {
        PackedTurboEncoder::new(40).encode(&[0; 39]);
    }

    #[test]
    fn avx512_encoder_beats_avx2_at_max_k() {
        // The acceptance bar for the 512-bit tier: at K=6144 the zmm
        // kernel must out-encode the ymm kernel in wall-clock. Skipped
        // (not failed) where the host lacks AVX-512BW — exactness is
        // covered unconditionally by the oracle tests.
        use vran_simd::host::{self, HostIsa};
        if !host::has(HostIsa::Avx512bw) {
            eprintln!("avx512_encoder_beats_avx2_at_max_k: SKIPPED (no avx512bw)");
            return;
        }
        let k = 6144;
        let bits = random_bits(k, 42);
        let burst_ns = |enc: &PackedTurboEncoder, scratch: &mut EncodeScratch| -> u128 {
            let burst = 64;
            let t = std::time::Instant::now();
            for _ in 0..burst {
                enc.encode_dstreams_into(std::hint::black_box(&bits), scratch);
            }
            t.elapsed().as_nanos() / burst
        };
        let ymm_enc = PackedTurboEncoder::with_isa(k, EncoderIsa::Avx2);
        let zmm_enc = PackedTurboEncoder::with_isa(k, EncoderIsa::Avx512);
        let mut scratch = EncodeScratch::new();
        ymm_enc.encode_dstreams_into(&bits, &mut scratch); // warm-up
        zmm_enc.encode_dstreams_into(&bits, &mut scratch);
        // Median of *paired* ratios (both ISAs timed back-to-back per
        // rep): a scheduler blip hits both sides of a pair, so it
        // cannot flip the comparison the way two separate timing
        // windows can.
        let reps = 9;
        let mut pairs: Vec<(u128, u128)> = (0..reps)
            .map(|_| {
                (
                    burst_ns(&ymm_enc, &mut scratch),
                    burst_ns(&zmm_enc, &mut scratch),
                )
            })
            .collect();
        pairs.sort_by(|a, b| {
            let ra = a.0 as f64 / a.1 as f64;
            let rb = b.0 as f64 / b.1 as f64;
            ra.partial_cmp(&rb).unwrap()
        });
        let (ymm, zmm) = pairs[pairs.len() / 2];
        let speedup = ymm as f64 / zmm as f64;
        assert!(
            speedup > 1.0,
            "512-bit encode must beat 256-bit at K={k}: {speedup:.2}× \
             ({ymm} ns avx2 vs {zmm} ns avx512)"
        );
        assert!(
            speedup < 3.0,
            "speedup cannot wildly exceed the width advantage: {speedup:.2}×"
        );
    }
}
