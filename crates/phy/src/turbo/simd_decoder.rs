//! SIMD max-log-MAP turbo decoder expressed as `vran-simd` VM kernels.
//!
//! This is the OAI-style vectorization the paper profiles:
//!
//! * **γ phase** — lane-parallel over trellis steps: whole registers of
//!   `width` consecutive systematic/parity LLRs are loaded from the
//!   *arranged* streams, halved, and stored as branch-metric arrays.
//!   This phase is why the data arrangement exists: it consumes
//!   `systematic1`/`yparity1`/`yparity2` exactly as Figure 8a shows.
//! * **α/β phases** — lane-parallel over the 8 trellis states in one
//!   xmm register: `_mm_shuffle`-based predecessor/successor gathers,
//!   `_mm_adds_epi16` metric accumulation, `_mm_max_epi16` selection,
//!   broadcast-subtract normalization.
//! * **extrinsic phase** — fused with β; horizontal max reduction plus
//!   a `pextrw` store per step (the `_mm_extract` usage Figure 7
//!   profiles inside the decoding submodule).
//!
//! **Bit-exactness contract**: every arithmetic step mirrors
//! [`super::decoder`] operation-for-operation (same saturating i16 ops,
//! same order), so `decode_native` produces identical bits, extrinsics
//! and iteration counts as the scalar reference. The test suite enforces
//! this.

use super::decoder::{beta_init_from_tails, scale_extrinsic, DecodeOutcome, NEG_INF};
use super::trellis::{self, STATES};
use crate::crc::Crc;
use crate::interleaver::QppInterleaver;
use crate::llr::{llr_to_bit, Llr, TailLlrs, TurboLlrs};
use vran_simd::{Mem, MemRef, RegWidth, Trace, VReg, VecVal, Vm};

/// Shuffle table from a trellis lane table.
fn shuf(table: [u8; STATES]) -> [Option<u8>; STATES] {
    table.map(Some)
}

/// Mask vector: lane = all-ones where `parities[lane] == 0` (select
/// `+γₚ`), zero otherwise.
fn parity_mask(parities: [u8; STATES]) -> VecVal {
    let lanes: Vec<i16> = parities
        .iter()
        .map(|&p| if p == 0 { -1 } else { 0 })
        .collect();
    VecVal::from_lanes(RegWidth::Sse128, &lanes)
}

/// The SIMD turbo decoder for one block size.
#[derive(Debug, Clone)]
pub struct SimdTurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
    width: RegWidth,
}

/// Scratch regions one SISO pass works in.
struct Scratch {
    g0: MemRef,
    gp: MemRef,
    alpha: MemRef,
    ext: MemRef,
    post: MemRef,
}

impl SimdTurboDecoder {
    /// Decoder for block size `k`; `width` selects the register width
    /// used by the lane-parallel γ phase (the α/β state recursions are
    /// always 8 × i16 = one xmm, like OAI).
    pub fn new(k: usize, max_iterations: usize, width: RegWidth) -> Self {
        assert!(max_iterations >= 1);
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
            width,
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Decode from arranged stream regions already staged in `vm`'s
    /// memory (each of length K), e.g. the output of a `vran-arrange`
    /// kernel.
    pub fn decode_in_vm(
        &self,
        vm: &mut Vm,
        sys: MemRef,
        p1: MemRef,
        p2: MemRef,
        tails: &TailLlrs,
        crc: Option<&Crc>,
    ) -> DecodeOutcome {
        let k = self.il.k();
        assert!(
            sys.len == k && p1.len == k && p2.len == k,
            "stream regions must be length K"
        );

        // Interleaved systematic stream for decoder 2 (built once).
        let sys_pi = vm.mem_mut().alloc(k);
        for j in 0..k {
            vm.copy16(sys.base + self.il.pi(j), sys_pi.base + j);
        }
        let la1 = vm.mem_mut().alloc(k);
        let la2 = vm.mem_mut().alloc(k);
        let s1 = self.alloc_scratch(vm, k);
        let s2 = self.alloc_scratch(vm, k);

        let mut bits = vec![0u8; k];
        let mut iterations_run = 0;
        let mut crc_ok = None;
        for _ in 0..self.max_iterations {
            iterations_run += 1;
            self.siso(vm, sys, p1, la1, &tails.sys1, &tails.p1, &s1);
            for j in 0..k {
                vm.scalar_map16(s1.ext.base + self.il.pi(j), la2.base + j, scale_extrinsic);
            }
            self.siso(vm, sys_pi, p2, la2, &tails.sys2, &tails.p2, &s2);
            for i in 0..k {
                vm.scalar_map16(
                    s2.ext.base + self.il.pi_inv(i),
                    la1.base + i,
                    scale_extrinsic,
                );
            }
            for (i, b) in bits.iter_mut().enumerate() {
                *b = llr_to_bit(vm.mem().get(s2.post.base + self.il.pi_inv(i)));
            }
            if let Some(c) = crc {
                let ok = c.check(&bits).is_some();
                crc_ok = Some(ok);
                if ok {
                    break;
                }
            }
        }
        DecodeOutcome {
            bits,
            iterations_run,
            crc_ok,
        }
    }

    /// Convenience: stage `input` into a fresh native-mode VM and
    /// decode. Bit-exact with [`super::decoder::TurboDecoder::decode`].
    pub fn decode_native(&self, input: &TurboLlrs) -> DecodeOutcome {
        let (mut vm, (sys, p1, p2)) = self.stage(input, false);
        self.decode_in_vm(&mut vm, sys, p1, p2, &input.tails, None)
    }

    /// Run `iterations` full iterations in tracing mode and return the
    /// outcome plus the recorded µop trace (for `vran-uarch`).
    pub fn decode_traced(&self, input: &TurboLlrs, iterations: usize) -> (DecodeOutcome, Trace) {
        let capped = Self {
            il: QppInterleaver::new(self.il.k()),
            max_iterations: iterations,
            width: self.width,
        };
        let (mut vm, (sys, p1, p2)) = capped.stage(input, true);
        let out = capped.decode_in_vm(&mut vm, sys, p1, p2, &input.tails, None);
        (out, vm.take_trace())
    }

    fn stage(&self, input: &TurboLlrs, tracing: bool) -> (Vm, (MemRef, MemRef, MemRef)) {
        assert_eq!(input.k, self.il.k(), "input block size mismatch");
        let mut mem = Mem::new();
        let sys = mem.alloc_from(&input.streams.sys);
        let p1 = mem.alloc_from(&input.streams.p1);
        let p2 = mem.alloc_from(&input.streams.p2);
        let vm = if tracing {
            Vm::tracing(mem)
        } else {
            Vm::native(mem)
        };
        (vm, (sys, p1, p2))
    }

    fn alloc_scratch(&self, vm: &mut Vm, k: usize) -> Scratch {
        Scratch {
            g0: vm.mem_mut().alloc(k),
            gp: vm.mem_mut().alloc(k),
            alpha: vm.mem_mut().alloc((k + 1) * STATES),
            ext: vm.mem_mut().alloc(k),
            post: vm.mem_mut().alloc(k),
        }
    }

    /// One SISO pass; writes extrinsic and posterior arrays in `sc`.
    #[allow(clippy::too_many_arguments)]
    fn siso(
        &self,
        vm: &mut Vm,
        sys: MemRef,
        par: MemRef,
        la: MemRef,
        tail_sys: &[Llr; 3],
        tail_par: &[Llr; 3],
        sc: &Scratch,
    ) {
        let k = self.il.k();
        let x = RegWidth::Sse128;

        // ---- γ phase: lane-parallel over trellis steps ----
        // Wide registers pay off here; K is always a multiple of 8, so
        // process full `width` chunks and finish with xmm chunks.
        let mut off = 0;
        for &w in &[self.width, RegWidth::Sse128] {
            let l = w.lanes();
            while off + l <= k {
                let ls = vm.load(w, sys.slice(off, l));
                let lav = vm.load(w, la.slice(off, l));
                let sum = vm.adds(ls, lav);
                let g0v = vm.srai(sum, 1);
                vm.store(g0v, sc.g0.slice(off, l));
                let lp = vm.load(w, par.slice(off, l));
                let gpv = vm.srai(lp, 1);
                vm.store(gpv, sc.gp.slice(off, l));
                off += l;
            }
        }
        debug_assert_eq!(off, k);

        // ---- constants hoisted out of the recursions ----
        let zero = vm.splat(x, 0);
        // Path-metric floor: mirrors the scalar decoder's NEG_INF fold
        // identity (fixed-point hygiene against saturated wrong paths).
        let floor = vm.splat(x, NEG_INF);
        let m_pp0 = vm.const_vec(parity_mask(trellis::pred_parity(0)));
        let m_pp1 = vm.const_vec(parity_mask(trellis::pred_parity(1)));
        let m_np0 = vm.const_vec(parity_mask(trellis::next_parity(0)));
        let m_np1 = vm.const_vec(parity_mask(trellis::next_parity(1)));
        let pred0 = shuf(trellis::pred_table(0));
        let pred1 = shuf(trellis::pred_table(1));
        let next0 = shuf(trellis::next_table(0));
        let next1 = shuf(trellis::next_table(1));
        let bcast0: [Option<u8>; STATES] = [Some(0); STATES];

        // Blend ±γₚ by a parity mask: (γₚ & m) | (−γₚ & !m).
        let blend = |vm: &mut Vm, gp: VReg, neg_gp: VReg, mask: VReg| {
            let pos = vm.and(gp, mask);
            let neg = vm.andnot(mask, neg_gp);
            vm.or(pos, neg)
        };

        // ---- α recursion (lane = state) ----
        let mut alpha0 = [NEG_INF; STATES];
        alpha0[0] = 0;
        let mut alpha = vm.const_vec(VecVal::from_lanes(x, &alpha0));
        vm.store(alpha, sc.alpha.slice(0, STATES));
        for step in 0..k {
            let g0k = vm.broadcast_load(x, sc.g0.base + step);
            let gpk = vm.broadcast_load(x, sc.gp.base + step);
            let neg_gp = vm.subs(zero, gpk);
            let neg_g0 = vm.subs(zero, g0k);
            let gp_s0 = blend(vm, gpk, neg_gp, m_pp0);
            let gp_s1 = blend(vm, gpk, neg_gp, m_pp1);
            let gam0 = vm.adds(g0k, gp_s0);
            let gam1 = vm.adds(neg_g0, gp_s1);
            let a0 = vm.shuffle(alpha, &pred0);
            let a1 = vm.shuffle(alpha, &pred1);
            let c0 = vm.adds(a0, gam0);
            let c1 = vm.adds(a1, gam1);
            let m01 = vm.max(c0, c1);
            let amax = vm.max(m01, floor);
            let norm = vm.shuffle(amax, &bcast0);
            alpha = vm.subs(amax, norm);
            vm.store(alpha, sc.alpha.slice((step + 1) * STATES, STATES));
        }

        // ---- β recursion + extrinsic (lane = state) ----
        let binit = beta_init_from_tails(tail_sys, tail_par);
        let mut beta = vm.const_vec(VecVal::from_lanes(x, &binit));
        for step in (0..k).rev() {
            let g0k = vm.broadcast_load(x, sc.g0.base + step);
            let gpk = vm.broadcast_load(x, sc.gp.base + step);
            let neg_gp = vm.subs(zero, gpk);
            let neg_g0 = vm.subs(zero, g0k);
            let gp_n0 = blend(vm, gpk, neg_gp, m_np0);
            let gp_n1 = blend(vm, gpk, neg_gp, m_np1);
            let gam0 = vm.adds(g0k, gp_n0);
            let gam1 = vm.adds(neg_g0, gp_n1);
            let b0 = vm.shuffle(beta, &next0);
            let b1 = vm.shuffle(beta, &next1);

            // extrinsic for this step
            let ak = vm.load(x, sc.alpha.slice(step * STATES, STATES));
            let ag0 = vm.adds(ak, gam0);
            let ag1 = vm.adds(ak, gam1);
            let t0 = vm.adds(ag0, b0);
            let t1 = vm.adds(ag1, b1);
            let h0 = hmax8(vm, t0);
            let h1 = hmax8(vm, t1);
            let m0 = vm.max(h0, floor);
            let m1 = vm.max(h1, floor);
            let lvec = vm.subs(m0, m1);
            vm.extract_store(lvec, 0, sc.post.base + step);
            let g0x2 = vm.adds(g0k, g0k);
            let evec = vm.subs(lvec, g0x2);
            vm.extract_store(evec, 0, sc.ext.base + step);

            // β update
            let c0 = vm.adds(b0, gam0);
            let c1 = vm.adds(b1, gam1);
            let m01 = vm.max(c0, c1);
            let bmax = vm.max(m01, floor);
            let bn = vm.shuffle(bmax, &bcast0);
            beta = vm.subs(bmax, bn);
        }
    }
}

/// Horizontal max over 8 lanes via a rotate/max tree; every lane of the
/// result holds the maximum (matches sequential `max16` folding —
/// max is associative and commutative).
fn hmax8(vm: &mut Vm, t: VReg) -> VReg {
    let r4 = vm.rotate_lanes_left(t, 4);
    let m4 = vm.max(t, r4);
    let r2 = vm.rotate_lanes_left(m4, 2);
    let m2 = vm.max(m4, r2);
    let r1 = vm.rotate_lanes_left(m2, 1);
    vm.max(m2, r1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::crc::CRC24B;
    use crate::llr::bit_to_llr;
    use crate::turbo::{TurboDecoder, TurboEncoder};
    use vran_simd::OpKind;

    fn make_input(bits: &[u8], k: usize, mag: Llr, noise_seed: u64, noise_amp: Llr) -> TurboLlrs {
        let cw = TurboEncoder::new(k).encode(bits);
        let d = cw.to_dstreams();
        // deterministic "noise": subtract a pseudo-random offset
        let noise = random_bits(3 * (k + 4) * 4, noise_seed);
        let mut idx = 0;
        let soft: [Vec<Llr>; 3] = d
            .iter()
            .map(|st| {
                st.iter()
                    .map(|&b| {
                        let mut v = bit_to_llr(b, mag) as i32;
                        for _ in 0..4 {
                            v += if noise[idx] == 1 {
                                noise_amp as i32
                            } else {
                                -(noise_amp as i32)
                            };
                            idx += 1;
                        }
                        v.clamp(i16::MIN as i32, i16::MAX as i32) as Llr
                    })
                    .collect()
            })
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        TurboLlrs::from_dstreams(&soft, k)
    }

    #[test]
    fn bit_exact_with_scalar_reference_clean() {
        for k in [40usize, 96] {
            let bits = random_bits(k, 21);
            let input = make_input(&bits, k, 60, 0, 0);
            let scalar = TurboDecoder::new(k, 3).decode(&input);
            let simd = SimdTurboDecoder::new(k, 3, RegWidth::Sse128).decode_native(&input);
            assert_eq!(scalar.bits, simd.bits, "K={k}");
            assert_eq!(scalar.bits, bits);
        }
    }

    #[test]
    fn bit_exact_with_scalar_reference_noisy() {
        // Noisy enough that intermediate LLRs take interesting values,
        // exercising saturation paths identically in both decoders.
        let k = 104;
        for seed in 0..5u64 {
            let bits = random_bits(k, seed + 50);
            let input = make_input(&bits, k, 40, seed, 15);
            let scalar = TurboDecoder::new(k, 4).decode(&input);
            let simd = SimdTurboDecoder::new(k, 4, RegWidth::Sse128).decode_native(&input);
            assert_eq!(scalar.bits, simd.bits, "seed={seed}");
        }
    }

    #[test]
    fn width_does_not_change_results() {
        // The γ phase width is a performance knob only.
        let k = 64;
        let bits = random_bits(k, 9);
        let input = make_input(&bits, k, 50, 3, 10);
        let r128 = SimdTurboDecoder::new(k, 3, RegWidth::Sse128).decode_native(&input);
        let r256 = SimdTurboDecoder::new(k, 3, RegWidth::Avx256).decode_native(&input);
        let r512 = SimdTurboDecoder::new(k, 3, RegWidth::Avx512).decode_native(&input);
        assert_eq!(r128.bits, r256.bits);
        assert_eq!(r128.bits, r512.bits);
    }

    #[test]
    fn crc_early_stop_matches_scalar() {
        let k = 104;
        let payload = random_bits(k - 24, 33);
        let block = CRC24B.attach(&payload);
        let input = make_input(&block, k, 60, 1, 8);
        let mut mem = Mem::new();
        let sys = mem.alloc_from(&input.streams.sys);
        let p1 = mem.alloc_from(&input.streams.p1);
        let p2 = mem.alloc_from(&input.streams.p2);
        let mut vm = Vm::native(mem);
        let dec = SimdTurboDecoder::new(k, 8, RegWidth::Sse128);
        let out = dec.decode_in_vm(&mut vm, sys, p1, p2, &input.tails, Some(&CRC24B));
        let scalar = TurboDecoder::new(k, 8).decode_with_crc(&input, &CRC24B);
        assert_eq!(out.crc_ok, Some(true));
        assert_eq!(out.iterations_run, scalar.iterations_run);
        assert_eq!(out.bits, scalar.bits);
    }

    #[test]
    fn trace_contains_the_expected_simd_mix() {
        let k = 40;
        let bits = random_bits(k, 2);
        let input = make_input(&bits, k, 60, 0, 0);
        let (out, trace) = SimdTurboDecoder::new(k, 1, RegWidth::Sse128).decode_traced(&input, 1);
        assert_eq!(out.bits, bits);
        let h = trace.class_histogram();
        assert!(
            h.vec_alu > h.store,
            "decoder is calculation-dominated: {h:?}"
        );
        // the profile-relevant instruction kinds all appear
        for kind in [
            OpKind::VAdds,
            OpKind::VSubs,
            OpKind::VMax,
            OpKind::VShuffle,
            OpKind::ExtractLane,
        ] {
            assert!(
                trace.ops.iter().any(|o| o.kind == kind),
                "{kind:?} missing from decoder trace"
            );
        }
    }

    #[test]
    fn hmax_tree_equals_sequential_max() {
        let mut mem = Mem::new();
        let r = mem.alloc_from(&[3, -7, 22, 0, 21, -1, 5, 22]);
        let mut vm = Vm::native(mem);
        let t = vm.load(RegWidth::Sse128, r);
        let m = hmax8(&mut vm, t);
        assert!(vm.value(m).lanes().iter().all(|&l| l == 22));
    }
}
