//! TS 36.212 §5.1.3.2 rate-1/3 turbo code.
//!
//! Parallel-concatenated convolutional code: two identical 8-state RSC
//! constituent encoders with transfer function
//! `G(D) = [1, g1(D)/g0(D)]`, `g0 = 1 + D² + D³` (13 octal),
//! `g1 = 1 + D + D³` (15 octal); the second encoder reads the block in
//! QPP-interleaved order; both trellises are terminated with 3 tail
//! bits (12 transmitted tail bits total).
//!
//! * [`trellis`] — the state-transition tables shared by encoder and
//!   decoders (and the SIMD decoder's shuffle patterns).
//! * [`encoder`] — bit-level encoder producing the spec's `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾`
//!   streams.
//! * [`decoder`] — scalar fixed-point (i16 saturating) max-log-MAP
//!   iterative decoder; the bit-exact oracle.
//! * [`simd_decoder`] — the same arithmetic expressed as `vran-simd`
//!   VM kernels (the OAI `_mm_adds/_mm_subs/_mm_max` style), usable in
//!   native mode (functional) or tracing mode (feeds `vran-uarch`).

//! * [`native_decoder`] — the same arithmetic as real `std::arch`
//!   intrinsics with runtime ISA dispatch: the wall-clock fast path
//!   used by the uplink pipeline.
//! * [`packed_encoder`] — bitsliced packed-word encoder exploiting the
//!   code's GF(2) linearity: 64 trellis steps per `u64` (128/256 per
//!   register under SSE2/AVX2), the transmit-side fast path used by
//!   the downlink pipeline.

pub mod batch_decoder;
pub mod decoder;
pub mod encoder;
pub mod native_batch;
pub mod native_decoder;
pub mod packed_encoder;
pub mod simd_decoder;
pub mod trellis;

pub use decoder::{DecodeOutcome, TurboDecoder};
pub use encoder::{TurboCodeword, TurboEncoder};
pub use native_batch::{BatchScratch, BlockLlrs, NativeBatchTurboDecoder};
pub use native_decoder::{DecodeScratch, DecoderIsa, NativeTurboDecoder};
pub use packed_encoder::{EncodeScratch, EncoderIsa, PackedTurboEncoder};
