//! 8-state RSC trellis structure shared by the encoder and both
//! decoders.
//!
//! State encoding: `s = (a₋₁ << 2) | (a₋₂ << 1) | a₋₃` where `aᵢ` are the
//! most recent feedback-register bits (`a₋₁` newest). With
//! `g0 = 1 + D² + D³` the feedback is `a = u ⊕ a₋₂ ⊕ a₋₃` and with
//! `g1 = 1 + D + D³` the parity is `z = a ⊕ a₋₁ ⊕ a₋₃`.

/// Number of trellis states (2³).
pub const STATES: usize = 8;

#[inline]
fn bits(s: u8) -> (u8, u8, u8) {
    ((s >> 2) & 1, (s >> 1) & 1, s & 1)
}

/// Feedback bit produced when input `u` enters state `s`.
#[inline]
pub fn feedback(s: u8, u: u8) -> u8 {
    let (_, s1, s2) = bits(s);
    u ^ s1 ^ s2
}

/// Parity (coded) bit for input `u` in state `s`.
#[inline]
pub fn parity(s: u8, u: u8) -> u8 {
    let (s0, _, s2) = bits(s);
    feedback(s, u) ^ s0 ^ s2
}

/// Next state for input `u` in state `s`.
#[inline]
pub fn next_state(s: u8, u: u8) -> u8 {
    let (s0, s1, _) = bits(s);
    (feedback(s, u) << 2) | (s0 << 1) | s1
}

/// The tail input that drives the feedback to zero (trellis
/// termination, TS 36.212 §5.1.3.2.2: "taking the tail bits from the
/// shift register feedback").
#[inline]
pub fn term_input(s: u8) -> u8 {
    let (_, s1, s2) = bits(s);
    s1 ^ s2
}

/// Unique predecessor of state `ns` under input `u` (the RSC trellis is
/// a permutation per input bit).
#[inline]
pub fn pred_state(ns: u8, u: u8) -> u8 {
    let a = (ns >> 2) & 1;
    let b0 = (ns >> 1) & 1; // predecessor's s0
    let b1 = ns & 1; // predecessor's s1
    let s2 = a ^ u ^ b1; // from a = u ^ s1 ^ s2
    (b0 << 2) | (b1 << 1) | s2
}

/// Lane-shuffle table for the SIMD α recursion: entry `ns` selects the
/// predecessor state's lane under input `u`.
pub fn pred_table(u: u8) -> [u8; STATES] {
    core::array::from_fn(|ns| pred_state(ns as u8, u))
}

/// Lane-shuffle table for the SIMD β/extrinsic computations: entry `s`
/// selects the successor state's lane under input `u`.
pub fn next_table(u: u8) -> [u8; STATES] {
    core::array::from_fn(|s| next_state(s as u8, u))
}

/// Per-predecessor-lane parity for the α recursion: parity of the
/// transition `pred(ns,u) → ns`.
pub fn pred_parity(u: u8) -> [u8; STATES] {
    core::array::from_fn(|ns| parity(pred_state(ns as u8, u), u))
}

/// Per-source-lane parity for the β/extrinsic computations: parity of
/// `s → next(s,u)`.
pub fn next_parity(u: u8) -> [u8; STATES] {
    core::array::from_fn(|s| parity(s as u8, u))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_are_permutations_per_input() {
        for u in 0..2u8 {
            let mut seen = [false; STATES];
            for s in 0..STATES as u8 {
                let ns = next_state(s, u) as usize;
                assert!(ns < STATES);
                assert!(!seen[ns], "u={u}: state {ns} reached twice");
                seen[ns] = true;
            }
        }
    }

    #[test]
    fn pred_inverts_next() {
        for u in 0..2u8 {
            for s in 0..STATES as u8 {
                assert_eq!(pred_state(next_state(s, u), u), s);
            }
        }
    }

    #[test]
    fn termination_reaches_zero_in_three_steps() {
        for start in 0..STATES as u8 {
            let mut s = start;
            for _ in 0..3 {
                let u = term_input(s);
                assert_eq!(feedback(s, u), 0, "termination must zero the feedback");
                s = next_state(s, u);
            }
            assert_eq!(s, 0, "start state {start} did not terminate");
        }
    }

    #[test]
    fn zero_state_zero_input_stays_put() {
        assert_eq!(next_state(0, 0), 0);
        assert_eq!(parity(0, 0), 0);
        // and a 1 input from state 0 produces parity 1 (g1 has the a-tap)
        assert_eq!(parity(0, 1), 1);
        assert_eq!(next_state(0, 1), 4);
    }

    #[test]
    fn impulse_response_matches_generators() {
        // Feed 1 then zeros from state 0; the parity stream is the
        // impulse response of g1/g0 = (1+D+D³)/(1+D²+D³). Hand
        // derivation: feedback a = 1/(g0) = 1,0,1,1,1,0,0,1,…;
        // z_k = a_k ⊕ a_{k−1} ⊕ a_{k−3} = 1,1,1,1,0,… — importantly it
        // is NOT eventually zero (IIR feedback).
        let mut s = 0u8;
        let mut out = Vec::new();
        for k in 0..8 {
            let u = u8::from(k == 0);
            out.push(parity(s, u));
            s = next_state(s, u);
        }
        assert_eq!(&out[..5], &[1, 1, 1, 1, 0], "impulse response head");
        assert!(out[5..].contains(&1), "feedback keeps the response alive");
    }

    #[test]
    fn shuffle_tables_agree_with_scalar_functions() {
        for u in 0..2u8 {
            let pt = pred_table(u);
            let pp = pred_parity(u);
            let nt = next_table(u);
            let np = next_parity(u);
            for s in 0..STATES {
                assert_eq!(pt[s], pred_state(s as u8, u));
                assert_eq!(pp[s], parity(pred_state(s as u8, u), u));
                assert_eq!(nt[s], next_state(s as u8, u));
                assert_eq!(np[s], parity(s as u8, u));
            }
        }
    }
}
