//! AVX2/AVX-512BW multi-block-per-register native batch turbo
//! decoding.
//!
//! The real-hardware counterpart of [`super::batch_decoder`]: the
//! 8-state α/β recursions cannot widen, so a ymm register carries
//! *two* independent code blocks and a zmm register carries *four*,
//! one per 128-bit lane. AVX2's `_mm256_shuffle_epi8`,
//! `_mm256_srli_si256` and the `shufflelo/hi` family all operate
//! per-128-bit-lane — exactly the per-block state gathers the
//! recursion needs, with zero cross-block traffic — and AVX-512BW's
//! `_mm512_shuffle_epi8` / `_mm512_bsrli_epi128` keep the identical
//! lane-local contract across four lanes.
//!
//! Each 128-bit lane performs precisely the instruction sequence of
//! the single-block SSSE3 kernel in [`super::native_decoder`], so a
//! batched decode is bit-identical to two (or four) separate decodes
//! (and to the scalar oracle). Matching [`super::batch_decoder`]'s
//! semantics, batched decoding runs a fixed iteration count with no
//! CRC early stop (`crc_ok: None`).

use super::decoder::{beta_init_from_tails, scale_extrinsic, DecodeOutcome, NEG_INF};
use super::native_decoder::{DecodeScratch, NativeTurboDecoder};
use super::trellis::STATES;
use crate::interleaver::QppInterleaver;
use crate::llr::{llr_to_bit, Llr, SoftStreams, TailLlrs, TurboLlrs};
use vran_simd::host::{self, HostIsa};

/// Number of blocks decoded per ymm pass.
pub const BATCH: usize = 2;

/// Number of blocks decoded per zmm pass.
pub const QUAD: usize = 4;

/// Borrowed per-block decoder input for the staged (zero-copy) batch
/// entry points: the three arranged streams live wherever the caller
/// staged them — pooled [`SoftStreams`], fused-ingest buffers — and
/// the kernel reads them in place, with no block-major gather copy.
#[derive(Debug, Clone, Copy)]
pub struct BlockLlrs<'a> {
    /// Systematic LLRs, length K.
    pub sys: &'a [Llr],
    /// First parity LLRs, length K.
    pub p1: &'a [Llr],
    /// Second parity LLRs, length K.
    pub p2: &'a [Llr],
    /// Termination LLRs.
    pub tails: TailLlrs,
}

impl<'a> BlockLlrs<'a> {
    /// Borrow a [`TurboLlrs`]'s streams in place.
    pub fn from_turbo(t: &'a TurboLlrs) -> Self {
        Self {
            sys: &t.streams.sys,
            p1: &t.streams.p1,
            p2: &t.streams.p2,
            tails: t.tails,
        }
    }

    /// Borrow staged [`SoftStreams`] with their termination LLRs.
    pub fn from_streams(s: &'a SoftStreams, tails: TailLlrs) -> Self {
        Self {
            sys: &s.sys,
            p1: &s.p1,
            p2: &s.p2,
            tails,
        }
    }
}

/// Reusable batch-decode working memory — the [`DecodeScratch`] idiom
/// widened to N blocks: the interleaved branch metrics, the α trellis,
/// extrinsic/a-priori buffers and the permuted-systematic staging.
/// Owned by long-lived callers (stage-graph batch pools, the uplink
/// pipeline) so steady-state batch decodes perform no heap allocation;
/// the counters make that claim checkable.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    sys_pi: Vec<Llr>,
    g0: Vec<Llr>,
    gp: Vec<Llr>,
    alpha: Vec<Llr>,
    ext: Vec<Llr>,
    post: Vec<i32>,
    la1: Vec<Llr>,
    la2: Vec<Llr>,
    /// Degradation-tier scratch for the single-block decodes the pair
    /// path falls back to without AVX2.
    single: DecodeScratch,
    allocations: u64,
    reuses: u64,
}

impl BatchScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for `blocks` blocks of length `k`, growing
    /// only when the retained capacity is insufficient.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    fn ensure(&mut self, k: usize, blocks: usize) {
        let n = blocks * k;
        let mut grew = false;
        {
            let mut fit = |v: &mut Vec<Llr>, len: usize| {
                grew |= v.capacity() < len;
                v.resize(len, 0);
            };
            fit(&mut self.sys_pi, n);
            fit(&mut self.g0, n);
            fit(&mut self.gp, n);
            fit(&mut self.alpha, (k + 1) * blocks * STATES);
            fit(&mut self.ext, n);
            fit(&mut self.la1, n);
            fit(&mut self.la2, n);
        }
        grew |= self.post.capacity() < n;
        self.post.resize(n, 0);
        if grew {
            self.allocations += 1;
        } else {
            self.reuses += 1;
        }
    }

    /// Times `ensure` had to grow at least one buffer.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Times `ensure` was served entirely from retained capacity
    /// (i.e. heap allocations avoided).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

/// Batched decoder: two equal-size blocks per ymm pass on AVX2
/// hardware, four per zmm pass on AVX-512BW, falling back to
/// sequential narrower decodes when the host lacks the feature
/// (identical outputs either way).
#[derive(Debug, Clone)]
pub struct NativeBatchTurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
    use_avx2: bool,
    use_avx512: bool,
}

impl NativeBatchTurboDecoder {
    /// Whether the ymm fast path is usable on this host.
    pub fn is_accelerated() -> bool {
        cfg!(target_arch = "x86_64") && host::has(HostIsa::Avx2)
    }

    /// Whether the quad-in-zmm fast path is usable on this host.
    pub fn is_zmm_accelerated() -> bool {
        cfg!(target_arch = "x86_64") && host::has(HostIsa::Avx512bw)
    }

    /// Decoder for two or four parallel blocks of size `k`.
    pub fn new(k: usize, max_iterations: usize) -> Self {
        assert!(max_iterations >= 1);
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
            use_avx2: Self::is_accelerated(),
            use_avx512: Self::is_zmm_accelerated(),
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Blocks per call.
    pub fn batch(&self) -> usize {
        BATCH
    }

    /// Decode two blocks; runs all configured iterations (no CRC early
    /// stop, matching [`super::batch_decoder::BatchTurboDecoder`]).
    pub fn decode_pair(&self, inputs: &[TurboLlrs; BATCH]) -> [DecodeOutcome; BATCH] {
        self.decode_pair_refs([&inputs[0], &inputs[1]])
    }

    /// [`Self::decode_pair`] over borrowed, non-contiguous blocks — the
    /// entry point cross-packet batch pools use: pooled decode tasks
    /// live in separate reorder-buffer slots, so a launch hands the
    /// kernel four scattered references instead of cloning them into a
    /// contiguous array.
    pub fn decode_pair_refs(&self, inputs: [&TurboLlrs; BATCH]) -> [DecodeOutcome; BATCH] {
        let k = self.il.k();
        for input in inputs.iter() {
            assert_eq!(input.k, k, "both blocks in a batch share K");
        }
        let mut scratch = BatchScratch::new();
        let mut bits: [Vec<u8>; BATCH] = core::array::from_fn(|_| Vec::new());
        let iterations_run = self.decode_pair_staged_into(
            inputs.map(BlockLlrs::from_turbo),
            &mut scratch,
            &mut bits,
        );
        bits.map(|b| DecodeOutcome {
            bits: b,
            iterations_run,
            crc_ok: None,
        })
    }

    /// Zero-copy pair decode: the kernel reads the arranged streams in
    /// place from wherever the caller staged them and writes the hard
    /// decisions into caller-owned bit buffers, allocation-free once
    /// `scratch` and `bits` have warmed to this block size. Runs all
    /// configured iterations (no CRC early stop) and returns the count.
    /// Without AVX2 it degrades to two single-block native decodes —
    /// identical outputs by same-op/same-order construction.
    pub fn decode_pair_staged_into(
        &self,
        inputs: [BlockLlrs<'_>; BATCH],
        scratch: &mut BatchScratch,
        bits: &mut [Vec<u8>; BATCH],
    ) -> usize {
        let k = self.il.k();
        for b in inputs.iter() {
            assert!(
                b.sys.len() == k && b.p1.len() == k && b.p2.len() == k,
                "both blocks in a batch share K"
            );
        }
        if !self.use_avx2 {
            // Portable path: two single-block native decodes have
            // identical semantics (fixed iterations, no CRC).
            let single = NativeTurboDecoder::new(k, self.max_iterations);
            let mut iterations_run = 0;
            for (out, input) in bits.iter_mut().zip(inputs) {
                let (it, _) = single.decode_streams_capped_into(
                    input.sys,
                    input.p1,
                    input.p2,
                    &input.tails,
                    self.max_iterations,
                    None,
                    &mut scratch.single,
                    out,
                );
                iterations_run = it;
            }
            return iterations_run;
        }
        #[cfg(target_arch = "x86_64")]
        {
            self.decode_pair_staged_avx2(inputs, scratch, bits)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unreachable!("use_avx2 implies x86_64")
    }

    /// Decode four blocks; runs all configured iterations (no CRC
    /// early stop). Without AVX-512BW this degrades to two
    /// [`Self::decode_pair`] calls (which themselves degrade to four
    /// single-block decodes without AVX2) — identical outputs on every
    /// tier by same-op/same-order construction.
    pub fn decode_quad(&self, inputs: &[TurboLlrs; QUAD]) -> [DecodeOutcome; QUAD] {
        self.decode_quad_refs([&inputs[0], &inputs[1], &inputs[2], &inputs[3]])
    }

    /// [`Self::decode_quad`] over borrowed, non-contiguous blocks (see
    /// [`Self::decode_pair_refs`]).
    pub fn decode_quad_refs(&self, inputs: [&TurboLlrs; QUAD]) -> [DecodeOutcome; QUAD] {
        let k = self.il.k();
        for input in inputs.iter() {
            assert_eq!(input.k, k, "all blocks in a batch share K");
        }
        let mut scratch = BatchScratch::new();
        let mut bits: [Vec<u8>; QUAD] = core::array::from_fn(|_| Vec::new());
        let iterations_run = self.decode_quad_staged_into(
            inputs.map(BlockLlrs::from_turbo),
            &mut scratch,
            &mut bits,
        );
        bits.map(|b| DecodeOutcome {
            bits: b,
            iterations_run,
            crc_ok: None,
        })
    }

    /// Zero-copy quad decode (see [`Self::decode_pair_staged_into`]):
    /// reads four staged blocks in place, writes hard decisions into
    /// caller-owned bit buffers, allocation-free after warm-up. Without
    /// AVX-512BW this degrades to two staged pair decodes (which
    /// themselves degrade to four single-block decodes without AVX2) —
    /// identical outputs on every tier.
    pub fn decode_quad_staged_into(
        &self,
        inputs: [BlockLlrs<'_>; QUAD],
        scratch: &mut BatchScratch,
        bits: &mut [Vec<u8>; QUAD],
    ) -> usize {
        let k = self.il.k();
        for b in inputs.iter() {
            assert!(
                b.sys.len() == k && b.p1.len() == k && b.p2.len() == k,
                "all blocks in a batch share K"
            );
        }
        if !self.use_avx512 {
            let [i0, i1, i2, i3] = inputs;
            let (lo, hi) = bits.split_at_mut(BATCH);
            let lo: &mut [Vec<u8>; BATCH] = lo.try_into().unwrap();
            let hi: &mut [Vec<u8>; BATCH] = hi.try_into().unwrap();
            let iterations_run = self.decode_pair_staged_into([i0, i1], scratch, lo);
            let hi_run = self.decode_pair_staged_into([i2, i3], scratch, hi);
            debug_assert_eq!(iterations_run, hi_run);
            return iterations_run;
        }
        #[cfg(target_arch = "x86_64")]
        {
            self.decode_quad_staged_avx512(inputs, scratch, bits)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unreachable!("use_avx512 implies x86_64")
    }

    #[cfg(target_arch = "x86_64")]
    fn decode_quad_staged_avx512(
        &self,
        inputs: [BlockLlrs<'_>; QUAD],
        scratch: &mut BatchScratch,
        bits: &mut [Vec<u8>; QUAD],
    ) -> usize {
        let k = self.il.k();
        scratch.ensure(k, QUAD);
        let BatchScratch {
            sys_pi,
            g0,
            gp,
            alpha,
            ext,
            post,
            la1,
            la2,
            ..
        } = scratch;
        // Only the permuted systematic needs staging — the kernel
        // reads `sys`/`p1`/`p2` in place from the caller's buffers.
        for (g, input) in inputs.iter().enumerate() {
            for j in 0..k {
                sys_pi[g * k + j] = input.sys[self.il.pi(j)];
            }
        }
        let binit = |second: bool| -> [Llr; QUAD * STATES] {
            let mut b = [0 as Llr; QUAD * STATES];
            for (g, input) in inputs.iter().enumerate() {
                let (ts, tp) = if second {
                    (&input.tails.sys2, &input.tails.p2)
                } else {
                    (&input.tails.sys1, &input.tails.p1)
                };
                b[g * STATES..(g + 1) * STATES].copy_from_slice(&beta_init_from_tails(ts, tp));
            }
            b
        };
        let binit1 = binit(false);
        let binit2 = binit(true);
        la1.fill(0);
        for out in bits.iter_mut() {
            out.resize(k, 0);
        }
        // Block-major scratch (`la1`/`la2`/`sys_pi`) splits into the
        // same per-block slice quads the caller's buffers arrive as.
        fn parts<const N: usize>(v: &[Llr], k: usize) -> [&[Llr]; N] {
            core::array::from_fn(|g| &v[g * k..(g + 1) * k])
        }
        let sys: [&[Llr]; QUAD] = core::array::from_fn(|g| inputs[g].sys);
        let p1: [&[Llr]; QUAD] = core::array::from_fn(|g| inputs[g].p1);
        let p2: [&[Llr]; QUAD] = core::array::from_fn(|g| inputs[g].p2);

        let mut iterations_run = 0;
        for _ in 0..self.max_iterations {
            iterations_run += 1;
            unsafe {
                x86::siso_quad_avx512(sys, p1, parts(la1, k), &binit1, g0, gp, alpha, ext, post);
            }
            for g in 0..QUAD {
                for j in 0..k {
                    la2[g * k + j] = scale_extrinsic(ext[QUAD * self.il.pi(j) + g]);
                }
            }
            unsafe {
                x86::siso_quad_avx512(
                    parts(sys_pi, k),
                    p2,
                    parts(la2, k),
                    &binit2,
                    g0,
                    gp,
                    alpha,
                    ext,
                    post,
                );
            }
            for g in 0..QUAD {
                for i in 0..k {
                    la1[g * k + i] = scale_extrinsic(ext[QUAD * self.il.pi_inv(i) + g]);
                }
            }
            for (g, blk) in bits.iter_mut().enumerate() {
                for (i, bit) in blk.iter_mut().enumerate() {
                    *bit = llr_to_bit(post[QUAD * self.il.pi_inv(i) + g] as Llr);
                }
            }
        }
        iterations_run
    }

    #[cfg(target_arch = "x86_64")]
    fn decode_pair_staged_avx2(
        &self,
        inputs: [BlockLlrs<'_>; BATCH],
        scratch: &mut BatchScratch,
        bits: &mut [Vec<u8>; BATCH],
    ) -> usize {
        let k = self.il.k();
        scratch.ensure(k, BATCH);
        let BatchScratch {
            sys_pi,
            g0,
            gp,
            alpha,
            ext,
            post,
            la1,
            la2,
            ..
        } = scratch;
        // Only the permuted systematic needs staging — the kernel
        // reads `sys`/`p1`/`p2` in place from the caller's buffers.
        for (g, input) in inputs.iter().enumerate() {
            for j in 0..k {
                sys_pi[g * k + j] = input.sys[self.il.pi(j)];
            }
        }
        let binit = |second: bool| -> [Llr; BATCH * STATES] {
            let mut b = [0 as Llr; BATCH * STATES];
            for (g, input) in inputs.iter().enumerate() {
                let (ts, tp) = if second {
                    (&input.tails.sys2, &input.tails.p2)
                } else {
                    (&input.tails.sys1, &input.tails.p1)
                };
                b[g * STATES..(g + 1) * STATES].copy_from_slice(&beta_init_from_tails(ts, tp));
            }
            b
        };
        let binit1 = binit(false);
        let binit2 = binit(true);
        la1.fill(0);
        for out in bits.iter_mut() {
            out.resize(k, 0);
        }
        fn parts<const N: usize>(v: &[Llr], k: usize) -> [&[Llr]; N] {
            core::array::from_fn(|g| &v[g * k..(g + 1) * k])
        }
        let sys: [&[Llr]; BATCH] = core::array::from_fn(|g| inputs[g].sys);
        let p1: [&[Llr]; BATCH] = core::array::from_fn(|g| inputs[g].p1);
        let p2: [&[Llr]; BATCH] = core::array::from_fn(|g| inputs[g].p2);

        let mut iterations_run = 0;
        for _ in 0..self.max_iterations {
            iterations_run += 1;
            unsafe {
                x86::siso_pair_avx2(sys, p1, parts(la1, k), &binit1, g0, gp, alpha, ext, post);
            }
            for g in 0..BATCH {
                for j in 0..k {
                    la2[g * k + j] = scale_extrinsic(ext[BATCH * self.il.pi(j) + g]);
                }
            }
            unsafe {
                x86::siso_pair_avx2(
                    parts(sys_pi, k),
                    p2,
                    parts(la2, k),
                    &binit2,
                    g0,
                    gp,
                    alpha,
                    ext,
                    post,
                );
            }
            for g in 0..BATCH {
                for i in 0..k {
                    la1[g * k + i] = scale_extrinsic(ext[BATCH * self.il.pi_inv(i) + g]);
                }
            }
            for (g, blk) in bits.iter_mut().enumerate() {
                for (i, bit) in blk.iter_mut().enumerate() {
                    *bit = llr_to_bit(post[BATCH * self.il.pi_inv(i) + g] as Llr);
                }
            }
        }
        iterations_run
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::trellis;
    use super::*;
    use std::arch::x86_64::*;

    /// Byte-level shuffle control for one 128-bit lane, from a
    /// lane-level i16 gather table.
    fn lane_ctrl(table: [u8; STATES]) -> [i8; 16] {
        let mut c = [0i8; 16];
        for (i, &s) in table.iter().enumerate() {
            c[2 * i] = (2 * s) as i8;
            c[2 * i + 1] = (2 * s + 1) as i8;
        }
        c
    }

    fn sign_vec(par: [u8; STATES]) -> [i16; STATES] {
        core::array::from_fn(|i| if par[i] == 0 { 1 } else { -1 })
    }

    struct Ctl {
        pred0: __m256i,
        pred1: __m256i,
        next0: __m256i,
        next1: __m256i,
        bcast0: __m256i,
        pairsel: __m256i,
        sgn_pp0: __m256i,
        sgn_pp1: __m256i,
        sgn_np0: __m256i,
        sgn_np1: __m256i,
        floor: __m256i,
    }

    /// Replicate a 16-byte control into both 128-bit lanes —
    /// `_mm256_shuffle_epi8` indexes are lane-local, which is exactly
    /// the per-block state gather.
    #[inline(always)]
    unsafe fn dup_ctrl(a: [i8; 16]) -> __m256i {
        let x = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        _mm256_set_m128i(x, x)
    }

    #[inline(always)]
    unsafe fn dup_mask(a: [i16; 8]) -> __m256i {
        let x = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        _mm256_set_m128i(x, x)
    }

    #[inline(always)]
    unsafe fn make_ctl() -> Ctl {
        // Shuffle controls go through `black_box` for the same reason
        // as the single-block kernel's: LLVM otherwise re-expands the
        // constant-control `pshufb`s into multi-µop shuffle chains.
        use core::hint::black_box;
        // Low lane selects block 0's i16 (bytes 0-1 of the broadcast
        // dword), high lane block 1's (bytes 2-3).
        let mut pairsel = [0i8; 32];
        for (i, b) in pairsel.iter_mut().enumerate() {
            *b = if i < 16 {
                (i % 2) as i8
            } else {
                (2 + i % 2) as i8
            };
        }
        Ctl {
            pred0: black_box(dup_ctrl(lane_ctrl(trellis::pred_table(0)))),
            pred1: black_box(dup_ctrl(lane_ctrl(trellis::pred_table(1)))),
            next0: black_box(dup_ctrl(lane_ctrl(trellis::next_table(0)))),
            next1: black_box(dup_ctrl(lane_ctrl(trellis::next_table(1)))),
            bcast0: black_box(dup_ctrl([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])),
            pairsel: black_box(_mm256_loadu_si256(pairsel.as_ptr() as *const __m256i)),
            sgn_pp0: dup_mask(sign_vec(trellis::pred_parity(0))),
            sgn_pp1: dup_mask(sign_vec(trellis::pred_parity(1))),
            sgn_np0: dup_mask(sign_vec(trellis::next_parity(0))),
            sgn_np1: dup_mask(sign_vec(trellis::next_parity(1))),
            floor: _mm256_set1_epi16(NEG_INF),
        }
    }

    /// Both blocks' branch metric at `step` in one shot: a dword
    /// broadcast of the interleaved pair, then a lane-local byte
    /// shuffle fans block 0's i16 across the low lane and block 1's
    /// across the high lane.
    #[inline(always)]
    unsafe fn pair_bcast(buf: &[Llr], step: usize, sel: __m256i) -> __m256i {
        let d = (buf.as_ptr().add(BATCH * step) as *const i32).read_unaligned();
        _mm256_shuffle_epi8(_mm256_set1_epi32(d), sel)
    }

    /// `±γ₀ ± γₚ` for both hypotheses; `vpsignw` with a ±1 mask equals
    /// `subs16(0, ·)` because `|γ| ≤ 2¹⁴` after the `>>1` halving.
    #[inline(always)]
    unsafe fn gammas(
        g0b: __m256i,
        gpb: __m256i,
        sgn0: __m256i,
        sgn1: __m256i,
    ) -> (__m256i, __m256i) {
        let ng0 = _mm256_subs_epi16(_mm256_setzero_si256(), g0b);
        (
            _mm256_adds_epi16(g0b, _mm256_sign_epi16(gpb, sgn0)),
            _mm256_adds_epi16(ng0, _mm256_sign_epi16(gpb, sgn1)),
        )
    }

    /// One fused SISO pass over two blocks. `sys`/`par`/`apriori` are
    /// per-block slices read in place (no block-major staging copy);
    /// `g0`, `gp` and `ext` are written pair-interleaved
    /// (`[2*step+block]`), `post` is dword-stride pair-interleaved;
    /// `alpha` holds `(K+1) × 16` lanes, `binit` the two blocks' β
    /// terminations.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn siso_pair_avx2(
        sys: [&[Llr]; BATCH],
        par: [&[Llr]; BATCH],
        apriori: [&[Llr]; BATCH],
        binit: &[Llr; BATCH * STATES],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        let k = sys[0].len();
        let n = BATCH * k;
        debug_assert!(k.is_multiple_of(STATES));
        debug_assert!(sys.iter().all(|s| s.len() == k));
        debug_assert!(par.iter().all(|s| s.len() == k));
        debug_assert!(apriori.iter().all(|s| s.len() == k));
        debug_assert!(g0.len() == n && gp.len() == n);
        debug_assert!(ext.len() == n && post.len() == n);
        debug_assert!(alpha.len() == (k + 1) * BATCH * STATES);
        let ctl = make_ctl();
        let lanes = BATCH * STATES;

        // γ phase: per-block metrics in xmm halves, stored interleaved
        // so the recursions can broadcast a step's pair with one dword
        // load.
        let mut i = 0;
        while i < k {
            let pair = |bufs: [&[Llr]; BATCH]| {
                (
                    _mm_loadu_si128(bufs[0].as_ptr().add(i) as *const __m128i),
                    _mm_loadu_si128(bufs[1].as_ptr().add(i) as *const __m128i),
                )
            };
            let (ls0, ls1) = pair(sys);
            let (la0, la1) = pair(apriori);
            let (lp0, lp1) = pair(par);
            let g0a = _mm_srai_epi16(_mm_adds_epi16(ls0, la0), 1);
            let g0b = _mm_srai_epi16(_mm_adds_epi16(ls1, la1), 1);
            let gpa = _mm_srai_epi16(lp0, 1);
            let gpb = _mm_srai_epi16(lp1, 1);
            let at = |v: &mut [Llr], off: usize| v.as_mut_ptr().add(off) as *mut __m128i;
            _mm_storeu_si128(at(g0, BATCH * i), _mm_unpacklo_epi16(g0a, g0b));
            _mm_storeu_si128(at(g0, BATCH * i + 8), _mm_unpackhi_epi16(g0a, g0b));
            _mm_storeu_si128(at(gp, BATCH * i), _mm_unpacklo_epi16(gpa, gpb));
            _mm_storeu_si128(at(gp, BATCH * i + 8), _mm_unpackhi_epi16(gpa, gpb));
            i += 8;
        }

        // Forward α: blocks 0 and 1 each own a 128-bit half.
        let mut a0init = [NEG_INF; 16];
        a0init[0] = 0;
        a0init[STATES] = 0;
        let mut a = _mm256_loadu_si256(a0init.as_ptr() as *const __m256i);
        _mm256_storeu_si256(alpha.as_mut_ptr() as *mut __m256i, a);
        for step in 0..k {
            let g0b = pair_bcast(g0, step, ctl.pairsel);
            let gpb = pair_bcast(gp, step, ctl.pairsel);
            let (gam0, gam1) = gammas(g0b, gpb, ctl.sgn_pp0, ctl.sgn_pp1);
            let p0 = _mm256_shuffle_epi8(a, ctl.pred0);
            let p1 = _mm256_shuffle_epi8(a, ctl.pred1);
            let c0 = _mm256_adds_epi16(p0, gam0);
            let c1 = _mm256_adds_epi16(p1, gam1);
            let m = _mm256_max_epi16(_mm256_max_epi16(c0, c1), ctl.floor);
            let norm = _mm256_shuffle_epi8(m, ctl.bcast0);
            a = _mm256_subs_epi16(m, norm);
            _mm256_storeu_si256(
                alpha.as_mut_ptr().add((step + 1) * lanes) as *mut __m256i,
                a,
            );
        }

        // Backward β fused with the posterior; the joint interleaved
        // reduction and the dword-stride posterior store mirror the
        // single-block kernel (`srli`/`unpack` are lane-local, so each
        // block reduces inside its own half).
        let mut b = _mm256_loadu_si256(binit.as_ptr() as *const __m256i);
        for step in (0..k).rev() {
            let g0b = pair_bcast(g0, step, ctl.pairsel);
            let gpb = pair_bcast(gp, step, ctl.pairsel);
            let (gam0, gam1) = gammas(g0b, gpb, ctl.sgn_np0, ctl.sgn_np1);
            let b0 = _mm256_shuffle_epi8(b, ctl.next0);
            let b1 = _mm256_shuffle_epi8(b, ctl.next1);
            let av = _mm256_loadu_si256(alpha.as_ptr().add(step * lanes) as *const __m256i);
            let t0 = _mm256_adds_epi16(_mm256_adds_epi16(av, gam0), b0);
            let t1 = _mm256_adds_epi16(_mm256_adds_epi16(av, gam1), b1);
            let y = _mm256_max_epi16(_mm256_unpacklo_epi16(t0, t1), _mm256_unpackhi_epi16(t0, t1));
            let z = _mm256_max_epi16(y, _mm256_srli_si256(y, 8));
            let w = _mm256_max_epi16(z, _mm256_srli_si256(z, 4));
            let wf = _mm256_max_epi16(w, ctl.floor);
            let lv = _mm256_subs_epi16(wf, _mm256_srli_si256(wf, 2));
            // Both blocks' posteriors with one 8-byte store: dword 0
            // of each half, low 16 bits the payload.
            let pd =
                _mm_unpacklo_epi32(_mm256_castsi256_si128(lv), _mm256_extracti128_si256(lv, 1));
            _mm_storel_epi64(post.as_mut_ptr().add(BATCH * step) as *mut __m128i, pd);
            let c0 = _mm256_adds_epi16(b0, gam0);
            let c1 = _mm256_adds_epi16(b1, gam1);
            let m = _mm256_max_epi16(_mm256_max_epi16(c0, c1), ctl.floor);
            let norm = _mm256_shuffle_epi8(m, ctl.bcast0);
            b = _mm256_subs_epi16(m, norm);
        }

        // Extrinsic peel-off, sixteen interleaved entries per pass:
        // `ext = L − 2·γ₀`, the oracle's ops on the oracle's values.
        // The `permute4x64` undoes `packs_epi32`'s lane-wise ordering;
        // the pack itself is exact because every lane is an in-range
        // i16 after the sign-extending shift pair.
        let mut i = 0;
        while i < n {
            let p0 = _mm256_loadu_si256(post.as_ptr().add(i) as *const __m256i);
            let p1 = _mm256_loadu_si256(post.as_ptr().add(i + 8) as *const __m256i);
            let w0 = _mm256_srai_epi32(_mm256_slli_epi32(p0, 16), 16);
            let w1 = _mm256_srai_epi32(_mm256_slli_epi32(p1, 16), 16);
            let pv = _mm256_permute4x64_epi64(_mm256_packs_epi32(w0, w1), 0b11011000);
            let g0v = _mm256_loadu_si256(g0.as_ptr().add(i) as *const __m256i);
            let ev = _mm256_subs_epi16(pv, _mm256_adds_epi16(g0v, g0v));
            _mm256_storeu_si256(ext.as_mut_ptr().add(i) as *mut __m256i, ev);
            i += 16;
        }
    }

    struct QCtl {
        pred0: __m512i,
        pred1: __m512i,
        next0: __m512i,
        next1: __m512i,
        bcast0: __m512i,
        quadsel: __m512i,
        neg_pp0: __mmask32,
        neg_pp1: __mmask32,
        neg_np0: __mmask32,
        neg_np1: __mmask32,
        floor: __m512i,
    }

    /// Replicate a 16-byte control into all four 128-bit lanes —
    /// `_mm512_shuffle_epi8` indexes are lane-local under AVX-512BW,
    /// the same per-block state-gather contract as the ymm kernel.
    #[inline(always)]
    unsafe fn quad_ctrl(a: [i8; 16]) -> __m512i {
        _mm512_broadcast_i32x4(_mm_loadu_si128(a.as_ptr() as *const __m128i))
    }

    /// Negation mask for all 32 i16 elements from a per-state parity
    /// table: block lanes repeat the same 8-bit pattern.
    fn neg_mask(par: [u8; STATES]) -> __mmask32 {
        let mut m8 = 0u32;
        for (s, &p) in par.iter().enumerate() {
            m8 |= u32::from(p != 0) << s;
        }
        m8 * 0x0101_0101
    }

    #[inline(always)]
    unsafe fn make_qctl() -> QCtl {
        use core::hint::black_box;
        // Lane L selects block L's i16 of the broadcast qword: bytes
        // 2L / 2L+1, alternating.
        let mut quadsel = [0i8; 64];
        for (i, b) in quadsel.iter_mut().enumerate() {
            *b = (2 * (i / 16) + i % 2) as i8;
        }
        QCtl {
            pred0: black_box(quad_ctrl(lane_ctrl(trellis::pred_table(0)))),
            pred1: black_box(quad_ctrl(lane_ctrl(trellis::pred_table(1)))),
            next0: black_box(quad_ctrl(lane_ctrl(trellis::next_table(0)))),
            next1: black_box(quad_ctrl(lane_ctrl(trellis::next_table(1)))),
            bcast0: black_box(quad_ctrl([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])),
            quadsel: black_box(_mm512_loadu_si512(quadsel.as_ptr() as *const _)),
            neg_pp0: neg_mask(trellis::pred_parity(0)),
            neg_pp1: neg_mask(trellis::pred_parity(1)),
            neg_np0: neg_mask(trellis::next_parity(0)),
            neg_np1: neg_mask(trellis::next_parity(1)),
            floor: _mm512_set1_epi16(NEG_INF),
        }
    }

    /// All four blocks' branch metric at `step` in one shot: a qword
    /// broadcast of the interleaved quad, then a lane-local byte
    /// shuffle fans block L's i16 across lane L.
    #[inline(always)]
    unsafe fn quad_bcast(buf: &[Llr], step: usize, sel: __m512i) -> __m512i {
        let q = (buf.as_ptr().add(QUAD * step) as *const i64).read_unaligned();
        _mm512_shuffle_epi8(_mm512_set1_epi64(q), sel)
    }

    /// `±γ₀ ± γₚ` for both hypotheses. AVX-512 has no `vpsignw`; a
    /// masked wrapping subtract-from-zero is the exact same negation
    /// the ymm kernel's ±1 `vpsignw` performs.
    #[inline(always)]
    unsafe fn quad_gammas(
        g0b: __m512i,
        gpb: __m512i,
        neg0: __mmask32,
        neg1: __mmask32,
    ) -> (__m512i, __m512i) {
        let zero = _mm512_setzero_si512();
        let ng0 = _mm512_subs_epi16(zero, g0b);
        (
            _mm512_adds_epi16(g0b, _mm512_mask_sub_epi16(gpb, neg0, zero, gpb)),
            _mm512_adds_epi16(ng0, _mm512_mask_sub_epi16(gpb, neg1, zero, gpb)),
        )
    }

    /// One fused SISO pass over four blocks: the zmm widening of
    /// [`siso_pair_avx2`], each 128-bit lane running the identical
    /// instruction sequence on its own block. `sys`/`par`/`apriori`
    /// are per-block slices read in place (no block-major staging
    /// copy); `g0`, `gp` and `ext` are written quad-interleaved
    /// (`[4*step+block]`), `post` is dword-stride quad-interleaved;
    /// `alpha` holds `(K+1) × 32` lanes, `binit` the four blocks' β
    /// terminations.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn siso_quad_avx512(
        sys: [&[Llr]; QUAD],
        par: [&[Llr]; QUAD],
        apriori: [&[Llr]; QUAD],
        binit: &[Llr; QUAD * STATES],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        let k = sys[0].len();
        let n = QUAD * k;
        debug_assert!(k.is_multiple_of(STATES));
        debug_assert!(sys.iter().all(|s| s.len() == k));
        debug_assert!(par.iter().all(|s| s.len() == k));
        debug_assert!(apriori.iter().all(|s| s.len() == k));
        debug_assert!(g0.len() == n && gp.len() == n);
        debug_assert!(ext.len() == n && post.len() == n);
        debug_assert!(alpha.len() == (k + 1) * QUAD * STATES);
        let ctl = make_qctl();
        let lanes = QUAD * STATES;

        // γ phase: per-block metrics in xmm quarters, 4×8 i16
        // transposed through two unpack rounds so the recursions can
        // broadcast a step's quad with one qword load.
        let mut i = 0;
        while i < k {
            let quad = |bufs: [&[Llr]; QUAD]| -> [__m128i; QUAD] {
                core::array::from_fn(|g| _mm_loadu_si128(bufs[g].as_ptr().add(i) as *const __m128i))
            };
            let ls = quad(sys);
            let la = quad(apriori);
            let lp = quad(par);
            let g0x: [__m128i; QUAD] =
                core::array::from_fn(|g| _mm_srai_epi16(_mm_adds_epi16(ls[g], la[g]), 1));
            let gpx: [__m128i; QUAD] = core::array::from_fn(|g| _mm_srai_epi16(lp[g], 1));
            let store4 = |v: &mut [Llr], x: [__m128i; QUAD]| {
                let t0 = _mm_unpacklo_epi16(x[0], x[1]);
                let t1 = _mm_unpacklo_epi16(x[2], x[3]);
                let t2 = _mm_unpackhi_epi16(x[0], x[1]);
                let t3 = _mm_unpackhi_epi16(x[2], x[3]);
                let base = v.as_mut_ptr();
                let at = |off: usize| base.add(QUAD * i + off) as *mut __m128i;
                _mm_storeu_si128(at(0), _mm_unpacklo_epi32(t0, t1));
                _mm_storeu_si128(at(8), _mm_unpackhi_epi32(t0, t1));
                _mm_storeu_si128(at(16), _mm_unpacklo_epi32(t2, t3));
                _mm_storeu_si128(at(24), _mm_unpackhi_epi32(t2, t3));
            };
            store4(g0, g0x);
            store4(gp, gpx);
            i += 8;
        }

        // Forward α: each block owns a 128-bit lane.
        let mut a0init = [NEG_INF; 32];
        for g in 0..QUAD {
            a0init[g * STATES] = 0;
        }
        let mut a = _mm512_loadu_si512(a0init.as_ptr() as *const _);
        _mm512_storeu_si512(alpha.as_mut_ptr() as *mut _, a);
        for step in 0..k {
            let g0b = quad_bcast(g0, step, ctl.quadsel);
            let gpb = quad_bcast(gp, step, ctl.quadsel);
            let (gam0, gam1) = quad_gammas(g0b, gpb, ctl.neg_pp0, ctl.neg_pp1);
            let p0 = _mm512_shuffle_epi8(a, ctl.pred0);
            let p1 = _mm512_shuffle_epi8(a, ctl.pred1);
            let c0 = _mm512_adds_epi16(p0, gam0);
            let c1 = _mm512_adds_epi16(p1, gam1);
            let m = _mm512_max_epi16(_mm512_max_epi16(c0, c1), ctl.floor);
            let norm = _mm512_shuffle_epi8(m, ctl.bcast0);
            a = _mm512_subs_epi16(m, norm);
            _mm512_storeu_si512(alpha.as_mut_ptr().add((step + 1) * lanes) as *mut _, a);
        }

        // Backward β fused with the posterior; `bsrli_epi128`/`unpack`
        // are lane-local, so each block reduces inside its own lane.
        // The posterior quad (dword 0 of each lane) compresses to one
        // 16-byte store.
        let mut b = _mm512_loadu_si512(binit.as_ptr() as *const _);
        for step in (0..k).rev() {
            let g0b = quad_bcast(g0, step, ctl.quadsel);
            let gpb = quad_bcast(gp, step, ctl.quadsel);
            let (gam0, gam1) = quad_gammas(g0b, gpb, ctl.neg_np0, ctl.neg_np1);
            let b0 = _mm512_shuffle_epi8(b, ctl.next0);
            let b1 = _mm512_shuffle_epi8(b, ctl.next1);
            let av = _mm512_loadu_si512(alpha.as_ptr().add(step * lanes) as *const _);
            let t0 = _mm512_adds_epi16(_mm512_adds_epi16(av, gam0), b0);
            let t1 = _mm512_adds_epi16(_mm512_adds_epi16(av, gam1), b1);
            let y = _mm512_max_epi16(_mm512_unpacklo_epi16(t0, t1), _mm512_unpackhi_epi16(t0, t1));
            let z = _mm512_max_epi16(y, _mm512_bsrli_epi128::<8>(y));
            let w = _mm512_max_epi16(z, _mm512_bsrli_epi128::<4>(z));
            let wf = _mm512_max_epi16(w, ctl.floor);
            let lv = _mm512_subs_epi16(wf, _mm512_bsrli_epi128::<2>(wf));
            let pd = _mm512_maskz_compress_epi32(0x1111, lv);
            _mm_storeu_si128(
                post.as_mut_ptr().add(QUAD * step) as *mut __m128i,
                _mm512_castsi512_si128(pd),
            );
            let c0 = _mm512_adds_epi16(b0, gam0);
            let c1 = _mm512_adds_epi16(b1, gam1);
            let m = _mm512_max_epi16(_mm512_max_epi16(c0, c1), ctl.floor);
            let norm = _mm512_shuffle_epi8(m, ctl.bcast0);
            b = _mm512_subs_epi16(m, norm);
        }

        // Extrinsic peel-off, thirty-two interleaved entries per pass:
        // `ext = L − 2·γ₀`. `packs_epi32` packs per 128-bit lane, so a
        // qword permute restores sequential order; the pack itself is
        // exact because every element is an in-range i16 after the
        // sign-extending shift pair.
        let unlace = _mm512_set_epi64(7, 5, 3, 1, 6, 4, 2, 0);
        let mut i = 0;
        while i < n {
            let p0 = _mm512_loadu_si512(post.as_ptr().add(i) as *const _);
            let p1 = _mm512_loadu_si512(post.as_ptr().add(i + 16) as *const _);
            let w0 = _mm512_srai_epi32(_mm512_slli_epi32(p0, 16), 16);
            let w1 = _mm512_srai_epi32(_mm512_slli_epi32(p1, 16), 16);
            let pv = _mm512_permutexvar_epi64(unlace, _mm512_packs_epi32(w0, w1));
            let g0v = _mm512_loadu_si512(g0.as_ptr().add(i) as *const _);
            let ev = _mm512_subs_epi16(pv, _mm512_adds_epi16(g0v, g0v));
            _mm512_storeu_si512(ext.as_mut_ptr().add(i) as *mut _, ev);
            i += 32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::llr::bit_to_llr;
    use crate::turbo::{NativeTurboDecoder, TurboDecoder, TurboEncoder};

    fn make_input(k: usize, seed: u64) -> (Vec<u8>, TurboLlrs) {
        let bits = random_bits(k, seed);
        let cw = TurboEncoder::new(k).encode(&bits);
        let soft: [Vec<Llr>; 3] = cw
            .to_dstreams()
            .iter()
            .map(|s| s.iter().map(|&b| bit_to_llr(b, 50)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        (bits, TurboLlrs::from_dstreams(&soft, k))
    }

    #[test]
    fn pair_decode_equals_two_scalar_decodes() {
        for k in [40usize, 64, 512] {
            let (bits_a, in_a) = make_input(k, 11 + k as u64);
            let (bits_b, in_b) = make_input(k, 29 + k as u64);
            let batch = NativeBatchTurboDecoder::new(k, 3);
            let [out_a, out_b] = batch.decode_pair(&[in_a.clone(), in_b.clone()]);
            let scalar = TurboDecoder::new(k, 3);
            assert_eq!(out_a.bits, scalar.decode(&in_a).bits, "K={k} block 0");
            assert_eq!(out_b.bits, scalar.decode(&in_b).bits, "K={k} block 1");
            assert_eq!(out_a.bits, bits_a);
            assert_eq!(out_b.bits, bits_b);
            assert_eq!(out_a.iterations_run, 3);
            assert_eq!(out_a.crc_ok, None, "batch path has no CRC early stop");
        }
    }

    #[test]
    fn pair_decode_equals_single_native_decodes() {
        let k = 256;
        let (_, in_a) = make_input(k, 3);
        let (_, in_b) = make_input(k, 4);
        let batch = NativeBatchTurboDecoder::new(k, 2);
        let single = NativeTurboDecoder::new(k, 2);
        let [out_a, out_b] = batch.decode_pair(&[in_a.clone(), in_b.clone()]);
        assert_eq!(out_a.bits, single.decode(&in_a).bits);
        assert_eq!(out_b.bits, single.decode(&in_b).bits);
    }

    #[test]
    #[should_panic(expected = "share K")]
    fn mismatched_block_sizes_panic() {
        let (_, in_a) = make_input(40, 1);
        let (_, in_b) = make_input(48, 2);
        let _ = NativeBatchTurboDecoder::new(40, 1).decode_pair(&[in_a, in_b]);
    }

    #[test]
    fn quad_decode_equals_four_scalar_decodes() {
        for k in [40usize, 64, 512] {
            let mk = |s: u64| make_input(k, s + k as u64);
            let (payloads, inputs): (Vec<_>, Vec<_>) = [11, 29, 47, 83].map(mk).into_iter().unzip();
            let inputs: [TurboLlrs; QUAD] = inputs.try_into().unwrap();
            let batch = NativeBatchTurboDecoder::new(k, 3);
            let outs = batch.decode_quad(&inputs);
            let scalar = TurboDecoder::new(k, 3);
            for g in 0..QUAD {
                assert_eq!(
                    outs[g].bits,
                    scalar.decode(&inputs[g]).bits,
                    "K={k} block {g}"
                );
                assert_eq!(outs[g].bits, payloads[g]);
                assert_eq!(outs[g].iterations_run, 3);
                assert_eq!(outs[g].crc_ok, None, "batch path has no CRC early stop");
            }
        }
    }

    #[test]
    fn quad_decode_equals_pair_and_single_native_decodes() {
        let k = 256;
        let inputs: [TurboLlrs; QUAD] = core::array::from_fn(|g| make_input(k, 5 + g as u64).1);
        let batch = NativeBatchTurboDecoder::new(k, 2);
        let single = NativeTurboDecoder::new(k, 2);
        let outs = batch.decode_quad(&inputs);
        let lo: &[TurboLlrs; BATCH] = inputs[..BATCH].try_into().unwrap();
        let hi: &[TurboLlrs; BATCH] = inputs[BATCH..].try_into().unwrap();
        let pairs = [batch.decode_pair(lo), batch.decode_pair(hi)];
        for g in 0..QUAD {
            assert_eq!(
                outs[g].bits,
                single.decode(&inputs[g]).bits,
                "block {g} vs single"
            );
            assert_eq!(
                outs[g].bits,
                pairs[g / BATCH][g % BATCH].bits,
                "block {g} vs pair"
            );
        }
    }

    #[test]
    #[should_panic(expected = "share K")]
    fn mismatched_quad_block_sizes_panic() {
        let (_, in_a) = make_input(40, 1);
        let (_, in_b) = make_input(48, 2);
        let _ = NativeBatchTurboDecoder::new(40, 1).decode_quad(&[
            in_a.clone(),
            in_a.clone(),
            in_a,
            in_b,
        ]);
    }

    #[test]
    fn staged_quad_matches_refs_and_reuses_scratch() {
        for k in [40usize, 512] {
            let inputs: [TurboLlrs; QUAD] =
                core::array::from_fn(|g| make_input(k, 900 + g as u64 + k as u64).1);
            let batch = NativeBatchTurboDecoder::new(k, 3);
            let expect = batch.decode_quad(&inputs);
            let mut scratch = BatchScratch::new();
            let mut bits: [Vec<u8>; QUAD] = core::array::from_fn(|_| Vec::new());
            let refs: [&TurboLlrs; QUAD] = core::array::from_fn(|g| &inputs[g]);
            for round in 0..3 {
                let iters = batch.decode_quad_staged_into(
                    refs.map(BlockLlrs::from_turbo),
                    &mut scratch,
                    &mut bits,
                );
                assert_eq!(iters, 3);
                for g in 0..QUAD {
                    assert_eq!(bits[g], expect[g].bits, "K={k} block {g} round {round}");
                }
            }
            if NativeBatchTurboDecoder::is_zmm_accelerated() {
                assert_eq!(scratch.allocations(), 1, "warm scratch must not grow");
                assert_eq!(scratch.reuses(), 2);
            }
        }
    }

    #[test]
    fn staged_pair_matches_pair_refs() {
        let k = 256;
        let inputs: [TurboLlrs; BATCH] = core::array::from_fn(|g| make_input(k, 70 + g as u64).1);
        let batch = NativeBatchTurboDecoder::new(k, 2);
        let expect = batch.decode_pair(&inputs);
        let mut scratch = BatchScratch::new();
        let mut bits: [Vec<u8>; BATCH] = core::array::from_fn(|_| Vec::new());
        let iters = batch.decode_pair_staged_into(
            [
                BlockLlrs::from_turbo(&inputs[0]),
                BlockLlrs::from_turbo(&inputs[1]),
            ],
            &mut scratch,
            &mut bits,
        );
        assert_eq!(iters, 2);
        assert_eq!(bits[0], expect[0].bits);
        assert_eq!(bits[1], expect[1].bits);
    }

    #[test]
    fn staged_decode_reads_detached_stream_buffers() {
        // The fused-ingest contract: blocks staged in pooled
        // `SoftStreams` (not inside a `TurboLlrs`) decode identically.
        let k = 104;
        let inputs: [TurboLlrs; QUAD] = core::array::from_fn(|g| make_input(k, 40 + g as u64).1);
        let expect = NativeBatchTurboDecoder::new(k, 2).decode_quad(&inputs);
        let pooled: Vec<SoftStreams> = inputs.iter().map(|i| i.streams.clone()).collect();
        let staged: [BlockLlrs<'_>; QUAD] =
            core::array::from_fn(|g| BlockLlrs::from_streams(&pooled[g], inputs[g].tails));
        let mut scratch = BatchScratch::new();
        let mut bits: [Vec<u8>; QUAD] = core::array::from_fn(|_| Vec::new());
        let iters = NativeBatchTurboDecoder::new(k, 2).decode_quad_staged_into(
            staged,
            &mut scratch,
            &mut bits,
        );
        assert_eq!(iters, 2);
        for g in 0..QUAD {
            assert_eq!(bits[g], expect[g].bits, "block {g}");
        }
    }

    #[test]
    fn quad_zmm_beats_four_serial_native_decodes() {
        // The acceptance bar for the quad kernel: on an AVX-512BW host
        // four blocks through one zmm pass must cost less wall-clock
        // than four serial single-block native decodes. Skipped (not
        // failed) where the host lacks the ISA — exactness is covered
        // unconditionally above.
        if !NativeBatchTurboDecoder::is_zmm_accelerated() {
            eprintln!("quad_zmm_beats_four_serial_native_decodes: SKIPPED (no avx512bw)");
            return;
        }
        let k = 6144;
        let iters = 4;
        let inputs: [TurboLlrs; QUAD] = core::array::from_fn(|g| make_input(k, 300 + g as u64).1);
        let batch = NativeBatchTurboDecoder::new(k, iters);
        let single = NativeTurboDecoder::new(k, iters);
        // Warm up, then take the median of several reps per side so a
        // scheduler blip cannot fail the build.
        let _ = batch.decode_quad(&inputs);
        for i in &inputs {
            let _ = single.decode(i);
        }
        let reps = 9;
        let median = |mut v: Vec<u128>| -> u128 {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let quad_ns = median(
            (0..reps)
                .map(|_| {
                    let t = std::time::Instant::now();
                    std::hint::black_box(batch.decode_quad(std::hint::black_box(&inputs)));
                    t.elapsed().as_nanos()
                })
                .collect(),
        );
        let serial_ns = median(
            (0..reps)
                .map(|_| {
                    let t = std::time::Instant::now();
                    for i in &inputs {
                        std::hint::black_box(single.decode(std::hint::black_box(i)));
                    }
                    t.elapsed().as_nanos()
                })
                .collect(),
        );
        let speedup = serial_ns as f64 / quad_ns as f64;
        assert!(
            speedup > 1.0,
            "batched zmm decode must beat 4 serial native decodes: {speedup:.2}× \
             ({serial_ns} ns serial vs {quad_ns} ns quad at K={k})"
        );
        assert!(
            speedup < 4.5,
            "speedup cannot exceed the lane advantage: {speedup:.2}×"
        );
    }
}
