//! AVX2 two-blocks-per-register native batch turbo decoding.
//!
//! The real-hardware counterpart of [`super::batch_decoder`]: the
//! 8-state α/β recursions cannot widen, so a ymm register carries
//! *two* independent code blocks, one per 128-bit lane. AVX2's
//! `_mm256_shuffle_epi8`, `_mm256_srli_si256` and the `shufflelo/hi`
//! family all operate per-128-bit-lane — exactly the per-block state
//! gathers the recursion needs, with zero cross-block traffic.
//!
//! Each 128-bit lane performs precisely the instruction sequence of
//! the single-block SSSE3 kernel in [`super::native_decoder`], so a
//! batched decode is bit-identical to two separate decodes (and to
//! the scalar oracle). Matching [`super::batch_decoder`]'s semantics,
//! batched decoding runs a fixed iteration count with no CRC early
//! stop (`crc_ok: None`).

use super::decoder::{beta_init_from_tails, scale_extrinsic, DecodeOutcome, NEG_INF};
use super::trellis::STATES;
use crate::interleaver::QppInterleaver;
use crate::llr::{llr_to_bit, Llr, TurboLlrs};
use vran_simd::host::{self, HostIsa};

/// Number of blocks decoded per ymm pass.
pub const BATCH: usize = 2;

/// Batched decoder: two equal-size blocks per pass on AVX2 hardware,
/// falling back to two sequential single-block native decodes when the
/// host lacks AVX2 (identical outputs either way).
#[derive(Debug, Clone)]
pub struct NativeBatchTurboDecoder {
    il: QppInterleaver,
    max_iterations: usize,
    use_avx2: bool,
}

impl NativeBatchTurboDecoder {
    /// Whether the ymm fast path is usable on this host.
    pub fn is_accelerated() -> bool {
        cfg!(target_arch = "x86_64") && host::has(HostIsa::Avx2)
    }

    /// Decoder for two parallel blocks of size `k`.
    pub fn new(k: usize, max_iterations: usize) -> Self {
        assert!(max_iterations >= 1);
        Self {
            il: QppInterleaver::new(k),
            max_iterations,
            use_avx2: Self::is_accelerated(),
        }
    }

    /// Block size K.
    pub fn k(&self) -> usize {
        self.il.k()
    }

    /// Blocks per call.
    pub fn batch(&self) -> usize {
        BATCH
    }

    /// Decode two blocks; runs all configured iterations (no CRC early
    /// stop, matching [`super::batch_decoder::BatchTurboDecoder`]).
    pub fn decode_pair(&self, inputs: &[TurboLlrs; BATCH]) -> [DecodeOutcome; BATCH] {
        let k = self.il.k();
        for input in inputs.iter() {
            assert_eq!(input.k, k, "both blocks in a batch share K");
        }
        if !self.use_avx2 {
            // Portable path: two single-block native decodes have
            // identical semantics (fixed iterations, no CRC).
            let single = super::native_decoder::NativeTurboDecoder::new(k, self.max_iterations);
            return [single.decode(&inputs[0]), single.decode(&inputs[1])];
        }
        #[cfg(target_arch = "x86_64")]
        {
            self.decode_pair_avx2(inputs)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unreachable!("use_avx2 implies x86_64")
    }

    #[cfg(target_arch = "x86_64")]
    fn decode_pair_avx2(&self, inputs: &[TurboLlrs; BATCH]) -> [DecodeOutcome; BATCH] {
        let k = self.il.k();
        let n = BATCH * k;

        // Block-major staging: [0..k) = block 0, [k..2k) = block 1.
        let stage = |f: fn(&TurboLlrs) -> &[Llr]| -> Vec<Llr> {
            let mut v = Vec::with_capacity(n);
            v.extend_from_slice(f(&inputs[0]));
            v.extend_from_slice(f(&inputs[1]));
            v
        };
        let sys = stage(|i| &i.streams.sys);
        let p1 = stage(|i| &i.streams.p1);
        let p2 = stage(|i| &i.streams.p2);
        let mut sys_pi = vec![0 as Llr; n];
        for (g, input) in inputs.iter().enumerate() {
            for j in 0..k {
                sys_pi[g * k + j] = input.streams.sys[self.il.pi(j)];
            }
        }
        let binit = |second: bool| -> [Llr; BATCH * STATES] {
            let mut b = [0 as Llr; BATCH * STATES];
            for (g, input) in inputs.iter().enumerate() {
                let (ts, tp) = if second {
                    (&input.tails.sys2, &input.tails.p2)
                } else {
                    (&input.tails.sys1, &input.tails.p1)
                };
                b[g * STATES..(g + 1) * STATES].copy_from_slice(&beta_init_from_tails(ts, tp));
            }
            b
        };
        let binit1 = binit(false);
        let binit2 = binit(true);

        // `g0`/`gp`/`ext` are *pair-interleaved* (`[2*step + block]`)
        // so the kernel can broadcast both blocks' branch metric with
        // one dword load; `post` is dword-stride like the single-block
        // kernel's (low 16 bits per entry are the payload).
        let mut g0 = vec![0 as Llr; n];
        let mut gp = vec![0 as Llr; n];
        let mut alpha = vec![0 as Llr; (k + 1) * BATCH * STATES];
        let mut ext = vec![0 as Llr; n];
        let mut post = vec![0i32; n];
        let mut la1 = vec![0 as Llr; n];
        let mut la2 = vec![0 as Llr; n];
        let mut bits = [vec![0u8; k], vec![0u8; k]];

        let mut iterations_run = 0;
        for _ in 0..self.max_iterations {
            iterations_run += 1;
            unsafe {
                x86::siso_pair_avx2(
                    &sys, &p1, &la1, &binit1, &mut g0, &mut gp, &mut alpha, &mut ext, &mut post,
                );
            }
            for g in 0..BATCH {
                for j in 0..k {
                    la2[g * k + j] = scale_extrinsic(ext[BATCH * self.il.pi(j) + g]);
                }
            }
            unsafe {
                x86::siso_pair_avx2(
                    &sys_pi, &p2, &la2, &binit2, &mut g0, &mut gp, &mut alpha, &mut ext, &mut post,
                );
            }
            for g in 0..BATCH {
                for i in 0..k {
                    la1[g * k + i] = scale_extrinsic(ext[BATCH * self.il.pi_inv(i) + g]);
                }
            }
            for (g, blk) in bits.iter_mut().enumerate() {
                for (i, bit) in blk.iter_mut().enumerate() {
                    *bit = llr_to_bit(post[BATCH * self.il.pi_inv(i) + g] as Llr);
                }
            }
        }
        let [b0, b1] = bits;
        [
            DecodeOutcome {
                bits: b0,
                iterations_run,
                crc_ok: None,
            },
            DecodeOutcome {
                bits: b1,
                iterations_run,
                crc_ok: None,
            },
        ]
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::super::trellis;
    use super::*;
    use std::arch::x86_64::*;

    /// Byte-level shuffle control for one 128-bit lane, from a
    /// lane-level i16 gather table.
    fn lane_ctrl(table: [u8; STATES]) -> [i8; 16] {
        let mut c = [0i8; 16];
        for (i, &s) in table.iter().enumerate() {
            c[2 * i] = (2 * s) as i8;
            c[2 * i + 1] = (2 * s + 1) as i8;
        }
        c
    }

    fn sign_vec(par: [u8; STATES]) -> [i16; STATES] {
        core::array::from_fn(|i| if par[i] == 0 { 1 } else { -1 })
    }

    struct Ctl {
        pred0: __m256i,
        pred1: __m256i,
        next0: __m256i,
        next1: __m256i,
        bcast0: __m256i,
        pairsel: __m256i,
        sgn_pp0: __m256i,
        sgn_pp1: __m256i,
        sgn_np0: __m256i,
        sgn_np1: __m256i,
        floor: __m256i,
    }

    /// Replicate a 16-byte control into both 128-bit lanes —
    /// `_mm256_shuffle_epi8` indexes are lane-local, which is exactly
    /// the per-block state gather.
    #[inline(always)]
    unsafe fn dup_ctrl(a: [i8; 16]) -> __m256i {
        let x = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        _mm256_set_m128i(x, x)
    }

    #[inline(always)]
    unsafe fn dup_mask(a: [i16; 8]) -> __m256i {
        let x = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        _mm256_set_m128i(x, x)
    }

    #[inline(always)]
    unsafe fn make_ctl() -> Ctl {
        // Shuffle controls go through `black_box` for the same reason
        // as the single-block kernel's: LLVM otherwise re-expands the
        // constant-control `pshufb`s into multi-µop shuffle chains.
        use core::hint::black_box;
        // Low lane selects block 0's i16 (bytes 0-1 of the broadcast
        // dword), high lane block 1's (bytes 2-3).
        let mut pairsel = [0i8; 32];
        for (i, b) in pairsel.iter_mut().enumerate() {
            *b = if i < 16 {
                (i % 2) as i8
            } else {
                (2 + i % 2) as i8
            };
        }
        Ctl {
            pred0: black_box(dup_ctrl(lane_ctrl(trellis::pred_table(0)))),
            pred1: black_box(dup_ctrl(lane_ctrl(trellis::pred_table(1)))),
            next0: black_box(dup_ctrl(lane_ctrl(trellis::next_table(0)))),
            next1: black_box(dup_ctrl(lane_ctrl(trellis::next_table(1)))),
            bcast0: black_box(dup_ctrl([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])),
            pairsel: black_box(_mm256_loadu_si256(pairsel.as_ptr() as *const __m256i)),
            sgn_pp0: dup_mask(sign_vec(trellis::pred_parity(0))),
            sgn_pp1: dup_mask(sign_vec(trellis::pred_parity(1))),
            sgn_np0: dup_mask(sign_vec(trellis::next_parity(0))),
            sgn_np1: dup_mask(sign_vec(trellis::next_parity(1))),
            floor: _mm256_set1_epi16(NEG_INF),
        }
    }

    /// Both blocks' branch metric at `step` in one shot: a dword
    /// broadcast of the interleaved pair, then a lane-local byte
    /// shuffle fans block 0's i16 across the low lane and block 1's
    /// across the high lane.
    #[inline(always)]
    unsafe fn pair_bcast(buf: &[Llr], step: usize, sel: __m256i) -> __m256i {
        let d = (buf.as_ptr().add(BATCH * step) as *const i32).read_unaligned();
        _mm256_shuffle_epi8(_mm256_set1_epi32(d), sel)
    }

    /// `±γ₀ ± γₚ` for both hypotheses; `vpsignw` with a ±1 mask equals
    /// `subs16(0, ·)` because `|γ| ≤ 2¹⁴` after the `>>1` halving.
    #[inline(always)]
    unsafe fn gammas(
        g0b: __m256i,
        gpb: __m256i,
        sgn0: __m256i,
        sgn1: __m256i,
    ) -> (__m256i, __m256i) {
        let ng0 = _mm256_subs_epi16(_mm256_setzero_si256(), g0b);
        (
            _mm256_adds_epi16(g0b, _mm256_sign_epi16(gpb, sgn0)),
            _mm256_adds_epi16(ng0, _mm256_sign_epi16(gpb, sgn1)),
        )
    }

    /// One fused SISO pass over two blocks. `sys`/`par`/`apriori` are
    /// block-major (`[0..k)` = block 0, `[k..2k)` = block 1); `g0`,
    /// `gp` and `ext` are written pair-interleaved (`[2*step+block]`),
    /// `post` is dword-stride pair-interleaved; `alpha` holds
    /// `(K+1) × 16` lanes, `binit` the two blocks' β terminations.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn siso_pair_avx2(
        sys: &[Llr],
        par: &[Llr],
        apriori: &[Llr],
        binit: &[Llr; BATCH * STATES],
        g0: &mut [Llr],
        gp: &mut [Llr],
        alpha: &mut [Llr],
        ext: &mut [Llr],
        post: &mut [i32],
    ) {
        let n = sys.len();
        let k = n / BATCH;
        debug_assert!(k.is_multiple_of(STATES) && par.len() == n && apriori.len() == n);
        debug_assert!(g0.len() == n && gp.len() == n);
        debug_assert!(ext.len() == n && post.len() == n);
        debug_assert!(alpha.len() == (k + 1) * BATCH * STATES);
        let ctl = make_ctl();
        let lanes = BATCH * STATES;

        // γ phase: per-block metrics in xmm halves, stored interleaved
        // so the recursions can broadcast a step's pair with one dword
        // load.
        let mut i = 0;
        while i < k {
            let pair = |buf: &[Llr]| {
                (
                    _mm_loadu_si128(buf.as_ptr().add(i) as *const __m128i),
                    _mm_loadu_si128(buf.as_ptr().add(k + i) as *const __m128i),
                )
            };
            let (ls0, ls1) = pair(sys);
            let (la0, la1) = pair(apriori);
            let (lp0, lp1) = pair(par);
            let g0a = _mm_srai_epi16(_mm_adds_epi16(ls0, la0), 1);
            let g0b = _mm_srai_epi16(_mm_adds_epi16(ls1, la1), 1);
            let gpa = _mm_srai_epi16(lp0, 1);
            let gpb = _mm_srai_epi16(lp1, 1);
            let at = |v: &mut [Llr], off: usize| v.as_mut_ptr().add(off) as *mut __m128i;
            _mm_storeu_si128(at(g0, BATCH * i), _mm_unpacklo_epi16(g0a, g0b));
            _mm_storeu_si128(at(g0, BATCH * i + 8), _mm_unpackhi_epi16(g0a, g0b));
            _mm_storeu_si128(at(gp, BATCH * i), _mm_unpacklo_epi16(gpa, gpb));
            _mm_storeu_si128(at(gp, BATCH * i + 8), _mm_unpackhi_epi16(gpa, gpb));
            i += 8;
        }

        // Forward α: blocks 0 and 1 each own a 128-bit half.
        let mut a0init = [NEG_INF; 16];
        a0init[0] = 0;
        a0init[STATES] = 0;
        let mut a = _mm256_loadu_si256(a0init.as_ptr() as *const __m256i);
        _mm256_storeu_si256(alpha.as_mut_ptr() as *mut __m256i, a);
        for step in 0..k {
            let g0b = pair_bcast(g0, step, ctl.pairsel);
            let gpb = pair_bcast(gp, step, ctl.pairsel);
            let (gam0, gam1) = gammas(g0b, gpb, ctl.sgn_pp0, ctl.sgn_pp1);
            let p0 = _mm256_shuffle_epi8(a, ctl.pred0);
            let p1 = _mm256_shuffle_epi8(a, ctl.pred1);
            let c0 = _mm256_adds_epi16(p0, gam0);
            let c1 = _mm256_adds_epi16(p1, gam1);
            let m = _mm256_max_epi16(_mm256_max_epi16(c0, c1), ctl.floor);
            let norm = _mm256_shuffle_epi8(m, ctl.bcast0);
            a = _mm256_subs_epi16(m, norm);
            _mm256_storeu_si256(
                alpha.as_mut_ptr().add((step + 1) * lanes) as *mut __m256i,
                a,
            );
        }

        // Backward β fused with the posterior; the joint interleaved
        // reduction and the dword-stride posterior store mirror the
        // single-block kernel (`srli`/`unpack` are lane-local, so each
        // block reduces inside its own half).
        let mut b = _mm256_loadu_si256(binit.as_ptr() as *const __m256i);
        for step in (0..k).rev() {
            let g0b = pair_bcast(g0, step, ctl.pairsel);
            let gpb = pair_bcast(gp, step, ctl.pairsel);
            let (gam0, gam1) = gammas(g0b, gpb, ctl.sgn_np0, ctl.sgn_np1);
            let b0 = _mm256_shuffle_epi8(b, ctl.next0);
            let b1 = _mm256_shuffle_epi8(b, ctl.next1);
            let av = _mm256_loadu_si256(alpha.as_ptr().add(step * lanes) as *const __m256i);
            let t0 = _mm256_adds_epi16(_mm256_adds_epi16(av, gam0), b0);
            let t1 = _mm256_adds_epi16(_mm256_adds_epi16(av, gam1), b1);
            let y = _mm256_max_epi16(_mm256_unpacklo_epi16(t0, t1), _mm256_unpackhi_epi16(t0, t1));
            let z = _mm256_max_epi16(y, _mm256_srli_si256(y, 8));
            let w = _mm256_max_epi16(z, _mm256_srli_si256(z, 4));
            let wf = _mm256_max_epi16(w, ctl.floor);
            let lv = _mm256_subs_epi16(wf, _mm256_srli_si256(wf, 2));
            // Both blocks' posteriors with one 8-byte store: dword 0
            // of each half, low 16 bits the payload.
            let pd =
                _mm_unpacklo_epi32(_mm256_castsi256_si128(lv), _mm256_extracti128_si256(lv, 1));
            _mm_storel_epi64(post.as_mut_ptr().add(BATCH * step) as *mut __m128i, pd);
            let c0 = _mm256_adds_epi16(b0, gam0);
            let c1 = _mm256_adds_epi16(b1, gam1);
            let m = _mm256_max_epi16(_mm256_max_epi16(c0, c1), ctl.floor);
            let norm = _mm256_shuffle_epi8(m, ctl.bcast0);
            b = _mm256_subs_epi16(m, norm);
        }

        // Extrinsic peel-off, sixteen interleaved entries per pass:
        // `ext = L − 2·γ₀`, the oracle's ops on the oracle's values.
        // The `permute4x64` undoes `packs_epi32`'s lane-wise ordering;
        // the pack itself is exact because every lane is an in-range
        // i16 after the sign-extending shift pair.
        let mut i = 0;
        while i < n {
            let p0 = _mm256_loadu_si256(post.as_ptr().add(i) as *const __m256i);
            let p1 = _mm256_loadu_si256(post.as_ptr().add(i + 8) as *const __m256i);
            let w0 = _mm256_srai_epi32(_mm256_slli_epi32(p0, 16), 16);
            let w1 = _mm256_srai_epi32(_mm256_slli_epi32(p1, 16), 16);
            let pv = _mm256_permute4x64_epi64(_mm256_packs_epi32(w0, w1), 0b11011000);
            let g0v = _mm256_loadu_si256(g0.as_ptr().add(i) as *const __m256i);
            let ev = _mm256_subs_epi16(pv, _mm256_adds_epi16(g0v, g0v));
            _mm256_storeu_si256(ext.as_mut_ptr().add(i) as *mut __m256i, ev);
            i += 16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::llr::bit_to_llr;
    use crate::turbo::{NativeTurboDecoder, TurboDecoder, TurboEncoder};

    fn make_input(k: usize, seed: u64) -> (Vec<u8>, TurboLlrs) {
        let bits = random_bits(k, seed);
        let cw = TurboEncoder::new(k).encode(&bits);
        let soft: [Vec<Llr>; 3] = cw
            .to_dstreams()
            .iter()
            .map(|s| s.iter().map(|&b| bit_to_llr(b, 50)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        (bits, TurboLlrs::from_dstreams(&soft, k))
    }

    #[test]
    fn pair_decode_equals_two_scalar_decodes() {
        for k in [40usize, 64, 512] {
            let (bits_a, in_a) = make_input(k, 11 + k as u64);
            let (bits_b, in_b) = make_input(k, 29 + k as u64);
            let batch = NativeBatchTurboDecoder::new(k, 3);
            let [out_a, out_b] = batch.decode_pair(&[in_a.clone(), in_b.clone()]);
            let scalar = TurboDecoder::new(k, 3);
            assert_eq!(out_a.bits, scalar.decode(&in_a).bits, "K={k} block 0");
            assert_eq!(out_b.bits, scalar.decode(&in_b).bits, "K={k} block 1");
            assert_eq!(out_a.bits, bits_a);
            assert_eq!(out_b.bits, bits_b);
            assert_eq!(out_a.iterations_run, 3);
            assert_eq!(out_a.crc_ok, None, "batch path has no CRC early stop");
        }
    }

    #[test]
    fn pair_decode_equals_single_native_decodes() {
        let k = 256;
        let (_, in_a) = make_input(k, 3);
        let (_, in_b) = make_input(k, 4);
        let batch = NativeBatchTurboDecoder::new(k, 2);
        let single = NativeTurboDecoder::new(k, 2);
        let [out_a, out_b] = batch.decode_pair(&[in_a.clone(), in_b.clone()]);
        assert_eq!(out_a.bits, single.decode(&in_a).bits);
        assert_eq!(out_b.bits, single.decode(&in_b).bits);
    }

    #[test]
    #[should_panic(expected = "share K")]
    fn mismatched_block_sizes_panic() {
        let (_, in_a) = make_input(40, 1);
        let (_, in_b) = make_input(48, 2);
        let _ = NativeBatchTurboDecoder::new(40, 1).decode_pair(&[in_a, in_b]);
    }
}
