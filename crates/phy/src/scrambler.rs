//! TS 36.211 §7.2 pseudo-random (Gold) sequence and §6.3.1 scrambling.
//!
//! The length-31 Gold sequence `c(n) = x1(n+Nc) ⊕ x2(n+Nc)` with
//! `Nc = 1600`, `x1` seeded to `1`, and `x2` seeded from the scrambling
//! identity `c_init` (built from RNTI/cell id/slot per §6.3.1).
//!
//! Two performance tiers live here alongside the bit-serial reference:
//!
//! * **Word-parallel generation** — both 31-bit Fibonacci LFSRs extend
//!   their state window inside a `u64` (two shift/XOR passes produce
//!   33 future bits from the 31 live ones), emitting 32 scrambling
//!   bits per iteration instead of one ([`GoldSequence::next_word`]).
//!   The `Nc = 1600` warmup is a GF(2)-linear map, so it is jumped in
//!   O(31) with compile-time `M^1600` parity masks ([`leap_masks`]) —
//!   constructing a generator takes **zero** serial warmup steps
//!   (pinned by [`bit_serial_warmup_steps`] in tests).
//! * **SIMD sign-select descrambling** — LLR sign flips under the mask
//!   words as saturating `0 − x` selects (`vpsubsw` + mask/blend),
//!   with the established AVX-512BW → AVX2 → SSE2 → scalar-word
//!   runtime dispatch ([`DescrambleImpl`]); every tier reproduces the
//!   bit-serial [`descramble_llrs`] reference exactly, including its
//!   `saturating_neg` edge at `i16::MIN`.

use std::sync::atomic::{AtomicU64, Ordering};

use vran_simd::host::{self, HostIsa};

/// Offset into the m-sequences (spec constant).
const NC: usize = 1600;

/// Feedback tap masks (bit `i` set ⇔ `x(n+i)` feeds `x(n+31)`).
const X1_TAPS: u32 = 0b1001; // x1(n+31) = x1(n+3) ⊕ x1(n)
const X2_TAPS: u32 = 0b1111; // x2(n+31) = x2(n+3) ⊕ x2(n+2) ⊕ x2(n+1) ⊕ x2(n)

/// Serial warmup steps taken process-wide by [`GoldSequence::new_bit_serial`].
/// The leap-based [`GoldSequence::new`] never increments it; tests pin
/// the steady-state delta to zero.
static BIT_SERIAL_WARMUP_STEPS: AtomicU64 = AtomicU64::new(0);

/// Total serial warmup steps taken since process start (reference
/// constructor only — the production leap path contributes none).
pub fn bit_serial_warmup_steps() -> u64 {
    BIT_SERIAL_WARMUP_STEPS.load(Ordering::Relaxed)
}

/// Parity masks for `steps` applications of the 31-bit LFSR with the
/// given feedback `taps`: bit `i` of the post-leap state is the parity
/// of `masks[i] & state`. Evaluated at compile time (the warmup leap
/// is `M^1600` over GF(2)).
const fn leap_masks(taps: u32, steps: usize) -> [u32; 31] {
    let mut m = [0u32; 31];
    let mut i = 0;
    while i < 31 {
        m[i] = 1 << i;
        i += 1;
    }
    let mut s = 0;
    while s < steps {
        let mut nm = [0u32; 31];
        let mut j = 0;
        while j < 30 {
            nm[j] = m[j + 1];
            j += 1;
        }
        let mut t = 0u32;
        let mut b = 0;
        while b < 31 {
            if (taps >> b) & 1 == 1 {
                t ^= m[b];
            }
            b += 1;
        }
        nm[30] = t;
        m = nm;
        s += 1;
    }
    m
}

const X1_LEAP: [u32; 31] = leap_masks(X1_TAPS, NC);
const X2_LEAP: [u32; 31] = leap_masks(X2_TAPS, NC);

/// Apply a leap (31 parity masks) to a state word.
const fn apply_leap(masks: &[u32; 31], state: u32) -> u32 {
    let mut out = 0u32;
    let mut i = 0;
    while i < 31 {
        out |= ((masks[i] & state).count_ones() & 1) << i;
        i += 1;
    }
    out
}

/// `x1` after the `Nc` warmup — a constant, since `x1` always seeds to 1.
const X1_POST_NC: u32 = apply_leap(&X1_LEAP, 1);

/// Advance the `x1` register 32 steps: returns `(next 32 output bits
/// LSB-first, new state)`. The `u64` window holds `x(n..n+31)`; two
/// shifted-XOR passes extend it to `x(n..n+63)` (the first computes
/// bits 31..58 from live bits, the second bits 59..63 from the fresh
/// ones), then bits 32..62 become the new state.
#[inline]
fn x1_word(x: u32) -> (u32, u32) {
    let mut e = x as u64;
    e |= (((e >> 3) ^ e) & 0x0FFF_FFFF) << 31;
    e |= (((e >> 31) ^ (e >> 28)) & 0x1F) << 59;
    (e as u32, ((e >> 32) & 0x7FFF_FFFF) as u32)
}

/// Advance the `x2` register 32 steps (same window-extension scheme,
/// four-tap feedback).
#[inline]
fn x2_word(x: u32) -> (u32, u32) {
    let mut e = x as u64;
    e |= ((e ^ (e >> 1) ^ (e >> 2) ^ (e >> 3)) & 0x0FFF_FFFF) << 31;
    e |= (((e >> 28) ^ (e >> 29) ^ (e >> 30) ^ (e >> 31)) & 0x1F) << 59;
    (e as u32, ((e >> 32) & 0x7FFF_FFFF) as u32)
}

/// Gold-sequence generator producing scrambling bits.
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

impl GoldSequence {
    /// Initialize from `c_init`, jumping the `Nc` warmup in O(31) via
    /// the compile-time `M^1600` parity masks (zero serial steps).
    pub fn new(c_init: u32) -> Self {
        Self {
            x1: X1_POST_NC,
            x2: apply_leap(&X2_LEAP, c_init & 0x7FFF_FFFF),
        }
    }

    /// Bit-serial reference constructor: steps both registers through
    /// the full `Nc = 1600` warmup one bit at a time. Kept as the
    /// oracle for the leap and for the steady-state "zero warmup
    /// steps" counter test.
    pub fn new_bit_serial(c_init: u32) -> Self {
        let mut g = Self {
            x1: 1,
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..NC {
            g.step();
        }
        BIT_SERIAL_WARMUP_STEPS.fetch_add(NC as u64, Ordering::Relaxed);
        g
    }

    /// The §6.3.1 PDSCH/PUSCH initialization value:
    /// `c_init = rnti·2¹⁴ + q·2¹³ + ⌊ns/2⌋·2⁹ + cell_id`.
    pub fn c_init_pxsch(rnti: u16, q: u8, ns: u8, cell_id: u16) -> u32 {
        ((rnti as u32) << 14)
            | ((q as u32 & 1) << 13)
            | (((ns as u32 / 2) & 0xF) << 9)
            | (cell_id as u32 & 0x1FF)
    }

    /// Advance both registers one step and return the output bit.
    fn step(&mut self) -> u8 {
        // x1: x1(n+31) = x1(n+3) ⊕ x1(n)
        let n1 = ((self.x1 >> 3) ^ self.x1) & 1;
        // x2: x2(n+31) = x2(n+3) ⊕ x2(n+2) ⊕ x2(n+1) ⊕ x2(n)
        let n2 = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        self.x1 = (self.x1 >> 1) | (n1 << 30);
        self.x2 = (self.x2 >> 1) | (n2 << 30);
        out
    }

    /// Produce the next 32 scrambling bits as one word, LSB-first
    /// (bit `i` of the word is `c(n+i)`), advancing 32 steps.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        let (w1, n1) = x1_word(self.x1);
        let (w2, n2) = x2_word(self.x2);
        self.x1 = n1;
        self.x2 = n2;
        w1 ^ w2
    }

    /// Produce the next `n` scrambling bits.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// 8-bit → 8-byte expansion, one `{0,1}` byte per bit, LSB-first.
const fn bit_expand_lut() -> [u64; 256] {
    let mut lut = [0u64; 256];
    let mut b = 0;
    while b < 256 {
        let mut k = 0;
        let mut v = 0u64;
        while k < 8 {
            v |= (((b >> k) & 1) as u64) << (8 * k);
            k += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
}

/// 8-bit → 8-byte mask expansion, one `0x00`/`0xFF` byte per bit,
/// LSB-first (feeds the SSE2/AVX2 lane-mask widening).
const fn byte_mask_lut() -> [u64; 256] {
    let mut lut = [0u64; 256];
    let mut b = 0;
    while b < 256 {
        let mut k = 0;
        let mut v = 0u64;
        while k < 8 {
            if (b >> k) & 1 == 1 {
                v |= 0xFFu64 << (8 * k);
            }
            k += 1;
        }
        lut[b] = v;
        b += 1;
    }
    lut
}

const BIT_EXPAND: [u64; 256] = bit_expand_lut();
const BYTE_MASK: [u64; 256] = byte_mask_lut();

/// Scramble a bit sequence in place: `b̃(i) = b(i) ⊕ c(i)`.
///
/// Word-parallel: 32 Gold bits per generator iteration, applied to the
/// bit-per-byte buffer as four packed 8-byte XORs via [`BIT_EXPAND`].
/// Bit-exact with [`scramble_bits_serial`] (property-tested).
pub fn scramble_bits(bits: &mut [u8], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    let mut chunks = bits.chunks_exact_mut(32);
    for chunk in &mut chunks {
        let w = g.next_word();
        for (k, oct) in chunk.chunks_exact_mut(8).enumerate() {
            let cur = u64::from_le_bytes(oct.try_into().unwrap());
            let v = cur ^ BIT_EXPAND[((w >> (8 * k)) & 0xFF) as usize];
            oct.copy_from_slice(&v.to_le_bytes());
        }
    }
    for b in chunks.into_remainder() {
        *b ^= g.step();
    }
}

/// Bit-serial reference scrambler (one Gold step per bit); the oracle
/// for [`scramble_bits`].
pub fn scramble_bits_serial(bits: &mut [u8], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for b in bits.iter_mut() {
        *b ^= g.step();
    }
}

/// Descramble soft values: flip LLR signs where the scrambling bit is 1
/// (XOR with bit 1 swaps the 0/1 hypotheses). Bit-serial reference —
/// the oracle for [`descramble_llrs_with`].
pub fn descramble_llrs(llrs: &mut [i16], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for l in llrs.iter_mut() {
        if g.step() == 1 {
            *l = l.saturating_neg();
        }
    }
}

/// Native LLR-descramble kernel tiers, least to most capable. Every
/// tier flips signs as a *saturating* negate under the Gold mask, so
/// all of them match the scalar [`descramble_llrs`] bit for bit
/// (including `i16::MIN → i16::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescrambleImpl {
    /// Word-parallel Gold, scalar sign-select — the dispatch floor.
    ScalarWord,
    /// 8 LLRs per step: LUT byte-mask widen + `psubsw` and/andnot/or.
    Sse2,
    /// 16 LLRs per step: sign-extended byte masks + `vpblendvb`.
    Avx2,
    /// 32 LLRs per step: the Gold word *is* the `__mmask32` for a
    /// masked `vpsubsw`.
    Avx512bw,
}

impl DescrambleImpl {
    /// Stable label for metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            DescrambleImpl::ScalarWord => "scalar",
            DescrambleImpl::Sse2 => "sse2",
            DescrambleImpl::Avx2 => "avx2",
            DescrambleImpl::Avx512bw => "avx512bw",
        }
    }

    /// Minimum host ISA level this tier needs.
    pub fn required_isa(self) -> HostIsa {
        match self {
            DescrambleImpl::ScalarWord => HostIsa::Scalar,
            DescrambleImpl::Sse2 => HostIsa::Sse2,
            DescrambleImpl::Avx2 => HostIsa::Avx2,
            DescrambleImpl::Avx512bw => HostIsa::Avx512bw,
        }
    }

    /// All tiers, ascending.
    pub fn all() -> [DescrambleImpl; 4] {
        [
            DescrambleImpl::ScalarWord,
            DescrambleImpl::Sse2,
            DescrambleImpl::Avx2,
            DescrambleImpl::Avx512bw,
        ]
    }
}

/// The descramble tiers usable on this host (ceiling-aware), ascending.
pub fn available_descramble() -> Vec<DescrambleImpl> {
    DescrambleImpl::all()
        .into_iter()
        .filter(|i| host::has(i.required_isa()))
        .collect()
}

/// The most capable descramble tier on this host.
pub fn best_descramble() -> DescrambleImpl {
    *available_descramble()
        .last()
        .expect("scalar tier is always available")
}

/// Descramble LLRs with an explicit kernel tier. All tiers are
/// bit-exact with [`descramble_llrs`].
pub fn descramble_llrs_with(imp: DescrambleImpl, llrs: &mut [i16], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    let mut rest = llrs;
    while rest.len() >= 32 {
        let (head, tail) = rest.split_at_mut(32);
        let w = g.next_word();
        match imp {
            DescrambleImpl::ScalarWord => descramble_word_scalar(head, w),
            #[cfg(target_arch = "x86_64")]
            DescrambleImpl::Sse2 => unsafe { x86::descramble_word_sse2(head, w) },
            #[cfg(target_arch = "x86_64")]
            DescrambleImpl::Avx2 => unsafe { x86::descramble_word_avx2(head, w) },
            #[cfg(target_arch = "x86_64")]
            DescrambleImpl::Avx512bw => unsafe { x86::descramble_word_avx512(head, w) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => descramble_word_scalar(head, w),
        }
        rest = tail;
    }
    // shared scalar tail, identical to the bit-serial reference
    for l in rest.iter_mut() {
        if g.step() == 1 {
            *l = l.saturating_neg();
        }
    }
}

/// Descramble LLRs on the best tier this host offers.
pub fn descramble_llrs_fast(llrs: &mut [i16], c_init: u32) {
    descramble_llrs_with(best_descramble(), llrs, c_init);
}

/// One 32-LLR block, scalar sign-select from the mask word.
fn descramble_word_scalar(llrs: &mut [i16], w: u32) {
    for (k, l) in llrs.iter_mut().enumerate() {
        if (w >> k) & 1 == 1 {
            *l = l.saturating_neg();
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::BYTE_MASK;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller guarantees SSE2 and `llrs.len() == 32`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn descramble_word_sse2(llrs: &mut [i16], w: u32) {
        debug_assert_eq!(llrs.len(), 32);
        let zero = _mm_setzero_si128();
        for k in 0..4 {
            let p = llrs.as_mut_ptr().add(8 * k).cast::<__m128i>();
            let v = _mm_loadu_si128(p);
            // widen the 8 mask bits to 0x0000/0xFFFF 16-bit lanes:
            // LUT gives one 0x00/0xFF byte per bit, unpacklo(m, m)
            // duplicates each into a full lane.
            let m8 = _mm_set_epi64x(0, BYTE_MASK[((w >> (8 * k)) & 0xFF) as usize] as i64);
            let m = _mm_unpacklo_epi8(m8, m8);
            let neg = _mm_subs_epi16(zero, v); // saturating 0 − x
            let out = _mm_or_si128(_mm_and_si128(m, neg), _mm_andnot_si128(m, v));
            _mm_storeu_si128(p, out);
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 and `llrs.len() == 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn descramble_word_avx2(llrs: &mut [i16], w: u32) {
        debug_assert_eq!(llrs.len(), 32);
        let zero = _mm256_setzero_si256();
        for k in 0..2 {
            let p = llrs.as_mut_ptr().add(16 * k).cast::<__m256i>();
            let v = _mm256_loadu_si256(p);
            let half = (w >> (16 * k)) as u16;
            let m8 = _mm_set_epi64x(
                BYTE_MASK[(half >> 8) as usize] as i64,
                BYTE_MASK[(half & 0xFF) as usize] as i64,
            );
            // sign-extend 0x00/0xFF bytes to 0x0000/0xFFFF lanes
            let m = _mm256_cvtepi8_epi16(m8);
            let neg = _mm256_subs_epi16(zero, v); // saturating 0 − x
            let out = _mm256_blendv_epi8(v, neg, m);
            _mm256_storeu_si256(p, out);
        }
    }

    /// # Safety
    /// Caller guarantees AVX-512BW+F and `llrs.len() == 32`.
    #[target_feature(enable = "avx512bw", enable = "avx512f")]
    pub unsafe fn descramble_word_avx512(llrs: &mut [i16], w: u32) {
        debug_assert_eq!(llrs.len(), 32);
        let p = llrs.as_mut_ptr().cast::<__m512i>();
        let v = _mm512_loadu_si512(p.cast());
        // the Gold word is the lane mask: flipped lanes take the
        // saturating 0 − x, the rest pass through.
        let out = _mm512_mask_subs_epi16(v, w, _mm512_setzero_si512(), v);
        _mm512_storeu_si512(p.cast(), out);
    }
}

/// SIMD LLR descrambler over the `vran-simd` VM — the vectorized form
/// OAI uses (sign-flip by mask: `(x ⊕ m) − m` with `m ∈ {0, −1}` per
/// lane, where `m` comes from the precomputed Gold sequence). Eight
/// (or 16/32) LLRs per iteration on the vector ALU ports; this is one
/// of the real traced kernels behind the Figures 3/5 "Scrambling" bar.
///
/// Matches [`descramble_llrs`] except on `i16::MIN` inputs, where the
/// branchless form wraps to `i16::MIN` (as the real `pxor`/`psubw`
/// code does) while the scalar reference saturates — demappers never
/// emit `i16::MIN`, and the tests pin both behaviours. The *native*
/// tiers ([`descramble_llrs_with`]) instead use a saturating negate
/// select, so they have no such edge.
pub fn descramble_llrs_simd(
    vm: &mut vran_simd::Vm,
    llrs: vran_simd::MemRef,
    c_init: u32,
    width: vran_simd::RegWidth,
) {
    let mut g = GoldSequence::new(c_init);
    let masks: Vec<i16> = (0..llrs.len)
        .map(|_| if g.step() == 1 { -1 } else { 0 })
        .collect();
    let mask_region = vm.mem_mut().alloc_from(&masks);
    let mut off = 0;
    for &w in &[width, vran_simd::RegWidth::Sse128] {
        let l = w.lanes();
        let one = vm.splat(w, 1);
        while off + l <= llrs.len {
            let x = vm.load(w, llrs.slice(off, l));
            let m = vm.load(w, mask_region.slice(off, l));
            // sign-flip by mask: (x ⊕ m) − m; with m ∈ {0, −1} the
            // subtraction is an add of (m & 1).
            let flipped = vm.xor(x, m);
            let neg = vm.and(m, one);
            let out = vm.add_wrap(flipped, neg);
            vm.store(out, llrs.slice(off, l));
            off += l;
        }
    }
    // scalar tail
    for (i, &m) in masks.iter().enumerate().skip(off) {
        vm.scalar_map16(llrs.base + i, llrs.base + i, move |v| {
            (v ^ m).wrapping_sub(m)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use vran_util::rng::SmallRng;

    #[test]
    fn scramble_is_an_involution() {
        let orig = random_bits(499, 3);
        let mut b = orig.clone();
        scramble_bits(&mut b, 0x0001_2345);
        assert_ne!(b, orig, "scrambling must change the sequence");
        scramble_bits(&mut b, 0x0001_2345);
        assert_eq!(b, orig);
    }

    #[test]
    fn leap_warmup_matches_bit_serial_warmup() {
        let mut rng = SmallRng::seed_from_u64(0xD1CE);
        for _ in 0..64 {
            let c_init = (rng.next_u64() as u32) & 0x7FFF_FFFF;
            let fast = GoldSequence::new(c_init);
            let slow = GoldSequence::new_bit_serial(c_init);
            assert_eq!((fast.x1, fast.x2), (slow.x1, slow.x2), "c_init {c_init:#x}");
        }
        // degenerate seeds too
        for c_init in [0u32, 1, 0x7FFF_FFFF] {
            let fast = GoldSequence::new(c_init);
            let slow = GoldSequence::new_bit_serial(c_init);
            assert_eq!((fast.x1, fast.x2), (slow.x1, slow.x2));
        }
    }

    #[test]
    fn production_constructor_takes_zero_serial_warmup_steps() {
        let before = bit_serial_warmup_steps();
        for c_init in [7u32, 0x1234, 0x7FFF_FFFF] {
            let g = GoldSequence::new(c_init);
            let _ = g.clone().take(32);
            let mut s = g.clone();
            let _ = s.next_word();
        }
        assert_eq!(
            bit_serial_warmup_steps() - before,
            0,
            "leap-based construction must not step the warmup serially"
        );
        let _ = GoldSequence::new_bit_serial(5);
        assert_eq!(
            bit_serial_warmup_steps() - before,
            1600,
            "the reference constructor is the only serial-warmup user"
        );
    }

    #[test]
    fn word_generator_matches_bit_serial_stepping() {
        let mut rng = SmallRng::seed_from_u64(0x601D);
        for _ in 0..16 {
            let c_init = (rng.next_u64() as u32) & 0x7FFF_FFFF;
            let mut serial = GoldSequence::new(c_init);
            let mut word = GoldSequence::new(c_init);
            // long stream: 320 words = 10240 bits
            for i in 0..320 {
                let w = word.next_word();
                for k in 0..32 {
                    assert_eq!(
                        (w >> k) & 1,
                        serial.step() as u32,
                        "c_init {c_init:#x} word {i} bit {k}"
                    );
                }
            }
            // word/step interleave stays coherent
            assert_eq!(word.take(7), serial.take(7));
        }
    }

    #[test]
    fn word_scramble_matches_bit_serial_reference() {
        for (len, seed) in [
            (0usize, 1u64),
            (31, 2),
            (32, 3),
            (33, 4),
            (257, 5),
            (1440, 6),
        ] {
            let orig = random_bits(len, seed);
            let mut fast = orig.clone();
            let mut slow = orig.clone();
            scramble_bits(&mut fast, 0x00AB_CDEF);
            scramble_bits_serial(&mut slow, 0x00AB_CDEF);
            assert_eq!(fast, slow, "len {len}");
        }
    }

    #[test]
    fn native_descramble_tiers_match_scalar_reference() {
        let mut rng = SmallRng::seed_from_u64(0xDE5C);
        for len in [0usize, 5, 31, 32, 33, 64, 203, 1024, 2049] {
            let orig: Vec<i16> = (0..len).map(|_| rng.next_u64() as i16).collect();
            let c_init = (rng.next_u64() as u32) & 0x7FFF_FFFF;
            let mut expect = orig.clone();
            descramble_llrs(&mut expect, c_init);
            for imp in available_descramble() {
                let mut got = orig.clone();
                descramble_llrs_with(imp, &mut got, c_init);
                assert_eq!(got, expect, "{} len {len}", imp.name());
            }
        }
    }

    #[test]
    fn native_descramble_saturates_i16_min_like_the_reference() {
        // unlike the VM pxor/psubw form, every native tier uses a
        // saturating negate, so i16::MIN flips to i16::MAX exactly as
        // the scalar reference does.
        let orig = vec![i16::MIN; 96];
        let mut expect = orig.clone();
        descramble_llrs(&mut expect, 1);
        assert!(expect.contains(&i16::MAX), "some Gold bits must be 1");
        for imp in available_descramble() {
            let mut got = orig.clone();
            descramble_llrs_with(imp, &mut got, 1);
            assert_eq!(got, expect, "{}", imp.name());
        }
    }

    #[test]
    fn best_descramble_is_last_available() {
        let avail = available_descramble();
        assert_eq!(avail[0], DescrambleImpl::ScalarWord);
        assert_eq!(best_descramble(), *avail.last().unwrap());
    }

    #[test]
    fn different_cinit_different_sequence() {
        let a = GoldSequence::new(1).take(256);
        let b = GoldSequence::new(2).take(256);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_is_balanced() {
        let s = GoldSequence::new(0xABCDE).take(4096);
        let ones: usize = s.iter().map(|&b| b as usize).sum();
        assert!(
            (1850..2250).contains(&ones),
            "Gold sequence should be balanced: {ones}"
        );
    }

    #[test]
    fn sequence_has_low_serial_correlation() {
        let s = GoldSequence::new(0x5A5A5).take(4096);
        let agree = s.windows(2).filter(|w| w[0] == w[1]).count();
        // ~50% expected for a PN sequence
        assert!(
            (1800..2300).contains(&agree),
            "serial correlation too high: {agree}"
        );
    }

    #[test]
    fn descramble_matches_bit_scrambling() {
        let bits = random_bits(200, 8);
        let mut tx = bits.clone();
        scramble_bits(&mut tx, 777);
        // modulate scrambled bits to LLRs, descramble LLRs, hard-decide
        let mut llrs: Vec<i16> = tx
            .iter()
            .map(|&b| if b == 0 { 100 } else { -100 })
            .collect();
        descramble_llrs(&mut llrs, 777);
        let rx: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0)).collect();
        assert_eq!(rx, bits);
    }

    #[test]
    fn simd_descrambler_matches_scalar() {
        use vran_simd::{Mem, RegWidth, Vm};
        let n = 203; // forces a scalar tail at every width
        let orig: Vec<i16> = (0..n)
            .map(|i| ((i * 37 % 501) as i16 - 250).clamp(-2047, 2047))
            .collect();
        let c_init = 0x3_1337;
        let mut expect = orig.clone();
        descramble_llrs(&mut expect, c_init);
        for w in [RegWidth::Sse128, RegWidth::Avx256, RegWidth::Avx512] {
            let mut mem = Mem::new();
            let region = mem.alloc_from(&orig);
            let mut vm = Vm::native(mem);
            descramble_llrs_simd(&mut vm, region, c_init, w);
            assert_eq!(vm.mem().read(region), &expect[..], "{w}");
        }
    }

    #[test]
    fn simd_descrambler_trace_is_vector_alu_dominated() {
        use vran_simd::{Mem, OpClass, RegWidth, Vm};
        let orig: Vec<i16> = vec![100; 4096];
        let mut mem = Mem::new();
        let region = mem.alloc_from(&orig);
        let mut vm = Vm::tracing(mem);
        descramble_llrs_simd(&mut vm, region, 99, RegWidth::Sse128);
        let h = vm.trace().class_histogram();
        assert!(h.vec_alu > 0);
        // the kernel is streaming: loads+stores ≈ vec_alu (3 ALU ops
        // per 2 loads + 1 store), not movement-bound like the baseline
        // arrangement
        let t = vm.trace();
        assert!(t.ops.iter().any(|o| o.kind.class() == OpClass::VecAlu));
        assert_eq!(t.store_bytes(), 4096 * 2);
    }

    #[test]
    fn simd_descrambler_wrapping_edge_documented() {
        // The branchless form wraps i16::MIN (like real pxor/psubw);
        // the scalar reference saturates. Demappers never emit MIN.
        use vran_simd::{Mem, RegWidth, Vm};
        let orig = vec![i16::MIN; 8];
        let mut mem = Mem::new();
        let region = mem.alloc_from(&orig);
        let mut vm = Vm::native(mem);
        descramble_llrs_simd(&mut vm, region, 1, RegWidth::Sse128);
        let mut scalar = orig.clone();
        descramble_llrs(&mut scalar, 1);
        // wherever the Gold bit was 1: SIMD gives MIN (wrap), scalar MAX
        let simd = vm.mem().read(region);
        for (s, v) in scalar.iter().zip(simd) {
            if *s == i16::MAX {
                assert_eq!(*v, i16::MIN);
            } else {
                assert_eq!(*v, *s);
            }
        }
    }

    #[test]
    fn c_init_packing() {
        let c = GoldSequence::c_init_pxsch(0xFFFF, 1, 19, 503);
        assert_eq!(c & 0x1FF, 503 & 0x1FF);
        assert_eq!((c >> 13) & 1, 1);
        assert_eq!((c >> 9) & 0xF, 9); // floor(19/2)
    }
}
