//! TS 36.211 §7.2 pseudo-random (Gold) sequence and §6.3.1 scrambling.
//!
//! The length-31 Gold sequence `c(n) = x1(n+Nc) ⊕ x2(n+Nc)` with
//! `Nc = 1600`, `x1` seeded to `1`, and `x2` seeded from the scrambling
//! identity `c_init` (built from RNTI/cell id/slot per §6.3.1).

/// Offset into the m-sequences (spec constant).
const NC: usize = 1600;

/// Gold-sequence generator producing scrambling bits.
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

impl GoldSequence {
    /// Initialize from `c_init` and fast-forward past the `Nc` warmup.
    pub fn new(c_init: u32) -> Self {
        let mut g = Self {
            x1: 1,
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..NC {
            g.step();
        }
        g
    }

    /// The §6.3.1 PDSCH/PUSCH initialization value:
    /// `c_init = rnti·2¹⁴ + q·2¹³ + ⌊ns/2⌋·2⁹ + cell_id`.
    pub fn c_init_pxsch(rnti: u16, q: u8, ns: u8, cell_id: u16) -> u32 {
        ((rnti as u32) << 14)
            | ((q as u32 & 1) << 13)
            | (((ns as u32 / 2) & 0xF) << 9)
            | (cell_id as u32 & 0x1FF)
    }

    /// Advance both registers one step and return the output bit.
    fn step(&mut self) -> u8 {
        // x1: x1(n+31) = x1(n+3) ⊕ x1(n)
        let n1 = ((self.x1 >> 3) ^ self.x1) & 1;
        // x2: x2(n+31) = x2(n+3) ⊕ x2(n+2) ⊕ x2(n+1) ⊕ x2(n)
        let n2 = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        self.x1 = (self.x1 >> 1) | (n1 << 30);
        self.x2 = (self.x2 >> 1) | (n2 << 30);
        out
    }

    /// Produce the next `n` scrambling bits.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Scramble a bit sequence in place: `b̃(i) = b(i) ⊕ c(i)`.
pub fn scramble_bits(bits: &mut [u8], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for b in bits.iter_mut() {
        *b ^= g.step();
    }
}

/// Descramble soft values: flip LLR signs where the scrambling bit is 1
/// (XOR with bit 1 swaps the 0/1 hypotheses).
pub fn descramble_llrs(llrs: &mut [i16], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for l in llrs.iter_mut() {
        if g.step() == 1 {
            *l = l.saturating_neg();
        }
    }
}

/// SIMD LLR descrambler over the `vran-simd` VM — the vectorized form
/// OAI uses (sign-flip by mask: `(x ⊕ m) − m` with `m ∈ {0, −1}` per
/// lane, where `m` comes from the precomputed Gold sequence). Eight
/// (or 16/32) LLRs per iteration on the vector ALU ports; this is one
/// of the real traced kernels behind the Figures 3/5 "Scrambling" bar.
///
/// Matches [`descramble_llrs`] except on `i16::MIN` inputs, where the
/// branchless form wraps to `i16::MIN` (as the real `pxor`/`psubw`
/// code does) while the scalar reference saturates — demappers never
/// emit `i16::MIN`, and the tests pin both behaviours.
pub fn descramble_llrs_simd(
    vm: &mut vran_simd::Vm,
    llrs: vran_simd::MemRef,
    c_init: u32,
    width: vran_simd::RegWidth,
) {
    let mut g = GoldSequence::new(c_init);
    let masks: Vec<i16> = (0..llrs.len)
        .map(|_| if g.step() == 1 { -1 } else { 0 })
        .collect();
    let mask_region = vm.mem_mut().alloc_from(&masks);
    let mut off = 0;
    for &w in &[width, vran_simd::RegWidth::Sse128] {
        let l = w.lanes();
        let one = vm.splat(w, 1);
        while off + l <= llrs.len {
            let x = vm.load(w, llrs.slice(off, l));
            let m = vm.load(w, mask_region.slice(off, l));
            // sign-flip by mask: (x ⊕ m) − m; with m ∈ {0, −1} the
            // subtraction is an add of (m & 1).
            let flipped = vm.xor(x, m);
            let neg = vm.and(m, one);
            let out = vm.add_wrap(flipped, neg);
            vm.store(out, llrs.slice(off, l));
            off += l;
        }
    }
    // scalar tail
    for (i, &m) in masks.iter().enumerate().skip(off) {
        vm.scalar_map16(llrs.base + i, llrs.base + i, move |v| {
            (v ^ m).wrapping_sub(m)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn scramble_is_an_involution() {
        let orig = random_bits(499, 3);
        let mut b = orig.clone();
        scramble_bits(&mut b, 0x0001_2345);
        assert_ne!(b, orig, "scrambling must change the sequence");
        scramble_bits(&mut b, 0x0001_2345);
        assert_eq!(b, orig);
    }

    #[test]
    fn different_cinit_different_sequence() {
        let a = GoldSequence::new(1).take(256);
        let b = GoldSequence::new(2).take(256);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_is_balanced() {
        let s = GoldSequence::new(0xABCDE).take(4096);
        let ones: usize = s.iter().map(|&b| b as usize).sum();
        assert!(
            (1850..2250).contains(&ones),
            "Gold sequence should be balanced: {ones}"
        );
    }

    #[test]
    fn sequence_has_low_serial_correlation() {
        let s = GoldSequence::new(0x5A5A5).take(4096);
        let agree = s.windows(2).filter(|w| w[0] == w[1]).count();
        // ~50% expected for a PN sequence
        assert!(
            (1800..2300).contains(&agree),
            "serial correlation too high: {agree}"
        );
    }

    #[test]
    fn descramble_matches_bit_scrambling() {
        let bits = random_bits(200, 8);
        let mut tx = bits.clone();
        scramble_bits(&mut tx, 777);
        // modulate scrambled bits to LLRs, descramble LLRs, hard-decide
        let mut llrs: Vec<i16> = tx
            .iter()
            .map(|&b| if b == 0 { 100 } else { -100 })
            .collect();
        descramble_llrs(&mut llrs, 777);
        let rx: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0)).collect();
        assert_eq!(rx, bits);
    }

    #[test]
    fn simd_descrambler_matches_scalar() {
        use vran_simd::{Mem, RegWidth, Vm};
        let n = 203; // forces a scalar tail at every width
        let orig: Vec<i16> = (0..n)
            .map(|i| ((i * 37 % 501) as i16 - 250).clamp(-2047, 2047))
            .collect();
        let c_init = 0x3_1337;
        let mut expect = orig.clone();
        descramble_llrs(&mut expect, c_init);
        for w in [RegWidth::Sse128, RegWidth::Avx256, RegWidth::Avx512] {
            let mut mem = Mem::new();
            let region = mem.alloc_from(&orig);
            let mut vm = Vm::native(mem);
            descramble_llrs_simd(&mut vm, region, c_init, w);
            assert_eq!(vm.mem().read(region), &expect[..], "{w}");
        }
    }

    #[test]
    fn simd_descrambler_trace_is_vector_alu_dominated() {
        use vran_simd::{Mem, OpClass, RegWidth, Vm};
        let orig: Vec<i16> = vec![100; 4096];
        let mut mem = Mem::new();
        let region = mem.alloc_from(&orig);
        let mut vm = Vm::tracing(mem);
        descramble_llrs_simd(&mut vm, region, 99, RegWidth::Sse128);
        let h = vm.trace().class_histogram();
        assert!(h.vec_alu > 0);
        // the kernel is streaming: loads+stores ≈ vec_alu (3 ALU ops
        // per 2 loads + 1 store), not movement-bound like the baseline
        // arrangement
        let t = vm.trace();
        assert!(t.ops.iter().any(|o| o.kind.class() == OpClass::VecAlu));
        assert_eq!(t.store_bytes(), 4096 * 2);
    }

    #[test]
    fn simd_descrambler_wrapping_edge_documented() {
        // The branchless form wraps i16::MIN (like real pxor/psubw);
        // the scalar reference saturates. Demappers never emit MIN.
        use vran_simd::{Mem, RegWidth, Vm};
        let orig = vec![i16::MIN; 8];
        let mut mem = Mem::new();
        let region = mem.alloc_from(&orig);
        let mut vm = Vm::native(mem);
        descramble_llrs_simd(&mut vm, region, 1, RegWidth::Sse128);
        let mut scalar = orig.clone();
        descramble_llrs(&mut scalar, 1);
        // wherever the Gold bit was 1: SIMD gives MIN (wrap), scalar MAX
        let simd = vm.mem().read(region);
        for (s, v) in scalar.iter().zip(simd) {
            if *s == i16::MAX {
                assert_eq!(*v, i16::MIN);
            } else {
                assert_eq!(*v, *s);
            }
        }
    }

    #[test]
    fn c_init_packing() {
        let c = GoldSequence::c_init_pxsch(0xFFFF, 1, 19, 503);
        assert_eq!(c & 0x1FF, 503 & 0x1FF);
        assert_eq!((c >> 13) & 1, 1);
        assert_eq!((c >> 9) & 0xF, 9); // floor(19/2)
    }
}
