//! Native fixed-point max-log demappers.
//!
//! The Q-format ladder prototyped on the `vran-simd` VM
//! ([`crate::modulation_simd`]) promoted to real `std::arch` kernels,
//! plus the 64-QAM tier the VM never had, with the established
//! AVX-512BW → AVX2 → SSE2 → scalar runtime dispatch ([`DemapImpl`]).
//!
//! Every tier computes the same two stages in the same op order, so
//! the kernels are bit-exact with the scalar reference by
//! construction:
//!
//! 1. **Quantize** — each axis sample is scaled by one f32 factor
//!    (`gain / norm`, where `gain = round(LLR_SCALE · noise_scale)` is
//!    the per-packet LLR gain folded into the fixed-point grid) and
//!    converted with round-to-nearest-even (`vcvtps2dq` semantics,
//!    mirrored exactly by the scalar [`cvt_round_f32_i32`]), then
//!    saturated to i16.
//! 2. **Ladder** — the per-axis max-log LLRs come out of saturating
//!    i16 adds/subs/max (`paddsw`/`psubsw`/`pmaxsw`):
//!    QPSK `L0 = 2·q`; 16-QAM `L0 = 2·q`, `L1 = 2·(2G − |q|)`;
//!    64-QAM `L0 = q`, `L1 = 4G − |q|`, `L2 = ||q| − 4G| − 2G`.
//!    `|x|` is `max(x, 0 −ₛ x)` (saturating) at every tier, so even
//!    the `i16::MIN` corner matches.
//!
//! LLRs are written exactly in the order
//! [`crate::scrambler::descramble_llrs`] consumes: I/Q interleaved per
//! bit index, symbols in sequence.

use crate::llr::{adds16, max16, subs16, Llr};
use crate::modulation::{Cplx, Modulation, LLR_SCALE};
use vran_simd::host::{self, HostIsa};

/// Native demapper tiers, least to most capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemapImpl {
    /// Portable scalar mirror of the vector ladder — the dispatch
    /// floor and the exactness oracle.
    Scalar,
    /// 8 axis samples per iteration (two `cvtps2dq` + `packssdw`).
    Sse2,
    /// 16 axis samples per iteration (ymm ladder).
    Avx2,
    /// 32 axis samples per iteration (zmm ladder, `vpmovsdw` narrow,
    /// `vpermt2d` output interleave).
    Avx512bw,
}

impl DemapImpl {
    /// Stable label for metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            DemapImpl::Scalar => "scalar",
            DemapImpl::Sse2 => "sse2",
            DemapImpl::Avx2 => "avx2",
            DemapImpl::Avx512bw => "avx512bw",
        }
    }

    /// Minimum host ISA level this tier needs.
    pub fn required_isa(self) -> HostIsa {
        match self {
            DemapImpl::Scalar => HostIsa::Scalar,
            DemapImpl::Sse2 => HostIsa::Sse2,
            DemapImpl::Avx2 => HostIsa::Avx2,
            DemapImpl::Avx512bw => HostIsa::Avx512bw,
        }
    }

    /// All tiers, ascending.
    pub fn all() -> [DemapImpl; 4] {
        [
            DemapImpl::Scalar,
            DemapImpl::Sse2,
            DemapImpl::Avx2,
            DemapImpl::Avx512bw,
        ]
    }

    /// Axis samples consumed per vector iteration.
    fn group(self) -> usize {
        match self {
            DemapImpl::Scalar => usize::MAX, // all handled scalarly
            DemapImpl::Sse2 => 8,
            DemapImpl::Avx2 => 16,
            DemapImpl::Avx512bw => 32,
        }
    }
}

/// The demap tiers usable on this host (ceiling-aware), ascending.
pub fn available_demap() -> Vec<DemapImpl> {
    DemapImpl::all()
        .into_iter()
        .filter(|i| host::has(i.required_isa()))
        .collect()
}

/// The most capable demap tier on this host.
pub fn best_demap() -> DemapImpl {
    *available_demap()
        .last()
        .expect("scalar tier is always available")
}

/// The fixed-point LLR gain for a given `noise_scale`: the float
/// path's `LLR_SCALE · noise_scale` product rounded onto the integer
/// grid, clamped so `4·gain` still fits an i16 ladder constant.
pub fn fixed_gain(noise_scale: f32) -> i16 {
    (LLR_SCALE * noise_scale).round().clamp(1.0, 8191.0) as i16
}

/// Scalar mirror of `vcvtps2dq`: round to nearest even; NaN and
/// out-of-range inputs produce `i32::MIN` (the "integer indefinite").
#[inline]
fn cvt_round_f32_i32(t: f32) -> i32 {
    let r = t.round_ties_even();
    if !(-2_147_483_648.0..2_147_483_648.0).contains(&r) {
        // NaN also lands here: `contains` is false for NaN.
        i32::MIN
    } else {
        r as i32
    }
}

/// Scalar quantize: scale, round, saturate to i16 (`packssdw`).
#[inline]
fn quantize(v: f32, factor: f32) -> Llr {
    cvt_round_f32_i32(v * factor).clamp(-32768, 32767) as Llr
}

/// Saturating `|x|`: `max(x, 0 −ₛ x)` — the SSE2-compatible form every
/// tier uses (so `i16::MIN → i16::MAX`, unlike `pabsw`).
#[inline]
fn abs16(x: Llr) -> Llr {
    max16(x, subs16(0, x))
}

/// Demap `symbols` into interleaved per-bit LLRs (positive → bit 0)
/// with an explicit kernel tier. Identical output at every tier; the
/// result approximates the float [`Modulation::demodulate`] path with
/// the gain folded into the quantization grid.
pub fn demap_with(imp: DemapImpl, m: Modulation, symbols: &[Cplx], noise_scale: f32) -> Vec<Llr> {
    let mut out = Vec::new();
    demap_into(imp, m, symbols, noise_scale, &mut out);
    out
}

/// [`demap_with`] into a caller-owned buffer (cleared first) so hot
/// paths can reuse allocations.
pub fn demap_into(
    imp: DemapImpl,
    m: Modulation,
    symbols: &[Cplx],
    noise_scale: f32,
    out: &mut Vec<Llr>,
) {
    let gain = fixed_gain(noise_scale);
    let factor = gain as f32 / m.norm();
    let bps = m.bits_per_symbol();
    out.clear();
    out.resize(symbols.len() * bps, 0);
    // `Cplx` is `#[repr(C)] { re: f32, im: f32 }`, so the symbol slice
    // is an interleaved axis-sample stream.
    let vals: &[f32] =
        unsafe { std::slice::from_raw_parts(symbols.as_ptr().cast(), symbols.len() * 2) };
    let group = imp.group();
    let vec_n = if group == usize::MAX {
        0
    } else {
        vals.len() - vals.len() % group
    };
    match imp {
        DemapImpl::Scalar => {}
        #[cfg(target_arch = "x86_64")]
        DemapImpl::Sse2 => unsafe {
            x86::demap_sse2(m, &vals[..vec_n], factor, gain, out);
        },
        #[cfg(target_arch = "x86_64")]
        DemapImpl::Avx2 => unsafe {
            x86::demap_avx2(m, &vals[..vec_n], factor, gain, out);
        },
        #[cfg(target_arch = "x86_64")]
        DemapImpl::Avx512bw => unsafe {
            x86::demap_avx512(m, &vals[..vec_n], factor, gain, out);
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => {}
    }
    // shared scalar tail (the Scalar tier takes the whole input here)
    demap_scalar_range(m, vals, vec_n, factor, gain, out);
}

/// Scalar ladder over `vals[start..]`, writing LLRs at the matching
/// output offset. Same ops, same order as the vector tiers.
fn demap_scalar_range(
    m: Modulation,
    vals: &[f32],
    start: usize,
    factor: f32,
    gain: i16,
    out: &mut [Llr],
) {
    debug_assert_eq!(start % 2, 0);
    let g2 = adds16(gain, gain);
    let g4 = adds16(g2, g2);
    match m {
        Modulation::Qpsk => {
            for (j, &v) in vals.iter().enumerate().skip(start) {
                let q = quantize(v, factor);
                out[j] = adds16(q, q);
            }
        }
        Modulation::Qam16 => {
            for (j, &v) in vals.iter().enumerate().skip(start) {
                let q = quantize(v, factor);
                let (s, axis) = (j / 2, j % 2);
                out[4 * s + axis] = adds16(q, q);
                let d = subs16(g2, abs16(q));
                out[4 * s + 2 + axis] = adds16(d, d);
            }
        }
        Modulation::Qam64 => {
            for (j, &v) in vals.iter().enumerate().skip(start) {
                let q = quantize(v, factor);
                let (s, axis) = (j / 2, j % 2);
                out[6 * s + axis] = q;
                let a = abs16(q);
                out[6 * s + 2 + axis] = subs16(g4, a);
                out[6 * s + 4 + axis] = subs16(abs16(subs16(a, g4)), g2);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Modulation;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    // ---------------------------------------------------------- SSE2

    /// Quantize 8 axis samples: two f32 loads → scale → `cvtps2dq` →
    /// `packssdw` (order-preserving for consecutive registers).
    ///
    /// # Safety
    /// SSE2; `p` must be readable for 8 f32s.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn quantize8(p: *const f32, f: __m128) -> __m128i {
        let a = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(p), f));
        let b = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(p.add(4)), f));
        _mm_packs_epi32(a, b)
    }

    /// # Safety
    /// SSE2; `vals.len()` a multiple of 8; `out` sized for the
    /// modulation's LLR count.
    #[target_feature(enable = "sse2")]
    pub unsafe fn demap_sse2(m: Modulation, vals: &[f32], factor: f32, gain: i16, out: &mut [i16]) {
        let f = _mm_set1_ps(factor);
        let zero = _mm_setzero_si128();
        let g = _mm_set1_epi16(gain);
        let g2 = _mm_adds_epi16(g, g);
        let g4 = _mm_adds_epi16(g2, g2);
        let bps = m.bits_per_symbol();
        for (blk, chunk) in vals.chunks_exact(8).enumerate() {
            let q = quantize8(chunk.as_ptr(), f);
            let o = out.as_mut_ptr().add(blk * 4 * bps);
            match m {
                Modulation::Qpsk => {
                    _mm_storeu_si128(o.cast(), _mm_adds_epi16(q, q));
                }
                Modulation::Qam16 => {
                    let inner = _mm_adds_epi16(q, q);
                    let a = _mm_max_epi16(q, _mm_subs_epi16(zero, q));
                    let d = _mm_subs_epi16(g2, a);
                    let outer = _mm_adds_epi16(d, d);
                    // interleave I/Q pairs (32-bit units): symbol s →
                    // [inner_s, outer_s]
                    _mm_storeu_si128(o.cast(), _mm_unpacklo_epi32(inner, outer));
                    _mm_storeu_si128(o.add(8).cast(), _mm_unpackhi_epi32(inner, outer));
                }
                Modulation::Qam64 => {
                    let a = _mm_max_epi16(q, _mm_subs_epi16(zero, q));
                    let p1 = _mm_subs_epi16(g4, a);
                    let t = _mm_subs_epi16(a, g4);
                    let p2 = _mm_subs_epi16(_mm_max_epi16(t, _mm_subs_epi16(zero, t)), g2);
                    store_triplets_128(q, p1, p2, o);
                }
            }
        }
    }

    /// Scatter three 8-lane planes as per-symbol `[p0 p1 p2]` 32-bit
    /// triples (4 symbols per block).
    ///
    /// # Safety
    /// SSE2; `o` writable for 24 i16s.
    #[target_feature(enable = "sse2")]
    unsafe fn store_triplets_128(p0: __m128i, p1: __m128i, p2: __m128i, o: *mut i16) {
        let mut b0 = [0i16; 8];
        let mut b1 = [0i16; 8];
        let mut b2 = [0i16; 8];
        _mm_storeu_si128(b0.as_mut_ptr().cast(), p0);
        _mm_storeu_si128(b1.as_mut_ptr().cast(), p1);
        _mm_storeu_si128(b2.as_mut_ptr().cast(), p2);
        for s in 0..4 {
            *o.add(6 * s) = b0[2 * s];
            *o.add(6 * s + 1) = b0[2 * s + 1];
            *o.add(6 * s + 2) = b1[2 * s];
            *o.add(6 * s + 3) = b1[2 * s + 1];
            *o.add(6 * s + 4) = b2[2 * s];
            *o.add(6 * s + 5) = b2[2 * s + 1];
        }
    }

    // ---------------------------------------------------------- AVX2

    /// Quantize 16 axis samples into one ymm of i16, order-preserving
    /// (`packssdw` then a 64-bit permute to undo its lane split).
    ///
    /// # Safety
    /// AVX2; `p` must be readable for 16 f32s.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn quantize16(p: *const f32, f: __m256) -> __m256i {
        let a = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(p), f));
        let b = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(p.add(8)), f));
        _mm256_permute4x64_epi64(_mm256_packs_epi32(a, b), 0b11_01_10_00)
    }

    /// # Safety
    /// AVX2; `vals.len()` a multiple of 16; `out` sized accordingly.
    #[target_feature(enable = "avx2")]
    pub unsafe fn demap_avx2(m: Modulation, vals: &[f32], factor: f32, gain: i16, out: &mut [i16]) {
        let f = _mm256_set1_ps(factor);
        let zero = _mm256_setzero_si256();
        let g = _mm256_set1_epi16(gain);
        let g2 = _mm256_adds_epi16(g, g);
        let g4 = _mm256_adds_epi16(g2, g2);
        let bps = m.bits_per_symbol();
        for (blk, chunk) in vals.chunks_exact(16).enumerate() {
            let q = quantize16(chunk.as_ptr(), f);
            let o = out.as_mut_ptr().add(blk * 8 * bps);
            match m {
                Modulation::Qpsk => {
                    _mm256_storeu_si256(o.cast(), _mm256_adds_epi16(q, q));
                }
                Modulation::Qam16 => {
                    let inner = _mm256_adds_epi16(q, q);
                    let a = _mm256_max_epi16(q, _mm256_subs_epi16(zero, q));
                    let d = _mm256_subs_epi16(g2, a);
                    let outer = _mm256_adds_epi16(d, d);
                    // 32-bit interleave across the lane split
                    let lo = _mm256_unpacklo_epi32(inner, outer);
                    let hi = _mm256_unpackhi_epi32(inner, outer);
                    _mm256_storeu_si256(o.cast(), _mm256_permute2x128_si256(lo, hi, 0x20));
                    _mm256_storeu_si256(o.add(16).cast(), _mm256_permute2x128_si256(lo, hi, 0x31));
                }
                Modulation::Qam64 => {
                    let a = _mm256_max_epi16(q, _mm256_subs_epi16(zero, q));
                    let p1 = _mm256_subs_epi16(g4, a);
                    let t = _mm256_subs_epi16(a, g4);
                    let p2 = _mm256_subs_epi16(_mm256_max_epi16(t, _mm256_subs_epi16(zero, t)), g2);
                    store_triplets_256(q, p1, p2, o);
                }
            }
        }
    }

    /// Scatter three 16-lane planes as per-symbol `[p0 p1 p2]` 32-bit
    /// triples (8 symbols per block).
    ///
    /// # Safety
    /// AVX2; `o` writable for 48 i16s.
    #[target_feature(enable = "avx2")]
    unsafe fn store_triplets_256(p0: __m256i, p1: __m256i, p2: __m256i, o: *mut i16) {
        let mut b0 = [0i16; 16];
        let mut b1 = [0i16; 16];
        let mut b2 = [0i16; 16];
        _mm256_storeu_si256(b0.as_mut_ptr().cast(), p0);
        _mm256_storeu_si256(b1.as_mut_ptr().cast(), p1);
        _mm256_storeu_si256(b2.as_mut_ptr().cast(), p2);
        for s in 0..8 {
            *o.add(6 * s) = b0[2 * s];
            *o.add(6 * s + 1) = b0[2 * s + 1];
            *o.add(6 * s + 2) = b1[2 * s];
            *o.add(6 * s + 3) = b1[2 * s + 1];
            *o.add(6 * s + 4) = b2[2 * s];
            *o.add(6 * s + 5) = b2[2 * s + 1];
        }
    }

    // ------------------------------------------------------ AVX-512

    /// 16-QAM output interleave: 32-bit elements `[I0 O0 I1 O1 …]`.
    const QAM16_IDX_LO: [i32; 16] = [0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23];
    const QAM16_IDX_HI: [i32; 16] = [8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29, 14, 30, 15, 31];

    /// 64-QAM output interleave tables for output register `r`
    /// (`r ∈ 0..3`, covering 32-bit output elements `16r..16r+16`):
    /// element `j` holds plane `(16r + j) % 3` of symbol
    /// `(16r + j) / 3`. `idx_ab` gathers the P0/P1 slots from
    /// `P0 ‖ P1` via `vpermt2d`; `mask_c`/`idx_c` then overlay the P2
    /// slots via a masked `vpermd`.
    const fn qam64_idx_ab(r: usize) -> [i32; 16] {
        let mut idx = [0i32; 16];
        let mut j = 0;
        while j < 16 {
            let g = 16 * r + j;
            let (s, p) = (g / 3, g % 3);
            idx[j] = match p {
                0 => s as i32,
                1 => 16 + s as i32,
                _ => 0, // overwritten by the P2 overlay
            };
            j += 1;
        }
        idx
    }

    const fn qam64_idx_c(r: usize) -> [i32; 16] {
        let mut idx = [0i32; 16];
        let mut j = 0;
        while j < 16 {
            let g = 16 * r + j;
            idx[j] = (g / 3) as i32;
            j += 1;
        }
        idx
    }

    const fn qam64_mask_c(r: usize) -> u16 {
        let mut m = 0u16;
        let mut j = 0;
        while j < 16 {
            if (16 * r + j) % 3 == 2 {
                m |= 1 << j;
            }
            j += 1;
        }
        m
    }

    const QAM64_IDX_AB: [[i32; 16]; 3] = [qam64_idx_ab(0), qam64_idx_ab(1), qam64_idx_ab(2)];
    const QAM64_IDX_C: [[i32; 16]; 3] = [qam64_idx_c(0), qam64_idx_c(1), qam64_idx_c(2)];
    const QAM64_MASK_C: [u16; 3] = [qam64_mask_c(0), qam64_mask_c(1), qam64_mask_c(2)];

    /// Quantize 32 axis samples into one zmm of i16, order-preserving
    /// (two `vcvtps2dq` + saturating `vpmovsdw` narrows).
    ///
    /// # Safety
    /// AVX-512F/BW; `p` must be readable for 32 f32s.
    #[inline]
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    unsafe fn quantize32(p: *const f32, f: __m512) -> __m512i {
        let a = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(p), f));
        let b = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(p.add(16)), f));
        let lo = _mm512_cvtsepi32_epi16(a);
        let hi = _mm512_cvtsepi32_epi16(b);
        _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1)
    }

    /// # Safety
    /// AVX-512F/BW; `vals.len()` a multiple of 32; `out` sized
    /// accordingly.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn demap_avx512(
        m: Modulation,
        vals: &[f32],
        factor: f32,
        gain: i16,
        out: &mut [i16],
    ) {
        let f = _mm512_set1_ps(factor);
        let zero = _mm512_setzero_si512();
        let g = _mm512_set1_epi16(gain);
        let g2 = _mm512_adds_epi16(g, g);
        let g4 = _mm512_adds_epi16(g2, g2);
        let bps = m.bits_per_symbol();
        let q16_lo = _mm512_loadu_si512(QAM16_IDX_LO.as_ptr().cast());
        let q16_hi = _mm512_loadu_si512(QAM16_IDX_HI.as_ptr().cast());
        for (blk, chunk) in vals.chunks_exact(32).enumerate() {
            let q = quantize32(chunk.as_ptr(), f);
            let o = out.as_mut_ptr().add(blk * 16 * bps);
            match m {
                Modulation::Qpsk => {
                    _mm512_storeu_si512(o.cast(), _mm512_adds_epi16(q, q));
                }
                Modulation::Qam16 => {
                    let inner = _mm512_adds_epi16(q, q);
                    let a = _mm512_max_epi16(q, _mm512_subs_epi16(zero, q));
                    let d = _mm512_subs_epi16(g2, a);
                    let outer = _mm512_adds_epi16(d, d);
                    _mm512_storeu_si512(o.cast(), _mm512_permutex2var_epi32(inner, q16_lo, outer));
                    _mm512_storeu_si512(
                        o.add(32).cast(),
                        _mm512_permutex2var_epi32(inner, q16_hi, outer),
                    );
                }
                Modulation::Qam64 => {
                    let a = _mm512_max_epi16(q, _mm512_subs_epi16(zero, q));
                    let p1 = _mm512_subs_epi16(g4, a);
                    let t = _mm512_subs_epi16(a, g4);
                    let p2 = _mm512_subs_epi16(_mm512_max_epi16(t, _mm512_subs_epi16(zero, t)), g2);
                    for r in 0..3 {
                        let idx_ab = _mm512_loadu_si512(QAM64_IDX_AB[r].as_ptr().cast());
                        let idx_c = _mm512_loadu_si512(QAM64_IDX_C[r].as_ptr().cast());
                        let ab = _mm512_permutex2var_epi32(q, idx_ab, p1);
                        let full = _mm512_mask_permutexvar_epi32(ab, QAM64_MASK_C[r], idx_c, p2);
                        _mm512_storeu_si512(o.add(32 * r).cast(), full);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vran_util::rng::SmallRng;

    fn random_symbols(n: usize, seed: u64, span: f32) -> Vec<Cplx> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Cplx::new(
                    rng.gen_range_f32(-span, span),
                    rng.gen_range_f32(-span, span),
                )
            })
            .collect()
    }

    #[test]
    fn all_tiers_match_the_scalar_oracle() {
        for m in Modulation::ALL {
            // sizes straddle every vector group size plus ragged tails
            for n in [0usize, 1, 3, 4, 7, 8, 15, 16, 17, 33, 100, 1024] {
                let syms = random_symbols(n, 42 + n as u64, 2.5);
                for ns in [0.25f32, 1.0, 3.7, 16.0] {
                    let expect = demap_with(DemapImpl::Scalar, m, &syms, ns);
                    for imp in available_demap() {
                        assert_eq!(
                            demap_with(imp, m, &syms, ns),
                            expect,
                            "{} {} n={n} ns={ns}",
                            m.name(),
                            imp.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn extreme_inputs_stay_bit_exact() {
        // saturation corners: huge magnitudes, infinities, NaN, zero
        let specials = vec![
            Cplx::new(f32::INFINITY, -f32::INFINITY),
            Cplx::new(f32::NAN, 0.0),
            Cplx::new(1e30, -1e30),
            Cplx::new(40.0, -40.0),
            Cplx::new(-0.0, 0.0),
            Cplx::new(f32::MIN_POSITIVE, -f32::MIN_POSITIVE),
            Cplx::new(1e4, -1e4),
            Cplx::new(33000.0, -33000.0),
            Cplx::new(3.9, -3.9),
            Cplx::new(0.1, -0.1),
            Cplx::new(7.5, -7.5),
            Cplx::new(1.5, -1.5),
            Cplx::new(2.5, -2.5),
            Cplx::new(0.5, -0.5),
            Cplx::new(5.0, -5.0),
            Cplx::new(1.0, -1.0),
        ];
        for m in Modulation::ALL {
            for ns in [0.25f32, 16.0, 128.0, 1e9] {
                let expect = demap_with(DemapImpl::Scalar, m, &specials, ns);
                for imp in available_demap() {
                    assert_eq!(
                        demap_with(imp, m, &specials, ns),
                        expect,
                        "{} {} ns={ns}",
                        m.name(),
                        imp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn noiseless_demap_recovers_bits() {
        use crate::bits::random_bits;
        for m in Modulation::ALL {
            let bits = random_bits(m.bits_per_symbol() * 500, 9);
            let syms = m.modulate(&bits);
            for imp in available_demap() {
                let llrs = demap_with(imp, m, &syms, 1.0);
                assert_eq!(llrs.len(), bits.len());
                let rx: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0)).collect();
                assert_eq!(rx, bits, "{} {} demap mismatch", m.name(), imp.name());
            }
        }
    }

    #[test]
    fn fixed_point_tracks_the_float_reference() {
        // the fixed ladder lands within one quantization step of the
        // float demapper (gain folded, single rounding)
        for m in Modulation::ALL {
            let syms = random_symbols(400, 7, 1.8);
            for ns in [0.5f32, 1.0, 4.0] {
                let fixed = demap_with(DemapImpl::Scalar, m, &syms, ns);
                let float = m.demodulate(&syms, ns);
                let tol = (2.0 * ns).ceil() as i32 + 2;
                for (i, (a, b)) in fixed.iter().zip(&float).enumerate() {
                    assert!(
                        (*a as i32 - *b as i32).abs() <= tol,
                        "{} ns={ns} idx {i}: fixed {a} float {b}",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn llr_order_matches_descrambler_consumption() {
        // 16-QAM symbol: [inner_I, inner_Q, outer_I, outer_Q]; the
        // descrambler walks LLRs in this exact order.
        let syms = vec![Cplx::new(0.3162278, -0.9486833)]; // (1,-3)/√10
        let llrs = demap_with(DemapImpl::Scalar, Modulation::Qam16, &syms, 1.0);
        assert_eq!(llrs.len(), 4);
        assert!(llrs[0] > 0, "I sign bit: +1 axis → bit 0");
        assert!(llrs[1] < 0, "Q sign bit: −3 axis → bit 1");
        assert!(llrs[2] > 0, "I magnitude bit: |1| inner");
        assert!(llrs[3] < 0, "Q magnitude bit: |3| outer");
    }

    #[test]
    fn best_demap_is_last_available() {
        let avail = available_demap();
        assert_eq!(avail[0], DemapImpl::Scalar);
        assert_eq!(best_demap(), *avail.last().unwrap());
    }
}
