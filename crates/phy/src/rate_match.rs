//! TS 36.212 §5.1.4.1 rate matching for turbo-coded transport channels.
//!
//! Each of the three encoder output streams `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾` passes
//! through the 32-column sub-block interleaver; the results are
//! collected into the circular buffer `w` (systematic first, then the
//! two parities bit-interlaced) and `E` bits are read out starting at
//! the redundancy-version offset, skipping `<NULL>` padding.
//!
//! De-rate-matching inverts the readout into LLR space, *combining*
//! repeated positions by saturating addition (chase combining) and
//! leaving punctured positions at LLR 0.

use crate::llr::{adds16, Llr};

/// The spec's inter-column permutation pattern.
pub const COL_PERM: [usize; 32] = [
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30, 1, 17, 9, 25, 5, 21, 13, 29, 3, 19,
    11, 27, 7, 23, 15, 31,
];

const NCOLS: usize = 32;

/// Structural errors from the typed (non-panicking) rate-match API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMatchError {
    /// Redundancy version outside the spec's `0..4`.
    InvalidRv {
        /// The offending rv.
        rv: usize,
    },
    /// An encoder stream whose length differs from the matcher's `d`.
    WrongStreamLength {
        /// Configured per-stream length.
        expected: usize,
        /// Actual stream length.
        got: usize,
    },
}

impl std::fmt::Display for RateMatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RateMatchError::InvalidRv { rv } => {
                write!(f, "redundancy version {rv} outside 0..4")
            }
            RateMatchError::WrongStreamLength { expected, got } => {
                write!(f, "stream length {got} != configured d {expected}")
            }
        }
    }
}

impl std::error::Error for RateMatchError {}

/// Position map for one stream: `perm[i]` is the index into the padded
/// `R×32` matrix (row-major write order) read out at position `i`;
/// positions pointing into the pad are `usize::MAX`.
fn subblock_positions(d: usize, stream2: bool) -> Vec<usize> {
    let rows = d.div_ceil(NCOLS);
    let kp = rows * NCOLS;
    let nd = kp - d; // leading <NULL> count
    let mut out = Vec::with_capacity(kp);
    if !stream2 {
        // read column-wise in permuted column order
        for &c in COL_PERM.iter() {
            for r in 0..rows {
                let idx = r * NCOLS + c; // row-major position in padded matrix
                out.push(if idx < nd { usize::MAX } else { idx - nd });
            }
        }
    } else {
        // d⁽²⁾ uses the shifted formula π(k) = (P(⌊k/R⌋) + 32·(k mod R) + 1) mod Kp
        for k in 0..kp {
            let idx = (COL_PERM[k / rows] + NCOLS * (k % rows) + 1) % kp;
            out.push(if idx < nd { usize::MAX } else { idx - nd });
        }
    }
    out
}

/// The circular-buffer position map: `w[i]` gives the index into the
/// concatenated `[d0 | d1 | d2]` (each of length `d`) for circular
/// buffer position `i`, or `usize::MAX` for `<NULL>`.
fn circular_buffer_map(d: usize) -> Vec<usize> {
    let v0 = subblock_positions(d, false);
    let v1 = subblock_positions(d, false);
    let v2 = subblock_positions(d, true);
    let kp = v0.len();
    let mut w = Vec::with_capacity(3 * kp);
    for &p in &v0 {
        w.push(if p == usize::MAX { usize::MAX } else { p });
    }
    for j in 0..kp {
        // interlace v1, v2
        let p1 = v1[j];
        w.push(if p1 == usize::MAX { usize::MAX } else { d + p1 });
        let p2 = v2[j];
        w.push(if p2 == usize::MAX {
            usize::MAX
        } else {
            2 * d + p2
        });
    }
    w
}

/// Rate matcher for one code block.
#[derive(Debug, Clone)]
pub struct RateMatcher {
    d: usize,
    wmap: Vec<usize>,
    /// `wmap` retargeted at the triple-interleaved output layout:
    /// flat position `p` of `[d0|d1|d2]` becomes `3·(p mod d) + p/d`
    /// (hoisting the div/mod out of the per-LLR accumulation loop).
    wmap_inter: Vec<usize>,
}

impl RateMatcher {
    /// For per-stream length `d = K + 4`.
    pub fn new(d: usize) -> Self {
        let wmap = circular_buffer_map(d);
        let wmap_inter = wmap
            .iter()
            .map(|&p| {
                if p == usize::MAX {
                    usize::MAX
                } else {
                    3 * (p % d) + p / d
                }
            })
            .collect();
        Self {
            d,
            wmap,
            wmap_inter,
        }
    }

    /// Circular buffer length `Ncb = 3·Kp`.
    pub fn ncb(&self) -> usize {
        self.wmap.len()
    }

    /// Readout start offset `k0` for redundancy version `rv ∈ 0..4`.
    pub fn k0(&self, rv: usize) -> usize {
        self.try_k0(rv).expect("rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::k0`]: out-of-range redundancy
    /// versions are an `Err` instead of an assert.
    pub fn try_k0(&self, rv: usize) -> Result<usize, RateMatchError> {
        if rv >= 4 {
            return Err(RateMatchError::InvalidRv { rv });
        }
        let rows = self.d.div_ceil(NCOLS);
        Ok(rows * (2 * self.ncb().div_ceil(8 * rows) * rv + 2))
    }

    /// Select `e` output bits from the coded streams (bit domain).
    pub fn rate_match(&self, d: &[Vec<u8>; 3], e: usize, rv: usize) -> Vec<u8> {
        self.try_rate_match(d, e, rv)
            .expect("streams sized to d and rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::rate_match`]: validates stream
    /// lengths and the redundancy version.
    pub fn try_rate_match(
        &self,
        d: &[Vec<u8>; 3],
        e: usize,
        rv: usize,
    ) -> Result<Vec<u8>, RateMatchError> {
        if let Some(s) = d.iter().find(|s| s.len() != self.d) {
            return Err(RateMatchError::WrongStreamLength {
                expected: self.d,
                got: s.len(),
            });
        }
        let ncb = self.ncb();
        let flat: Vec<u8> = d.iter().flat_map(|s| s.iter().copied()).collect();
        let mut out = Vec::with_capacity(e);
        let mut k = self.try_k0(rv)?;
        while out.len() < e {
            let p = self.wmap[k % ncb];
            if p != usize::MAX {
                out.push(flat[p]);
            }
            k += 1;
        }
        Ok(out)
    }

    /// Invert the readout in LLR space: returns three LLR streams of
    /// length `d`, with repeats chase-combined and punctures at 0.
    pub fn de_rate_match(&self, llrs: &[Llr], rv: usize) -> [Vec<Llr>; 3] {
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        self.de_rate_match_into(llrs, rv, &mut out);
        out
    }

    /// Allocation-free variant of [`RateMatcher::de_rate_match`]:
    /// resizes each stream of `out` to length `d` (a no-op once the
    /// buffers have warmed up) and accumulates in place.
    pub fn de_rate_match_into(&self, llrs: &[Llr], rv: usize, out: &mut [Vec<Llr>; 3]) {
        self.try_de_rate_match_into(llrs, rv, out)
            .expect("rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::de_rate_match_into`]: an
    /// out-of-range redundancy version is an `Err` instead of an
    /// assert deep in the receive path.
    pub fn try_de_rate_match_into(
        &self,
        llrs: &[Llr],
        rv: usize,
        out: &mut [Vec<Llr>; 3],
    ) -> Result<(), RateMatchError> {
        let mut k = self.try_k0(rv)?;
        let d = self.d;
        for s in out.iter_mut() {
            s.resize(d, 0);
            s.fill(0);
        }
        let ncb = self.ncb();
        let mut consumed = 0;
        while consumed < llrs.len() {
            let p = self.wmap[k % ncb];
            if p != usize::MAX {
                let slot = &mut out[p / d][p % d];
                *slot = adds16(*slot, llrs[consumed]);
                consumed += 1;
            }
            k += 1;
        }
        Ok(())
    }

    /// Triple-interleaved variant of
    /// [`RateMatcher::try_de_rate_match_into`]: accumulates straight
    /// into a single `3d` buffer holding `[d⁽⁰⁾ⱼ d⁽¹⁾ⱼ d⁽²⁾ⱼ]` triples —
    /// the demapper-output cluster layout (paper Fig 8a) the fused
    /// APCM ingest kernels consume. Positions `3K..` carry the four
    /// tail triples, so [`crate::llr::TailLlrs::from_interleaved`]
    /// reads terminations from the same buffer. Chase combining and
    /// puncture-as-zero semantics are identical to the per-stream
    /// variant.
    pub fn try_de_rate_match_interleaved_into(
        &self,
        llrs: &[Llr],
        rv: usize,
        out: &mut Vec<Llr>,
    ) -> Result<(), RateMatchError> {
        let mut k = self.try_k0(rv)?;
        out.resize(3 * self.d, 0);
        out.fill(0);
        let ncb = self.ncb();
        let mut consumed = 0;
        while consumed < llrs.len() {
            let p = self.wmap_inter[k % ncb];
            if p != usize::MAX {
                let slot = &mut out[p];
                *slot = adds16(*slot, llrs[consumed]);
                consumed += 1;
            }
            k += 1;
        }
        Ok(())
    }
}

/// Largest per-stream length the packed matcher supports: the largest
/// turbo block `K = 6144` plus 4 tail bits (sizes its stack scratch).
const MAX_D: usize = 6148;
/// Rows of the sub-block interleaver matrix at [`MAX_D`].
const MAX_ROWS: usize = MAX_D.div_ceil(NCOLS);
/// Words per packed interleaver column at [`MAX_ROWS`].
const MAX_COLW: usize = MAX_ROWS.div_ceil(64);

/// Word-at-a-time rate matcher over packed bit streams — the transmit
/// fast path paired with
/// [`PackedTurboEncoder`](crate::turbo::PackedTurboEncoder).
///
/// The per-bit readout loop in [`RateMatcher::rate_match`] walks the
/// circular buffer one position at a time, testing every slot for
/// `<NULL>` — scalar-port work proportional to `Ncb`, re-done on every
/// wrap. This matcher hoists all of that out of the hot loop:
///
/// * `<NULL>` slots are pure padding, so the *compacted* circular
///   buffer has exactly `3d` bits. `k0_real` maps each redundancy
///   version's `k0` to its compacted offset, so the e-bit readout is
///   just a circular copy.
/// * [`Self::pack_circular_into`] builds the compacted buffer from
///   the packed d-streams with a 64×64 bit-matrix transpose (once per
///   code block) — see its doc for the layout argument.
/// * [`Self::try_rate_match_packed_into`] reads `e` bits out 64 at a
///   time with funnel shifts — mask/merge over packed words replacing
///   per-bit selection, including across wraps (repetition).
#[derive(Debug, Clone)]
pub struct PackedRateMatcher {
    d: usize,
    /// Transmittable (non-`<NULL>`) circular-buffer bits: always `3d`.
    n: usize,
    /// Compacted readout start for each redundancy version: how many
    /// real bits precede `k0(rv)` in the raw buffer.
    k0_real: [usize; 4],
}

impl PackedRateMatcher {
    /// For per-stream length `d = K + 4`.
    pub fn new(d: usize) -> Self {
        assert!(
            d <= MAX_D,
            "PackedRateMatcher supports turbo stream lengths only (d ≤ {MAX_D}, got {d})"
        );
        let wmap = circular_buffer_map(d);
        let n = wmap.iter().filter(|&&p| p != usize::MAX).count();
        debug_assert_eq!(n, 3 * d);
        let rows = d.div_ceil(NCOLS);
        let ncb = wmap.len();
        let k0_real = core::array::from_fn(|rv| {
            let k0 = rows * (2 * ncb.div_ceil(8 * rows) * rv + 2);
            wmap[..k0].iter().filter(|&&p| p != usize::MAX).count()
        });
        Self { d, n, k0_real }
    }

    /// Per-stream length `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of transmittable (non-`<NULL>`) bits in the circular
    /// buffer: always `3d`.
    pub fn n_real(&self) -> usize {
        self.n
    }

    /// Words each packed d-stream must span: `(d).div_ceil(64)`.
    pub fn stream_words(&self) -> usize {
        self.d.div_ceil(64)
    }

    /// Gather the compacted circular buffer from three packed
    /// d-streams (LSB-first, [`Self::stream_words`] words each) into
    /// `w`. Done once per code block; every subsequent readout is pure
    /// word copies.
    ///
    /// The sub-block interleaver reads columns of an `R × 32` bit
    /// matrix, so this never touches individual bits: each padded
    /// stream is bit-transposed 64 rows at a time (the classic
    /// XOR-swap halving network), after which every permuted column is
    /// `R` *contiguous* bits appended with funnel shifts, the `d⁽¹⁾`/
    /// `d⁽²⁾` interlace is a Morton bit-spread of two column words,
    /// and the `<NULL>` padding — confined to row 0 (plus `d⁽²⁾`'s
    /// single wrapped position) — is skipped by starting each column
    /// copy one bit in.
    pub fn pack_circular_into(
        &self,
        d_words: [&[u64]; 3],
        w: &mut Vec<u64>,
    ) -> Result<(), RateMatchError> {
        let need = self.stream_words();
        for s in d_words {
            if s.len() != need {
                return Err(RateMatchError::WrongStreamLength {
                    expected: need,
                    got: s.len(),
                });
            }
        }
        let d = self.d;
        let rows = d.div_ceil(NCOLS);
        let nd = rows * NCOLS - d; // leading <NULL> count, < 32
        let colw = rows.div_ceil(64);
        w.clear();
        w.reserve(self.n.div_ceil(64));

        // Transpose each padded stream into its 32 packed columns.
        let mut cols = [[0u64; NCOLS * MAX_COLW]; 3];
        for (s, colbuf) in d_words.iter().zip(cols.iter_mut()) {
            transpose_stream(s, rows, nd, colw, colbuf);
        }

        let mut dlen = 0usize;
        // v0: permuted columns of d⁽⁰⁾; columns c < nd carry their
        // <NULL> in row 0 — start those one bit in.
        for &c in COL_PERM.iter() {
            let col = &cols[0][c * colw..(c + 1) * colw];
            let skip = usize::from(c < nd);
            append_bits(w, &mut dlen, col, skip, rows - skip);
        }
        // Interlaced v1/v2: raw order alternates d⁽¹⁾ then d⁽²⁾ per
        // row, column-major in permuted order. v2 reads with a +1 bit
        // shift (π(k) = P(c) + 32r + 1 mod Kp): column P(c)+1, except
        // P(c) = 31 where the rows advance by one and the final
        // readout position wraps to raw bit 0.
        let mut tmp = [0u64; MAX_COLW];
        for &c in COL_PERM.iter() {
            let a_col = &cols[1][c * colw..(c + 1) * colw];
            let keep_a0 = c >= nd;
            let (b_col, keep_b0, len_b): (&[u64], bool, usize) = if c + 1 < NCOLS {
                (&cols[2][(c + 1) * colw..(c + 2) * colw], c + 1 >= nd, rows)
            } else {
                let col0 = &cols[2][..colw];
                for (i, t) in tmp[..colw].iter_mut().enumerate() {
                    *t = (col0[i] >> 1) | (col0.get(i + 1).copied().unwrap_or(0) << 63);
                }
                // The wrapped bit (raw position 0) is <NULL> unless the
                // matrix has no padding at all.
                let len_b = if nd == 0 {
                    let r = rows - 1;
                    tmp[r >> 6] |= (col0[0] & 1) << (r & 63);
                    rows
                } else {
                    rows - 1
                };
                (&tmp[..colw], true, len_b)
            };
            // Row 0, with its possible <NULL>s, then strict A/B
            // alternation from row 1 up.
            if keep_a0 {
                push_bits(w, &mut dlen, a_col[0] & 1, 1);
            }
            if keep_b0 {
                push_bits(w, &mut dlen, b_col[0] & 1, 1);
            }
            let m = (rows - 1) + (len_b - 1);
            let mut emitted = 0usize;
            let mut k32 = 0usize;
            while emitted < m {
                let x = read_bits_or_zero(a_col, 1 + 32 * k32, 32) as u32;
                let y = read_bits_or_zero(b_col, 1 + 32 * k32, 32) as u32;
                let mut word = spread_even(x) | (spread_even(y) << 1);
                let len = (m - emitted).min(64) as u32;
                if len < 64 {
                    word &= (1u64 << len) - 1;
                }
                push_bits(w, &mut dlen, word, len);
                emitted += len as usize;
                k32 += 1;
            }
        }
        debug_assert_eq!(dlen, self.n);
        debug_assert_eq!(w.len(), self.n.div_ceil(64));
        Ok(())
    }

    /// Read `e` bits from the compacted circular buffer `w` (built by
    /// [`Self::pack_circular_into`]) starting at redundancy version
    /// `rv`, 64 bits per step, into packed words in `out`.
    pub fn try_rate_match_packed_into(
        &self,
        w: &[u64],
        e: usize,
        rv: usize,
        out: &mut Vec<u64>,
    ) -> Result<(), RateMatchError> {
        if rv >= 4 {
            return Err(RateMatchError::InvalidRv { rv });
        }
        let n = self.n;
        if w.len() != n.div_ceil(64) {
            return Err(RateMatchError::WrongStreamLength {
                expected: n.div_ceil(64),
                got: w.len(),
            });
        }
        out.clear();
        out.reserve(e.div_ceil(64));
        // if every real bit precedes k0 the readout wraps immediately
        let mut q = self.k0_real[rv] % n;
        let mut produced = 0usize;
        while produced < e {
            let len = (e - produced).min(64) as u32;
            // n = 3d ≥ 132 > 64, so a word wraps at most once
            let head = ((n - q) as u32).min(len);
            let mut word = read_bits(w, q, head);
            if head < len {
                word |= read_bits(w, 0, len - head) << head;
            }
            out.push(word);
            produced += len as usize;
            q += len as usize;
            if q >= n {
                q -= n;
            }
        }
        Ok(())
    }

    /// One-shot packed rate match producing plain bits (tests,
    /// examples; the pipelines keep the buffers across blocks).
    pub fn rate_match_packed(&self, d_words: [&[u64]; 3], e: usize, rv: usize) -> Vec<u8> {
        let mut w = Vec::new();
        let mut out = Vec::new();
        self.pack_circular_into(d_words, &mut w)
            .expect("streams sized to d");
        self.try_rate_match_packed_into(&w, e, rv, &mut out)
            .expect("rv in 0..4");
        crate::bits::unpack_lsb_words(&out, e)
    }
}

/// Bits `q .. q+len` (LSB-first, `1 ≤ len ≤ 64`, in-range) of a packed
/// word buffer, as the low bits of a `u64`.
#[inline]
fn read_bits(w: &[u64], q: usize, len: u32) -> u64 {
    let idx = q >> 6;
    let sh = (q & 63) as u32;
    let mut v = w[idx] >> sh;
    if sh != 0 && len > 64 - sh {
        v |= w[idx + 1] << (64 - sh);
    }
    if len < 64 {
        v &= (1u64 << len) - 1;
    }
    v
}

/// [`read_bits`] tolerating out-of-range positions, which read as 0.
#[inline]
fn read_bits_or_zero(w: &[u64], q: usize, len: u32) -> u64 {
    let idx = q >> 6;
    let sh = (q & 63) as u32;
    let mut v = w.get(idx).copied().unwrap_or(0) >> sh;
    if sh != 0 && len > 64 - sh {
        v |= w.get(idx + 1).copied().unwrap_or(0) << (64 - sh);
    }
    if len < 64 {
        v &= (1u64 << len) - 1;
    }
    v
}

/// Append the low `len` bits of `word` (already masked, `1 ≤ len ≤
/// 64`) to a growing packed bit buffer of current length `*dlen`.
#[inline]
fn push_bits(dst: &mut Vec<u64>, dlen: &mut usize, word: u64, len: u32) {
    debug_assert!(len >= 1 && (len == 64 || word >> len == 0));
    let sh = (*dlen & 63) as u32;
    if sh == 0 {
        dst.push(word);
    } else {
        *dst.last_mut().expect("bit cursor mid-word") |= word << sh;
        if len > 64 - sh {
            dst.push(word >> (64 - sh));
        }
    }
    *dlen += len as usize;
}

/// Append `n` bits of `src` starting at bit `start`, 64 at a time.
#[inline]
fn append_bits(dst: &mut Vec<u64>, dlen: &mut usize, src: &[u64], start: usize, n: usize) {
    let mut done = 0;
    while done < n {
        let len = (n - done).min(64) as u32;
        push_bits(dst, dlen, read_bits_or_zero(src, start + done, len), len);
        done += len as usize;
    }
}

/// Spread the 32 bits of `x` to the even bit positions of a `u64`
/// (bit `i` → bit `2i`): one half of a Morton interleave.
#[inline]
fn spread_even(x: u32) -> u64 {
    let mut v = x as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// In-place 64×64 bit-matrix transpose (LSB-first rows): after the
/// call, `a[c]` bit `r` equals the old `a[r]` bit `c`. The standard
/// recursive block-swap network — log₂ 64 rounds of masked XOR swaps.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32u32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            if k & j as usize == 0 {
                let t = ((a[k] >> j) ^ a[k + j as usize]) & m;
                a[k] ^= t << j;
                a[k + j as usize] ^= t;
            }
            k += 1;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// [`transpose64`] with the matrix held in eight zmm registers: the
/// three wide rounds (row distance 32/16/8) become plain vector XOR
/// swaps between register pairs, and the three narrow rounds (4/2/1)
/// swap qword lanes in-register via `vpermq` plus lane-masked XORs.
/// Same swap network, same order — bit-exact with the scalar walk.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn transpose64_avx512(a: &mut [u64; 64]) {
    use core::arch::x86_64::*;
    let p = a.as_mut_ptr();
    let mut v: [__m512i; 8] = core::array::from_fn(|i| _mm512_loadu_si512(p.add(8 * i).cast()));
    // Rows k and k+j live 8j qwords apart — in different registers.
    macro_rules! wide {
        ($j:literal, $m:expr) => {
            let m = _mm512_set1_epi64($m);
            let d = $j / 8;
            for i in 0..8 {
                if i & d == 0 {
                    let t = _mm512_and_si512(
                        _mm512_xor_si512(_mm512_srli_epi64::<$j>(v[i]), v[i + d]),
                        m,
                    );
                    v[i] = _mm512_xor_si512(v[i], _mm512_slli_epi64::<$j>(t));
                    v[i + d] = _mm512_xor_si512(v[i + d], t);
                }
            }
        };
    }
    wide!(32, 0x0000_0000_FFFF_FFFFu64 as i64);
    wide!(16, 0x0000_FFFF_0000_FFFFu64 as i64);
    wide!(8, 0x00FF_00FF_00FF_00FFu64 as i64);
    // Rows k and k+j share a register: partner lane is l ^ j, the
    // low-lane (k & j == 0) and high-lane halves get their respective
    // sides of the swap via lane-masked XORs.
    macro_rules! narrow {
        ($j:literal, $m:expr, $lo:literal) => {
            let m = _mm512_set1_epi64($m);
            let idx = _mm512_xor_si512(
                _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0),
                _mm512_set1_epi64($j),
            );
            for r in v.iter_mut() {
                let w = _mm512_permutexvar_epi64(idx, *r);
                let tl = _mm512_and_si512(_mm512_xor_si512(_mm512_srli_epi64::<$j>(*r), w), m);
                let th = _mm512_and_si512(_mm512_xor_si512(_mm512_srli_epi64::<$j>(w), *r), m);
                *r = _mm512_mask_xor_epi64(*r, $lo, *r, _mm512_slli_epi64::<$j>(tl));
                *r = _mm512_mask_xor_epi64(*r, !$lo, *r, th);
            }
        };
    }
    narrow!(4, 0x0F0F_0F0F_0F0F_0F0Fu64 as i64, 0x0Fu8);
    narrow!(2, 0x3333_3333_3333_3333u64 as i64, 0x33u8);
    narrow!(1, 0x5555_5555_5555_5555u64 as i64, 0x55u8);
    for (i, r) in v.into_iter().enumerate() {
        _mm512_storeu_si512(p.add(8 * i).cast(), r);
    }
}

/// Runtime-dispatched transpose: the zmm network where the host (and
/// test ceiling) allow AVX-512, the scalar swap network elsewhere.
#[inline]
fn transpose64_dispatch(a: &mut [u64; 64]) {
    #[cfg(target_arch = "x86_64")]
    if vran_simd::host::has(vran_simd::host::HostIsa::Avx512bw) {
        // SAFETY: `has` verified avx512f+avx512bw on this CPU.
        unsafe { transpose64_avx512(a) };
        return;
    }
    transpose64(a);
}

/// Bit-transpose one packed d-stream into its 32 sub-block interleaver
/// columns: `out[c·colw + b]` holds rows `64b..64b+63` of column `c`,
/// where column `c` bit `r` is padded-stream bit `32r + c` and the
/// padded stream is `nd` zeros followed by the `d` data bits.
fn transpose_stream(s: &[u64], rows: usize, nd: usize, colw: usize, out: &mut [u64]) {
    let row_bits = |r: usize| -> u64 {
        let start = 32 * r;
        if start >= nd {
            read_bits_or_zero(s, start - nd, 32)
        } else {
            // row 0 with padding: nd < 32 data-shifted zeros in front
            read_bits_or_zero(s, 0, (32 - nd) as u32) << nd
        }
    };
    let mut a = [0u64; 64];
    for b in 0..rows.div_ceil(64) {
        for (j, aj) in a.iter_mut().enumerate() {
            let r = 64 * b + j;
            *aj = if r < rows { row_bits(r) } else { 0 };
        }
        transpose64_dispatch(&mut a);
        for c in 0..NCOLS {
            out[c * colw + b] = a[c];
        }
    }
}

/// TS 36.212 §5.1.4.2 rate matching for *convolutionally* coded
/// channels (PDCCH/DCI, PBCH): same 32-column sub-block interleaver
/// with a different column permutation, sequential (not interlaced)
/// bit collection, and readout always from position 0 (no redundancy
/// versions on control channels).
pub mod conv {
    use super::NCOLS;
    use crate::llr::{adds16, Llr};

    /// The §5.1.4.2 inter-column permutation.
    pub const COL_PERM_CC: [usize; 32] = [
        1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31, 0, 16, 8, 24, 4, 20, 12, 28, 2,
        18, 10, 26, 6, 22, 14, 30,
    ];

    fn positions(d: usize) -> Vec<usize> {
        let rows = d.div_ceil(NCOLS);
        let kp = rows * NCOLS;
        let nd = kp - d;
        let mut out = Vec::with_capacity(kp);
        for &c in COL_PERM_CC.iter() {
            for r in 0..rows {
                let idx = r * NCOLS + c;
                out.push(if idx < nd { usize::MAX } else { idx - nd });
            }
        }
        out
    }

    /// Convolutional-channel rate matcher for per-stream length `d`.
    #[derive(Debug, Clone)]
    pub struct ConvRateMatcher {
        d: usize,
        wmap: Vec<usize>, // circular buffer → flat [d0|d1|d2] index
    }

    impl ConvRateMatcher {
        /// New matcher for streams of `d` bits each.
        pub fn new(d: usize) -> Self {
            let pos = positions(d);
            let kp = pos.len();
            let mut wmap = Vec::with_capacity(3 * kp);
            for stream in 0..3 {
                for &p in &pos {
                    wmap.push(if p == usize::MAX {
                        usize::MAX
                    } else {
                        stream * d + p
                    });
                }
            }
            Self { d, wmap }
        }

        /// Select `e` coded bits.
        pub fn rate_match(&self, d: &[Vec<u8>; 3], e: usize) -> Vec<u8> {
            assert!(d.iter().all(|s| s.len() == self.d));
            let flat: Vec<u8> = d.iter().flat_map(|s| s.iter().copied()).collect();
            let ncb = self.wmap.len();
            let mut out = Vec::with_capacity(e);
            let mut k = 0usize;
            while out.len() < e {
                let p = self.wmap[k % ncb];
                if p != usize::MAX {
                    out.push(flat[p]);
                }
                k += 1;
            }
            out
        }

        /// Invert into LLR space with chase combining of repeats.
        pub fn de_rate_match(&self, llrs: &[Llr]) -> [Vec<Llr>; 3] {
            let ncb = self.wmap.len();
            let mut acc = vec![0 as Llr; 3 * self.d];
            let mut k = 0usize;
            let mut used = 0;
            while used < llrs.len() {
                let p = self.wmap[k % ncb];
                if p != usize::MAX {
                    acc[p] = adds16(acc[p], llrs[used]);
                    used += 1;
                }
                k += 1;
            }
            let d = self.d;
            [
                acc[..d].to_vec(),
                acc[d..2 * d].to_vec(),
                acc[2 * d..].to_vec(),
            ]
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::bits::random_bits;

        #[test]
        fn cc_permutation_is_a_permutation_of_columns() {
            let mut seen = [false; 32];
            for &c in &COL_PERM_CC {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }

        #[test]
        fn full_readout_covers_every_bit_once() {
            let d = 66; // 22-bit DCI × 3
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 1), random_bits(d, 2), random_bits(d, 3)];
            let out = rm.rate_match(&streams, 3 * d);
            let mut ones_in = 0;
            for s in &streams {
                ones_in += s.iter().filter(|&&b| b == 1).count();
            }
            assert_eq!(out.iter().filter(|&&b| b == 1).count(), ones_in);
        }

        #[test]
        fn repetition_combines() {
            let d = 66;
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 4), random_bits(d, 5), random_bits(d, 6)];
            let tx = rm.rate_match(&streams, 6 * d); // 2× repetition
            let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 40 } else { -40 }).collect();
            let rx = rm.de_rate_match(&llrs);
            for (s, got) in streams.iter().zip(&rx) {
                for (i, (&b, &l)) in s.iter().zip(got).enumerate() {
                    assert_eq!(l.abs(), 80, "position {i} combined twice");
                    assert_eq!(u8::from(l < 0), b);
                }
            }
        }

        #[test]
        fn puncturing_leaves_zero_llrs() {
            let d = 66;
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 7), random_bits(d, 8), random_bits(d, 9)];
            let e = 100; // < 198
            let tx = rm.rate_match(&streams, e);
            let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 40 } else { -40 }).collect();
            let rx = rm.de_rate_match(&llrs);
            let filled: usize = rx
                .iter()
                .flat_map(|s| s.iter())
                .filter(|&&l| l != 0)
                .count();
            assert_eq!(filled, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    fn dstreams(d: usize, seed: u64) -> [Vec<u8>; 3] {
        [
            random_bits(d, seed),
            random_bits(d, seed + 1),
            random_bits(d, seed + 2),
        ]
    }

    #[test]
    fn transpose_is_an_involution_and_matches_reference() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rnd = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..16 {
            let a: [u64; 64] = core::array::from_fn(|_| rnd());
            // Element-wise reference: out[c] bit r = in[r] bit c.
            let reference: [u64; 64] = core::array::from_fn(|c| {
                (0..64).fold(0u64, |acc, r| acc | (((a[r] >> c) & 1) << r))
            });
            let mut scalar = a;
            transpose64(&mut scalar);
            assert_eq!(scalar, reference);
            let mut dispatched = a;
            transpose64_dispatch(&mut dispatched);
            assert_eq!(
                dispatched, reference,
                "dispatched transpose diverged from the bit-level reference"
            );
            transpose64_dispatch(&mut dispatched);
            assert_eq!(dispatched, a, "transpose must be an involution");
        }
    }

    #[test]
    fn subblock_positions_are_a_permutation() {
        for d in [44usize, 108, 6148] {
            for stream2 in [false, true] {
                let pos = subblock_positions(d, stream2);
                let kp = d.div_ceil(32) * 32;
                assert_eq!(pos.len(), kp);
                let nulls = pos.iter().filter(|&&p| p == usize::MAX).count();
                assert_eq!(nulls, kp - d);
                let mut seen = vec![false; d];
                for &p in pos.iter().filter(|&&p| p != usize::MAX) {
                    assert!(!seen[p], "duplicate position {p}");
                    seen[p] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "d={d} stream2={stream2} missing positions"
                );
            }
        }
    }

    #[test]
    fn full_buffer_readout_covers_every_bit() {
        let d = 44;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 5);
        // Read exactly the number of real (non-null) bits from rv=0:
        let out = rm.rate_match(&streams, 3 * d, 0);
        assert_eq!(out.len(), 3 * d);
        // All coded bits appear (as a multiset) since e = #real bits
        // and the buffer wraps exactly once across nulls.
        let mut count_in = [0usize; 2];
        for s in &streams {
            for &b in s {
                count_in[b as usize] += 1;
            }
        }
        let mut count_out = [0usize; 2];
        for &b in &out {
            count_out[b as usize] += 1;
        }
        assert_eq!(count_in, count_out);
    }

    #[test]
    fn de_rate_match_inverts_puncturing() {
        // e < total: punctured positions come back as 0-LLRs; surviving
        // positions carry the right sign.
        let d = 108;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 9);
        let e = 200; // < 324
        let tx = rm.rate_match(&streams, e, 0);
        let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 80 } else { -80 }).collect();
        let rx = rm.de_rate_match(&llrs, 0);
        let flat_in: Vec<u8> = streams.iter().flat_map(|s| s.iter().copied()).collect();
        let flat_out: Vec<Llr> = rx.iter().flat_map(|s| s.iter().copied()).collect();
        let mut seen_nonzero = 0;
        for (i, &l) in flat_out.iter().enumerate() {
            if l != 0 {
                seen_nonzero += 1;
                assert_eq!(u8::from(l < 0), flat_in[i], "sign mismatch at {i}");
            }
        }
        assert_eq!(seen_nonzero, e, "exactly e positions must be filled");
    }

    #[test]
    fn repetition_combines_llrs() {
        // e > total real bits: wrapped positions accumulate.
        let d = 44;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 3);
        let e = 3 * d * 2; // every bit transmitted exactly twice
        let tx = rm.rate_match(&streams, e, 0);
        let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 50 } else { -50 }).collect();
        let rx = rm.de_rate_match(&llrs, 0);
        for s in &rx {
            for &l in s {
                assert_eq!(l.abs(), 100, "each position combined twice: {l}");
            }
        }
    }

    #[test]
    fn interleaved_de_rate_match_matches_per_stream_variant() {
        // The fused-ingest input layout must be a pure re-indexing of
        // the per-stream de-rate-match: identical chase combining,
        // identical punctures, and the tails readable in place.
        use crate::llr::TailLlrs;
        for d in [44usize, 108, 2052] {
            let rm = RateMatcher::new(d);
            let streams = dstreams(d, d as u64 + 13);
            for rv in 0..4 {
                for e in [100usize, 3 * d, 3 * d * 2 + 7] {
                    let tx = rm.rate_match(&streams, e, rv);
                    let llrs: Vec<Llr> =
                        tx.iter().map(|&b| if b == 0 { 60 } else { -60 }).collect();
                    let mut per_stream = [Vec::new(), Vec::new(), Vec::new()];
                    rm.try_de_rate_match_into(&llrs, rv, &mut per_stream)
                        .unwrap();
                    let mut inter = Vec::new();
                    rm.try_de_rate_match_interleaved_into(&llrs, rv, &mut inter)
                        .unwrap();
                    assert_eq!(inter.len(), 3 * d);
                    for j in 0..d {
                        for s in 0..3 {
                            assert_eq!(
                                inter[3 * j + s],
                                per_stream[s][j],
                                "d={d} rv={rv} e={e} stream {s} pos {j}"
                            );
                        }
                    }
                    let k = d - 4;
                    assert_eq!(
                        TailLlrs::from_interleaved(&inter, k),
                        TailLlrs::from_dstreams(&per_stream, k),
                        "d={d} rv={rv} e={e} tails"
                    );
                }
            }
        }
    }

    #[test]
    fn interleaved_de_rate_match_rejects_bad_rv() {
        let rm = RateMatcher::new(44);
        let mut out = Vec::new();
        assert!(rm
            .try_de_rate_match_interleaved_into(&[0; 16], 4, &mut out)
            .is_err());
    }

    #[test]
    fn redundancy_versions_start_at_different_offsets() {
        let rm = RateMatcher::new(108);
        let k0s: Vec<usize> = (0..4).map(|rv| rm.k0(rv)).collect();
        for w in k0s.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(k0s[3] < rm.ncb(), "k0 must stay within the buffer");
    }

    #[test]
    fn try_api_rejects_bad_rv_and_stream_lengths() {
        let d = 44;
        let rm = RateMatcher::new(d);
        assert_eq!(rm.try_k0(4), Err(RateMatchError::InvalidRv { rv: 4 }));
        assert_eq!(
            rm.try_k0(usize::MAX),
            Err(RateMatchError::InvalidRv { rv: usize::MAX })
        );
        let streams = dstreams(d, 2);
        assert!(rm.try_rate_match(&streams, 100, 7).is_err());
        let short = [vec![0u8; d - 1], vec![0u8; d], vec![0u8; d]];
        assert!(matches!(
            rm.try_rate_match(&short, 100, 0),
            Err(RateMatchError::WrongStreamLength { got, .. }) if got == d - 1
        ));
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        assert!(rm.try_de_rate_match_into(&[0; 16], 9, &mut out).is_err());
        // Valid inputs still work through the try_ path.
        let tx = rm.try_rate_match(&streams, 100, 0).unwrap();
        assert_eq!(tx, rm.rate_match(&streams, 100, 0));
    }

    #[test]
    fn different_rv_different_output() {
        let d = 108;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 1);
        let a = rm.rate_match(&streams, 150, 0);
        let b = rm.rate_match(&streams, 150, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn packed_matcher_matches_scalar_readout() {
        use crate::bits::packed_lsb_words;
        // puncturing, exact coverage, repetition with multiple wraps —
        // at sub-word, word-boundary and multi-word stream lengths
        for d in [44usize, 64, 108, 2052, 6148] {
            let streams = dstreams(d, d as u64);
            let words = streams.clone().map(|s| packed_lsb_words(&s));
            let scalar = RateMatcher::new(d);
            let packed = PackedRateMatcher::new(d);
            assert_eq!(packed.n_real(), 3 * d);
            for rv in 0..4 {
                for e in [1usize, 63, 64, 65, d, 3 * d, 3 * d + 17, 7 * d] {
                    let want = scalar.rate_match(&streams, e, rv);
                    let got = packed.rate_match_packed([&words[0], &words[1], &words[2]], e, rv);
                    assert_eq!(got, want, "d={d} e={e} rv={rv}");
                }
            }
        }
    }

    #[test]
    fn packed_matcher_rejects_bad_rv_and_stream_lengths() {
        use crate::bits::packed_lsb_words;
        let d = 44;
        let packed = PackedRateMatcher::new(d);
        let words = dstreams(d, 2).map(|s| packed_lsb_words(&s));
        let short = vec![0u64; packed.stream_words() - 1];
        let mut w = Vec::new();
        assert!(matches!(
            packed.pack_circular_into([&short, &words[1], &words[2]], &mut w),
            Err(RateMatchError::WrongStreamLength { .. })
        ));
        packed
            .pack_circular_into([&words[0], &words[1], &words[2]], &mut w)
            .unwrap();
        let mut out = Vec::new();
        assert_eq!(
            packed.try_rate_match_packed_into(&w, 100, 4, &mut out),
            Err(RateMatchError::InvalidRv { rv: 4 })
        );
        assert!(matches!(
            packed.try_rate_match_packed_into(&w[..1], 100, 0, &mut out),
            Err(RateMatchError::WrongStreamLength { .. })
        ));
    }

    #[test]
    fn packed_matcher_from_packed_encoder_streams() {
        // end-to-end transmit fast path: packed encoder d-streams feed
        // the packed matcher, output equals the all-scalar chain
        use crate::turbo::{EncodeScratch, PackedTurboEncoder, TurboEncoder};
        let k = 1504;
        let bits = crate::bits::random_bits(k, 77);
        let scalar_d = TurboEncoder::new(k).encode(&bits).to_dstreams();
        let enc = PackedTurboEncoder::new(k);
        let mut scratch = EncodeScratch::new();
        enc.encode_dstreams_into(&bits, &mut scratch);
        let scalar_rm = RateMatcher::new(k + 4);
        let packed_rm = PackedRateMatcher::new(k + 4);
        for (e, rv) in [(3008, 0), (1800, 2), (9100, 3)] {
            assert_eq!(
                packed_rm.rate_match_packed(scratch.dstream_words(), e, rv),
                scalar_rm.rate_match(&scalar_d, e, rv),
                "e={e} rv={rv}"
            );
        }
    }
}
