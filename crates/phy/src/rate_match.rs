//! TS 36.212 §5.1.4.1 rate matching for turbo-coded transport channels.
//!
//! Each of the three encoder output streams `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾` passes
//! through the 32-column sub-block interleaver; the results are
//! collected into the circular buffer `w` (systematic first, then the
//! two parities bit-interlaced) and `E` bits are read out starting at
//! the redundancy-version offset, skipping `<NULL>` padding.
//!
//! De-rate-matching inverts the readout into LLR space, *combining*
//! repeated positions by saturating addition (chase combining) and
//! leaving punctured positions at LLR 0.

use crate::llr::{adds16, Llr};

/// The spec's inter-column permutation pattern.
pub const COL_PERM: [usize; 32] = [
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30, 1, 17, 9, 25, 5, 21, 13, 29, 3, 19,
    11, 27, 7, 23, 15, 31,
];

const NCOLS: usize = 32;

/// Structural errors from the typed (non-panicking) rate-match API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMatchError {
    /// Redundancy version outside the spec's `0..4`.
    InvalidRv {
        /// The offending rv.
        rv: usize,
    },
    /// An encoder stream whose length differs from the matcher's `d`.
    WrongStreamLength {
        /// Configured per-stream length.
        expected: usize,
        /// Actual stream length.
        got: usize,
    },
}

impl std::fmt::Display for RateMatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RateMatchError::InvalidRv { rv } => {
                write!(f, "redundancy version {rv} outside 0..4")
            }
            RateMatchError::WrongStreamLength { expected, got } => {
                write!(f, "stream length {got} != configured d {expected}")
            }
        }
    }
}

impl std::error::Error for RateMatchError {}

/// Position map for one stream: `perm[i]` is the index into the padded
/// `R×32` matrix (row-major write order) read out at position `i`;
/// positions pointing into the pad are `usize::MAX`.
fn subblock_positions(d: usize, stream2: bool) -> Vec<usize> {
    let rows = d.div_ceil(NCOLS);
    let kp = rows * NCOLS;
    let nd = kp - d; // leading <NULL> count
    let mut out = Vec::with_capacity(kp);
    if !stream2 {
        // read column-wise in permuted column order
        for &c in COL_PERM.iter() {
            for r in 0..rows {
                let idx = r * NCOLS + c; // row-major position in padded matrix
                out.push(if idx < nd { usize::MAX } else { idx - nd });
            }
        }
    } else {
        // d⁽²⁾ uses the shifted formula π(k) = (P(⌊k/R⌋) + 32·(k mod R) + 1) mod Kp
        for k in 0..kp {
            let idx = (COL_PERM[k / rows] + NCOLS * (k % rows) + 1) % kp;
            out.push(if idx < nd { usize::MAX } else { idx - nd });
        }
    }
    out
}

/// The circular-buffer position map: `w[i]` gives the index into the
/// concatenated `[d0 | d1 | d2]` (each of length `d`) for circular
/// buffer position `i`, or `usize::MAX` for `<NULL>`.
fn circular_buffer_map(d: usize) -> Vec<usize> {
    let v0 = subblock_positions(d, false);
    let v1 = subblock_positions(d, false);
    let v2 = subblock_positions(d, true);
    let kp = v0.len();
    let mut w = Vec::with_capacity(3 * kp);
    for &p in &v0 {
        w.push(if p == usize::MAX { usize::MAX } else { p });
    }
    for j in 0..kp {
        // interlace v1, v2
        let p1 = v1[j];
        w.push(if p1 == usize::MAX { usize::MAX } else { d + p1 });
        let p2 = v2[j];
        w.push(if p2 == usize::MAX {
            usize::MAX
        } else {
            2 * d + p2
        });
    }
    w
}

/// Rate matcher for one code block.
#[derive(Debug, Clone)]
pub struct RateMatcher {
    d: usize,
    wmap: Vec<usize>,
}

impl RateMatcher {
    /// For per-stream length `d = K + 4`.
    pub fn new(d: usize) -> Self {
        Self {
            d,
            wmap: circular_buffer_map(d),
        }
    }

    /// Circular buffer length `Ncb = 3·Kp`.
    pub fn ncb(&self) -> usize {
        self.wmap.len()
    }

    /// Readout start offset `k0` for redundancy version `rv ∈ 0..4`.
    pub fn k0(&self, rv: usize) -> usize {
        self.try_k0(rv).expect("rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::k0`]: out-of-range redundancy
    /// versions are an `Err` instead of an assert.
    pub fn try_k0(&self, rv: usize) -> Result<usize, RateMatchError> {
        if rv >= 4 {
            return Err(RateMatchError::InvalidRv { rv });
        }
        let rows = self.d.div_ceil(NCOLS);
        Ok(rows * (2 * self.ncb().div_ceil(8 * rows) * rv + 2))
    }

    /// Select `e` output bits from the coded streams (bit domain).
    pub fn rate_match(&self, d: &[Vec<u8>; 3], e: usize, rv: usize) -> Vec<u8> {
        self.try_rate_match(d, e, rv)
            .expect("streams sized to d and rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::rate_match`]: validates stream
    /// lengths and the redundancy version.
    pub fn try_rate_match(
        &self,
        d: &[Vec<u8>; 3],
        e: usize,
        rv: usize,
    ) -> Result<Vec<u8>, RateMatchError> {
        if let Some(s) = d.iter().find(|s| s.len() != self.d) {
            return Err(RateMatchError::WrongStreamLength {
                expected: self.d,
                got: s.len(),
            });
        }
        let ncb = self.ncb();
        let flat: Vec<u8> = d.iter().flat_map(|s| s.iter().copied()).collect();
        let mut out = Vec::with_capacity(e);
        let mut k = self.try_k0(rv)?;
        while out.len() < e {
            let p = self.wmap[k % ncb];
            if p != usize::MAX {
                out.push(flat[p]);
            }
            k += 1;
        }
        Ok(out)
    }

    /// Invert the readout in LLR space: returns three LLR streams of
    /// length `d`, with repeats chase-combined and punctures at 0.
    pub fn de_rate_match(&self, llrs: &[Llr], rv: usize) -> [Vec<Llr>; 3] {
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        self.de_rate_match_into(llrs, rv, &mut out);
        out
    }

    /// Allocation-free variant of [`RateMatcher::de_rate_match`]:
    /// resizes each stream of `out` to length `d` (a no-op once the
    /// buffers have warmed up) and accumulates in place.
    pub fn de_rate_match_into(&self, llrs: &[Llr], rv: usize, out: &mut [Vec<Llr>; 3]) {
        self.try_de_rate_match_into(llrs, rv, out)
            .expect("rv in 0..4")
    }

    /// Non-panicking [`RateMatcher::de_rate_match_into`]: an
    /// out-of-range redundancy version is an `Err` instead of an
    /// assert deep in the receive path.
    pub fn try_de_rate_match_into(
        &self,
        llrs: &[Llr],
        rv: usize,
        out: &mut [Vec<Llr>; 3],
    ) -> Result<(), RateMatchError> {
        let mut k = self.try_k0(rv)?;
        let d = self.d;
        for s in out.iter_mut() {
            s.resize(d, 0);
            s.fill(0);
        }
        let ncb = self.ncb();
        let mut consumed = 0;
        while consumed < llrs.len() {
            let p = self.wmap[k % ncb];
            if p != usize::MAX {
                let slot = &mut out[p / d][p % d];
                *slot = adds16(*slot, llrs[consumed]);
                consumed += 1;
            }
            k += 1;
        }
        Ok(())
    }
}

/// TS 36.212 §5.1.4.2 rate matching for *convolutionally* coded
/// channels (PDCCH/DCI, PBCH): same 32-column sub-block interleaver
/// with a different column permutation, sequential (not interlaced)
/// bit collection, and readout always from position 0 (no redundancy
/// versions on control channels).
pub mod conv {
    use super::NCOLS;
    use crate::llr::{adds16, Llr};

    /// The §5.1.4.2 inter-column permutation.
    pub const COL_PERM_CC: [usize; 32] = [
        1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31, 0, 16, 8, 24, 4, 20, 12, 28, 2,
        18, 10, 26, 6, 22, 14, 30,
    ];

    fn positions(d: usize) -> Vec<usize> {
        let rows = d.div_ceil(NCOLS);
        let kp = rows * NCOLS;
        let nd = kp - d;
        let mut out = Vec::with_capacity(kp);
        for &c in COL_PERM_CC.iter() {
            for r in 0..rows {
                let idx = r * NCOLS + c;
                out.push(if idx < nd { usize::MAX } else { idx - nd });
            }
        }
        out
    }

    /// Convolutional-channel rate matcher for per-stream length `d`.
    #[derive(Debug, Clone)]
    pub struct ConvRateMatcher {
        d: usize,
        wmap: Vec<usize>, // circular buffer → flat [d0|d1|d2] index
    }

    impl ConvRateMatcher {
        /// New matcher for streams of `d` bits each.
        pub fn new(d: usize) -> Self {
            let pos = positions(d);
            let kp = pos.len();
            let mut wmap = Vec::with_capacity(3 * kp);
            for stream in 0..3 {
                for &p in &pos {
                    wmap.push(if p == usize::MAX {
                        usize::MAX
                    } else {
                        stream * d + p
                    });
                }
            }
            Self { d, wmap }
        }

        /// Select `e` coded bits.
        pub fn rate_match(&self, d: &[Vec<u8>; 3], e: usize) -> Vec<u8> {
            assert!(d.iter().all(|s| s.len() == self.d));
            let flat: Vec<u8> = d.iter().flat_map(|s| s.iter().copied()).collect();
            let ncb = self.wmap.len();
            let mut out = Vec::with_capacity(e);
            let mut k = 0usize;
            while out.len() < e {
                let p = self.wmap[k % ncb];
                if p != usize::MAX {
                    out.push(flat[p]);
                }
                k += 1;
            }
            out
        }

        /// Invert into LLR space with chase combining of repeats.
        pub fn de_rate_match(&self, llrs: &[Llr]) -> [Vec<Llr>; 3] {
            let ncb = self.wmap.len();
            let mut acc = vec![0 as Llr; 3 * self.d];
            let mut k = 0usize;
            let mut used = 0;
            while used < llrs.len() {
                let p = self.wmap[k % ncb];
                if p != usize::MAX {
                    acc[p] = adds16(acc[p], llrs[used]);
                    used += 1;
                }
                k += 1;
            }
            let d = self.d;
            [
                acc[..d].to_vec(),
                acc[d..2 * d].to_vec(),
                acc[2 * d..].to_vec(),
            ]
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::bits::random_bits;

        #[test]
        fn cc_permutation_is_a_permutation_of_columns() {
            let mut seen = [false; 32];
            for &c in &COL_PERM_CC {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }

        #[test]
        fn full_readout_covers_every_bit_once() {
            let d = 66; // 22-bit DCI × 3
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 1), random_bits(d, 2), random_bits(d, 3)];
            let out = rm.rate_match(&streams, 3 * d);
            let mut ones_in = 0;
            for s in &streams {
                ones_in += s.iter().filter(|&&b| b == 1).count();
            }
            assert_eq!(out.iter().filter(|&&b| b == 1).count(), ones_in);
        }

        #[test]
        fn repetition_combines() {
            let d = 66;
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 4), random_bits(d, 5), random_bits(d, 6)];
            let tx = rm.rate_match(&streams, 6 * d); // 2× repetition
            let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 40 } else { -40 }).collect();
            let rx = rm.de_rate_match(&llrs);
            for (s, got) in streams.iter().zip(&rx) {
                for (i, (&b, &l)) in s.iter().zip(got).enumerate() {
                    assert_eq!(l.abs(), 80, "position {i} combined twice");
                    assert_eq!(u8::from(l < 0), b);
                }
            }
        }

        #[test]
        fn puncturing_leaves_zero_llrs() {
            let d = 66;
            let rm = ConvRateMatcher::new(d);
            let streams = [random_bits(d, 7), random_bits(d, 8), random_bits(d, 9)];
            let e = 100; // < 198
            let tx = rm.rate_match(&streams, e);
            let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 40 } else { -40 }).collect();
            let rx = rm.de_rate_match(&llrs);
            let filled: usize = rx
                .iter()
                .flat_map(|s| s.iter())
                .filter(|&&l| l != 0)
                .count();
            assert_eq!(filled, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    fn dstreams(d: usize, seed: u64) -> [Vec<u8>; 3] {
        [
            random_bits(d, seed),
            random_bits(d, seed + 1),
            random_bits(d, seed + 2),
        ]
    }

    #[test]
    fn subblock_positions_are_a_permutation() {
        for d in [44usize, 108, 6148] {
            for stream2 in [false, true] {
                let pos = subblock_positions(d, stream2);
                let kp = d.div_ceil(32) * 32;
                assert_eq!(pos.len(), kp);
                let nulls = pos.iter().filter(|&&p| p == usize::MAX).count();
                assert_eq!(nulls, kp - d);
                let mut seen = vec![false; d];
                for &p in pos.iter().filter(|&&p| p != usize::MAX) {
                    assert!(!seen[p], "duplicate position {p}");
                    seen[p] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "d={d} stream2={stream2} missing positions"
                );
            }
        }
    }

    #[test]
    fn full_buffer_readout_covers_every_bit() {
        let d = 44;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 5);
        // Read exactly the number of real (non-null) bits from rv=0:
        let out = rm.rate_match(&streams, 3 * d, 0);
        assert_eq!(out.len(), 3 * d);
        // All coded bits appear (as a multiset) since e = #real bits
        // and the buffer wraps exactly once across nulls.
        let mut count_in = [0usize; 2];
        for s in &streams {
            for &b in s {
                count_in[b as usize] += 1;
            }
        }
        let mut count_out = [0usize; 2];
        for &b in &out {
            count_out[b as usize] += 1;
        }
        assert_eq!(count_in, count_out);
    }

    #[test]
    fn de_rate_match_inverts_puncturing() {
        // e < total: punctured positions come back as 0-LLRs; surviving
        // positions carry the right sign.
        let d = 108;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 9);
        let e = 200; // < 324
        let tx = rm.rate_match(&streams, e, 0);
        let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 80 } else { -80 }).collect();
        let rx = rm.de_rate_match(&llrs, 0);
        let flat_in: Vec<u8> = streams.iter().flat_map(|s| s.iter().copied()).collect();
        let flat_out: Vec<Llr> = rx.iter().flat_map(|s| s.iter().copied()).collect();
        let mut seen_nonzero = 0;
        for (i, &l) in flat_out.iter().enumerate() {
            if l != 0 {
                seen_nonzero += 1;
                assert_eq!(u8::from(l < 0), flat_in[i], "sign mismatch at {i}");
            }
        }
        assert_eq!(seen_nonzero, e, "exactly e positions must be filled");
    }

    #[test]
    fn repetition_combines_llrs() {
        // e > total real bits: wrapped positions accumulate.
        let d = 44;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 3);
        let e = 3 * d * 2; // every bit transmitted exactly twice
        let tx = rm.rate_match(&streams, e, 0);
        let llrs: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 50 } else { -50 }).collect();
        let rx = rm.de_rate_match(&llrs, 0);
        for s in &rx {
            for &l in s {
                assert_eq!(l.abs(), 100, "each position combined twice: {l}");
            }
        }
    }

    #[test]
    fn redundancy_versions_start_at_different_offsets() {
        let rm = RateMatcher::new(108);
        let k0s: Vec<usize> = (0..4).map(|rv| rm.k0(rv)).collect();
        for w in k0s.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(k0s[3] < rm.ncb(), "k0 must stay within the buffer");
    }

    #[test]
    fn try_api_rejects_bad_rv_and_stream_lengths() {
        let d = 44;
        let rm = RateMatcher::new(d);
        assert_eq!(rm.try_k0(4), Err(RateMatchError::InvalidRv { rv: 4 }));
        assert_eq!(
            rm.try_k0(usize::MAX),
            Err(RateMatchError::InvalidRv { rv: usize::MAX })
        );
        let streams = dstreams(d, 2);
        assert!(rm.try_rate_match(&streams, 100, 7).is_err());
        let short = [vec![0u8; d - 1], vec![0u8; d], vec![0u8; d]];
        assert!(matches!(
            rm.try_rate_match(&short, 100, 0),
            Err(RateMatchError::WrongStreamLength { got, .. }) if got == d - 1
        ));
        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        assert!(rm.try_de_rate_match_into(&[0; 16], 9, &mut out).is_err());
        // Valid inputs still work through the try_ path.
        let tx = rm.try_rate_match(&streams, 100, 0).unwrap();
        assert_eq!(tx, rm.rate_match(&streams, 100, 0));
    }

    #[test]
    fn different_rv_different_output() {
        let d = 108;
        let rm = RateMatcher::new(d);
        let streams = dstreams(d, 1);
        let a = rm.rate_match(&streams, 150, 0);
        let b = rm.rate_match(&streams, 150, 2);
        assert_ne!(a, b);
    }
}
