//! Fixed-point SIMD soft demappers over the `vran-simd` VM — the
//! vectorized max-log demapping OAI runs with SSE intrinsics, here as
//! real traced kernels (used for the Figures 3/5 "Demodulation" bar).
//!
//! Samples are Q11 fixed point (`1.0 == 2048`), laid out as
//! interleaved `[I₀ Q₀ I₁ Q₁ …]`. Per-axis max-log metrics:
//!
//! * QPSK: `L(b) = 2y` — one saturating add per lane.
//! * 16-QAM: inner bits `L = 2y`; outer bits `L = 2·(2·SCALE − |y|)`
//!   with `|y| = max(y, −y)` — the classic `pmaxsw`/`psubsw` ladder.
//!
//! Outputs are written as two planes (inner-bit plane, outer-bit
//! plane); [`assemble_qam16_llrs`] interleaves them into per-symbol
//! `[b0 b1 b2 b3]` order — which is itself a stride-2 data-arrangement
//! step, underscoring the paper's generalization point.

use vran_simd::{MemRef, RegWidth, Vm};

/// Q-format unit: 1.0 == `SCALE`.
pub const SCALE: i16 = 2048;

/// Scalar reference for the QPSK kernel (bit-exact contract).
pub fn demap_qpsk_scalar(iq: &[i16]) -> Vec<i16> {
    iq.iter().map(|&y| y.saturating_add(y)).collect()
}

/// SIMD QPSK demapper: `out[i] = 2·iq[i]` saturating. `out` must be
/// the same length as `iq`; LLR order equals sample order (I then Q =
/// b0 then b1).
pub fn demap_qpsk_simd(vm: &mut Vm, iq: MemRef, out: MemRef, width: RegWidth) {
    assert_eq!(iq.len, out.len);
    let mut off = 0;
    for &w in &[width, RegWidth::Sse128] {
        let l = w.lanes();
        while off + l <= iq.len {
            let y = vm.load(w, iq.slice(off, l));
            let d = vm.adds(y, y);
            vm.store(d, out.slice(off, l));
            off += l;
        }
    }
    for i in off..iq.len {
        vm.scalar_map16(iq.base + i, out.base + i, |y| y.saturating_add(y));
    }
}

/// Scalar reference for the 16-QAM planes.
pub fn demap_qam16_scalar(iq: &[i16]) -> (Vec<i16>, Vec<i16>) {
    let inner = iq.iter().map(|&y| y.saturating_add(y)).collect();
    let outer = iq
        .iter()
        .map(|&y| {
            let abs = y.max(y.saturating_neg());
            let d = (2i16).saturating_mul(SCALE).saturating_sub(abs);
            d.saturating_add(d)
        })
        .collect();
    (inner, outer)
}

/// SIMD 16-QAM demapper producing the inner-bit and outer-bit planes.
pub fn demap_qam16_simd(vm: &mut Vm, iq: MemRef, inner: MemRef, outer: MemRef, width: RegWidth) {
    assert!(inner.len == iq.len && outer.len == iq.len);
    let mut off = 0;
    for &w in &[width, RegWidth::Sse128] {
        let l = w.lanes();
        let zero = vm.splat(w, 0);
        let two = vm.splat(w, 2i16.saturating_mul(SCALE));
        while off + l <= iq.len {
            let y = vm.load(w, iq.slice(off, l));
            // inner bits: 2y
            let d = vm.adds(y, y);
            vm.store(d, inner.slice(off, l));
            // outer bits: 2·(2 − |y|)
            let neg = vm.subs(zero, y);
            let abs = vm.max(y, neg);
            let diff = vm.subs(two, abs);
            let o = vm.adds(diff, diff);
            vm.store(o, outer.slice(off, l));
            off += l;
        }
    }
    for i in off..iq.len {
        vm.scalar_map16(iq.base + i, inner.base + i, |y| y.saturating_add(y));
        vm.scalar_map16(iq.base + i, outer.base + i, |y| {
            let abs = y.max(y.saturating_neg());
            let d = (2i16).saturating_mul(SCALE).saturating_sub(abs);
            d.saturating_add(d)
        });
    }
}

/// Interleave the two planes into per-symbol `[b0 b1 b2 b3]` LLR order
/// (scalar helper; on real hardware this is another arrangement
/// kernel).
pub fn assemble_qam16_llrs(inner: &[i16], outer: &[i16]) -> Vec<i16> {
    assert_eq!(inner.len(), outer.len());
    assert_eq!(inner.len() % 2, 0);
    let mut out = Vec::with_capacity(2 * inner.len());
    for s in 0..inner.len() / 2 {
        out.push(inner[2 * s]);
        out.push(inner[2 * s + 1]);
        out.push(outer[2 * s]);
        out.push(outer[2 * s + 1]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::modulation::Modulation;
    use vran_simd::{Mem, OpClass, Vm};

    fn sample_iq(n: usize, seed: u64) -> Vec<i16> {
        let bits = random_bits(n * 14, seed);
        (0..n)
            .map(|i| {
                let mut v = 0i32;
                for b in 0..12 {
                    v = (v << 1) | bits[i * 14 + b] as i32;
                }
                (v - 2048) as i16
            })
            .collect()
    }

    #[test]
    fn qpsk_simd_matches_scalar_at_every_width() {
        let iq = sample_iq(203, 1);
        let expect = demap_qpsk_scalar(&iq);
        for w in [RegWidth::Sse128, RegWidth::Avx256, RegWidth::Avx512] {
            let mut mem = Mem::new();
            let r = mem.alloc_from(&iq);
            let out = mem.alloc(iq.len());
            let mut vm = Vm::native(mem);
            demap_qpsk_simd(&mut vm, r, out, w);
            assert_eq!(vm.mem().read(out), &expect[..], "{w}");
        }
    }

    #[test]
    fn qam16_simd_matches_scalar() {
        let iq = sample_iq(210, 3);
        let (ei, eo) = demap_qam16_scalar(&iq);
        let mut mem = Mem::new();
        let r = mem.alloc_from(&iq);
        let inner = mem.alloc(iq.len());
        let outer = mem.alloc(iq.len());
        let mut vm = Vm::native(mem);
        demap_qam16_simd(&mut vm, r, inner, outer, RegWidth::Avx512);
        assert_eq!(vm.mem().read(inner), &ei[..]);
        assert_eq!(vm.mem().read(outer), &eo[..]);
    }

    #[test]
    fn fixed_point_demap_agrees_with_float_demapper_signs() {
        // Hard decisions from the Q11 kernel must match the f32
        // reference demapper on clean constellation points.
        let bits = random_bits(4 * 64, 9);
        let syms = Modulation::Qam16.modulate(&bits);
        let iq: Vec<i16> = syms
            .iter()
            .flat_map(|s| {
                // undo the unit-energy normalization into Q11 integers
                let inv = 10.0f32.sqrt();
                [
                    (s.re * inv * SCALE as f32) as i16,
                    (s.im * inv * SCALE as f32) as i16,
                ]
            })
            .collect();
        let (inner, outer) = demap_qam16_scalar(&iq);
        let llrs = assemble_qam16_llrs(&inner, &outer);
        let rx: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0)).collect();
        assert_eq!(rx, bits);
    }

    #[test]
    fn demap_trace_is_simd_calculation_dominated() {
        let iq = sample_iq(4096, 5);
        let mut mem = Mem::new();
        let r = mem.alloc_from(&iq);
        let inner = mem.alloc(iq.len());
        let outer = mem.alloc(iq.len());
        let mut vm = Vm::tracing(mem);
        demap_qam16_simd(&mut vm, r, inner, outer, RegWidth::Sse128);
        let h = vm.trace().class_histogram();
        assert!(h.vec_alu > h.load + h.store - h.load.min(h.store), "{h:?}");
        let kinds: std::collections::HashSet<_> =
            vm.trace().ops.iter().map(|o| o.kind.class()).collect();
        assert!(kinds.contains(&OpClass::VecAlu));
    }

    #[test]
    fn assemble_orders_per_symbol() {
        let inner = vec![10, 11, 20, 21];
        let outer = vec![30, 31, 40, 41];
        assert_eq!(
            assemble_qam16_llrs(&inner, &outer),
            vec![10, 11, 30, 31, 20, 21, 40, 41]
        );
    }
}
