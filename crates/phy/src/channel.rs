//! AWGN channel model — the synthetic stand-in for the paper's RF path
//! (USRP B210 + Huawei UE), per the DESIGN.md substitution table. The
//! experiments only need a bit-exact reproducible source of noisy LLRs
//! with controllable SNR.

use crate::modulation::Cplx;
use vran_util::rng::SmallRng;

/// Additive white Gaussian noise channel with a fixed seed.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    sigma: f32,
    rng: SmallRng,
}

impl AwgnChannel {
    /// Channel at the given per-symbol SNR (Es/N0) in dB, assuming unit
    /// average symbol energy.
    pub fn new(snr_db: f32, seed: u64) -> Self {
        // Es/N0 = 1/(2σ²) per complex dimension → σ = sqrt(1/(2·SNR)).
        let snr = 10f32.powf(snr_db / 10.0);
        let sigma = (1.0 / (2.0 * snr)).sqrt();
        Self {
            sigma,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Per-axis noise standard deviation.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// The max-log demapper scale `1/σ²` (up to a constant).
    pub fn llr_scale(&self) -> f32 {
        1.0 / (self.sigma * self.sigma).max(1e-9)
    }

    /// Draw one Gaussian sample (Box–Muller inside `vran-util`'s RNG).
    fn gauss(&mut self) -> f32 {
        self.rng.gauss_f32()
    }

    /// Add noise to a symbol stream.
    pub fn apply(&mut self, symbols: &[Cplx]) -> Vec<Cplx> {
        symbols
            .iter()
            .map(|s| {
                Cplx::new(
                    s.re + self.sigma * self.gauss(),
                    s.im + self.sigma * self.gauss(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::modulation::Modulation;

    #[test]
    fn noise_power_matches_configuration() {
        let mut ch = AwgnChannel::new(3.0, 42);
        let zeros = vec![Cplx::default(); 20_000];
        let noisy = ch.apply(&zeros);
        let p: f32 = noisy.iter().map(|s| s.norm_sq()).sum::<f32>() / noisy.len() as f32;
        let expected = 2.0 * ch.sigma() * ch.sigma();
        assert!(
            (p - expected).abs() / expected < 0.05,
            "measured {p}, expected {expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Modulation::Qpsk.modulate(&random_bits(64, 1));
        let a = AwgnChannel::new(5.0, 7).apply(&s);
        let b = AwgnChannel::new(5.0, 7).apply(&s);
        let c = AwgnChannel::new(5.0, 8).apply(&s);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn high_snr_qpsk_has_no_bit_errors() {
        let bits = random_bits(2000, 3);
        let tx = Modulation::Qpsk.modulate(&bits);
        let rx = AwgnChannel::new(15.0, 5).apply(&tx);
        let llrs = Modulation::Qpsk.demodulate(&rx, 1.0);
        let errs = llrs
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| u8::from(l < 0) != b)
            .count();
        assert_eq!(errs, 0, "15 dB QPSK must be error-free over 2000 bits");
    }

    #[test]
    fn low_snr_produces_errors() {
        let bits = random_bits(4000, 4);
        let tx = Modulation::Qpsk.modulate(&bits);
        let rx = AwgnChannel::new(-3.0, 6).apply(&tx);
        let llrs = Modulation::Qpsk.demodulate(&rx, 1.0);
        let errs = llrs
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| u8::from(l < 0) != b)
            .count();
        assert!(errs > 100, "-3 dB QPSK must show raw errors: {errs}");
    }
}
