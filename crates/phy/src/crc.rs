//! 3GPP TS 36.212 §5.1.1 CRC codes.
//!
//! * **CRC24A** (`gCRC24A`, poly `0x1864CFB`) — transport-block CRC.
//! * **CRC24B** (`gCRC24B`, poly `0x1800063`) — per-code-block CRC when
//!   a transport block is segmented.
//! * **CRC16** (`gCRC16`, poly `0x11021`) — used by some control
//!   channels.
//! * **CRC8**  (`gCRC8`,  poly `0x19B`) — used by UCI.
//!
//! Implemented bit-serially over `{0,1}` bit slices (the natural form
//! for a PHY chain that works on bit vectors); all registers start at
//! zero per the spec.

/// A generic bit-serial CRC over GF(2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc {
    poly: u32,
    width: u32,
}

/// Transport-block CRC (24 bits, `gCRC24A`).
pub const CRC24A: Crc = Crc {
    poly: 0x86_4CFB,
    width: 24,
};
/// Code-block CRC (24 bits, `gCRC24B`).
pub const CRC24B: Crc = Crc {
    poly: 0x80_0063,
    width: 24,
};
/// 16-bit CRC (`gCRC16`).
pub const CRC16: Crc = Crc {
    poly: 0x1021,
    width: 16,
};
/// 8-bit CRC (`gCRC8`).
pub const CRC8: Crc = Crc {
    poly: 0x9B,
    width: 8,
};

impl Crc {
    /// CRC width in bits.
    pub const fn width(&self) -> usize {
        self.width as usize
    }

    /// Compute the CRC of a `{0,1}` bit slice, returned MSB-first as
    /// `width()` bits.
    pub fn compute(&self, bits: &[u8]) -> Vec<u8> {
        let mut reg: u32 = 0;
        let top = 1u32 << (self.width - 1);
        let mask = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        for &b in bits {
            debug_assert!(b <= 1);
            let fb = ((reg & top) != 0) as u32 ^ b as u32;
            reg = (reg << 1) & mask;
            if fb != 0 {
                reg ^= self.poly;
            }
        }
        (0..self.width)
            .rev()
            .map(|i| ((reg >> i) & 1) as u8)
            .collect()
    }

    /// Append this CRC to `bits` (TS 36.212 attachment).
    pub fn attach(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        out.extend(self.compute(bits));
        out
    }

    /// Check a bit slice that has a CRC attached at its tail; returns
    /// the payload on success.
    pub fn check<'a>(&self, bits: &'a [u8]) -> Option<&'a [u8]> {
        if bits.len() < self.width() {
            return None;
        }
        let (payload, tail) = bits.split_at(bits.len() - self.width());
        if self.compute(payload) == tail {
            Some(payload)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn attach_then_check_round_trips() {
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            let payload = random_bits(100, 3);
            let coded = crc.attach(&payload);
            assert_eq!(coded.len(), 100 + crc.width());
            assert_eq!(crc.check(&coded), Some(&payload[..]));
        }
    }

    #[test]
    fn single_bit_errors_are_detected() {
        let payload = random_bits(200, 9);
        let coded = CRC24A.attach(&payload);
        for i in 0..coded.len() {
            let mut bad = coded.clone();
            bad[i] ^= 1;
            assert!(
                CRC24A.check(&bad).is_none(),
                "missed single-bit error at {i}"
            );
        }
    }

    #[test]
    fn burst_errors_within_width_are_detected() {
        let payload = random_bits(128, 5);
        let coded = CRC16.attach(&payload);
        // any burst of length ≤ 16 must be caught
        for start in [0usize, 10, 77, 120] {
            let mut bad = coded.clone();
            for b in bad.iter_mut().skip(start).take(16) {
                *b ^= 1;
            }
            assert!(CRC16.check(&bad).is_none(), "missed burst at {start}");
        }
    }

    #[test]
    fn zero_message_has_zero_crc() {
        // all-zero register + all-zero input → zero CRC (spec init is 0)
        assert!(CRC24A.compute(&[0; 64]).iter().all(|&b| b == 0));
    }

    #[test]
    fn known_crc24a_self_consistency() {
        // The defining property: [payload | crc] is divisible by the
        // generator, i.e. computing over the whole coded block gives 0.
        let payload = random_bits(64, 11);
        let coded = CRC24A.attach(&payload);
        assert!(CRC24A.compute(&coded).iter().all(|&b| b == 0));
    }

    #[test]
    fn short_input_check_fails_gracefully() {
        assert!(CRC24B.check(&[1, 0, 1]).is_none());
    }
}
