//! 3GPP TS 36.212 §5.1.1 CRC codes.
//!
//! * **CRC24A** (`gCRC24A`, poly `0x1864CFB`) — transport-block CRC.
//! * **CRC24B** (`gCRC24B`, poly `0x1800063`) — per-code-block CRC when
//!   a transport block is segmented.
//! * **CRC16** (`gCRC16`, poly `0x11021`) — used by some control
//!   channels.
//! * **CRC8**  (`gCRC8`,  poly `0x19B`) — used by UCI.
//!
//! The public API works over `{0,1}` bit slices (the natural form for
//! a PHY chain that works on bit vectors); all registers start at zero
//! per the spec. Three kernels compute the same remainder
//! ([`CrcImpl`]):
//!
//! * **Bit-serial** — one feedback step per bit; the oracle.
//! * **Slicing-by-8** — a bit-packed adapter gathers 8 bits per byte
//!   with one multiply, then compile-time 8×256 tables (top-aligned to
//!   32 bits so one table scheme serves all four widths) eat 8 message
//!   bytes per iteration; any sub-byte tail runs bit-serially. Pure
//!   integer code — available on every host.
//! * **PCLMULQDQ folding** — 128-bit carry-less-multiply folding over
//!   the packed bytes (`A·x¹²⁸ + N ≡ clmul(A_hi, x¹⁹² mod P) ⊕
//!   clmul(A_lo, x¹²⁸ mod P) ⊕ N`), finishing the final 128-bit
//!   residue through the table path so the result is bit-exact with
//!   the oracle by construction rather than via a Barrett reduction.
//!
//! CRC24B runs per code block on every decode classification, so
//! [`Crc::compute`] dispatches to the best kernel the host offers.

use vran_simd::host::{self, HostIsa};

/// A generic bit-serial CRC over GF(2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc {
    poly: u32,
    width: u32,
}

/// Transport-block CRC (24 bits, `gCRC24A`).
pub const CRC24A: Crc = Crc {
    poly: 0x86_4CFB,
    width: 24,
};
/// Code-block CRC (24 bits, `gCRC24B`).
pub const CRC24B: Crc = Crc {
    poly: 0x80_0063,
    width: 24,
};
/// 16-bit CRC (`gCRC16`).
pub const CRC16: Crc = Crc {
    poly: 0x1021,
    width: 16,
};
/// 8-bit CRC (`gCRC8`).
pub const CRC8: Crc = Crc {
    poly: 0x9B,
    width: 8,
};

/// CRC kernel tiers, least to most capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcImpl {
    /// One feedback step per bit — the reference.
    BitSerial,
    /// Bit-packed adapter + slicing-by-8 tables (portable integer).
    Sliced8,
    /// 128-bit PCLMULQDQ folding over the packed bytes, table finish.
    ClmulFold,
}

impl CrcImpl {
    /// Stable label for metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            CrcImpl::BitSerial => "bit_serial",
            CrcImpl::Sliced8 => "sliced8",
            CrcImpl::ClmulFold => "clmul",
        }
    }

    /// Minimum host ISA level this tier needs ([`CrcImpl::ClmulFold`]
    /// additionally needs the `pclmulqdq` extension, probed by
    /// [`available_crc`]).
    pub fn required_isa(self) -> HostIsa {
        match self {
            CrcImpl::BitSerial | CrcImpl::Sliced8 => HostIsa::Scalar,
            // byteswap uses pshufb; clmul itself is probed separately
            CrcImpl::ClmulFold => HostIsa::Ssse3,
        }
    }

    /// All tiers, ascending.
    pub fn all() -> [CrcImpl; 3] {
        [CrcImpl::BitSerial, CrcImpl::Sliced8, CrcImpl::ClmulFold]
    }
}

/// Whether the host has carry-less multiply (always false off x86-64).
/// PCLMULQDQ is probed separately from the [`HostIsa`] ladder because
/// it is orthogonal to vector width — the exactness sweep uses this to
/// predict which tier `best_crc` lands on.
pub fn has_pclmul() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("pclmulqdq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The CRC kernels usable on this host (ceiling-aware), ascending.
pub fn available_crc() -> Vec<CrcImpl> {
    CrcImpl::all()
        .into_iter()
        .filter(|i| host::has(i.required_isa()) && (*i != CrcImpl::ClmulFold || has_pclmul()))
        .collect()
}

/// The most capable CRC kernel on this host.
pub fn best_crc() -> CrcImpl {
    *available_crc()
        .last()
        .expect("bit-serial is always available")
}

/// Slicing-by-8 tables for a 32-bit top-aligned register.
/// `t[0][b]` advances the register past one message byte `b`;
/// `t[n][b]` additionally accounts for `n` zero bytes following it.
const fn crc_tables(poly_top: u32) -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut b = 0;
    while b < 256 {
        let mut reg = (b as u32) << 24;
        let mut i = 0;
        while i < 8 {
            let fb = reg & 0x8000_0000 != 0;
            reg <<= 1;
            if fb {
                reg ^= poly_top;
            }
            i += 1;
        }
        t[0][b] = reg;
        b += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut b = 0;
        while b < 256 {
            let prev = t[n - 1][b];
            t[n][b] = t[0][(prev >> 24) as usize] ^ (prev << 8);
            b += 1;
        }
        n += 1;
    }
    t
}

static TABLES_24A: [[u32; 256]; 8] = crc_tables(0x86_4CFB << 8);
static TABLES_24B: [[u32; 256]; 8] = crc_tables(0x80_0063 << 8);
static TABLES_16: [[u32; 256]; 8] = crc_tables(0x1021 << 16);
static TABLES_8: [[u32; 256]; 8] = crc_tables(0x9B << 24);

/// `x^n mod P` as a `width`-bit value (bit `i` = coefficient of `x^i`)
/// — the folding keys for the clmul tier.
const fn xn_mod_p(poly: u32, width: u32, n: usize) -> u64 {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut v: u32 = 1;
    let mut i = 0;
    while i < n {
        let carry = (v >> (width - 1)) & 1;
        v = (v << 1) & mask;
        if carry == 1 {
            v ^= poly & mask;
        }
        i += 1;
    }
    v as u64
}

/// Pack a `{0,1}` bit slice MSB-first into bytes; returns the packed
/// bytes and the ragged `< 8`-bit tail. One multiply gathers each
/// 8-bit group (the `0x8040…0201` bit-gather constant is carry-free
/// for this pattern).
fn pack_bits_msb(bits: &[u8]) -> (Vec<u8>, &[u8]) {
    let q = bits.len() / 8;
    let (head, tail) = bits.split_at(8 * q);
    let mut out = Vec::with_capacity(q);
    for oct in head.chunks_exact(8) {
        let x = u64::from_le_bytes(oct.try_into().unwrap());
        out.push(((x & 0x0101_0101_0101_0101).wrapping_mul(0x8040_2010_0804_0201) >> 56) as u8);
    }
    (out, tail)
}

impl Crc {
    /// CRC width in bits.
    pub const fn width(&self) -> usize {
        self.width as usize
    }

    /// Generator polynomial aligned to the top of a 32-bit register.
    fn poly_top(&self) -> u32 {
        self.poly << (32 - self.width)
    }

    /// The slicing tables for this polynomial.
    fn tables(&self) -> &'static [[u32; 256]; 8] {
        match (self.poly, self.width) {
            (0x86_4CFB, 24) => &TABLES_24A,
            (0x80_0063, 24) => &TABLES_24B,
            (0x1021, 16) => &TABLES_16,
            (0x9B, 8) => &TABLES_8,
            _ => unreachable!("only the four TS 36.212 polynomials exist"),
        }
    }

    /// The clmul folding keys `(x¹²⁸ mod P, x¹⁹² mod P)`.
    fn fold_keys(&self) -> (u64, u64) {
        const K24A: (u64, u64) = (xn_mod_p(0x86_4CFB, 24, 128), xn_mod_p(0x86_4CFB, 24, 192));
        const K24B: (u64, u64) = (xn_mod_p(0x80_0063, 24, 128), xn_mod_p(0x80_0063, 24, 192));
        const K16: (u64, u64) = (xn_mod_p(0x1021, 16, 128), xn_mod_p(0x1021, 16, 192));
        const K8: (u64, u64) = (xn_mod_p(0x9B, 8, 128), xn_mod_p(0x9B, 8, 192));
        match (self.poly, self.width) {
            (0x86_4CFB, 24) => K24A,
            (0x80_0063, 24) => K24B,
            (0x1021, 16) => K16,
            (0x9B, 8) => K8,
            _ => unreachable!("only the four TS 36.212 polynomials exist"),
        }
    }

    /// Compute the CRC of a `{0,1}` bit slice, returned MSB-first as
    /// `width()` bits. Dispatches to the best kernel the host offers;
    /// all kernels are bit-exact with [`Crc::compute_bit_serial`].
    pub fn compute(&self, bits: &[u8]) -> Vec<u8> {
        self.compute_with(best_crc(), bits)
    }

    /// Compute with an explicit kernel tier.
    pub fn compute_with(&self, imp: CrcImpl, bits: &[u8]) -> Vec<u8> {
        let reg = match imp {
            CrcImpl::BitSerial => {
                return self.compute_bit_serial(bits);
            }
            CrcImpl::Sliced8 => {
                let (packed, tail) = pack_bits_msb(bits);
                let reg = self.bytes_sliced(0, &packed);
                self.bits_top_aligned(reg, tail)
            }
            CrcImpl::ClmulFold => {
                let (packed, tail) = pack_bits_msb(bits);
                let reg = self.bytes_clmul(&packed);
                self.bits_top_aligned(reg, tail)
            }
        };
        let r = reg >> (32 - self.width);
        (0..self.width)
            .rev()
            .map(|i| ((r >> i) & 1) as u8)
            .collect()
    }

    /// Bit-serial reference: one feedback step per bit.
    pub fn compute_bit_serial(&self, bits: &[u8]) -> Vec<u8> {
        let mut reg: u32 = 0;
        let top = 1u32 << (self.width - 1);
        let mask = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        for &b in bits {
            debug_assert!(b <= 1);
            let fb = ((reg & top) != 0) as u32 ^ b as u32;
            reg = (reg << 1) & mask;
            if fb != 0 {
                reg ^= self.poly;
            }
        }
        (0..self.width)
            .rev()
            .map(|i| ((reg >> i) & 1) as u8)
            .collect()
    }

    /// Advance a top-aligned register past packed message bytes,
    /// slicing-by-8 with a byte-at-a-time remainder.
    fn bytes_sliced(&self, mut reg: u32, bytes: &[u8]) -> u32 {
        let t = self.tables();
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let cur = reg ^ u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
            reg = t[7][(cur >> 24) as usize]
                ^ t[6][((cur >> 16) & 0xFF) as usize]
                ^ t[5][((cur >> 8) & 0xFF) as usize]
                ^ t[4][(cur & 0xFF) as usize]
                ^ t[3][c[4] as usize]
                ^ t[2][c[5] as usize]
                ^ t[1][c[6] as usize]
                ^ t[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            reg = t[0][((reg >> 24) as u8 ^ b) as usize] ^ (reg << 8);
        }
        reg
    }

    /// Advance a top-aligned register past ragged tail bits.
    fn bits_top_aligned(&self, mut reg: u32, bits: &[u8]) -> u32 {
        let poly_top = self.poly_top();
        for &b in bits {
            debug_assert!(b <= 1);
            let fb = (reg >> 31) ^ b as u32;
            reg <<= 1;
            if fb & 1 != 0 {
                reg ^= poly_top;
            }
        }
        reg
    }

    /// Fold the packed byte stream down to a 128-bit residue with
    /// carry-less multiplies, then finish through the table path.
    /// Falls back to pure slicing below two 16-byte blocks.
    fn bytes_clmul(&self, bytes: &[u8]) -> u32 {
        #[cfg(target_arch = "x86_64")]
        {
            if bytes.len() >= 32 && has_pclmul() && host::has(HostIsa::Ssse3) {
                let (k128, k192) = self.fold_keys();
                let (folded, consumed) = unsafe { x86::fold128(bytes, k128, k192) };
                let reg = self.bytes_sliced(0, &folded);
                return self.bytes_sliced(reg, &bytes[consumed..]);
            }
        }
        self.bytes_sliced(0, bytes)
    }

    /// Append this CRC to `bits` (TS 36.212 attachment).
    pub fn attach(&self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        out.extend(self.compute(bits));
        out
    }

    /// Append this CRC computed with an explicit kernel tier.
    pub fn attach_with(&self, imp: CrcImpl, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        out.extend(self.compute_with(imp, bits));
        out
    }

    /// Check a bit slice that has a CRC attached at its tail; returns
    /// the payload on success.
    pub fn check<'a>(&self, bits: &'a [u8]) -> Option<&'a [u8]> {
        self.check_with(best_crc(), bits)
    }

    /// Check with an explicit kernel tier.
    pub fn check_with<'a>(&self, imp: CrcImpl, bits: &'a [u8]) -> Option<&'a [u8]> {
        if bits.len() < self.width() {
            return None;
        }
        let (payload, tail) = bits.split_at(bits.len() - self.width());
        if self.compute_with(imp, payload) == tail {
            Some(payload)
        } else {
            None
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Fold whole 16-byte blocks of `bytes` into one 128-bit residue:
    /// `A ← clmul(A_hi, x¹⁹² mod P) ⊕ clmul(A_lo, x¹²⁸ mod P) ⊕ next`.
    /// Returns the residue in message-byte order plus the count of
    /// bytes consumed (a multiple of 16, ≥ 32 per the caller's guard).
    ///
    /// # Safety
    /// Caller guarantees `pclmulqdq` + `ssse3` and `bytes.len() >= 32`.
    #[target_feature(enable = "pclmulqdq", enable = "ssse3")]
    pub unsafe fn fold128(bytes: &[u8], k128: u64, k192: u64) -> ([u8; 16], usize) {
        // byte-reverse so the register's little-endian bit order is
        // polynomial order (first message byte = highest degree)
        let bswap = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let k = _mm_set_epi64x(k192 as i64, k128 as i64);
        let mut a = _mm_shuffle_epi8(_mm_loadu_si128(bytes.as_ptr().cast()), bswap);
        let mut off = 16;
        while off + 16 <= bytes.len() {
            let n = _mm_shuffle_epi8(_mm_loadu_si128(bytes.as_ptr().add(off).cast()), bswap);
            let lo = _mm_clmulepi64_si128(a, k, 0x00); // A_lo · (x¹²⁸ mod P)
            let hi = _mm_clmulepi64_si128(a, k, 0x11); // A_hi · (x¹⁹² mod P)
            a = _mm_xor_si128(_mm_xor_si128(lo, hi), n);
            off += 16;
        }
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast(), _mm_shuffle_epi8(a, bswap));
        (out, off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn attach_then_check_round_trips() {
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            let payload = random_bits(100, 3);
            let coded = crc.attach(&payload);
            assert_eq!(coded.len(), 100 + crc.width());
            assert_eq!(crc.check(&coded), Some(&payload[..]));
        }
    }

    #[test]
    fn sliced_kernel_matches_bit_serial_all_polys_all_lengths() {
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            // every length 0..=131 covers empty input, sub-byte
            // inputs, every packed remainder class, and both sides of
            // the slicing-by-8 block boundary — including non-byte
            // multiples throughout
            for len in 0..=131usize {
                let bits = random_bits(len, 17 + len as u64);
                assert_eq!(
                    crc.compute_with(CrcImpl::Sliced8, &bits),
                    crc.compute_bit_serial(&bits),
                    "{:?} len {len}",
                    crc
                );
            }
            // long streams exercise many slicing blocks
            for len in [1023usize, 6144, 6157] {
                let bits = random_bits(len, len as u64);
                assert_eq!(
                    crc.compute_with(CrcImpl::Sliced8, &bits),
                    crc.compute_bit_serial(&bits),
                    "{:?} len {len}",
                    crc
                );
            }
        }
    }

    #[test]
    fn clmul_kernel_matches_bit_serial_all_polys() {
        if !available_crc().contains(&CrcImpl::ClmulFold) {
            eprintln!("clmul unavailable on this host; fold tier exercised as sliced");
        }
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            // spans the <32-byte internal fallback, block boundaries,
            // ragged packed remainders and ragged bit tails
            for len in [0usize, 7, 255, 256, 263, 511, 512, 941, 4096, 6144, 6151] {
                let bits = random_bits(len, 91 + len as u64);
                assert_eq!(
                    crc.compute_with(CrcImpl::ClmulFold, &bits),
                    crc.compute_bit_serial(&bits),
                    "{:?} len {len}",
                    crc
                );
            }
        }
    }

    #[test]
    fn default_compute_uses_best_available_kernel() {
        let avail = available_crc();
        assert_eq!(avail[0], CrcImpl::BitSerial);
        assert!(avail.contains(&CrcImpl::Sliced8));
        assert_eq!(best_crc(), *avail.last().unwrap());
        let bits = random_bits(777, 4);
        assert_eq!(CRC24A.compute(&bits), CRC24A.compute_bit_serial(&bits));
    }

    #[test]
    fn single_bit_errors_are_detected() {
        let payload = random_bits(200, 9);
        let coded = CRC24A.attach(&payload);
        for i in 0..coded.len() {
            let mut bad = coded.clone();
            bad[i] ^= 1;
            assert!(
                CRC24A.check(&bad).is_none(),
                "missed single-bit error at {i}"
            );
        }
    }

    #[test]
    fn burst_errors_within_width_are_detected() {
        let payload = random_bits(128, 5);
        let coded = CRC16.attach(&payload);
        // any burst of length ≤ 16 must be caught
        for start in [0usize, 10, 77, 120] {
            let mut bad = coded.clone();
            for b in bad.iter_mut().skip(start).take(16) {
                *b ^= 1;
            }
            assert!(CRC16.check(&bad).is_none(), "missed burst at {start}");
        }
    }

    #[test]
    fn zero_message_has_zero_crc() {
        // all-zero register + all-zero input → zero CRC (spec init is 0)
        assert!(CRC24A.compute(&[0; 64]).iter().all(|&b| b == 0));
    }

    #[test]
    fn known_crc24a_self_consistency() {
        // The defining property: [payload | crc] is divisible by the
        // generator, i.e. computing over the whole coded block gives 0.
        let payload = random_bits(64, 11);
        let coded = CRC24A.attach(&payload);
        assert!(CRC24A.compute(&coded).iter().all(|&b| b == 0));
    }

    #[test]
    fn short_input_check_fails_gracefully() {
        assert!(CRC24B.check(&[1, 0, 1]).is_none());
    }
}
