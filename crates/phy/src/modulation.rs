//! TS 36.211 §7.1 modulation mappers and max-log soft demappers.
//!
//! Complex symbols are `(f32, f32)` pairs normalized to unit average
//! energy. The demapper emits fixed-point LLRs in the decoder's
//! convention (positive → bit 0) scaled by [`LLR_SCALE`].

/// A complex baseband sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Cplx {
    /// In-phase component.
    pub re: f32,
    /// Quadrature component.
    pub im: f32,
}

// The inherent `add`/`sub`/`mul` are deliberate: `Cplx` is `Copy` data
// used in tight loops and the by-value methods keep call sites free of
// trait imports.
#[allow(clippy::should_implement_trait)]
impl Cplx {
    /// Construct from parts.
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Complex addition.
    pub fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    pub fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    pub fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
}

/// Fixed-point scale applied to demapped LLRs (Q format: ±4·scale full
/// range for 64-QAM).
pub const LLR_SCALE: f32 = 64.0;

/// Modulation orders used by LTE data channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// All supported orders.
    pub const ALL: [Modulation; 3] = [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];

    /// Bits carried per symbol.
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
        }
    }

    /// Per-axis amplitude normalizer (unit average symbol energy).
    pub(crate) fn norm(self) -> f32 {
        match self {
            Modulation::Qpsk => 1.0 / std::f32::consts::SQRT_2,
            Modulation::Qam16 => 1.0 / 10.0f32.sqrt(),
            Modulation::Qam64 => 1.0 / 42.0f32.sqrt(),
        }
    }

    /// Gray-mapped per-axis level from the bits on one axis
    /// (TS 36.211 tables; bit 0 ↦ positive).
    fn axis_level(self, bits: &[u8]) -> f32 {
        match self {
            Modulation::Qpsk => {
                if bits[0] == 0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Modulation::Qam16 => {
                let sign = if bits[0] == 0 { 1.0 } else { -1.0 };
                let mag = if bits[1] == 0 { 1.0 } else { 3.0 };
                sign * mag
            }
            Modulation::Qam64 => {
                // Gray magnitudes: (b1,b2) = 00→1, 01→3, 11→5, 10→7.
                let sign = if bits[0] == 0 { 1.0 } else { -1.0 };
                let mag = match (bits[1], bits[2]) {
                    (0, 0) => 1.0,
                    (0, 1) => 3.0,
                    (1, 1) => 5.0,
                    (1, 0) => 7.0,
                    _ => unreachable!(),
                };
                sign * mag
            }
        }
    }

    /// Map bits (length divisible by `bits_per_symbol`) to symbols.
    /// Bit-to-axis assignment per the spec: even-indexed bits drive I,
    /// odd-indexed drive Q (interleaved per symbol).
    pub fn modulate(self, bits: &[u8]) -> Vec<Cplx> {
        let bps = self.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bit count must be a multiple of {bps}");
        let n = self.norm();
        bits.chunks_exact(bps)
            .map(|c| {
                let half = bps / 2;
                let ibits: Vec<u8> = (0..half).map(|j| c[2 * j]).collect();
                let qbits: Vec<u8> = (0..half).map(|j| c[2 * j + 1]).collect();
                Cplx::new(self.axis_level(&ibits) * n, self.axis_level(&qbits) * n)
            })
            .collect()
    }

    /// Max-log soft demapping of one axis value `y` (already scaled by
    /// 1/norm) into per-bit LLRs for that axis.
    fn axis_llrs(self, y: f32, out: &mut Vec<i16>) {
        let q = |v: f32| (v * LLR_SCALE).clamp(i16::MIN as f32, i16::MAX as f32) as i16;
        match self {
            Modulation::Qpsk => out.push(q(2.0 * y)),
            Modulation::Qam16 => {
                // b0: sign; b1: |y| inner(1) vs outer(3)
                out.push(q(2.0 * y));
                out.push(q(2.0 * (2.0 - y.abs())));
            }
            Modulation::Qam64 => {
                // b0: sign. b1 = 0 for |y| ∈ {1,3} → L ≈ 4 − |y|.
                // b2 = 0 for |y| ∈ {1,7} → L ≈ ||y|−4| − 2.
                out.push(q(y));
                out.push(q(4.0 - y.abs()));
                out.push(q((y.abs() - 4.0).abs() - 2.0));
            }
        }
    }

    /// Max-log soft demapper: symbols → interleaved per-bit LLRs
    /// (positive → bit 0). `noise_scale` multiplies the output
    /// (≈ 1/σ²; pass 1.0 when the decoder normalizes elsewhere).
    pub fn demodulate(self, symbols: &[Cplx], noise_scale: f32) -> Vec<i16> {
        let inv = 1.0 / self.norm();
        let mut axis_i = Vec::new();
        let mut axis_q = Vec::new();
        let mut out = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        for s in symbols {
            axis_i.clear();
            axis_q.clear();
            self.axis_llrs(s.re * inv, &mut axis_i);
            self.axis_llrs(s.im * inv, &mut axis_q);
            for j in 0..axis_i.len() {
                let scale = |v: i16| {
                    ((v as f32 * noise_scale).clamp(i16::MIN as f32, i16::MAX as f32)) as i16
                };
                out.push(scale(axis_i[j]));
                out.push(scale(axis_q[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;

    #[test]
    fn unit_average_energy() {
        for m in Modulation::ALL {
            let bits = random_bits(m.bits_per_symbol() * 4096, 5);
            let syms = m.modulate(&bits);
            let e: f32 = syms.iter().map(|s| s.norm_sq()).sum::<f32>() / syms.len() as f32;
            assert!((e - 1.0).abs() < 0.05, "{}: energy {e}", m.name());
        }
    }

    #[test]
    fn noiseless_demap_recovers_bits() {
        for m in Modulation::ALL {
            let bits = random_bits(m.bits_per_symbol() * 500, 9);
            let syms = m.modulate(&bits);
            let llrs = m.demodulate(&syms, 1.0);
            assert_eq!(llrs.len(), bits.len());
            let rx: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0)).collect();
            assert_eq!(rx, bits, "{} demap mismatch", m.name());
        }
    }

    #[test]
    fn qpsk_constellation_points() {
        let s = Modulation::Qpsk.modulate(&[0, 0, 0, 1, 1, 0, 1, 1]);
        let a = 1.0 / std::f32::consts::SQRT_2;
        assert!((s[0].re - a).abs() < 1e-6 && (s[0].im - a).abs() < 1e-6);
        assert!((s[1].re - a).abs() < 1e-6 && (s[1].im + a).abs() < 1e-6);
        assert!((s[2].re + a).abs() < 1e-6 && (s[2].im - a).abs() < 1e-6);
        assert!((s[3].re + a).abs() < 1e-6 && (s[3].im + a).abs() < 1e-6);
    }

    #[test]
    fn qam16_has_sixteen_distinct_points() {
        let mut pts = std::collections::HashSet::new();
        for v in 0..16u8 {
            let bits = [(v >> 3) & 1, (v >> 2) & 1, (v >> 1) & 1, v & 1];
            let s = Modulation::Qam16.modulate(&bits)[0];
            pts.insert((s.re.to_bits(), s.im.to_bits()));
        }
        assert_eq!(pts.len(), 16);
    }

    #[test]
    fn qam64_has_sixtyfour_distinct_points() {
        let mut pts = std::collections::HashSet::new();
        for v in 0..64u8 {
            let bits: Vec<u8> = (0..6).map(|i| (v >> (5 - i)) & 1).collect();
            let s = Modulation::Qam64.modulate(&bits)[0];
            pts.insert((s.re.to_bits(), s.im.to_bits()));
        }
        assert_eq!(pts.len(), 64);
    }

    #[test]
    fn llr_magnitude_tracks_distance_from_decision_boundary() {
        // A QPSK symbol near the axis should give weaker LLRs than one
        // far from it.
        let strong = Modulation::Qpsk.demodulate(&[Cplx::new(0.9, 0.9)], 1.0);
        let weak = Modulation::Qpsk.demodulate(&[Cplx::new(0.05, 0.05)], 1.0);
        assert!(strong[0] > weak[0]);
        assert!(weak[0] > 0);
    }
}
