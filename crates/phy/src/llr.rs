//! Log-likelihood-ratio types and the interleaved-triple layout the
//! data arrangement process operates on.
//!
//! **Sign convention**: `Llr > 0` means bit `0` is more likely
//! (`L(b) = log P(b=0)/P(b=1)`), matching the mapping bit `0 → +1` used
//! by the modulator.
//!
//! The paper's Figure 8a/10: the decoder front end receives a stream of
//! *interleaved clusters* — `[S1ₖ YP1ₖ YP2ₖ]` triples for consecutive
//! trellis steps `k` — and the **data arrangement process** must
//! segregate them into three linear arrays (`systematic1`, `yparity1`,
//! `yparity2`) "for the gamma, alpha, beta and ext calculations".
//! [`InterleavedLlrs`] is that input; [`SoftStreams`] is the arranged
//! output; `vran-arrange` provides the baseline and APCM kernels that
//! map one to the other.

/// Fixed-point LLR (Q format chosen by the demapper; the decoder is
/// scale-invariant under max-log).
pub type Llr = i16;

// ---------------------------------------------------------------------
// Fixed-point helpers mirroring the SIMD instruction semantics exactly
// (`_mm_adds_epi16` etc.), so the scalar decoder is bit-exact with the
// VM kernels.
// ---------------------------------------------------------------------

/// `_mm_adds_epi16` on scalars.
#[inline]
pub fn adds16(a: Llr, b: Llr) -> Llr {
    a.saturating_add(b)
}

/// `_mm_subs_epi16` on scalars.
#[inline]
pub fn subs16(a: Llr, b: Llr) -> Llr {
    a.saturating_sub(b)
}

/// `_mm_max_epi16` on scalars.
#[inline]
pub fn max16(a: Llr, b: Llr) -> Llr {
    a.max(b)
}

/// `_mm_srai_epi16` on scalars.
#[inline]
pub fn srai16(a: Llr, imm: u32) -> Llr {
    a >> imm.min(15)
}

/// The three arranged LLR streams, each of length `K` — the output of
/// the data arrangement process and the decoder's working input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoftStreams {
    /// Systematic LLRs (`systematic1` in the paper).
    pub sys: Vec<Llr>,
    /// First parity LLRs (`yparity1`).
    pub p1: Vec<Llr>,
    /// Second parity LLRs (`yparity2`).
    pub p2: Vec<Llr>,
}

impl SoftStreams {
    /// All-zero streams of length `k`.
    pub fn zeros(k: usize) -> Self {
        Self {
            sys: vec![0; k],
            p1: vec![0; k],
            p2: vec![0; k],
        }
    }

    /// Block length.
    pub fn len(&self) -> usize {
        self.sys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sys.is_empty()
    }
}

/// Tail (termination) LLRs for both constituent trellises.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailLlrs {
    /// Encoder-1 systematic tail `x_K..x_{K+2}`.
    pub sys1: [Llr; 3],
    /// Encoder-1 parity tail `z_K..z_{K+2}`.
    pub p1: [Llr; 3],
    /// Encoder-2 systematic tail `x'_K..x'_{K+2}`.
    pub sys2: [Llr; 3],
    /// Encoder-2 parity tail `z'_K..z'_{K+2}`.
    pub p2: [Llr; 3],
}

impl TailLlrs {
    /// Extract just the termination LLRs from `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾` streams
    /// of length `K + 4` — the allocation-free companion of
    /// [`TurboLlrs::from_dstreams`] for callers that stage the hot
    /// `K`-length streams elsewhere.
    pub fn from_dstreams(d: &[Vec<Llr>; 3], k: usize) -> Self {
        let [d0, d1, d2] = d;
        assert!(d0.len() == k + 4 && d1.len() == k + 4 && d2.len() == k + 4);
        Self {
            sys1: [d0[k], d2[k], d1[k + 1]],
            p1: [d1[k], d0[k + 1], d2[k + 1]],
            sys2: [d0[k + 2], d2[k + 2], d1[k + 3]],
            p2: [d1[k + 2], d0[k + 3], d2[k + 3]],
        }
    }

    /// [`TailLlrs::from_dstreams`] over the triple-interleaved layout
    /// instead: `inter` holds `[d⁽⁰⁾ⱼ d⁽¹⁾ⱼ d⁽²⁾ⱼ]` triples for
    /// `j = 0..K+4` (the fused-ingest de-rate-match output,
    /// `RateMatcher::try_de_rate_match_interleaved_into`), so stream
    /// `s` position `j` is `inter[3j + s]`.
    pub fn from_interleaved(inter: &[Llr], k: usize) -> Self {
        assert!(inter.len() >= 3 * (k + 4), "need K+4 interleaved triples");
        let at = |s: usize, j: usize| inter[3 * j + s];
        Self {
            sys1: [at(0, k), at(2, k), at(1, k + 1)],
            p1: [at(1, k), at(0, k + 1), at(2, k + 1)],
            sys2: [at(0, k + 2), at(2, k + 2), at(1, k + 3)],
            p2: [at(1, k + 2), at(0, k + 3), at(2, k + 3)],
        }
    }
}

/// Complete decoder input for one code block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurboLlrs {
    /// Block size K.
    pub k: usize,
    /// Arranged data streams (length K each).
    pub streams: SoftStreams,
    /// Termination LLRs.
    pub tails: TailLlrs,
}

impl TurboLlrs {
    /// Split soft values laid out as the spec's `d⁽⁰⁾ d⁽¹⁾ d⁽²⁾` streams
    /// (each `K + 4` LLRs, see [`crate::turbo::TurboCodeword::to_dstreams`])
    /// back into systematic/parity/tail form.
    pub fn from_dstreams(d: &[Vec<Llr>; 3], k: usize) -> Self {
        let [d0, d1, d2] = d;
        assert!(d0.len() == k + 4 && d1.len() == k + 4 && d2.len() == k + 4);
        let streams = SoftStreams {
            sys: d0[..k].to_vec(),
            p1: d1[..k].to_vec(),
            p2: d2[..k].to_vec(),
        };
        let tails = TailLlrs::from_dstreams(d, k);
        Self { k, streams, tails }
    }

    /// Multiplex the data streams into the interleaved-triple layout the
    /// arrangement process consumes (tails stay separate — the paper's
    /// arrangement concerns the K-length hot streams).
    pub fn to_interleaved(&self) -> InterleavedLlrs {
        InterleavedLlrs::from_streams(&self.streams)
    }
}

/// The arrangement input: `[S1ₖ YP1ₖ YP2ₖ]` triples for `k = 0..K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedLlrs {
    /// Block size K (number of triples).
    pub k: usize,
    /// `3K` LLRs, triple-interleaved.
    pub data: Vec<Llr>,
}

impl InterleavedLlrs {
    /// Multiplex three arranged streams into triples.
    pub fn from_streams(s: &SoftStreams) -> Self {
        let k = s.len();
        assert!(s.p1.len() == k && s.p2.len() == k);
        let mut data = Vec::with_capacity(3 * k);
        for i in 0..k {
            data.push(s.sys[i]);
            data.push(s.p1[i]);
            data.push(s.p2[i]);
        }
        Self { k, data }
    }

    /// Scalar oracle de-interleave — the ground truth both arrangement
    /// kernels must reproduce.
    pub fn deinterleave_scalar(&self) -> SoftStreams {
        let mut out = SoftStreams::zeros(self.k);
        for i in 0..self.k {
            out.sys[i] = self.data[3 * i];
            out.p1[i] = self.data[3 * i + 1];
            out.p2[i] = self.data[3 * i + 2];
        }
        out
    }
}

/// Convert a transmitted bit to a noiseless LLR of magnitude `mag`
/// (bit 0 → +mag).
#[inline]
pub fn bit_to_llr(bit: u8, mag: Llr) -> Llr {
    if bit == 0 {
        mag
    } else {
        -mag
    }
}

/// Hard decision: LLR < 0 → bit 1.
#[inline]
pub fn llr_to_bit(l: Llr) -> u8 {
    u8::from(l < 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_helpers_match_intrinsic_semantics() {
        assert_eq!(adds16(i16::MAX, 1), i16::MAX);
        assert_eq!(subs16(i16::MIN, 1), i16::MIN);
        assert_eq!(max16(-5, 3), 3);
        assert_eq!(srai16(-8, 1), -4);
        assert_eq!(srai16(-1, 1), -1, "arithmetic shift keeps the sign");
    }

    #[test]
    fn interleave_round_trip() {
        let s = SoftStreams {
            sys: vec![1, 2, 3, 4],
            p1: vec![10, 20, 30, 40],
            p2: vec![-1, -2, -3, -4],
        };
        let il = InterleavedLlrs::from_streams(&s);
        assert_eq!(il.data, vec![1, 10, -1, 2, 20, -2, 3, 30, -3, 4, 40, -4]);
        assert_eq!(il.deinterleave_scalar(), s);
    }

    #[test]
    fn dstream_round_trip_via_encoder() {
        use crate::bits::random_bits;
        use crate::turbo::TurboEncoder;
        let enc = TurboEncoder::new(40);
        let bits = random_bits(40, 17);
        let cw = enc.encode(&bits);
        let d = cw.to_dstreams();
        let soft: [Vec<Llr>; 3] = d
            .iter()
            .map(|s| s.iter().map(|&b| bit_to_llr(b, 100)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let t = TurboLlrs::from_dstreams(&soft, 40);
        // systematic stream decodes back to the input bits
        let rx: Vec<u8> = t.streams.sys.iter().map(|&l| llr_to_bit(l)).collect();
        assert_eq!(rx, bits);
        // tails map back to the encoder's tail bits
        for i in 0..3 {
            assert_eq!(llr_to_bit(t.tails.sys1[i]), cw.tail_sys1[i]);
            assert_eq!(llr_to_bit(t.tails.p1[i]), cw.tail_p1[i]);
            assert_eq!(llr_to_bit(t.tails.sys2[i]), cw.tail_sys2[i]);
            assert_eq!(llr_to_bit(t.tails.p2[i]), cw.tail_p2[i]);
        }
    }

    #[test]
    fn bit_llr_round_trip() {
        assert_eq!(llr_to_bit(bit_to_llr(0, 50)), 0);
        assert_eq!(llr_to_bit(bit_to_llr(1, 50)), 1);
    }
}
