//! OFDM modulation: radix-2 FFT, subcarrier mapping, cyclic prefix.
//!
//! Parameters mirror the paper's 5 MHz FDD configuration: 512-point
//! FFT, 300 used subcarriers (25 RB × 12), normal CP. The FFT itself is
//! the "do OFDM" scalar workload of Figure 7.

use crate::modulation::Cplx;

/// In-place iterative radix-2 decimation-in-time FFT.
/// `inverse` selects the IFFT (includes the 1/N scale).
pub fn fft(buf: &mut [Cplx], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "FFT length must be a power of two, got {n}"
    );

    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f32::consts::PI / len as f32;
        let wlen = Cplx::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Cplx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2].mul(w);
                buf[start + k] = a.add(b);
                buf[start + k + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f32;
        for v in buf.iter_mut() {
            *v = Cplx::new(v.re * s, v.im * s);
        }
    }
}

/// OFDM modulator/demodulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfdmConfig {
    /// FFT size (512 for 5 MHz LTE).
    pub fft_size: usize,
    /// Used (data) subcarriers, mapped symmetrically around DC.
    pub used_subcarriers: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
}

impl OfdmConfig {
    /// The paper's testbed configuration: FDD, 5 MHz (25 RB).
    pub const fn lte5mhz() -> Self {
        Self {
            fft_size: 512,
            used_subcarriers: 300,
            cp_len: 36,
        }
    }

    /// Samples per OFDM symbol including CP.
    pub const fn symbol_len(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// Frequency-domain bin for data subcarrier `i` (DC skipped,
    /// negative frequencies wrap to the top of the FFT input).
    fn bin(&self, i: usize) -> usize {
        let half = self.used_subcarriers / 2;
        if i < half {
            // negative frequencies: -half .. -1
            self.fft_size - half + i
        } else {
            // positive frequencies: 1 .. half
            i - half + 1
        }
    }

    /// Modulate `used_subcarriers` frequency-domain symbols into one
    /// time-domain OFDM symbol with CP.
    ///
    /// The transform pair is **unitary** (1/√N each direction): white
    /// channel noise of per-axis variance σ² in the time domain stays
    /// σ² per subcarrier, so the AWGN channel's configured SNR is the
    /// SNR the demapper sees.
    pub fn modulate(&self, symbols: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(symbols.len(), self.used_subcarriers);
        let mut freq = vec![Cplx::default(); self.fft_size];
        for (i, &s) in symbols.iter().enumerate() {
            freq[self.bin(i)] = s;
        }
        fft(&mut freq, true);
        let s = (self.fft_size as f32).sqrt(); // 1/N · √N = 1/√N net
        for v in freq.iter_mut() {
            *v = Cplx::new(v.re * s, v.im * s);
        }
        let mut out = Vec::with_capacity(self.symbol_len());
        out.extend_from_slice(&freq[self.fft_size - self.cp_len..]);
        out.extend_from_slice(&freq);
        out
    }

    /// Demodulate one received OFDM symbol (with CP) back to
    /// frequency-domain subcarrier symbols.
    pub fn demodulate(&self, samples: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(samples.len(), self.symbol_len());
        let mut freq: Vec<Cplx> = samples[self.cp_len..].to_vec();
        fft(&mut freq, false);
        let s = 1.0 / (self.fft_size as f32).sqrt();
        for v in freq.iter_mut() {
            *v = Cplx::new(v.re * s, v.im * s);
        }
        (0..self.used_subcarriers)
            .map(|i| freq[self.bin(i)])
            .collect()
    }

    /// Modulate a stream of symbols into consecutive OFDM symbols,
    /// zero-padding the final one.
    pub fn modulate_stream(&self, symbols: &[Cplx]) -> Vec<Cplx> {
        let mut out = Vec::new();
        for chunk in symbols.chunks(self.used_subcarriers) {
            let mut grid = chunk.to_vec();
            grid.resize(self.used_subcarriers, Cplx::default());
            out.extend(self.modulate(&grid));
        }
        out
    }

    /// Demodulate a stream produced by [`OfdmConfig::modulate_stream`],
    /// returning `n_symbols` subcarrier symbols.
    pub fn demodulate_stream(&self, samples: &[Cplx], n_symbols: usize) -> Vec<Cplx> {
        let mut out = Vec::with_capacity(n_symbols);
        for chunk in samples.chunks(self.symbol_len()) {
            out.extend(self.demodulate(chunk));
            if out.len() >= n_symbols {
                break;
            }
        }
        out.truncate(n_symbols);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::random_bits;
    use crate::modulation::Modulation;

    fn close(a: Cplx, b: Cplx, eps: f32) -> bool {
        (a.re - b.re).abs() < eps && (a.im - b.im).abs() < eps
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Cplx::default(); 64];
        buf[0] = Cplx::new(1.0, 0.0);
        fft(&mut buf, false);
        assert!(buf.iter().all(|&v| close(v, Cplx::new(1.0, 0.0), 1e-4)));
    }

    #[test]
    fn fft_of_single_tone_is_a_bin() {
        let n = 128;
        let k = 5;
        let mut buf: Vec<Cplx> = (0..n)
            .map(|i| {
                let ph = 2.0 * std::f32::consts::PI * (k * i) as f32 / n as f32;
                Cplx::new(ph.cos(), ph.sin())
            })
            .collect();
        fft(&mut buf, false);
        for (i, v) in buf.iter().enumerate() {
            if i == k {
                assert!(close(*v, Cplx::new(n as f32, 0.0), 1e-2), "bin {i}: {v:?}");
            } else {
                assert!(v.norm_sq() < 1e-4, "leakage at bin {i}: {v:?}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let mut buf: Vec<Cplx> = (0..256)
            .map(|i| Cplx::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let orig = buf.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        for (a, b) in buf.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-4));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut buf: Vec<Cplx> = (0..512)
            .map(|i| Cplx::new((i as f32 * 0.7).sin(), (i as f32 * 1.3).sin()))
            .collect();
        let t_energy: f32 = buf.iter().map(|v| v.norm_sq()).sum();
        fft(&mut buf, false);
        let f_energy: f32 = buf.iter().map(|v| v.norm_sq()).sum::<f32>() / 512.0;
        assert!((t_energy - f_energy).abs() / t_energy < 1e-3);
    }

    #[test]
    fn ofdm_round_trip_is_transparent() {
        let cfg = OfdmConfig::lte5mhz();
        let bits = random_bits(cfg.used_subcarriers * 2, 7);
        let syms = Modulation::Qpsk.modulate(&bits);
        let tx = cfg.modulate(&syms);
        assert_eq!(tx.len(), 548);
        let rx = cfg.demodulate(&tx);
        for (a, b) in rx.iter().zip(&syms) {
            assert!(close(*a, *b, 1e-3), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cp_really_is_a_prefix_copy() {
        let cfg = OfdmConfig::lte5mhz();
        let syms = Modulation::Qpsk.modulate(&random_bits(600, 8));
        let tx = cfg.modulate(&syms[..300]);
        assert_eq!(&tx[..cfg.cp_len], &tx[cfg.fft_size..]);
    }

    #[test]
    fn stream_round_trip_with_padding() {
        let cfg = OfdmConfig::lte5mhz();
        let bits = random_bits(1450 * 2, 3);
        let syms = Modulation::Qpsk.modulate(&bits);
        let tx = cfg.modulate_stream(&syms);
        assert_eq!(tx.len(), 5 * cfg.symbol_len()); // ceil(1450/300) = 5
        let rx = cfg.demodulate_stream(&tx, syms.len());
        assert_eq!(rx.len(), syms.len());
        for (a, b) in rx.iter().zip(&syms) {
            assert!(close(*a, *b, 1e-3));
        }
    }
}
