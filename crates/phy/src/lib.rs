//! # vran-phy — LTE Layer-1 physical layer in Rust
//!
//! A from-scratch implementation of the OAI signal-processing chain the
//! paper profiles (§3.1): CRC attachment, code-block segmentation, the
//! 3GPP TS 36.212 rate-1/3 turbo code (QPP interleaver, 8-state RSC
//! constituents, trellis termination), rate matching (sub-block
//! interleaver + circular buffer), TS 36.211 Gold-sequence scrambling,
//! QPSK/16-QAM/64-QAM mapping with max-log soft demapping, OFDM
//! (radix-2 FFT + cyclic prefix) and the PDCCH convolutional code with a
//! tail-biting Viterbi decoder (DCI path).
//!
//! Two execution styles coexist, mirroring DESIGN.md §5.1:
//!
//! * plain Rust implementations used by the end-to-end pipeline,
//!   correctness tests and native wall-clock benches;
//! * `vran-simd` VM kernels for the SIMD-accelerated hot paths (the
//!   max-log-MAP decoder in [`turbo::simd_decoder`]) whose traces feed
//!   the `vran-uarch` simulator — these *are* the functional
//!   implementation when run in native mode, not a model.
//!
//! The data the paper's arrangement process shuffles — interleaved
//! systematic/parity LLR triples — is produced here ([`llr`]) and
//! consumed here (the decoder), so `vran-arrange` can be validated
//! end-to-end: both arrangement mechanisms must yield bit-identical
//! decoded transport blocks.
//!
//! # Example
//!
//! ```
//! use vran_phy::bits::random_bits;
//! use vran_phy::llr::{bit_to_llr, TurboLlrs};
//! use vran_phy::turbo::{TurboDecoder, TurboEncoder};
//!
//! let bits = random_bits(104, 7);
//! let codeword = TurboEncoder::new(104).encode(&bits);
//!
//! // hard-decision LLRs from the three output streams
//! let d = codeword.to_dstreams();
//! let soft: [Vec<i16>; 3] = d
//!     .iter()
//!     .map(|s| s.iter().map(|&b| bit_to_llr(b, 60)).collect())
//!     .collect::<Vec<_>>()
//!     .try_into()
//!     .unwrap();
//!
//! let input = TurboLlrs::from_dstreams(&soft, 104);
//! let out = TurboDecoder::new(104, 4).decode(&input);
//! assert_eq!(out.bits, bits);
//! ```

pub mod bits;
pub mod channel;
pub mod crc;
pub mod dci;
pub mod demap;
pub mod equalizer;
pub mod interleaver;
pub mod llr;
pub mod modulation;
pub mod modulation_simd;
pub mod ofdm;
pub mod rate_match;
pub mod scrambler;
pub mod segmentation;
pub mod turbo;

pub use interleaver::QppInterleaver;
pub use llr::{InterleavedLlrs, Llr};
pub use turbo::{TurboDecoder, TurboEncoder};
