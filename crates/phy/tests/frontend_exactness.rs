//! The `frontend_exactness` sweep: every native front-end SIMD entry
//! point (fixed-point demap, word-parallel descramble, sliced/folded
//! CRC) vs its scalar oracle across **all 188** TS 36.212 block sizes
//! and **every** host-ISA tier.
//!
//! The uplink pipeline makes the SIMD front end the default path on
//! the strength of this sweep (see `PipelineConfig::frontend_simd`):
//! whatever K the segmenter picks, whatever modulation the grant
//! carries and whatever tier the dispatcher lands on, each kernel must
//! reproduce its scalar reference bit for bit — including ragged
//! non-vector tails, saturation corners and non-byte-multiple CRC bit
//! lengths.
//!
//! Lives in its own integration-test binary because the ISA ceiling is
//! process-global; a single `#[test]` loops the tiers (and the three
//! kernel families inside each tier) so masked regions never overlap —
//! the harness would otherwise run per-kernel tests on concurrent
//! threads and race on the ceiling.

use vran_phy::crc::{available_crc, best_crc, has_pclmul, CrcImpl, CRC16, CRC24A, CRC24B, CRC8};
use vran_phy::demap::{available_demap, best_demap, demap_with, DemapImpl};
use vran_phy::interleaver::QPP_TABLE;
use vran_phy::llr::Llr;
use vran_phy::modulation::{Cplx, Modulation};
use vran_phy::scrambler::{
    available_descramble, best_descramble, descramble_llrs, descramble_llrs_with, DescrambleImpl,
};
use vran_simd::host::{set_isa_ceiling, HostIsa};
use vran_util::rng::SmallRng;

/// All 188 standard code-block sizes, the registry that drives every
/// sweep below.
fn all_k() -> Vec<usize> {
    let ks: Vec<usize> = QPP_TABLE.iter().map(|r| r.k as usize).collect();
    assert_eq!(ks.len(), 188, "the registry drives the sweep");
    ks
}

/// The demap tier `best_demap` must pick under each ceiling (when the
/// host itself is capable enough to reach it).
fn expected_best_demap(ceiling: HostIsa) -> DemapImpl {
    match ceiling {
        HostIsa::Scalar => DemapImpl::Scalar,
        HostIsa::Sse2 | HostIsa::Ssse3 => DemapImpl::Sse2,
        HostIsa::Avx2 => DemapImpl::Avx2,
        HostIsa::Avx512bw => DemapImpl::Avx512bw,
    }
}

fn expected_best_descramble(ceiling: HostIsa) -> DescrambleImpl {
    match ceiling {
        HostIsa::Scalar => DescrambleImpl::ScalarWord,
        HostIsa::Sse2 | HostIsa::Ssse3 => DescrambleImpl::Sse2,
        HostIsa::Avx2 => DescrambleImpl::Avx2,
        HostIsa::Avx512bw => DescrambleImpl::Avx512bw,
    }
}

/// CRC tier expectation: clmul needs the Ssse3 ceiling *and* the
/// orthogonal PCLMULQDQ probe; sliced8 is the scalar-ISA best.
fn expected_best_crc(ceiling: HostIsa) -> CrcImpl {
    if ceiling >= HostIsa::Ssse3 && has_pclmul() {
        CrcImpl::ClmulFold
    } else {
        CrcImpl::Sliced8
    }
}

/// Received symbols for a K-sized code block at modulation `m`: the
/// rate-matched length padded to whole symbols, with Gaussian-ish
/// perturbed constellation points so every axis magnitude region of
/// the 16/64-QAM ladders is populated.
fn rx_symbols(k: usize, m: Modulation, rng: &mut SmallRng) -> Vec<Cplx> {
    let e = (3 * (k + 4) * 2).min(2 * k + 12);
    let n = e.div_ceil(m.bits_per_symbol());
    (0..n)
        .map(|_| Cplx {
            re: rng.gen_range_f32(-9.0, 9.0),
            im: rng.gen_range_f32(-9.0, 9.0),
        })
        .collect()
}

#[test]
fn all_frontend_kernels_bit_exact_at_every_isa_tier_all_188_k() {
    demap_sweep();
    descramble_sweep();
    crc_sweep();
}

fn demap_sweep() {
    let mut rng = SmallRng::seed_from_u64(0xDE3A_9001);
    // Inputs generated once, per (K, modulation), reused under every
    // ceiling so any cross-tier mismatch is attributable to the kernel
    // alone.
    let cases: Vec<(usize, Modulation, Vec<Cplx>, f32)> = all_k()
        .into_iter()
        .enumerate()
        .flat_map(|(i, k)| {
            let scales = [0.25, 1.0, 3.7, 16.0];
            [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64].map(|m| {
                let syms = rx_symbols(k, m, &mut rng);
                (k, m, syms, scales[i % scales.len()])
            })
        })
        .collect();

    for ceiling in HostIsa::all() {
        set_isa_ceiling(Some(ceiling));
        let best = best_demap();
        if vran_simd::host::has(expected_best_demap(ceiling).required_isa()) {
            assert_eq!(
                best,
                expected_best_demap(ceiling),
                "ceiling {}",
                ceiling.name()
            );
        }
        assert!(available_demap().contains(&best));

        for (k, m, syms, ns) in &cases {
            let expect = demap_with(DemapImpl::Scalar, *m, syms, *ns);
            for imp in available_demap() {
                assert_eq!(
                    demap_with(imp, *m, syms, *ns),
                    expect,
                    "K={k} {:?} ns={ns} {} under {} ceiling",
                    m,
                    imp.name(),
                    ceiling.name()
                );
            }
        }
    }
    set_isa_ceiling(None);
}

fn descramble_sweep() {
    let mut rng = SmallRng::seed_from_u64(0xDE3A_9002);
    // LLR length = the padded coded length a K-block feeds the
    // descrambler (always ≥ one SIMD block and usually a ragged tail);
    // c_init drawn per case across the full 31-bit range, plus
    // saturation-corner LLR values seeded into every buffer.
    let cases: Vec<(usize, Vec<Llr>, u32)> = all_k()
        .into_iter()
        .map(|k| {
            let n = (3 * (k + 4) * 2).min(2 * k + 12).next_multiple_of(4);
            let mut llrs: Vec<Llr> = (0..n).map(|_| rng.next_u32() as i16).collect();
            llrs[0] = i16::MIN;
            llrs[n / 2] = i16::MAX;
            (k, llrs, rng.next_u32() & 0x7FFF_FFFF)
        })
        .collect();

    for ceiling in HostIsa::all() {
        set_isa_ceiling(Some(ceiling));
        let best = best_descramble();
        if vran_simd::host::has(expected_best_descramble(ceiling).required_isa()) {
            assert_eq!(
                best,
                expected_best_descramble(ceiling),
                "ceiling {}",
                ceiling.name()
            );
        }
        assert!(available_descramble().contains(&best));

        for (k, llrs, c_init) in &cases {
            let mut expect = llrs.clone();
            descramble_llrs(&mut expect, *c_init);
            for imp in available_descramble() {
                let mut got = llrs.clone();
                descramble_llrs_with(imp, &mut got, *c_init);
                assert_eq!(
                    got,
                    expect,
                    "K={k} c_init={c_init:#x} {} under {} ceiling",
                    imp.name(),
                    ceiling.name()
                );
            }
        }
    }
    set_isa_ceiling(None);
}

fn crc_sweep() {
    let mut rng = SmallRng::seed_from_u64(0xDE3A_9003);
    // Bit lengths a CRC actually sees in the pipeline: the K-sized
    // block (check side), K+24 (attach side), and deliberately
    // non-byte-multiple lengths to exercise the ragged bit tail of the
    // packed adapter.
    let cases: Vec<Vec<u8>> = all_k()
        .into_iter()
        .flat_map(|k| [k, k + 24, k + 5, k.saturating_sub(3)])
        .map(|bits| (0..bits).map(|_| (rng.next_u32() & 1) as u8).collect())
        .collect();

    for ceiling in HostIsa::all() {
        set_isa_ceiling(Some(ceiling));
        let best = best_crc();
        assert_eq!(
            best,
            expected_best_crc(ceiling),
            "ceiling {}",
            ceiling.name()
        );
        assert!(available_crc().contains(&best));

        for bits in &cases {
            for crc in [CRC24A, CRC24B, CRC16, CRC8] {
                let expect = crc.compute_with(CrcImpl::BitSerial, bits);
                for imp in available_crc() {
                    assert_eq!(
                        crc.compute_with(imp, bits),
                        expect,
                        "len={} width={} {} under {} ceiling",
                        bits.len(),
                        crc.width(),
                        imp.name(),
                        ceiling.name()
                    );
                }
            }
        }
    }
    set_isa_ceiling(None);
}
