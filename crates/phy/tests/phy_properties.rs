//! Property-based tests over the PHY substrate: structural invariants
//! that must hold for arbitrary inputs, not just the fixtures the unit
//! tests use.

use vran_phy::bits::{pack_msb, random_bits, unpack_msb};
use vran_phy::crc::{CRC16, CRC24A, CRC24B, CRC8};
use vran_phy::interleaver::{QppInterleaver, QPP_TABLE};
use vran_phy::llr::{bit_to_llr, llr_to_bit, InterleavedLlrs, SoftStreams, TurboLlrs};
use vran_phy::modulation::Modulation;
use vran_phy::ofdm::fft;
use vran_phy::rate_match::{PackedRateMatcher, RateMatcher};
use vran_phy::scrambler::{descramble_llrs, scramble_bits, GoldSequence};
use vran_phy::segmentation::Segmentation;
use vran_phy::turbo::{TurboDecoder, TurboEncoder};
use vran_util::proptest::prelude::*;

fn bits_strategy(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_identity(bits in prop::collection::vec(0u8..2, 0..256)) {
        let n = bits.len();
        prop_assert_eq!(unpack_msb(&pack_msb(&bits), n), bits);
    }

    #[test]
    fn crc_linearity(a in bits_strategy(96), b in bits_strategy(96)) {
        // CRC over GF(2) is linear: crc(a ⊕ b) = crc(a) ⊕ crc(b)
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            let ca = crc.compute(&a);
            let cb = crc.compute(&b);
            let ab: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            let cab = crc.compute(&ab);
            let xor: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(cab, xor);
        }
    }

    #[test]
    fn crc_detects_any_single_flip(bits in bits_strategy(80), pos in 0usize..104) {
        let coded = CRC24A.attach(&bits);
        let mut bad = coded.clone();
        bad[pos % coded.len()] ^= 1;
        prop_assert!(CRC24A.check(&bad).is_none());
    }

    #[test]
    fn qpp_interleave_roundtrip(k_idx in 0usize..188, seed in any::<u64>()) {
        let k = QPP_TABLE[k_idx].k as usize;
        let il = QppInterleaver::new(k);
        let data = random_bits(k, seed);
        prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data.clone());
        prop_assert_eq!(il.interleave(&il.deinterleave(&data)), data);
    }

    #[test]
    fn scrambling_involution(bits in bits_strategy(200), c_init in 1u32..0x7FFF_FFFF) {
        let mut b = bits.clone();
        scramble_bits(&mut b, c_init);
        scramble_bits(&mut b, c_init);
        prop_assert_eq!(b, bits);
    }

    #[test]
    fn llr_descramble_consistent_with_bit_scramble(bits in bits_strategy(150), c_init in 1u32..1_000_000) {
        let mut tx = bits.clone();
        scramble_bits(&mut tx, c_init);
        let mut llrs: Vec<i16> = tx.iter().map(|&b| bit_to_llr(b, 90)).collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|&l| llr_to_bit(l)).collect();
        prop_assert_eq!(rx, bits);
    }

    #[test]
    fn gold_sequences_differ_across_inits(a in 1u32..1_000_000, b in 1u32..1_000_000) {
        prop_assume!(a != b);
        prop_assert_ne!(GoldSequence::new(a).take(128), GoldSequence::new(b).take(128));
    }

    #[test]
    fn modulation_roundtrip_all_orders(seed in any::<u64>(), m_idx in 0usize..3) {
        let m = Modulation::ALL[m_idx];
        let bits = random_bits(m.bits_per_symbol() * 64, seed);
        let syms = m.modulate(&bits);
        let rx: Vec<u8> = m.demodulate(&syms, 1.0).iter().map(|&l| llr_to_bit(l)).collect();
        prop_assert_eq!(rx, bits);
    }

    #[test]
    fn fft_linearity(seed in any::<u64>()) {
        use vran_phy::modulation::Cplx;
        let n = 64;
        let mk = |s: u64| -> Vec<Cplx> {
            let b = random_bits(2 * n, s);
            (0..n).map(|i| Cplx::new(b[2 * i] as f32 - 0.5, b[2 * i + 1] as f32 - 0.5)).collect()
        };
        let (a, b) = (mk(seed), mk(seed ^ 0xABCD));
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| x.add(*y)).collect();
        let f = |mut v: Vec<Cplx>| {
            fft(&mut v, false);
            v
        };
        let (fa, fb, fs) = (f(a), f(b), f(sum));
        for i in 0..n {
            let lin = fa[i].add(fb[i]);
            prop_assert!(lin.sub(fs[i]).norm_sq() < 1e-4, "nonlinear at bin {i}");
        }
    }

    #[test]
    fn rate_match_full_rate_roundtrip(k_idx in 0usize..30, seed in any::<u64>()) {
        // At e == number of real bits with rv 0, de-rate-matching the
        // hard-decision LLRs recovers every d-stream exactly.
        let k = QPP_TABLE[k_idx].k as usize;
        let d = k + 4;
        let rm = RateMatcher::new(d);
        let streams = [random_bits(d, seed), random_bits(d, seed ^ 1), random_bits(d, seed ^ 2)];
        let tx = rm.rate_match(&streams, 3 * d, 0);
        let llrs: Vec<i16> = tx.iter().map(|&b| bit_to_llr(b, 70)).collect();
        let rx = rm.de_rate_match(&llrs, 0);
        for (s, got) in streams.iter().zip(&rx) {
            let hard: Vec<u8> = got.iter().map(|&l| llr_to_bit(l)).collect();
            prop_assert_eq!(&hard, s);
            prop_assert!(got.iter().all(|&l| l != 0), "every position must be filled");
        }
    }

    #[test]
    fn segmentation_roundtrip(extra in 1usize..4000, mult in 1usize..8) {
        let b = extra + mult * 3000;
        let bits = random_bits(b, (b as u64) | 1);
        let seg = Segmentation::plan(b);
        let blocks = seg.segment(&bits);
        prop_assert_eq!(blocks.len(), seg.c);
        prop_assert_eq!(seg.desegment(&blocks), Some(bits));
    }

    #[test]
    fn turbo_noiseless_roundtrip_any_small_k(k_idx in 0usize..12, seed in any::<u64>()) {
        let k = QPP_TABLE[k_idx].k as usize;
        let bits = random_bits(k, seed);
        let cw = TurboEncoder::new(k).encode(&bits);
        let d = cw.to_dstreams();
        let soft: [Vec<i16>; 3] = d
            .iter()
            .map(|s| s.iter().map(|&b| bit_to_llr(b, 60)).collect())
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let input = TurboLlrs::from_dstreams(&soft, k);
        let out = TurboDecoder::new(k, 4).decode(&input);
        prop_assert_eq!(out.bits, bits);
    }

    #[test]
    fn decoder_never_panics_on_garbage(seed in any::<u64>(), k_idx in 0usize..8) {
        // Arbitrary (even adversarial) LLR input must produce a
        // well-formed outcome, never a panic or wrong-length output.
        let k = QPP_TABLE[k_idx].k as usize;
        let mk = |s: u64| -> Vec<i16> {
            let mut x = s | 1;
            (0..k)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 48) as i16
                })
                .collect()
        };
        let input = TurboLlrs {
            k,
            streams: SoftStreams { sys: mk(seed), p1: mk(seed ^ 1), p2: mk(seed ^ 2) },
            tails: Default::default(),
        };
        let out = TurboDecoder::new(k, 2).decode(&input);
        prop_assert_eq!(out.bits.len(), k);
        prop_assert_eq!(out.iterations_run, 2);
    }

    #[test]
    fn simd_and_scalar_decoders_agree_on_garbage(seed in any::<u64>()) {
        // Bit-exactness must hold even on inputs that exercise
        // saturation everywhere.
        use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
        use vran_simd::RegWidth;
        let k = 40;
        let mk = |s: u64| -> Vec<i16> {
            let mut x = s | 1;
            (0..k)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 48) as i16
                })
                .collect()
        };
        let input = TurboLlrs {
            k,
            streams: SoftStreams { sys: mk(seed), p1: mk(seed ^ 3), p2: mk(seed ^ 7) },
            tails: Default::default(),
        };
        let scalar = TurboDecoder::new(k, 2).decode(&input);
        let simd = SimdTurboDecoder::new(k, 2, RegWidth::Sse128).decode_native(&input);
        prop_assert_eq!(scalar.bits, simd.bits);
    }

    #[test]
    fn native_decoder_matches_scalar_on_garbage(seed in any::<u64>(), k_idx in 0usize..8) {
        // Every runtime-dispatched native ISA level must be bit-exact
        // with the scalar oracle, including on saturating inputs.
        use vran_phy::turbo::{DecoderIsa, NativeTurboDecoder};
        let k = QPP_TABLE[k_idx].k as usize;
        let mk = |s: u64| -> Vec<i16> {
            let mut x = s | 1;
            (0..k)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 48) as i16
                })
                .collect()
        };
        let input = TurboLlrs {
            k,
            streams: SoftStreams { sys: mk(seed), p1: mk(seed ^ 3), p2: mk(seed ^ 7) },
            tails: Default::default(),
        };
        let oracle = TurboDecoder::new(k, 2).decode(&input);
        for isa in DecoderIsa::available() {
            let native = NativeTurboDecoder::with_isa(k, 2, isa).decode(&input);
            prop_assert_eq!(&native.bits, &oracle.bits, "ISA {} diverged", isa.name());
        }
    }

    #[test]
    fn native_batch_matches_scalar_on_garbage(seed in any::<u64>(), k_idx in 0usize..8) {
        // The two-block batch kernel decodes both lanes bit-exactly.
        use vran_phy::turbo::NativeBatchTurboDecoder;
        let k = QPP_TABLE[k_idx].k as usize;
        let mk = |s: u64| -> Vec<i16> {
            let mut x = s | 1;
            (0..k)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 48) as i16
                })
                .collect()
        };
        let block = |s: u64| TurboLlrs {
            k,
            streams: SoftStreams { sys: mk(s), p1: mk(s ^ 3), p2: mk(s ^ 7) },
            tails: Default::default(),
        };
        let pair = [block(seed), block(seed ^ 0x9E37)];
        let dec = TurboDecoder::new(k, 2);
        let got = NativeBatchTurboDecoder::new(k, 2).decode_pair(&pair);
        for (g, input) in got.iter().zip(&pair) {
            prop_assert_eq!(&g.bits, &dec.decode(input).bits);
        }
    }

    #[test]
    fn native_quad_batch_matches_scalar_every_k(k_idx in 0usize..188, seed in any::<u64>()) {
        // The four-block quad-in-zmm kernel (pair/single split where
        // the host lacks AVX-512BW) decodes every lane bit-exactly
        // against the scalar oracle for every legal QPP size.
        use vran_phy::turbo::native_batch::{NativeBatchTurboDecoder, QUAD};
        let k = QPP_TABLE[k_idx].k as usize;
        let mk = |s: u64| -> Vec<i16> {
            let mut x = s | 1;
            (0..k)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    (x >> 48) as i16
                })
                .collect()
        };
        let block = |s: u64| TurboLlrs {
            k,
            streams: SoftStreams { sys: mk(s), p1: mk(s ^ 3), p2: mk(s ^ 7) },
            tails: Default::default(),
        };
        let quad: [TurboLlrs; QUAD] =
            core::array::from_fn(|g| block(seed ^ (0x9E37 * g as u64)));
        let dec = TurboDecoder::new(k, 2);
        let got = NativeBatchTurboDecoder::new(k, 2).decode_quad(&quad);
        for (g, input) in got.iter().zip(&quad) {
            prop_assert_eq!(&g.bits, &dec.decode(input).bits, "K={} diverged", k);
        }
    }

    #[test]
    fn viterbi_never_panics_on_garbage(seed in any::<u64>(), n in 8usize..64) {
        use vran_phy::dci::viterbi_decode_tb;
        let mut x = seed | 1;
        let llrs: Vec<i16> = (0..3 * n)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                (x >> 48) as i16
            })
            .collect();
        let out = viterbi_decode_tb(&llrs, n);
        prop_assert_eq!(out.len(), n);
        prop_assert!(out.iter().all(|&b| b <= 1));
    }

    #[test]
    fn packed_encoder_matches_scalar_oracle_every_k(k_idx in 0usize..188, seed in any::<u64>()) {
        // The packed-word encoder must be bit-exact with the per-bit
        // trellis walk for every legal QPP size at every ISA level the
        // host dispatches to (word64 always; SSE2/AVX2/AVX-512 where
        // present).
        use vran_phy::turbo::{EncoderIsa, PackedTurboEncoder};
        let k = QPP_TABLE[k_idx].k as usize;
        let bits = random_bits(k, seed);
        let oracle = TurboEncoder::new(k).encode(&bits);
        for isa in EncoderIsa::available() {
            let got = PackedTurboEncoder::with_isa(k, isa).encode(&bits);
            prop_assert_eq!(&got, &oracle, "ISA {} diverged at K={}", isa.name(), k);
        }
    }

    #[test]
    fn packed_rate_match_matches_scalar_every_k(
        k_idx in 0usize..188,
        seed in any::<u64>(),
        e_sel in 0usize..4,
        rv in 0usize..4,
    ) {
        // The word-at-a-time readout must reproduce the per-bit
        // selection loop across puncturing, exact coverage and
        // multi-wrap repetition at every redundancy version.
        use vran_phy::bits::packed_lsb_words;
        let k = QPP_TABLE[k_idx].k as usize;
        let d = k + 4;
        let streams = [random_bits(d, seed), random_bits(d, seed ^ 1), random_bits(d, seed ^ 2)];
        let words = streams.clone().map(|s| packed_lsb_words(&s));
        let e = [k / 2 + 1, k, 3 * d, 3 * d + 65][e_sel];
        let want = RateMatcher::new(d).rate_match(&streams, e, rv);
        let got = PackedRateMatcher::new(d)
            .rate_match_packed([&words[0], &words[1], &words[2]], e, rv);
        prop_assert_eq!(got, want, "d={} e={} rv={}", d, e, rv);
    }

    #[test]
    fn interleaved_llrs_roundtrip(k in 1usize..300, seed in any::<u64>()) {
        let vals = random_bits(3 * k, seed);
        let s = SoftStreams {
            sys: vals[..k].iter().map(|&b| b as i16 * 7 - 3).collect(),
            p1: vals[k..2 * k].iter().map(|&b| b as i16 * 11 - 5).collect(),
            p2: vals[2 * k..].iter().map(|&b| b as i16 * 13 - 6).collect(),
        };
        let il = InterleavedLlrs::from_streams(&s);
        prop_assert_eq!(il.deinterleave_scalar(), s);
    }
}
