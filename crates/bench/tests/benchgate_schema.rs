//! The checked-in `BENCH_baseline.json` must stay parseable and keep
//! the metrics CI gates on — a stale or hand-mangled baseline should
//! fail here, not mysteriously inside `benchgate --check`.

use vran_bench::gate::{compare, BenchReport};

fn baseline() -> BenchReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_baseline.json is checked in");
    BenchReport::from_json(&text).expect("baseline parses under the current schema")
}

#[test]
fn baseline_has_simulator_metrics_at_all_widths() {
    let b = baseline();
    let arrange = b.suite("arrange_sim").expect("arrange_sim suite");
    assert!(arrange.gated);
    for width in ["SSE128", "AVX256", "AVX512"] {
        for mech in ["original", "apcm"] {
            for metric in ["cycles", "uops", "upc"] {
                let name = format!("{width}.{mech}.{metric}");
                assert!(arrange.get(&name).is_some(), "baseline lost {name}");
            }
        }
        let speedup = arrange
            .get(&format!("{width}.apcm.speedup"))
            .expect("speedup metric");
        assert!(
            speedup > 1.0,
            "{width}: APCM must beat the original ({speedup})"
        );
    }
}

#[test]
fn baseline_has_pipeline_suites() {
    let b = baseline();
    let stat = b.suite("pipeline_static").expect("pipeline_static suite");
    assert!(stat.gated);
    assert!(stat.get("ok_packets").unwrap_or(0.0) > 0.0);
    let wall = b
        .suite("pipeline_wallclock")
        .expect("pipeline_wallclock suite");
    assert!(!wall.gated, "wall-clock numbers must never gate CI");
    assert!(wall.get("stage.arrange.mean_ns").is_some());
}

#[test]
fn baseline_is_self_consistent() {
    let b = baseline();
    assert!(
        compare(&b, &b).is_empty(),
        "a report must pass against itself"
    );
    assert_ne!(b.git_sha, "");
}
