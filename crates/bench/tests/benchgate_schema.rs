//! The checked-in `BENCH_baseline.json` must stay parseable and keep
//! the metrics CI gates on — a stale or hand-mangled baseline should
//! fail here, not mysteriously inside `benchgate --check`.

use vran_bench::gate::{compare, BenchReport, ToleranceClass};

fn baseline() -> BenchReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_baseline.json is checked in");
    BenchReport::from_json(&text).expect("baseline parses under the current schema")
}

#[test]
fn baseline_has_simulator_metrics_at_all_widths() {
    let b = baseline();
    let arrange = b.suite("arrange_sim").expect("arrange_sim suite");
    assert!(arrange.gated);
    for width in ["SSE128", "AVX256", "AVX512"] {
        for mech in ["original", "apcm"] {
            for metric in ["cycles", "uops", "upc"] {
                let name = format!("{width}.{mech}.{metric}");
                assert!(arrange.get(&name).is_some(), "baseline lost {name}");
            }
        }
        let speedup = arrange
            .get(&format!("{width}.apcm.speedup"))
            .expect("speedup metric");
        assert!(
            speedup > 1.0,
            "{width}: APCM must beat the original ({speedup})"
        );
    }
}

#[test]
fn baseline_has_pipeline_suites() {
    let b = baseline();
    let stat = b.suite("pipeline_static").expect("pipeline_static suite");
    assert!(stat.gated);
    assert!(stat.get("ok_packets.count").unwrap_or(0.0) > 0.0);
    let wall = b
        .suite("pipeline_wallclock")
        .expect("pipeline_wallclock suite");
    assert!(!wall.gated, "wall-clock numbers must never gate CI");
    assert!(wall.get("stage.arrange.mean_ns").is_some());
}

#[test]
fn baseline_is_self_consistent() {
    let b = baseline();
    assert!(
        compare(&b, &b).is_empty(),
        "a report must pass against itself"
    );
    assert_ne!(b.git_sha, "");
}

#[test]
fn baseline_has_native_decoder_suite() {
    let b = baseline();
    let dn = b.suite("decoder_native").expect("decoder_native suite");
    assert!(!dn.gated, "wall-clock decoder numbers must never gate CI");
    assert!(dn.get("scalar.ns_per_block").unwrap_or(0.0) > 0.0);
    // The scalar fallback of the native decoder is always measured;
    // wider ISA rows depend on the recording host.
    assert!(dn.get("native.scalar.ns_per_block").is_some());
    let best = dn
        .metrics
        .iter()
        .filter(|(name, _)| name.ends_with(".speedup"))
        .map(|&(_, value)| value)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best > 1.0,
        "recorded native fast path must beat the scalar decoder ({best})"
    );
    assert!(dn.get("batch2.ns_per_block").is_some());
    assert!(dn.get("batch4.ns_per_block").is_some());
    assert!(dn.get("batch4.accelerated").is_some());
}

#[test]
fn baseline_has_cell_scale_suites() {
    let b = baseline();
    let smoke = b.suite("cell_scale_smoke").expect("cell_scale_smoke suite");
    assert!(smoke.gated, "the smoke preset is the tail-latency gate");
    for metric in [
        "offered.count",
        "served.count",
        "harq_retx.count",
        "latency.total.p50_ns",
        "latency.total.p95_ns",
        "latency.total.p99_ns",
        "latency.queue.p99_ns",
        "ue.fairness.ratio",
    ] {
        assert!(smoke.get(metric).is_some(), "baseline lost {metric}");
    }
    assert!(smoke.get("served.count").unwrap() > 0.0);
    let full = b.suite("cell_scale_full").expect("cell_scale_full suite");
    assert!(!full.gated, "the full sweep is informational");
    assert!(full.get("c1.cores_for_300mbps").unwrap_or(0.0) > 0.0);
}

#[test]
fn baseline_has_stagegraph_suites() {
    let b = baseline();
    let sg = b.suite("uplink_stagegraph").expect("uplink_stagegraph");
    assert!(
        sg.gated,
        "the deterministic stage-graph sweep is the occupancy gate"
    );
    for workers in ["w1", "w2"] {
        for metric in [
            "packets.count",
            "ok.count",
            "batch.lane_occupancy.ratio",
            "batch.quad_blocks.count",
            "batch.pair_blocks.count",
            "batch.single_blocks.count",
            "batch.flush.lanes_full.count",
            "batch.flush.deadline.count",
            "batch.flush.drain.count",
        ] {
            let name = format!("{workers}.{metric}");
            assert!(sg.get(&name).is_some(), "baseline lost {name}");
        }
        let occ = sg
            .get(&format!("{workers}.batch.lane_occupancy.ratio"))
            .unwrap();
        assert!(
            occ >= 0.9,
            "{workers}: recorded occupancy {occ} below the ISSUE's 0.9 target"
        );
    }
    let wall = b
        .suite("uplink_stagegraph_wallclock")
        .expect("uplink_stagegraph_wallclock");
    assert!(!wall.gated, "wall-clock comparisons must never gate CI");
    assert!(
        wall.get("stagegraph.vs_serial_batch.speedup")
            .unwrap_or(0.0)
            > 0.0,
        "baseline lost the matched-semantics speedup"
    );
    assert!(wall.get("stagegraph.vs_serial_earlystop.speedup").is_some());
    assert!(wall.get("batch.lane_occupancy.ratio").is_some());
}

#[test]
fn every_gated_baseline_metric_has_a_tolerance_class() {
    // The gate refuses unknown classes; a baseline that sneaks one in
    // would fail every CI run — catch it here with a useful message.
    let b = baseline();
    for suite in b.suites.iter().filter(|s| s.gated) {
        for (metric, _) in &suite.metrics {
            assert!(
                ToleranceClass::for_metric(metric).is_some(),
                "{}/{}: gated metric has no tolerance class",
                suite.name,
                metric
            );
        }
    }
}

#[test]
fn baseline_has_scaleout_suites() {
    let b = baseline();
    for name in ["downlink_scaleout", "uplink_scaleout"] {
        let s = b.suite(name).expect(name);
        assert!(!s.gated, "{name}: scale-out numbers must never gate CI");
        assert!(s.get("w1.mbps").unwrap_or(0.0) > 0.0, "{name} lost w1.mbps");
        assert!(
            s.get("w1.mbps_per_core").is_some(),
            "{name} lost per-core figure"
        );
        assert!(
            s.get("w1.ok.count").unwrap_or(0.0) > 0.0,
            "{name}: the clean-channel sweep must decode"
        );
    }
}
