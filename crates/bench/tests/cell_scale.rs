//! End-to-end checks of the cell-scale benchgate suite: the gated
//! smoke preset must be byte-reproducible, every one of its metrics
//! must carry a tolerance class, and a p99 tail regression must fail
//! the gate.

use vran_bench::cellscale::{cell_scale_smoke_suite, SMOKE_SEED};
use vran_bench::gate::{compare, BenchReport, ToleranceClass};
use vran_net::cellsim::{run_cell_sim, CellSimConfig};

/// Two invocations at the pinned seed must serialize byte-identically
/// (the ISSUE's determinism acceptance criterion, minus the
/// wall-clock-timed suites that never gate).
#[test]
fn smoke_suite_is_byte_reproducible() {
    let mut a = BenchReport::new("x");
    a.suites.push(cell_scale_smoke_suite());
    let mut b = BenchReport::new("x");
    b.suites.push(cell_scale_smoke_suite());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn smoke_suite_metrics_all_carry_tolerance_classes() {
    let s = cell_scale_smoke_suite();
    assert!(s.gated);
    for (metric, value) in &s.metrics {
        assert!(
            ToleranceClass::for_metric(metric).is_some(),
            "{metric}: gated metric without a tolerance class"
        );
        assert!(value.is_finite(), "{metric} is {value}");
    }
    // The percentile class is actually exercised.
    assert!(s
        .metrics
        .iter()
        .any(|(m, _)| ToleranceClass::for_metric(m) == Some(ToleranceClass::Percentile)));
}

/// The headline acceptance criterion: a p99 regression in the gated
/// cell-scale suite fails the gate.
#[test]
fn p99_regression_fails_the_gate() {
    let mut baseline = BenchReport::new("base");
    baseline.suites.push(cell_scale_smoke_suite());
    let mut current = baseline.clone();
    assert!(
        compare(&baseline, &current).is_empty(),
        "identical runs must pass"
    );

    let s = &mut current.suites[0];
    let idx = s
        .metrics
        .iter()
        .position(|(m, _)| m == "latency.total.p99_ns")
        .expect("smoke suite reports a total p99");
    // One histogram bucket jump — the smallest regression the
    // fixed-bucket percentiles can express.
    s.metrics[idx].1 *= 2.0;
    let regs = compare(&baseline, &current);
    assert_eq!(regs.len(), 1, "exactly the p99 must trip: {regs:?}");
    assert_eq!(regs[0].metric, "latency.total.p99_ns");
    assert_eq!(
        regs[0].tolerance,
        Some(ToleranceClass::Percentile.tolerance())
    );
}

/// The smoke report the suite is built from must carry real tail
/// structure, not degenerate histograms.
#[test]
fn smoke_preset_produces_tail_structure() {
    let r = run_cell_sim(CellSimConfig::smoke(SMOKE_SEED));
    assert!(r.served_packets > 100, "served {}", r.served_packets);
    assert!(r.harq_retransmissions > 0, "storm must cause retx");
    let p50 = r.latency.total.quantile_upper(0.50);
    let p99 = r.latency.total.quantile_upper(0.99);
    assert!(p50 > 0 && p99 > p50, "p50 {p50}, p99 {p99}");
    assert!(p99 < u64::MAX, "p99 must stay on the histogram grid");
}
