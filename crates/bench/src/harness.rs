//! A compact wall-clock benchmark harness.
//!
//! Implements the subset of the `criterion` crate's API the workspace's
//! `benches/` targets use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — so the hermetic
//! build needs no external crates. Measurement is deliberately simple:
//! after a warm-up window, each sample runs a calibrated number of
//! iterations and the per-iteration median across samples is reported.
//! No statistical analysis, plots, or baselines; the regression gate
//! (`benchgate`) pins the *simulator-backed* metrics instead, which are
//! deterministic.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Time spent exercising the routine before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let median = run_benchmark(self, |b| f(b));
        self.report(&id, median);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let median = run_benchmark(self, |b| f(b, input));
        self.report(&id, median);
        self
    }

    /// Print the group trailer. (No-op beyond symmetry with criterion.)
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, per_iter: Duration) {
        let ns = per_iter.as_secs_f64() * 1e9;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  thrpt: {:>10.3} Melem/s",
                    n as f64 / per_iter.as_secs_f64() / 1e6
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:>10.3} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        println!(
            "{:<44} time: {:>12.1} ns/iter{}",
            format!("{}/{}", self.name, id.id),
            ns,
            rate
        );
    }
}

/// Passed to benchmark closures; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Warm up, calibrate iterations per sample, then take samples and
/// return the median per-iteration time.
fn run_benchmark(g: &BenchmarkGroup<'_>, mut f: impl FnMut(&mut Bencher)) -> Duration {
    // Warm-up: repeat single iterations until the window closes, and
    // use the fastest observed run as the calibration estimate.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut best = Duration::MAX;
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        best = best.min(b.elapsed.max(Duration::from_nanos(1)));
        if warm_start.elapsed() >= g.warm_up {
            break;
        }
    }

    let per_sample = g.measurement.as_secs_f64() / g.sample_size as f64;
    let iters = ((per_sample / best.as_secs_f64()).floor() as u64).clamp(1, 1 << 24);

    let mut samples: Vec<Duration> = (0..g.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Bundle benchmark functions under a runner (`name = …; config = …;
/// targets = …` form, matching criterion's).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::harness::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("kern", 128).id, "kern/128");
        assert_eq!(BenchmarkId::from_parameter("avx2").id, "avx2");
    }

    #[test]
    fn bencher_times_and_runs_requested_iters() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }
}
