//! Markdown rendering of a [`BenchReport`] for CI step summaries.
//!
//! Produces the compact table `benchgate --summary` writes into
//! `$GITHUB_STEP_SUMMARY`: one row per latency-percentile metric group
//! (p50/p95/p99 side by side), the stage-graph batch-formation figures
//! (zmm lane occupancy and quad/pair/single launch counts per suite),
//! plus the cell-scale capacity figures — the per-PR perf trajectory
//! at a glance, no local checkout needed.

use crate::gate::BenchReport;

/// Human-readable nanosecond value (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() || ns >= u64::MAX as f64 {
        return "overflow".into();
    }
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Render the step-summary markdown for a report.
pub fn render_markdown(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("## benchgate summary\n\n");
    out.push_str(&format!("commit `{}`\n\n", report.git_sha));

    // Latency percentile groups: any metric family exposing
    // `<prefix>.p50_ns` / `.p95_ns` / `.p99_ns`.
    let mut rows: Vec<(String, [Option<f64>; 3])> = Vec::new();
    for suite in &report.suites {
        for (metric, value) in &suite.metrics {
            let Some((prefix, pct)) = metric.rsplit_once('.') else {
                continue;
            };
            let col = match pct {
                "p50_ns" => 0,
                "p95_ns" => 1,
                "p99_ns" => 2,
                _ => continue,
            };
            let key = format!(
                "{}{} / {prefix}",
                suite.name,
                if suite.gated { " (gated)" } else { "" }
            );
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cells)) => cells[col] = Some(*value),
                None => {
                    let mut cells = [None; 3];
                    cells[col] = Some(*value);
                    rows.push((key, cells));
                }
            }
        }
    }
    if !rows.is_empty() {
        out.push_str("| metric | p50 | p95 | p99 |\n|---|---|---|---|\n");
        for (key, cells) in &rows {
            out.push_str(&format!("| {key} |"));
            for c in cells {
                match c {
                    Some(v) => out.push_str(&format!(" {} |", fmt_ns(*v))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }

    // Batch lane occupancy: any suite exposing
    // `<prefix>.lane_occupancy.ratio`, with its sibling quad / pair /
    // single block counts when present.
    let mut occ_rows = Vec::new();
    for suite in &report.suites {
        for (metric, value) in &suite.metrics {
            let Some(prefix) = metric.strip_suffix("lane_occupancy.ratio") else {
                continue;
            };
            let count = |name: &str| {
                suite
                    .get(&format!("{prefix}{name}.count"))
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "—".into())
            };
            occ_rows.push(format!(
                "| {}{} / {} | {:.1}% | {} | {} | {} |",
                suite.name,
                if suite.gated { " (gated)" } else { "" },
                metric.trim_end_matches(".lane_occupancy.ratio"),
                value * 100.0,
                count("quad_blocks"),
                count("pair_blocks"),
                count("single_blocks"),
            ));
        }
    }
    if !occ_rows.is_empty() {
        out.push_str("### batch lane occupancy\n\n");
        out.push_str("| metric | occupancy | quads | pairs | singles |\n|---|---|---|---|---|\n");
        for l in occ_rows {
            out.push_str(&l);
            out.push('\n');
        }
        out.push('\n');
    }

    // Capacity figures from the full cell-scale sweep, when present.
    if let Some(full) = report.suite("cell_scale_full") {
        let mut lines = Vec::new();
        for (metric, value) in &full.metrics {
            if let Some(prefix) = metric.strip_suffix(".cores_for_300mbps") {
                let cells: String = prefix.chars().skip(1).collect();
                let served = full
                    .get(&format!("{prefix}.served.mbps"))
                    .unwrap_or(f64::NAN);
                lines.push(format!("| {cells} | {served:.0} | {value:.2} |",));
            }
        }
        if !lines.is_empty() {
            out.push_str("### cores per cells × 300 Mbps\n\n");
            out.push_str("| cells | served Mbps | cores |\n|---|---|---|\n");
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Suite;

    #[test]
    fn nanosecond_formatting_scales_units() {
        assert_eq!(fmt_ns(512.0), "512 ns");
        assert_eq!(fmt_ns(2048.0), "2.0 µs");
        assert_eq!(fmt_ns(16_777_216.0), "16.8 ms");
        assert_eq!(fmt_ns(2.5e9), "2.50 s");
        assert_eq!(fmt_ns(u64::MAX as f64), "overflow");
    }

    #[test]
    fn percentile_groups_render_as_rows() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("cell_scale_smoke", true);
        s.push("latency.total.p50_ns", 65536.0);
        s.push("latency.total.p95_ns", 1_048_576.0);
        s.push("latency.total.p99_ns", 16_777_216.0);
        s.push("latency.queue.p99_ns", 8_388_608.0);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("| p50 | p95 | p99 |"), "{md}");
        assert!(
            md.contains(
                "| cell_scale_smoke (gated) / latency.total | 65.5 µs | 1.0 ms | 16.8 ms |"
            ),
            "{md}"
        );
        // queue has only a p99: the other columns render as dashes.
        assert!(md.contains("/ latency.queue | — | — | 8.4 ms |"), "{md}");
    }

    #[test]
    fn lane_occupancy_table_renders_with_launch_counts() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("uplink_stagegraph", true);
        s.push("w1.batch.lane_occupancy.ratio", 0.925);
        s.push("w1.batch.quad_blocks.count", 148.0);
        s.push("w1.batch.pair_blocks.count", 8.0);
        s.push("w1.batch.single_blocks.count", 4.0);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("batch lane occupancy"), "{md}");
        assert!(
            md.contains("| uplink_stagegraph (gated) / w1.batch | 92.5% | 148 | 8 | 4 |"),
            "{md}"
        );
    }

    #[test]
    fn capacity_table_renders_when_full_suite_present() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("cell_scale_full", false);
        s.push("c2.served.mbps", 41.0);
        s.push("c2.cores_for_300mbps", 3.75);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("cores per cells × 300 Mbps"), "{md}");
        assert!(md.contains("| 2 | 41 | 3.75 |"), "{md}");
    }
}
