//! Markdown rendering of a [`BenchReport`] for CI step summaries.
//!
//! Produces the compact table `benchgate --summary` writes into
//! `$GITHUB_STEP_SUMMARY`: one row per latency-percentile metric group
//! (p50/p95/p99 side by side), the stage-graph batch-formation figures
//! (zmm lane occupancy and quad/pair/single launch counts per suite),
//! the chaos-recovery figures (time-to-recover, storm peak, breaker
//! activity), plus the cell-scale capacity figures — the per-PR perf
//! trajectory at a glance, no local checkout needed.
//!
//! [`render_snapshot_markdown`] renders a live
//! [`vran_net::observe::MetricsSnapshot`] the same way, for mid-run
//! polling output.

use crate::gate::BenchReport;
use vran_net::observe::MetricsSnapshot;

/// Human-readable nanosecond value (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() || ns >= u64::MAX as f64 {
        return "overflow".into();
    }
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.1} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Render the step-summary markdown for a report.
pub fn render_markdown(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("## benchgate summary\n\n");
    out.push_str(&format!("commit `{}`\n\n", report.git_sha));

    // Latency percentile groups: any metric family exposing
    // `<prefix>.p50_ns` / `.p95_ns` / `.p99_ns`.
    let mut rows: Vec<(String, [Option<f64>; 3])> = Vec::new();
    for suite in &report.suites {
        for (metric, value) in &suite.metrics {
            let Some((prefix, pct)) = metric.rsplit_once('.') else {
                continue;
            };
            let col = match pct {
                "p50_ns" => 0,
                "p95_ns" => 1,
                "p99_ns" => 2,
                _ => continue,
            };
            let key = format!(
                "{}{} / {prefix}",
                suite.name,
                if suite.gated { " (gated)" } else { "" }
            );
            match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, cells)) => cells[col] = Some(*value),
                None => {
                    let mut cells = [None; 3];
                    cells[col] = Some(*value);
                    rows.push((key, cells));
                }
            }
        }
    }
    if !rows.is_empty() {
        out.push_str("| metric | p50 | p95 | p99 |\n|---|---|---|---|\n");
        for (key, cells) in &rows {
            out.push_str(&format!("| {key} |"));
            for c in cells {
                match c {
                    Some(v) => out.push_str(&format!(" {} |", fmt_ns(*v))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }

    // Batch lane occupancy: any suite exposing
    // `<prefix>.lane_occupancy.ratio`, with its sibling quad / pair /
    // single block counts when present.
    let mut occ_rows = Vec::new();
    for suite in &report.suites {
        for (metric, value) in &suite.metrics {
            let Some(prefix) = metric.strip_suffix("lane_occupancy.ratio") else {
                continue;
            };
            let count = |name: &str| {
                suite
                    .get(&format!("{prefix}{name}.count"))
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "—".into())
            };
            occ_rows.push(format!(
                "| {}{} / {} | {:.1}% | {} | {} | {} |",
                suite.name,
                if suite.gated { " (gated)" } else { "" },
                metric.trim_end_matches(".lane_occupancy.ratio"),
                value * 100.0,
                count("quad_blocks"),
                count("pair_blocks"),
                count("single_blocks"),
            ));
        }
    }
    if !occ_rows.is_empty() {
        out.push_str("### batch lane occupancy\n\n");
        out.push_str("| metric | occupancy | quads | pairs | singles |\n|---|---|---|---|---|\n");
        for l in occ_rows {
            out.push_str(&l);
            out.push('\n');
        }
        out.push('\n');
    }

    // Chaos recovery figures, when the gated storm suite ran.
    if let Some(chaos) = report.suite("chaos_recovery") {
        let get = |name: &str| chaos.get(name);
        out.push_str("### chaos recovery\n\n");
        out.push_str("| figure | value |\n|---|---|\n");
        if let Some(v) = get("cell.recovered.count") {
            out.push_str(&format!(
                "| cell storm recovered | {} |\n",
                if v > 0.0 { "yes" } else { "**no**" }
            ));
        }
        if let Some(v) = get("cell.recovery.ttis.count") {
            out.push_str(&format!("| time-to-recover | {v:.0} TTIs |\n"));
        }
        if let (Some(base), Some(peak)) =
            (get("cell.baseline.p99_ns"), get("cell.storm.peak.p99_ns"))
        {
            out.push_str(&format!(
                "| p99 baseline → storm peak | {} → {} |\n",
                fmt_ns(base),
                fmt_ns(peak)
            ));
        }
        if let Some(v) = get("cell.dropped.count") {
            out.push_str(&format!("| storm packet cost | {v:.0} dropped |\n"));
        }
        // Breaker activity summed across the runner storm phases.
        let total = |suffix: &str| -> f64 {
            chaos
                .metrics
                .iter()
                .filter(|(m, _)| m.starts_with("runner.") && m.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        out.push_str(&format!(
            "| breaker trips / resets / fast-fails | {:.0} / {:.0} / {:.0} |\n",
            total(".breaker_trips.count"),
            total(".breaker_resets.count"),
            total(".breaker_fastfails.count"),
        ));
        if let Some(v) = get("runner.flight.recorded.count") {
            out.push_str(&format!("| flight-recorder events | {v:.0} |\n"));
        }
        out.push('\n');
    }

    // Capacity figures from the full cell-scale sweep, when present.
    if let Some(full) = report.suite("cell_scale_full") {
        let mut lines = Vec::new();
        for (metric, value) in &full.metrics {
            if let Some(prefix) = metric.strip_suffix(".cores_for_300mbps") {
                let cells: String = prefix.chars().skip(1).collect();
                let served = full
                    .get(&format!("{prefix}.served.mbps"))
                    .unwrap_or(f64::NAN);
                lines.push(format!("| {cells} | {served:.0} | {value:.2} |",));
            }
        }
        if !lines.is_empty() {
            out.push_str("### cores per cells × 300 Mbps\n\n");
            out.push_str("| cells | served Mbps | cores |\n|---|---|---|\n");
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out
}

/// Render a [`MetricsSnapshot`] as step-summary markdown: non-zero
/// counters in one table, histograms (count / mean / p50 / p99) in
/// another. Zero counters are elided — a snapshot carries every
/// registered counter, most of which are silent in any one run.
pub fn render_snapshot_markdown(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("## metrics snapshot\n\n");
    let live: Vec<_> = snap.counters.iter().filter(|(_, v)| *v != 0.0).collect();
    if !live.is_empty() {
        out.push_str("| counter | value |\n|---|---|\n");
        for (name, value) in live {
            out.push_str(&format!("| {name} | {value:.0} |\n"));
        }
        out.push('\n');
    }
    let live_hists: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
    if !live_hists.is_empty() {
        out.push_str("| histogram | count | mean | p50 | p99 |\n|---|---|---|---|---|\n");
        for h in live_hists {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                h.name,
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.quantile_upper(0.50) as f64),
                fmt_ns(h.quantile_upper(0.99) as f64),
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Suite;

    #[test]
    fn nanosecond_formatting_scales_units() {
        assert_eq!(fmt_ns(512.0), "512 ns");
        assert_eq!(fmt_ns(2048.0), "2.0 µs");
        assert_eq!(fmt_ns(16_777_216.0), "16.8 ms");
        assert_eq!(fmt_ns(2.5e9), "2.50 s");
        assert_eq!(fmt_ns(u64::MAX as f64), "overflow");
    }

    #[test]
    fn percentile_groups_render_as_rows() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("cell_scale_smoke", true);
        s.push("latency.total.p50_ns", 65536.0);
        s.push("latency.total.p95_ns", 1_048_576.0);
        s.push("latency.total.p99_ns", 16_777_216.0);
        s.push("latency.queue.p99_ns", 8_388_608.0);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("| p50 | p95 | p99 |"), "{md}");
        assert!(
            md.contains(
                "| cell_scale_smoke (gated) / latency.total | 65.5 µs | 1.0 ms | 16.8 ms |"
            ),
            "{md}"
        );
        // queue has only a p99: the other columns render as dashes.
        assert!(md.contains("/ latency.queue | — | — | 8.4 ms |"), "{md}");
    }

    #[test]
    fn lane_occupancy_table_renders_with_launch_counts() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("uplink_stagegraph", true);
        s.push("w1.batch.lane_occupancy.ratio", 0.925);
        s.push("w1.batch.quad_blocks.count", 148.0);
        s.push("w1.batch.pair_blocks.count", 8.0);
        s.push("w1.batch.single_blocks.count", 4.0);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("batch lane occupancy"), "{md}");
        assert!(
            md.contains("| uplink_stagegraph (gated) / w1.batch | 92.5% | 148 | 8 | 4 |"),
            "{md}"
        );
    }

    #[test]
    fn chaos_recovery_section_renders_recovery_figures() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("chaos_recovery", true);
        s.push("cell.recovered.count", 1.0);
        s.push("cell.recovery.ttis.count", 300.0);
        s.push("cell.baseline.p99_ns", 16_777_216.0);
        s.push("cell.storm.peak.p99_ns", 268_435_456.0);
        s.push("cell.dropped.count", 42.0);
        s.push("runner.flap.breaker_trips.count", 5.0);
        s.push("runner.deadline_squeeze.breaker_trips.count", 2.0);
        s.push("runner.flap.breaker_resets.count", 3.0);
        s.push("runner.flap.breaker_fastfails.count", 11.0);
        s.push("runner.flight.recorded.count", 640.0);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("chaos recovery"), "{md}");
        assert!(md.contains("| cell storm recovered | yes |"), "{md}");
        assert!(md.contains("| time-to-recover | 300 TTIs |"), "{md}");
        assert!(
            md.contains("| p99 baseline → storm peak | 16.8 ms → 268.4 ms |"),
            "{md}"
        );
        assert!(
            md.contains("| breaker trips / resets / fast-fails | 7 / 3 / 11 |"),
            "{md}"
        );
        assert!(md.contains("| flight-recorder events | 640 |"), "{md}");
    }

    #[test]
    fn snapshot_renderer_elides_silent_series() {
        use vran_net::observe::{HistogramSnapshot, MetricsSnapshot};
        let snap = MetricsSnapshot {
            counters: vec![
                ("pipeline.packets".into(), 48.0),
                ("pipeline.breaker_trips".into(), 0.0),
            ],
            histograms: vec![
                HistogramSnapshot {
                    name: "pipeline.stage.decode".into(),
                    edges: vec![1_000, 1_000_000],
                    buckets: vec![3, 1, 0],
                    count: 4,
                    sum: 40_000,
                },
                HistogramSnapshot {
                    name: "pipeline.stage.equalize".into(),
                    edges: vec![1_000],
                    buckets: vec![0, 0],
                    count: 0,
                    sum: 0,
                },
            ],
        };
        let md = render_snapshot_markdown(&snap);
        assert!(md.contains("| pipeline.packets | 48 |"), "{md}");
        assert!(!md.contains("breaker_trips"), "zero counters elided: {md}");
        assert!(
            md.contains("| pipeline.stage.decode | 4 | 10.0 µs | 1.0 µs | 1.0 ms |"),
            "{md}"
        );
        assert!(!md.contains("stage.equalize"), "empty hists elided: {md}");
    }

    #[test]
    fn capacity_table_renders_when_full_suite_present() {
        let mut r = BenchReport::new("deadbeef");
        let mut s = Suite::new("cell_scale_full", false);
        s.push("c2.served.mbps", 41.0);
        s.push("c2.cores_for_300mbps", 3.75);
        r.suites.push(s);
        let md = render_markdown(&r);
        assert!(md.contains("cores per cells × 300 Mbps"), "{md}");
        assert!(md.contains("| 2 | 41 | 3.75 |"), "{md}");
    }
}
