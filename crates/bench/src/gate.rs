//! The perf-trajectory regression gate.
//!
//! A [`BenchReport`] is the stable on-disk schema (`BENCH_current.json`
//! / `BENCH_baseline.json`): suite name → metric name → value, plus
//! the git SHA and the configuration the suite ran under. Suites are
//! either **gated** — deterministic, simulator-backed, compared
//! against the baseline with per-metric tolerance bands — or
//! informational (wall-clock smoke numbers that vary with the host and
//! are recorded but never gate CI).
//!
//! The comparison itself ([`compare`]) is pure data → data so the
//! perturbation behavior is unit-testable without running a suite.

use vran_util::Json;

/// Schema identifier written into every report. Bumped to `/2` when
/// the native-decoder fast-path suite and the pipeline scratch
/// counters landed; older baselines must be regenerated, not compared.
pub const SCHEMA: &str = "vran-benchgate/2";

/// One named metric set.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Suite name (`arrange_sim`, `pipeline_static`, …).
    pub name: String,
    /// Whether regressions in this suite fail the gate.
    pub gated: bool,
    /// Metric name → value, insertion-ordered.
    pub metrics: Vec<(String, f64)>,
}

impl Suite {
    /// New suite.
    pub fn new(name: impl Into<String>, gated: bool) -> Self {
        Self {
            name: name.into(),
            gated,
            metrics: Vec::new(),
        }
    }

    /// Append one metric.
    pub fn push(&mut self, metric: impl Into<String>, value: f64) {
        self.metrics.push((metric.into(), value));
    }

    /// Look a metric up by name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, v)| *v)
    }
}

/// A full benchgate run: provenance plus suites.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Commit the numbers were produced at.
    pub git_sha: String,
    /// Free-form configuration description (`key: value` pairs).
    pub config: Vec<(String, String)>,
    /// The suites.
    pub suites: Vec<Suite>,
}

impl BenchReport {
    /// Empty report for the given commit.
    pub fn new(git_sha: impl Into<String>) -> Self {
        Self {
            git_sha: git_sha.into(),
            config: Vec::new(),
            suites: Vec::new(),
        }
    }

    /// Look a suite up by name.
    pub fn suite(&self, name: &str) -> Option<&Suite> {
        self.suites.iter().find(|s| s.name == name)
    }

    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("git_sha", Json::str(&self.git_sha)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "suites",
                Json::Obj(
                    self.suites
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                Json::obj([
                                    ("gated", Json::Bool(s.gated)),
                                    (
                                        "metrics",
                                        Json::Obj(
                                            s.metrics
                                                .iter()
                                                .map(|(m, v)| (m.clone(), Json::Num(*v)))
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    /// Parse a report; `None` on schema mismatch or malformed input.
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let v = Json::parse(text).ok()?;
        if v.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let config = v
            .get("config")?
            .as_obj()?
            .iter()
            .map(|(k, val)| Some((k.clone(), val.as_str()?.to_string())))
            .collect::<Option<_>>()?;
        let suites = v
            .get("suites")?
            .as_obj()?
            .iter()
            .map(|(name, s)| {
                let metrics = s
                    .get("metrics")?
                    .as_obj()?
                    .iter()
                    .map(|(m, val)| Some((m.clone(), val.as_f64()?)))
                    .collect::<Option<_>>()?;
                Some(Suite {
                    name: name.clone(),
                    gated: matches!(s.get("gated")?, Json::Bool(true)),
                    metrics,
                })
            })
            .collect::<Option<_>>()?;
        Some(BenchReport {
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            config,
            suites,
        })
    }
}

/// Allowed deviation for one metric: `|cur − base| ≤ max(abs, rel·|base|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band (fraction of the baseline value).
    pub rel: f64,
    /// Absolute band floor.
    pub abs: f64,
}

impl Tolerance {
    /// The band for a metric, by naming convention:
    ///
    /// * `*.cycles`, `*.uops`, counts — simulator-exact integers; only
    ///   float round-off is allowed.
    /// * `*.upc`, `*.pressure`, ratios — derived from exact counts;
    ///   a 0.1 % band absorbs division round-off.
    /// * everything else — 2 %.
    pub fn for_metric(metric: &str) -> Tolerance {
        if metric.ends_with(".cycles")
            || metric.ends_with(".uops")
            || metric.ends_with(".instructions")
            || metric.ends_with("_bits")
            || metric.ends_with("_blocks")
            || metric.ends_with("_iterations")
            || metric.ends_with(".count")
        {
            Tolerance { rel: 0.0, abs: 0.5 }
        } else if metric.ends_with(".upc")
            || metric.ends_with(".pressure")
            || metric.ends_with(".speedup")
        {
            Tolerance {
                rel: 1e-3,
                abs: 1e-9,
            }
        } else {
            Tolerance {
                rel: 0.02,
                abs: 1e-9,
            }
        }
    }

    /// Whether `current` sits inside the band around `baseline`.
    pub fn accepts(&self, baseline: f64, current: f64) -> bool {
        (current - baseline).abs() <= self.abs.max(self.rel * baseline.abs())
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite the metric belongs to.
    pub suite: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value (`None` when the metric vanished).
    pub baseline: Option<f64>,
    /// Current value (`None` when the metric vanished).
    pub current: Option<f64>,
    /// The band that was applied.
    pub tolerance: Tolerance,
}

impl Regression {
    /// One-line description for gate output.
    pub fn describe(&self) -> String {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => format!(
                "{}/{}: {} -> {} (tolerance rel {:.1}% abs {})",
                self.suite,
                self.metric,
                b,
                c,
                self.tolerance.rel * 100.0,
                self.tolerance.abs
            ),
            (Some(b), None) => {
                format!(
                    "{}/{}: metric disappeared (baseline {})",
                    self.suite, self.metric, b
                )
            }
            (None, Some(_)) | (None, None) => {
                format!(
                    "{}/{}: gated suite missing from current run",
                    self.suite, self.metric
                )
            }
        }
    }
}

/// Compare a current report against the baseline: every metric of
/// every **gated** baseline suite must be present and inside its
/// tolerance band. Metrics added since the baseline pass (they gate
/// only after a baseline refresh); ungated suites never fail.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Vec<Regression> {
    let mut out = Vec::new();
    for base_suite in baseline.suites.iter().filter(|s| s.gated) {
        let Some(cur_suite) = current.suite(&base_suite.name) else {
            out.push(Regression {
                suite: base_suite.name.clone(),
                metric: "*".into(),
                baseline: None,
                current: None,
                tolerance: Tolerance { rel: 0.0, abs: 0.0 },
            });
            continue;
        };
        for (metric, base_v) in &base_suite.metrics {
            let tolerance = Tolerance::for_metric(metric);
            match cur_suite.get(metric) {
                Some(cur_v) if tolerance.accepts(*base_v, cur_v) => {}
                Some(cur_v) => out.push(Regression {
                    suite: base_suite.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(*base_v),
                    current: Some(cur_v),
                    tolerance,
                }),
                None => out.push(Regression {
                    suite: base_suite.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(*base_v),
                    current: None,
                    tolerance,
                }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        let mut r = BenchReport::new("abc123");
        r.config.push(("core".into(), "beefy".into()));
        let mut s = Suite::new("arrange_sim", true);
        s.push("SSE128.original.cycles", 2310.0);
        s.push("SSE128.original.upc", 1.25);
        r.suites.push(s);
        let mut w = Suite::new("pipeline_wallclock", false);
        w.push("mbps", 42.0);
        r.suites.push(w);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let s = r.to_json();
        assert_eq!(BenchReport::from_json(&s).unwrap(), r);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let s = report().to_json().replace(SCHEMA, "other/9");
        assert!(BenchReport::from_json(&s).is_none());
    }

    #[test]
    fn identical_reports_pass() {
        assert!(compare(&report(), &report()).is_empty());
    }

    #[test]
    fn perturbed_gated_metric_fails() {
        let mut cur = report();
        cur.suites[0].metrics[0].1 += 10.0; // cycles are exact
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "SSE128.original.cycles");
        assert!(regs[0].describe().contains("2310"));
    }

    #[test]
    fn perturbation_within_band_passes() {
        let mut cur = report();
        cur.suites[0].metrics[1].1 *= 1.0005; // upc has a 0.1 % band
        assert!(compare(&report(), &cur).is_empty());
        cur.suites[0].metrics[1].1 *= 1.01; // …but 1 % is out
        assert_eq!(compare(&report(), &cur).len(), 1);
    }

    #[test]
    fn ungated_suite_never_fails() {
        let mut cur = report();
        cur.suites[1].metrics[0].1 *= 50.0;
        assert!(compare(&report(), &cur).is_empty());
    }

    #[test]
    fn missing_metric_and_suite_fail() {
        let mut cur = report();
        cur.suites[0].metrics.pop();
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, None);

        let mut cur = report();
        cur.suites.remove(0);
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "*");
    }

    #[test]
    fn new_metrics_do_not_gate() {
        let mut cur = report();
        cur.suites[0].push("AVX512.apcm.cycles", 135.0);
        assert!(compare(&report(), &cur).is_empty());
    }

    #[test]
    fn tolerance_classes_by_name() {
        assert_eq!(
            Tolerance::for_metric("x.cycles"),
            Tolerance { rel: 0.0, abs: 0.5 }
        );
        assert_eq!(
            Tolerance::for_metric("x.upc"),
            Tolerance {
                rel: 1e-3,
                abs: 1e-9
            }
        );
        assert_eq!(
            Tolerance::for_metric("tb_bits"),
            Tolerance { rel: 0.0, abs: 0.5 }
        );
        assert_eq!(
            Tolerance::for_metric("something"),
            Tolerance {
                rel: 0.02,
                abs: 1e-9
            }
        );
    }
}
