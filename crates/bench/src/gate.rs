//! The perf-trajectory regression gate.
//!
//! A [`BenchReport`] is the stable on-disk schema (`BENCH_current.json`
//! / `BENCH_baseline.json`): suite name → metric name → value, plus
//! the git SHA and the configuration the suite ran under. Suites are
//! either **gated** — deterministic, simulator-backed, compared
//! against the baseline with per-metric tolerance bands — or
//! informational (wall-clock smoke numbers that vary with the host and
//! are recorded but never gate CI).
//!
//! The comparison itself ([`compare`]) is pure data → data so the
//! perturbation behavior is unit-testable without running a suite.

use vran_util::Json;

/// Schema identifier written into every report. Bumped to `/2` when
/// the native-decoder fast-path suite and the pipeline scratch
/// counters landed; older baselines must be regenerated, not compared.
pub const SCHEMA: &str = "vran-benchgate/2";

/// One named metric set.
#[derive(Debug, Clone, PartialEq)]
pub struct Suite {
    /// Suite name (`arrange_sim`, `pipeline_static`, …).
    pub name: String,
    /// Whether regressions in this suite fail the gate.
    pub gated: bool,
    /// Metric name → value, insertion-ordered.
    pub metrics: Vec<(String, f64)>,
}

impl Suite {
    /// New suite.
    pub fn new(name: impl Into<String>, gated: bool) -> Self {
        Self {
            name: name.into(),
            gated,
            metrics: Vec::new(),
        }
    }

    /// Append one metric.
    pub fn push(&mut self, metric: impl Into<String>, value: f64) {
        self.metrics.push((metric.into(), value));
    }

    /// Look a metric up by name.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(m, _)| m == metric)
            .map(|(_, v)| *v)
    }
}

/// A full benchgate run: provenance plus suites.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Commit the numbers were produced at.
    pub git_sha: String,
    /// Free-form configuration description (`key: value` pairs).
    pub config: Vec<(String, String)>,
    /// The suites.
    pub suites: Vec<Suite>,
}

impl BenchReport {
    /// Empty report for the given commit.
    pub fn new(git_sha: impl Into<String>) -> Self {
        Self {
            git_sha: git_sha.into(),
            config: Vec::new(),
            suites: Vec::new(),
        }
    }

    /// Look a suite up by name.
    pub fn suite(&self, name: &str) -> Option<&Suite> {
        self.suites.iter().find(|s| s.name == name)
    }

    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("git_sha", Json::str(&self.git_sha)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "suites",
                Json::Obj(
                    self.suites
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                Json::obj([
                                    ("gated", Json::Bool(s.gated)),
                                    (
                                        "metrics",
                                        Json::Obj(
                                            s.metrics
                                                .iter()
                                                .map(|(m, v)| (m.clone(), Json::Num(*v)))
                                                .collect(),
                                        ),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    /// Parse a report; `None` on schema mismatch or malformed input.
    pub fn from_json(text: &str) -> Option<BenchReport> {
        let v = Json::parse(text).ok()?;
        if v.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        let config = v
            .get("config")?
            .as_obj()?
            .iter()
            .map(|(k, val)| Some((k.clone(), val.as_str()?.to_string())))
            .collect::<Option<_>>()?;
        let suites = v
            .get("suites")?
            .as_obj()?
            .iter()
            .map(|(name, s)| {
                let metrics = s
                    .get("metrics")?
                    .as_obj()?
                    .iter()
                    .map(|(m, val)| Some((m.clone(), val.as_f64()?)))
                    .collect::<Option<_>>()?;
                Some(Suite {
                    name: name.clone(),
                    gated: matches!(s.get("gated")?, Json::Bool(true)),
                    metrics,
                })
            })
            .collect::<Option<_>>()?;
        Some(BenchReport {
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            config,
            suites,
        })
    }
}

/// Allowed deviation for one metric: `|cur − base| ≤ max(abs, rel·|base|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative band (fraction of the baseline value).
    pub rel: f64,
    /// Absolute band floor.
    pub abs: f64,
}

/// The closed set of tolerance classes, dispatched on metric-name
/// suffix. A gated metric whose name matches **no** class is a gate
/// violation in its own right — an unrecognized name must never
/// silently inherit a band (it used to fall through to 2 %, which
/// would wave a mistyped `.cylces` metric past any regression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceClass {
    /// Simulator-exact integers (`.cycles`, `.uops`, `.instructions`,
    /// `_bits`, `_blocks`, `_iterations`, `.count`, `.accelerated`):
    /// only float round-off is allowed.
    Exact,
    /// Ratios derived from exact counts (`.upc`, `.pressure`,
    /// `.speedup`, `.ratio`): a 0.1 % band absorbs division round-off.
    Ratio,
    /// Latency percentiles read off fixed power-of-two histogram
    /// buckets (`.p50_ns`, `.p90_ns`, `.p95_ns`, `.p99_ns`): quantiles
    /// snap to bucket upper edges, so any real regression shows as a
    /// ×2 edge jump — a 25 % band passes identical values (and
    /// round-off) while failing every bucket jump.
    Percentile,
    /// Wall-clock-shaped quantities (`mbps`, `.mbps_per_core`,
    /// `.ns_per_block`, `.bits_per_s`, `.mean_ns`, `elapsed_s`): 2 %.
    Banded,
}

impl ToleranceClass {
    /// Resolve a metric name to its class, or `None` when the name
    /// matches no known suffix.
    pub fn for_metric(metric: &str) -> Option<ToleranceClass> {
        if metric.ends_with(".cycles")
            || metric.ends_with(".uops")
            || metric.ends_with(".instructions")
            || metric.ends_with("_bits")
            || metric.ends_with("_blocks")
            || metric.ends_with("_iterations")
            || metric.ends_with(".count")
            || metric.ends_with(".accelerated")
        {
            Some(ToleranceClass::Exact)
        } else if metric.ends_with(".upc")
            || metric.ends_with(".pressure")
            || metric.ends_with(".speedup")
            || metric.ends_with(".ratio")
        {
            Some(ToleranceClass::Ratio)
        } else if metric.ends_with(".p50_ns")
            || metric.ends_with(".p90_ns")
            || metric.ends_with(".p95_ns")
            || metric.ends_with(".p99_ns")
        {
            Some(ToleranceClass::Percentile)
        } else if metric == "mbps"
            || metric.ends_with(".mbps")
            || metric.ends_with(".mbps_per_core")
            || metric.ends_with(".ns_per_block")
            || metric.ends_with(".bits_per_s")
            || metric.ends_with(".mean_ns")
            || metric == "elapsed_s"
            || metric.ends_with(".elapsed_s")
        {
            Some(ToleranceClass::Banded)
        } else {
            None
        }
    }

    /// The band this class allows.
    pub fn tolerance(self) -> Tolerance {
        match self {
            ToleranceClass::Exact => Tolerance { rel: 0.0, abs: 0.5 },
            ToleranceClass::Ratio => Tolerance {
                rel: 1e-3,
                abs: 1e-9,
            },
            ToleranceClass::Percentile => Tolerance {
                rel: 0.25,
                abs: 0.5,
            },
            ToleranceClass::Banded => Tolerance {
                rel: 0.02,
                abs: 1e-9,
            },
        }
    }

    /// Class name for gate output.
    pub fn name(self) -> &'static str {
        match self {
            ToleranceClass::Exact => "exact",
            ToleranceClass::Ratio => "ratio",
            ToleranceClass::Percentile => "percentile",
            ToleranceClass::Banded => "banded",
        }
    }
}

impl Tolerance {
    /// The band for a metric by naming convention (see
    /// [`ToleranceClass`]), or `None` when no class matches — gated
    /// comparisons treat that as a violation rather than guessing.
    pub fn for_metric(metric: &str) -> Option<Tolerance> {
        ToleranceClass::for_metric(metric).map(ToleranceClass::tolerance)
    }

    /// Whether `current` sits inside the band around `baseline`.
    pub fn accepts(&self, baseline: f64, current: f64) -> bool {
        (current - baseline).abs() <= self.abs.max(self.rel * baseline.abs())
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite the metric belongs to.
    pub suite: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value (`None` when the metric vanished).
    pub baseline: Option<f64>,
    /// Current value (`None` when the metric vanished).
    pub current: Option<f64>,
    /// The band that was applied; `None` when the metric name resolves
    /// to no [`ToleranceClass`] (itself the violation).
    pub tolerance: Option<Tolerance>,
}

impl Regression {
    /// One-line description for gate output.
    pub fn describe(&self) -> String {
        match (self.baseline, self.current, self.tolerance) {
            (Some(b), _, None) => format!(
                "{}/{}: no tolerance class matches this metric name \
                 (baseline {b}) — rename it to a classed suffix",
                self.suite, self.metric
            ),
            (Some(b), Some(c), Some(t)) => format!(
                "{}/{}: {} -> {} (tolerance rel {:.1}% abs {})",
                self.suite,
                self.metric,
                b,
                c,
                t.rel * 100.0,
                t.abs
            ),
            (Some(b), None, Some(_)) => {
                format!(
                    "{}/{}: metric disappeared (baseline {})",
                    self.suite, self.metric, b
                )
            }
            (None, _, _) => {
                format!(
                    "{}/{}: gated suite missing from current run",
                    self.suite, self.metric
                )
            }
        }
    }
}

/// Compare a current report against the baseline: every metric of
/// every **gated** baseline suite must resolve to a known
/// [`ToleranceClass`], be present in the current run, and sit inside
/// its band. A baseline entry with an unrecognized class is a
/// violation (it can never be meaningfully compared). Metrics added
/// since the baseline pass (they gate only after a baseline refresh);
/// ungated suites never fail.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Vec<Regression> {
    let mut out = Vec::new();
    for base_suite in baseline.suites.iter().filter(|s| s.gated) {
        let Some(cur_suite) = current.suite(&base_suite.name) else {
            out.push(Regression {
                suite: base_suite.name.clone(),
                metric: "*".into(),
                baseline: None,
                current: None,
                tolerance: None,
            });
            continue;
        };
        for (metric, base_v) in &base_suite.metrics {
            let Some(tolerance) = Tolerance::for_metric(metric) else {
                out.push(Regression {
                    suite: base_suite.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(*base_v),
                    current: cur_suite.get(metric),
                    tolerance: None,
                });
                continue;
            };
            match cur_suite.get(metric) {
                Some(cur_v) if tolerance.accepts(*base_v, cur_v) => {}
                Some(cur_v) => out.push(Regression {
                    suite: base_suite.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(*base_v),
                    current: Some(cur_v),
                    tolerance: Some(tolerance),
                }),
                None => out.push(Regression {
                    suite: base_suite.name.clone(),
                    metric: metric.clone(),
                    baseline: Some(*base_v),
                    current: None,
                    tolerance: Some(tolerance),
                }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        let mut r = BenchReport::new("abc123");
        r.config.push(("core".into(), "beefy".into()));
        let mut s = Suite::new("arrange_sim", true);
        s.push("SSE128.original.cycles", 2310.0);
        s.push("SSE128.original.upc", 1.25);
        r.suites.push(s);
        let mut w = Suite::new("pipeline_wallclock", false);
        w.push("mbps", 42.0);
        r.suites.push(w);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let s = r.to_json();
        assert_eq!(BenchReport::from_json(&s).unwrap(), r);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let s = report().to_json().replace(SCHEMA, "other/9");
        assert!(BenchReport::from_json(&s).is_none());
    }

    #[test]
    fn identical_reports_pass() {
        assert!(compare(&report(), &report()).is_empty());
    }

    #[test]
    fn perturbed_gated_metric_fails() {
        let mut cur = report();
        cur.suites[0].metrics[0].1 += 10.0; // cycles are exact
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "SSE128.original.cycles");
        assert!(regs[0].describe().contains("2310"));
    }

    #[test]
    fn perturbation_within_band_passes() {
        let mut cur = report();
        cur.suites[0].metrics[1].1 *= 1.0005; // upc has a 0.1 % band
        assert!(compare(&report(), &cur).is_empty());
        cur.suites[0].metrics[1].1 *= 1.01; // …but 1 % is out
        assert_eq!(compare(&report(), &cur).len(), 1);
    }

    #[test]
    fn ungated_suite_never_fails() {
        let mut cur = report();
        cur.suites[1].metrics[0].1 *= 50.0;
        assert!(compare(&report(), &cur).is_empty());
    }

    #[test]
    fn missing_metric_and_suite_fail() {
        let mut cur = report();
        cur.suites[0].metrics.pop();
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, None);

        let mut cur = report();
        cur.suites.remove(0);
        let regs = compare(&report(), &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "*");
    }

    #[test]
    fn new_metrics_do_not_gate() {
        let mut cur = report();
        cur.suites[0].push("AVX512.apcm.cycles", 135.0);
        assert!(compare(&report(), &cur).is_empty());
    }

    #[test]
    fn tolerance_classes_by_name() {
        assert_eq!(
            ToleranceClass::for_metric("x.cycles"),
            Some(ToleranceClass::Exact)
        );
        assert_eq!(
            ToleranceClass::for_metric("tb_bits"),
            Some(ToleranceClass::Exact)
        );
        assert_eq!(
            ToleranceClass::for_metric("x.upc"),
            Some(ToleranceClass::Ratio)
        );
        assert_eq!(
            ToleranceClass::for_metric("ue.fairness.ratio"),
            Some(ToleranceClass::Ratio)
        );
        assert_eq!(
            ToleranceClass::for_metric("latency.total.p99_ns"),
            Some(ToleranceClass::Percentile)
        );
        assert_eq!(
            ToleranceClass::for_metric("w2.mbps"),
            Some(ToleranceClass::Banded)
        );
        assert_eq!(
            Tolerance::for_metric("x.upc"),
            Some(Tolerance {
                rel: 1e-3,
                abs: 1e-9
            })
        );
        // No silent fall-through: an unrecognized name has NO class.
        assert_eq!(ToleranceClass::for_metric("something"), None);
        assert_eq!(Tolerance::for_metric("ok_packets"), None);
    }

    #[test]
    fn percentile_band_accepts_round_off_but_not_bucket_jumps() {
        let t = ToleranceClass::Percentile.tolerance();
        // Identical bucket edge: pass.
        assert!(t.accepts(1_048_576.0, 1_048_576.0));
        // One power-of-two bucket jump in either direction: fail.
        assert!(!t.accepts(1_048_576.0, 2_097_152.0));
        assert!(!t.accepts(2_097_152.0, 1_048_576.0));
    }

    #[test]
    fn unknown_class_in_gated_baseline_fails_the_gate() {
        let mut base = report();
        base.suites[0].push("mystery_metric", 7.0);
        let mut cur = base.clone();
        // Even a bit-identical current value cannot excuse a metric the
        // gate has no class for.
        let regs = compare(&base, &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "mystery_metric");
        assert_eq!(regs[0].tolerance, None);
        assert!(
            regs[0].describe().contains("no tolerance class"),
            "{}",
            regs[0].describe()
        );
        // Unknown classes in *ungated* suites stay informational.
        cur.suites[1].push("also_mystery", 1.0);
        let mut base2 = report();
        base2.suites[1].push("also_mystery", 1.0);
        assert_eq!(compare(&base2, &base2).len(), 0);
    }

    #[test]
    fn percentile_regression_fails_the_gate() {
        let mut base = report();
        let mut s = Suite::new("cell_scale_smoke", true);
        s.push("latency.total.p99_ns", 16_777_216.0);
        base.suites.push(s);
        let mut cur = base.clone();
        assert!(compare(&base, &cur).is_empty());
        // p99 slides one histogram bucket up: the gate must trip.
        let idx = cur.suites.len() - 1;
        cur.suites[idx].metrics[0].1 *= 2.0;
        let regs = compare(&base, &cur);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "latency.total.p99_ns");
        assert_eq!(
            regs[0].tolerance,
            Some(ToleranceClass::Percentile.tolerance())
        );
    }
}
