//! Benchgate suites for the cell-scale workload harness.
//!
//! Two suites over [`vran_net::cellsim`]:
//!
//! * `cell_scale_smoke` — **gated**. The deterministic
//!   [`CellSimConfig::smoke`] preset (2 cells × 48 UEs × 1200 TTIs of
//!   bursty paper-sweep traffic with a mid-run HARQ storm) at a pinned
//!   seed. Counts gate exactly, latency percentiles gate under the
//!   percentile tolerance class — a p99 bucket jump fails CI.
//! * `cell_scale_full` — ungated. The [`CellSimConfig::full`] diurnal
//!   sweep at 1, 2 and 4 cells, reporting served Mbps, tail latency
//!   and the paper's capacity answer: cores needed for
//!   cells × 300 Mbps of this traffic shape.

use crate::gate::Suite;
use vran_net::cellsim::{run_cell_sim, CellSimConfig};

/// Pinned seed of the gated smoke preset. Changing it is a baseline
/// refresh, not a tolerance question.
pub const SMOKE_SEED: u64 = 0xCE11;

/// Cell counts swept by the ungated full suite.
pub const FULL_CELLS: [usize; 3] = [1, 2, 4];

/// Per-cell target of the capacity question (the paper's 300 Mbps
/// eNodeB provisioning point).
pub const TARGET_MBPS_PER_CELL: f64 = 300.0;

/// Gated: the deterministic cell-scale smoke preset.
pub fn cell_scale_smoke_suite() -> Suite {
    let report = run_cell_sim(CellSimConfig::smoke(SMOKE_SEED));
    let mut suite = Suite::new("cell_scale_smoke", true);
    for (metric, value) in report.snapshot() {
        suite.push(metric, value);
    }
    suite
}

/// Ungated: the full diurnal sweep over [`FULL_CELLS`], with the
/// cores-per-(cells × 300 Mbps) capacity figures.
pub fn cell_scale_full_suite() -> Suite {
    let mut suite = Suite::new("cell_scale_full", false);
    for cells in FULL_CELLS {
        let r = run_cell_sim(CellSimConfig::full(cells, SMOKE_SEED + cells as u64));
        let p = format!("c{cells}");
        suite.push(format!("{p}.offered.mbps"), r.offered_mbps());
        suite.push(format!("{p}.served.mbps"), r.served_mbps());
        suite.push(format!("{p}.served.count"), r.served_packets as f64);
        suite.push(format!("{p}.dropped.count"), r.dropped_packets as f64);
        suite.push(
            format!("{p}.harq_retx.count"),
            r.harq_retransmissions as f64,
        );
        suite.push(format!("{p}.ue.fairness.ratio"), r.ue_fairness);
        for (name, q) in [("p50_ns", 0.50), ("p95_ns", 0.95), ("p99_ns", 0.99)] {
            suite.push(
                format!("{p}.latency.total.{name}"),
                r.latency.total.quantile_upper(q) as f64,
            );
        }
        suite.push(format!("{p}.core_equivalents"), r.core_equivalents());
        suite.push(
            format!("{p}.cores_for_300mbps"),
            r.cores_for(cells as f64 * TARGET_MBPS_PER_CELL),
        );
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_reports_capacity_per_cell_count() {
        let s = cell_scale_full_suite();
        for cells in FULL_CELLS {
            let served = s.get(&format!("c{cells}.served.mbps")).unwrap();
            let cores = s.get(&format!("c{cells}.cores_for_300mbps")).unwrap();
            assert!(served > 0.0, "c{cells} must serve traffic");
            assert!(
                cores.is_finite() && cores > 0.0,
                "c{cells} capacity must be answerable: {cores}"
            );
        }
        // The capacity bill grows with the cell count.
        let c1 = s.get("c1.cores_for_300mbps").unwrap();
        let c4 = s.get("c4.cores_for_300mbps").unwrap();
        assert!(c4 > c1, "4 cells must need more cores than 1: {c1} vs {c4}");
    }
}
