//! `benchgate` — the perf-trajectory regression gate.
//!
//! Runs the pinned, deterministic suites — the arrangement kernels,
//! original vs APCM, at all three register widths through the
//! `vran-uarch` simulator, static uplink and downlink pipeline
//! invariants (the latter once per encoder backend, so scalar/packed
//! bit-equality is itself gated), the fault-injection
//! classification counts, the out-of-order stage-graph runtime's
//! deterministic outcome and batch-formation counters (quad / pair /
//! single launches, flush reasons, zmm lane occupancy), plus the
//! deterministic cell-scale smoke preset with its p50/p95/p99
//! tail-latency percentiles, and the chaos-recovery suite (the phased
//! storm schedules of `vran_net::chaos`, pinning the measured
//! time-to-recover, breaker trip/reset counts, worker restarts, and
//! the flight-recorder's <2 % overhead boolean) — and seven
//! informational (never gating) suites:
//! a smoke run of the threaded packet pipeline, the native
//! turbo-decoder fast path, the packed turbo-encoder fast path
//! (scalar per-bit reference vs each runtime-dispatched ISA level,
//! plus the packed-word rate matcher and the combined transmit
//! chain), the downlink and uplink multi-worker scale-out
//! sweeps, the stage-graph vs per-packet serial wall-clock
//! throughput comparison, the full cell-scale diurnal sweep with its
//! cores-per-(cells × 300 Mbps) capacity figures, and the raw
//! flight-recorder overhead timings behind the gated boolean. Writes
//! `BENCH_current.json` and, with `--check`, compares the gated
//! suites against `BENCH_baseline.json`, exiting non-zero on
//! regression. `--only suite,…` restricts both the run and the gate
//! to the named suites (the CI smoke job runs
//! `--only cell_scale_smoke`); `--summary <path>` writes a markdown
//! p50/p95/p99 table for `$GITHUB_STEP_SUMMARY`; `--flight-dump
//! <path>` writes the chaos run's last flight-recorder events as JSON
//! (the CI failure artifact).
//!
//! ```text
//! benchgate [--check] [--write-baseline]
//!           [--baseline <path>] [--out <path>] [--quiet]
//!           [--only <suite,...>] [--summary <path>]
//!           [--flight-dump <path>]
//! ```

use std::process::ExitCode;
use std::time::Instant;
use vran_arrange::{best_fused, ApcmVariant, ArrangeKernel, FusedImpl, Mechanism};
use vran_bench::cellscale::{cell_scale_full_suite, cell_scale_smoke_suite};
use vran_bench::gate::{compare, BenchReport, Suite};
use vran_bench::{interleaved_workload, turbo_workload};
use vran_net::chaos::{run_cell_chaos, run_runner_chaos, CellChaosConfig, RunnerChaosConfig};
use vran_net::downlink::{DownlinkConfig, DownlinkPipeline};
use vran_net::error::ErrorCategory;
use vran_net::faultinject::{FaultInjector, FaultKind};
use vran_net::metrics::StageGraphMetrics;
use vran_net::metrics::{PipelineMetrics, RunnerMetrics, Stage, UarchMetrics};
use vran_net::observe::FlightRecorder;
use vran_net::packet::PacketBuilder;
use vran_net::pipeline::{DecoderBackend, EncoderBackend, PipelineConfig, UplinkPipeline};
use vran_net::runner::{
    downlink_scaleout_sweep, run_throughput_metered, run_uplink_serial_mixed,
    run_uplink_stagegraph_metered, uplink_scaleout_sweep, RING_CAPACITY,
};
use vran_net::{StageGraphConfig, Transport};
use vran_phy::bits::{extend_bits_from_words, random_bits};
use vran_phy::crc::{best_crc, CrcImpl};
use vran_phy::demap::{best_demap, DemapImpl};
use vran_phy::rate_match::{PackedRateMatcher, RateMatcher};
use vran_phy::scrambler::{best_descramble, DescrambleImpl};
use vran_phy::turbo::{
    DecodeScratch, DecoderIsa, EncodeScratch, EncoderIsa, NativeBatchTurboDecoder,
    NativeTurboDecoder, PackedTurboEncoder, TurboDecoder, TurboEncoder,
};
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

/// Code-block size for the simulator suite (the paper's K = 6144).
const SIM_K: usize = 6144;
/// Workload seed — pinned so traces (and thus cycle counts) are stable.
const SIM_SEED: u64 = 1;
/// Packets pushed through the wall-clock smoke run.
const SMOKE_PACKETS: usize = 16;
/// Wire bytes per smoke packet.
const SMOKE_WIRE_LEN: usize = 512;
/// Timed repetitions per decoder configuration (median taken).
const DECODE_REPS: usize = 25;
/// Decoder iterations for the fast-path suite — fixed, no CRC early
/// stop, so every configuration does identical work.
const DECODE_ITERS: usize = 4;
/// Packets per backend pushed through the fault-classification suite.
const FAULT_PACKETS: usize = 240;
/// Fault-injector seeds (match the fault-soak test family).
const FAULT_SEED_SCALAR: u64 = 17;
const FAULT_SEED_NATIVE: u64 = 18;
/// Timed repetitions per encoder configuration (median taken).
const ENCODE_REPS: usize = 25;
/// Packets per worker-count point of the downlink scale-out sweep.
const SCALEOUT_PACKETS: usize = 12;
/// Wire bytes per scale-out packet.
const SCALEOUT_WIRE_LEN: usize = 256;
/// Largest worker count swept.
const SCALEOUT_MAX_WORKERS: usize = 4;
/// Packets per configuration of the gated stage-graph suite — twelve
/// full rounds of the 14 paper-sweep classes.
const STAGEGRAPH_PACKETS: usize = 168;
/// Packets per run of the ungated stage-graph wall-clock comparison.
const STAGEGRAPH_WALLCLOCK_PACKETS: usize = 420;
/// Seed for both chaos storm schedules (cell-scale and runner).
const CHAOS_SEED: u64 = 7;
/// Wire sizes cycled by the fused-ingest A/B runs (one TB per size,
/// spanning single-block and multi-block K).
const FUSED_SIZES: [usize; 4] = [64, 300, 900, 1400];
/// Measured repetitions of the fused-ingest size cycle per side (one
/// extra warm-up cycle fills the pools first).
const FUSED_REPS: usize = 40;
/// Paired repetitions of the flight-recorder overhead measurement
/// (minimum of each side taken).
const OVERHEAD_RUNS: usize = 7;
/// Flight-recorder events dumped for the CI artifact.
const FLIGHT_DUMP_EVENTS: usize = 256;

struct Args {
    check: bool,
    write_baseline: bool,
    baseline: String,
    out: String,
    quiet: bool,
    /// Restrict the run (and the gate) to these suites; empty = all.
    only: Vec<String>,
    /// Write a markdown p50/p95/p99 summary here (for CI step summaries).
    summary: Option<String>,
    /// Write the chaos run's flight-recorder dump here (CI artifact).
    flight_dump: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        write_baseline: false,
        baseline: "BENCH_baseline.json".into(),
        out: "BENCH_current.json".into(),
        quiet: false,
        only: Vec::new(),
        summary: None,
        flight_dump: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check = true,
            "--write-baseline" => args.write_baseline = true,
            "--baseline" => args.baseline = it.next().ok_or("--baseline needs a path")?,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--quiet" => args.quiet = true,
            "--only" => {
                let list = it.next().ok_or("--only needs a comma-separated list")?;
                args.only
                    .extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--summary" => args.summary = Some(it.next().ok_or("--summary needs a path")?),
            "--flight-dump" => {
                args.flight_dump = Some(it.next().ok_or("--flight-dump needs a path")?)
            }
            "--help" | "-h" => {
                return Err("usage: benchgate [--check] [--write-baseline] \
                            [--baseline <path>] [--out <path>] [--quiet] \
                            [--only <suite,...>] [--summary <path>] \
                            [--flight-dump <path>]"
                    .into())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Current commit, or "unknown" outside a git checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Gated: arrangement kernels original-vs-APCM at every width through
/// the port-level simulator. Deterministic by construction.
fn arrange_sim_suite() -> Suite {
    let mut suite = Suite::new("arrange_sim", true);
    let input = interleaved_workload(SIM_K, SIM_SEED);
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    for width in RegWidth::ALL {
        let mut cycles_of = Vec::new();
        for mech in [
            Mechanism::Baseline,
            Mechanism::Apcm(ApcmVariant::Shuffle),
            Mechanism::Apcm(ApcmVariant::MaskRotate),
        ] {
            let kern = ArrangeKernel::new(width, mech);
            let (_, trace) = kern.arrange(&input, true);
            let report = sim.run(&trace.expect("trace requested"));
            let m = UarchMetrics::new(true);
            m.record_report(&report);
            let prefix = format!("{}.{}", width.name(), mech.name());
            suite.push(format!("{prefix}.cycles"), report.cycles as f64);
            suite.push(format!("{prefix}.uops"), report.uops as f64);
            suite.push(format!("{prefix}.upc"), m.upc());
            for (p, pressure) in m.port_pressure().iter().enumerate() {
                suite.push(format!("{prefix}.port{p}.pressure"), *pressure);
            }
            cycles_of.push((mech.name(), report.cycles));
        }
        let base = cycles_of[0].1 as f64;
        for (name, cycles) in &cycles_of[1..] {
            suite.push(
                format!("{}.{}.speedup", width.name(), name),
                base / *cycles as f64,
            );
        }
    }
    suite
}

/// Median-of-`reps` wall-clock nanoseconds for one call of `f`, after
/// two warm-up calls.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    f();
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Ungated: the turbo-decoder fast path — scalar reference vs the
/// native kernels at every ISA level the host dispatches to, plus the
/// AVX2 two-block and AVX-512BW four-block batches, all on the pinned
/// K = 6144 workload.
fn decoder_native_suite() -> Suite {
    let mut suite = Suite::new("decoder_native", false);
    let (_, input) = turbo_workload(SIM_K, SIM_SEED);
    // Information bits delivered per decode call.
    let per_block_bits = SIM_K as f64;

    let scalar = TurboDecoder::new(SIM_K, DECODE_ITERS);
    let scalar_ns = median_ns(DECODE_REPS, || {
        std::hint::black_box(scalar.decode(std::hint::black_box(&input)));
    });
    suite.push("scalar.ns_per_block", scalar_ns);
    suite.push("scalar.bits_per_s", per_block_bits * 1e9 / scalar_ns);

    for isa in DecoderIsa::available() {
        let dec = NativeTurboDecoder::with_isa(SIM_K, DECODE_ITERS, isa);
        let mut scratch = DecodeScratch::new();
        let mut bits = Vec::new();
        let ns = median_ns(DECODE_REPS, || {
            let r = dec.decode_streams_into(
                std::hint::black_box(&input.streams.sys),
                &input.streams.p1,
                &input.streams.p2,
                &input.tails,
                None,
                &mut scratch,
                &mut bits,
            );
            std::hint::black_box(r);
        });
        let p = format!("native.{}", isa.name());
        suite.push(format!("{p}.ns_per_block"), ns);
        suite.push(format!("{p}.bits_per_s"), per_block_bits * 1e9 / ns);
        suite.push(format!("{p}.speedup"), scalar_ns / ns);
    }

    let pair = [
        turbo_workload(SIM_K, SIM_SEED).1,
        turbo_workload(SIM_K, SIM_SEED + 1).1,
    ];
    let batch = NativeBatchTurboDecoder::new(SIM_K, DECODE_ITERS);
    let pair_ns = median_ns(DECODE_REPS, || {
        std::hint::black_box(batch.decode_pair(std::hint::black_box(&pair)));
    });
    suite.push("batch2.ns_per_block", pair_ns / 2.0);
    suite.push(
        "batch2.accelerated",
        f64::from(NativeBatchTurboDecoder::is_accelerated()),
    );
    suite.push("batch2.speedup", scalar_ns / (pair_ns / 2.0));

    let quad: [_; 4] = std::array::from_fn(|g| turbo_workload(SIM_K, SIM_SEED + g as u64).1);
    let quad_ns = median_ns(DECODE_REPS, || {
        std::hint::black_box(batch.decode_quad(std::hint::black_box(&quad)));
    });
    suite.push("batch4.ns_per_block", quad_ns / 4.0);
    suite.push(
        "batch4.accelerated",
        f64::from(NativeBatchTurboDecoder::is_zmm_accelerated()),
    );
    suite.push("batch4.speedup", scalar_ns / (quad_ns / 4.0));
    suite
}

/// Ungated: the transmit-side packed encoder fast path — scalar
/// per-bit reference vs the bitsliced kernels at every ISA level the
/// host dispatches to, plus the per-bit vs packed-word rate matcher
/// and the combined encode+rate-match transmit chain, all at the
/// paper's K = 6144.
fn encoder_packed_suite() -> Suite {
    let mut suite = Suite::new("encoder_wallclock", false);
    let bits = random_bits(SIM_K, SIM_SEED);
    let per_block_bits = SIM_K as f64;
    let e = 3 * (SIM_K + 4);

    let scalar_enc = TurboEncoder::new(SIM_K);
    let scalar_ns = median_ns(ENCODE_REPS, || {
        std::hint::black_box(scalar_enc.encode(std::hint::black_box(&bits)));
    });
    suite.push("encode.scalar.ns_per_block", scalar_ns);
    suite.push("encode.scalar.bits_per_s", per_block_bits * 1e9 / scalar_ns);

    let mut scratch = EncodeScratch::default();
    for isa in EncoderIsa::available() {
        let enc = PackedTurboEncoder::with_isa(SIM_K, isa);
        let ns = median_ns(ENCODE_REPS, || {
            enc.encode_dstreams_into(std::hint::black_box(&bits), &mut scratch);
            std::hint::black_box(&scratch);
        });
        let p = format!("encode.{}", isa.name());
        suite.push(format!("{p}.ns_per_block"), ns);
        suite.push(format!("{p}.bits_per_s"), per_block_bits * 1e9 / ns);
        suite.push(format!("{p}.speedup"), scalar_ns / ns);
    }

    // Rate matcher: per-position circular readout vs the packed-word
    // funnel-shift copy over the same d-streams.
    let d = scalar_enc.encode(&bits).to_dstreams();
    let srm = RateMatcher::new(SIM_K + 4);
    let scalar_rm_ns = median_ns(ENCODE_REPS, || {
        std::hint::black_box(srm.rate_match(std::hint::black_box(&d), e, 0));
    });
    suite.push("ratematch.scalar.ns_per_block", scalar_rm_ns);

    let prm = PackedRateMatcher::new(SIM_K + 4);
    let packed_enc = PackedTurboEncoder::new(SIM_K);
    packed_enc.encode_dstreams_into(&bits, &mut scratch);
    let mut wbuf = Vec::new();
    let mut ebuf = Vec::new();
    let mut out_bits = Vec::new();
    let packed_rm_ns = median_ns(ENCODE_REPS, || {
        prm.pack_circular_into(scratch.dstream_words(), &mut wbuf)
            .expect("streams sized to d");
        prm.try_rate_match_packed_into(&wbuf, e, 0, &mut ebuf)
            .expect("rv 0 valid");
        out_bits.clear();
        extend_bits_from_words(&ebuf, e, &mut out_bits);
        std::hint::black_box(&out_bits);
    });
    suite.push("ratematch.packed.ns_per_block", packed_rm_ns);
    suite.push("ratematch.speedup", scalar_rm_ns / packed_rm_ns);

    // Combined transmit chain (encode + rate match), scalar reference
    // vs the best-dispatched packed path — the pipeline-visible win.
    let scalar_tx_ns = median_ns(ENCODE_REPS, || {
        let cw = scalar_enc.encode(std::hint::black_box(&bits));
        std::hint::black_box(srm.rate_match(&cw.to_dstreams(), e, 0));
    });
    let packed_tx_ns = median_ns(ENCODE_REPS, || {
        packed_enc.encode_dstreams_into(std::hint::black_box(&bits), &mut scratch);
        prm.pack_circular_into(scratch.dstream_words(), &mut wbuf)
            .expect("streams sized to d");
        prm.try_rate_match_packed_into(&wbuf, e, 0, &mut ebuf)
            .expect("rv 0 valid");
        out_bits.clear();
        extend_bits_from_words(&ebuf, e, &mut out_bits);
        std::hint::black_box(&out_bits);
    });
    suite.push("txchain.scalar.ns_per_block", scalar_tx_ns);
    suite.push("txchain.packed.ns_per_block", packed_tx_ns);
    suite.push("txchain.speedup", scalar_tx_ns / packed_tx_ns);
    suite
}

/// Ungated: downlink multi-worker scale-out — aggregate and per-core
/// Mbps at every worker count up to [`SCALEOUT_MAX_WORKERS`].
fn downlink_scaleout_suite() -> Suite {
    let mut suite = Suite::new("downlink_scaleout", false);
    let cfg = DownlinkConfig {
        snr_db: 30.0,
        ..Default::default()
    };
    for pt in downlink_scaleout_sweep(
        cfg,
        Transport::Udp,
        SCALEOUT_WIRE_LEN,
        SCALEOUT_PACKETS,
        SCALEOUT_MAX_WORKERS,
    ) {
        let p = format!("w{}", pt.workers);
        suite.push(format!("{p}.mbps"), pt.mbps);
        suite.push(format!("{p}.mbps_per_core"), pt.mbps_per_core);
        suite.push(format!("{p}.ok.count"), pt.ok_packets as f64);
    }
    suite
}

/// Ungated: uplink multi-worker scale-out — aggregate and per-core
/// Mbps at every worker count up to [`SCALEOUT_MAX_WORKERS`], with the
/// batched native decode path (quad-in-zmm where the host has it)
/// enabled so the sweep exercises the widest receive chain.
fn uplink_scaleout_suite() -> Suite {
    let mut suite = Suite::new("uplink_scaleout", false);
    let cfg = PipelineConfig {
        snr_db: 30.0,
        batch_decode: true,
        ..Default::default()
    };
    for pt in uplink_scaleout_sweep(
        cfg,
        Transport::Udp,
        SCALEOUT_WIRE_LEN,
        SCALEOUT_PACKETS,
        SCALEOUT_MAX_WORKERS,
    ) {
        let p = format!("w{}", pt.workers);
        suite.push(format!("{p}.mbps"), pt.mbps);
        suite.push(format!("{p}.mbps_per_core"), pt.mbps_per_core);
        suite.push(format!("{p}.ok.count"), pt.ok_packets as f64);
    }
    suite
}

/// Both transports at every paper-sweep size — the mixed-K workload
/// the stage-graph suites (and the acceptance occupancy target) use.
fn paper_sweep_classes() -> Vec<(Transport, usize)> {
    [Transport::Udp, Transport::Tcp]
        .into_iter()
        .flat_map(|t| {
            [64usize, 128, 300, 600, 900, 1200, 1400]
                .into_iter()
                .map(move |s| (t, s))
        })
        .collect()
}

/// Gated: deterministic outcomes and batch-formation shape of the
/// out-of-order stage-graph runtime on the paper-sweep round-robin
/// workload at one and two workers. Packet/ok counts and every
/// quad/pair/single/flush counter gate exactly; zmm lane occupancy
/// gates as a ratio. No `deadline_ns` is set, so flushes are purely
/// tick-driven and the whole suite is host-independent.
fn uplink_stagegraph_suite() -> Suite {
    let mut suite = Suite::new("uplink_stagegraph", true);
    let classes = paper_sweep_classes();
    for workers in [1usize, 2] {
        let sg = std::sync::Arc::new(StageGraphMetrics::default());
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let rep = run_uplink_stagegraph_metered(
            cfg,
            &classes,
            STAGEGRAPH_PACKETS,
            workers,
            StageGraphConfig::default(),
            &RunnerMetrics::new(false, RING_CAPACITY),
            Some(sg.clone()),
            None,
            None,
            None,
        );
        let p = format!("w{workers}");
        suite.push(format!("{p}.packets.count"), rep.packets as f64);
        suite.push(format!("{p}.ok.count"), rep.ok_packets as f64);
        suite.push(
            format!("{p}.batch.lane_occupancy.ratio"),
            sg.lane_occupancy(),
        );
        suite.push(
            format!("{p}.batch.quad_blocks.count"),
            sg.quad_blocks.get() as f64,
        );
        suite.push(
            format!("{p}.batch.pair_blocks.count"),
            sg.pair_blocks.get() as f64,
        );
        suite.push(
            format!("{p}.batch.single_blocks.count"),
            sg.single_blocks.get() as f64,
        );
        suite.push(
            format!("{p}.batch.flush.lanes_full.count"),
            sg.flush_lanes_full.get() as f64,
        );
        suite.push(
            format!("{p}.batch.flush.deadline.count"),
            sg.flush_deadline.get() as f64,
        );
        suite.push(
            format!("{p}.batch.flush.drain.count"),
            sg.flush_drain.get() as f64,
        );
    }
    suite
}

/// Ungated: wall-clock throughput of the stage-graph runtime vs the
/// per-packet serial path on the same mixed-K traffic — once against
/// the fixed-iteration batch semantics the stage graph shares (the
/// apples-to-apples speedup) and once against the CRC-early-stop
/// serial default (quantifying the early-stop trade-off the batch
/// lanes give up).
fn uplink_stagegraph_wallclock_suite() -> Suite {
    let mut suite = Suite::new("uplink_stagegraph_wallclock", false);
    let classes = paper_sweep_classes();
    let workers = 2;
    let cfg = PipelineConfig {
        snr_db: 30.0,
        ..Default::default()
    };
    let batch_cfg = PipelineConfig {
        batch_decode: true,
        ..cfg
    };
    let earlystop = run_uplink_serial_mixed(cfg, &classes, STAGEGRAPH_WALLCLOCK_PACKETS, workers);
    let serial_batch =
        run_uplink_serial_mixed(batch_cfg, &classes, STAGEGRAPH_WALLCLOCK_PACKETS, workers);
    let sg = std::sync::Arc::new(StageGraphMetrics::default());
    let graph = run_uplink_stagegraph_metered(
        cfg,
        &classes,
        STAGEGRAPH_WALLCLOCK_PACKETS,
        workers,
        StageGraphConfig::default(),
        &RunnerMetrics::new(false, RING_CAPACITY),
        Some(sg.clone()),
        None,
        None,
        None,
    );
    suite.push("serial_earlystop.mbps", earlystop.mbps);
    suite.push("serial_batch.mbps", serial_batch.mbps);
    suite.push("stagegraph.mbps", graph.mbps);
    suite.push(
        "stagegraph.vs_serial_batch.speedup",
        graph.mbps / serial_batch.mbps,
    );
    suite.push(
        "stagegraph.vs_serial_earlystop.speedup",
        graph.mbps / earlystop.mbps,
    );
    suite.push("batch.lane_occupancy.ratio", sg.lane_occupancy());
    suite.push(
        "batch4.accelerated",
        f64::from(NativeBatchTurboDecoder::is_zmm_accelerated()),
    );
    suite
}

/// One side of the fused-ingest A/B: per-packet outcome signatures
/// (bit-exactness evidence), wall-clock, and the staging counters.
struct FusedIngestRun {
    sigs: Vec<(usize, usize, usize, usize)>,
    ok_packets: u64,
    code_blocks: u64,
    fused_blocks: u64,
    fused_fallbacks: u64,
    steady_allocs: u64,
    arrange_mean_ns: f64,
    mbps: f64,
}

fn fused_ingest_run(fused: bool) -> FusedIngestRun {
    let pm = std::sync::Arc::new(PipelineMetrics::new(true));
    let cfg = PipelineConfig {
        snr_db: 30.0,
        batch_decode: true,
        fused_ingest: fused,
        ..Default::default()
    };
    let pipe = UplinkPipeline::with_metrics(cfg, pm.clone());
    let mut b = PacketBuilder::new(1000, 2000);
    // Warm-up cycle: decoder caches build, stream pools fill.
    for &size in &FUSED_SIZES {
        let p = b.build(Transport::Udp, size).expect("valid size");
        pipe.process(&p).expect("30 dB decodes");
    }
    let allocs0 = pm.staging_allocs.get() + pm.staging_reallocs.get();
    let mut sigs = Vec::new();
    let mut payload_bits = 0usize;
    let t = Instant::now();
    for _ in 0..FUSED_REPS {
        for &size in &FUSED_SIZES {
            let p = b.build(Transport::Udp, size).expect("valid size");
            let r = pipe.process(&p).expect("30 dB decodes");
            payload_bits += r.tb_bits;
            sigs.push((r.tb_bits, r.code_blocks, r.coded_bits, r.decoder_iterations));
        }
    }
    let elapsed_s = t.elapsed().as_secs_f64();
    let arrange_mean_ns = if fused {
        pm.arrange_fused().mean()
    } else {
        pm.stage(Stage::Arrange).mean()
    };
    FusedIngestRun {
        sigs,
        ok_packets: pm.ok_packets.get(),
        code_blocks: pm.code_blocks.get(),
        fused_blocks: pm.fused_ingest_blocks.get(),
        fused_fallbacks: pm.fused_ingest_fallbacks.get(),
        steady_allocs: pm.staging_allocs.get() + pm.staging_reallocs.get() - allocs0,
        arrange_mean_ns,
        mbps: payload_bits as f64 / elapsed_s / 1e6,
    }
}

/// Gated `uplink_fused_ingest` plus its ungated wall-clock companion,
/// sharing one A/B measurement. The gated side carries only exact
/// metrics: outcome counts (fused and unfused must both stay pinned),
/// the fused/unfused bit-equality boolean, the AVX-512BW tier pin, the
/// zero-steady-state-allocation count, and two wall-clock-derived
/// booleans with wide margins — arrangement-stage ≥1.3× faster fused
/// than unfused, and end-to-end throughput within 5 % of the unfused
/// path. The raw nanoseconds and Mbps live in the ungated companion so
/// host noise never gates CI.
fn uplink_fused_ingest_suites() -> (Suite, Suite) {
    let mut gated = Suite::new("uplink_fused_ingest", true);
    let mut wall = Suite::new("uplink_fused_ingest_wallclock", false);
    let fused = fused_ingest_run(true);
    let unfused = fused_ingest_run(false);

    gated.push(
        "avx512bw.accelerated",
        f64::from(best_fused() == FusedImpl::MaskMergeAvx512),
    );
    gated.push("fused.ok.count", fused.ok_packets as f64);
    gated.push("unfused.ok.count", unfused.ok_packets as f64);
    gated.push("fused.code_blocks", fused.code_blocks as f64);
    gated.push("fused.ingest_blocks.count", fused.fused_blocks as f64);
    gated.push("fused.fallbacks.count", fused.fused_fallbacks as f64);
    gated.push("bitexact.count", f64::from(fused.sigs == unfused.sigs));
    gated.push(
        "staging.steady_state_allocs.count",
        (fused.steady_allocs + unfused.steady_allocs) as f64,
    );
    let arrange_speedup = unfused.arrange_mean_ns / fused.arrange_mean_ns;
    gated.push(
        "arrange.speedup_ge_1p3.count",
        f64::from(arrange_speedup >= 1.3),
    );
    gated.push(
        "e2e.fused_within_5pct.count",
        f64::from(fused.mbps >= 0.95 * unfused.mbps),
    );

    wall.push("arrange.unfused.mean_ns", unfused.arrange_mean_ns);
    wall.push("arrange.fused.mean_ns", fused.arrange_mean_ns);
    wall.push("arrange.speedup", arrange_speedup);
    wall.push("e2e.unfused.mbps", unfused.mbps);
    wall.push("e2e.fused.mbps", fused.mbps);
    wall.push("e2e.speedup", fused.mbps / unfused.mbps);
    (gated, wall)
}

/// One side of the front-end A/B: per-packet outcome signatures
/// (decoded payloads must match between arms — iteration counts may
/// differ because the fixed-point demapper quantizes LLRs), per-stage
/// wall-clock, and the front-end counters.
struct FrontendRun {
    sigs: Vec<(usize, usize, usize)>,
    ok_packets: u64,
    frontend_packets: u64,
    frontend_fallbacks: u64,
    demap_mean_ns: f64,
    crc_mean_ns: f64,
    kernel_demap_ns: f64,
    kernel_descramble_ns: f64,
    kernel_crc_ns: f64,
    mbps: f64,
}

fn frontend_run(simd: bool) -> FrontendRun {
    let pm = std::sync::Arc::new(PipelineMetrics::new(true));
    let cfg = PipelineConfig {
        snr_db: 30.0,
        frontend_simd: simd,
        ..Default::default()
    };
    let pipe = UplinkPipeline::with_metrics(cfg, pm.clone());
    let mut b = PacketBuilder::new(1000, 2000);
    // Warm-up cycle: decoder caches build, stream pools fill.
    for &size in &FUSED_SIZES {
        let p = b.build(Transport::Udp, size).expect("valid size");
        pipe.process(&p).expect("30 dB decodes");
    }
    let mut sigs = Vec::new();
    let mut payload_bits = 0usize;
    let t = Instant::now();
    for _ in 0..FUSED_REPS {
        for &size in &FUSED_SIZES {
            let p = b.build(Transport::Udp, size).expect("valid size");
            let r = pipe.process(&p).expect("30 dB decodes");
            payload_bits += r.tb_bits;
            sigs.push((r.tb_bits, r.code_blocks, r.coded_bits));
        }
    }
    let elapsed_s = t.elapsed().as_secs_f64();
    FrontendRun {
        sigs,
        ok_packets: pm.ok_packets.get(),
        frontend_packets: pm.frontend_packets.get(),
        frontend_fallbacks: pm.frontend_fallbacks.get(),
        demap_mean_ns: pm.stage(Stage::Demap).mean(),
        crc_mean_ns: pm.stage(Stage::Crc).mean(),
        kernel_demap_ns: pm.frontend_demap().mean(),
        kernel_descramble_ns: pm.frontend_descramble().mean(),
        kernel_crc_ns: pm.frontend_crc().mean(),
        mbps: payload_bits as f64 / elapsed_s / 1e6,
    }
}

/// Gated `uplink_frontend` plus its ungated wall-clock companion,
/// sharing one A/B measurement. The gated side carries only exact
/// metrics: outcome counts and the cross-arm outcome-signature
/// equality (same payloads decoded, independent of LLR quantization),
/// the AVX-512BW/clmul tier pins, the zero-fallback count, and two
/// wall-clock-derived booleans with wide margins — the demap stage
/// (fixed-point demap + word-parallel descramble) ≥3× faster than the
/// f32 + bit-serial arm, and end-to-end throughput within 5 % of the
/// scalar front end. The raw nanoseconds and Mbps live in the ungated
/// companion so host noise never gates CI.
fn uplink_frontend_suites() -> (Suite, Suite) {
    let mut gated = Suite::new("uplink_frontend", true);
    let mut wall = Suite::new("uplink_frontend_wallclock", false);
    let simd = frontend_run(true);
    let scalar = frontend_run(false);

    gated.push(
        "avx512bw.accelerated",
        f64::from(
            best_demap() == DemapImpl::Avx512bw && best_descramble() == DescrambleImpl::Avx512bw,
        ),
    );
    gated.push(
        "crc.clmul.accelerated",
        f64::from(best_crc() == CrcImpl::ClmulFold),
    );
    gated.push("simd.ok.count", simd.ok_packets as f64);
    gated.push("scalar.ok.count", scalar.ok_packets as f64);
    gated.push("simd.frontend_packets.count", simd.frontend_packets as f64);
    gated.push(
        "scalar.frontend_packets.count",
        scalar.frontend_packets as f64,
    );
    gated.push("simd.fallbacks.count", simd.frontend_fallbacks as f64);
    gated.push(
        "outcomes.bitexact.count",
        f64::from(simd.sigs == scalar.sigs),
    );
    let demap_speedup = scalar.demap_mean_ns / simd.demap_mean_ns;
    gated.push(
        "demap_descramble.speedup_ge_3x.count",
        f64::from(demap_speedup >= 3.0),
    );
    gated.push(
        "e2e.simd_within_5pct.count",
        f64::from(simd.mbps >= 0.95 * scalar.mbps),
    );

    wall.push("demap.scalar.mean_ns", scalar.demap_mean_ns);
    wall.push("demap.simd.mean_ns", simd.demap_mean_ns);
    wall.push("demap.speedup", demap_speedup);
    wall.push("crc.scalar.mean_ns", scalar.crc_mean_ns);
    wall.push("crc.simd.mean_ns", simd.crc_mean_ns);
    wall.push("crc.speedup", scalar.crc_mean_ns / simd.crc_mean_ns);
    wall.push("kernel.demap.mean_ns", simd.kernel_demap_ns);
    wall.push("kernel.descramble.mean_ns", simd.kernel_descramble_ns);
    wall.push("kernel.crc.mean_ns", simd.kernel_crc_ns);
    wall.push("e2e.scalar.mbps", scalar.mbps);
    wall.push("e2e.simd.mbps", simd.mbps);
    wall.push("e2e.speedup", simd.mbps / scalar.mbps);
    (gated, wall)
}

/// Ungated: the fused mask/merge ingest kernel through the port-level
/// simulator next to the permute-only APCM variant and the original
/// mechanism — the backend-bound/port-pressure profile behind the
/// gated booleans (the hard assertions live in the fig15 tests).
fn fused_ingest_uarch_suite() -> Suite {
    let mut suite = Suite::new("fused_ingest_uarch", false);
    let input = interleaved_workload(SIM_K, SIM_SEED);
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    for width in RegWidth::ALL {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Apcm(ApcmVariant::Shuffle),
            Mechanism::Apcm(ApcmVariant::MaskMerge),
        ] {
            let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
            let trace = trace.expect("trace requested");
            let shuffles = trace
                .ops
                .iter()
                .filter(|o| o.kind == vran_simd::OpKind::VShuffle)
                .count();
            let r = sim.run(&trace);
            let prefix = format!("{}.{}", width.name(), mech.name());
            suite.push(format!("{prefix}.cycles"), r.cycles as f64);
            suite.push(format!("{prefix}.ipc"), r.ipc);
            suite.push(format!("{prefix}.backend.frac"), r.topdown.backend());
            suite.push(format!("{prefix}.retiring.frac"), r.topdown.retiring);
            suite.push(format!("{prefix}.shuffle_uops.count"), shuffles as f64);
            let alu: f64 = r.port_util[..3].iter().sum();
            let store: f64 = r.port_util[6..].iter().sum();
            suite.push(format!("{prefix}.ports.alu.util"), alu);
            suite.push(format!("{prefix}.ports.store.util"), store);
        }
    }
    suite
}

/// Gated: host-independent downlink outcomes at pinned seeds and
/// sizes, once per [`EncoderBackend`] — the two backends must stay
/// bit-identical (every metric equal between the `scalar.` and
/// `packed.` prefixes) and must not drift across commits.
fn downlink_static_suite() -> Suite {
    let mut suite = Suite::new("downlink_static", true);
    for (backend, name) in [
        (EncoderBackend::Scalar, "scalar"),
        (EncoderBackend::Packed, "packed"),
    ] {
        let cfg = DownlinkConfig {
            snr_db: 30.0,
            encoder_backend: backend,
            ..Default::default()
        };
        let pipe = DownlinkPipeline::new(cfg);
        let mut b = PacketBuilder::new(1000, 2000);
        let (mut ok, mut blocks, mut coded) = (0usize, 0usize, 0usize);
        for size in [64usize, 300, 900, 1400] {
            let p = b.build(Transport::Udp, size).expect("valid size");
            let r = pipe.process(&p);
            ok += usize::from(r.dci_ok && r.data_ok);
            blocks += r.code_blocks;
            coded += r.coded_bits;
        }
        suite.push(format!("{name}.ok.count"), ok as f64);
        suite.push(format!("{name}.code_blocks.count"), blocks as f64);
        suite.push(format!("{name}.coded_bits.count"), coded as f64);
    }
    suite
}

/// Gated: host-independent outcomes of one pipeline run at a pinned
/// seed — block structure and decoder effort must not drift.
fn pipeline_static_suite(metrics: &PipelineMetrics) -> Suite {
    let mut suite = Suite::new("pipeline_static", true);
    suite.push("packets.count", metrics.packets.get() as f64);
    suite.push("ok_packets.count", metrics.ok_packets.get() as f64);
    suite.push("code_blocks", metrics.code_blocks.get() as f64);
    suite.push(
        "decoder_iterations",
        metrics.decoder_iterations.get() as f64,
    );
    suite
}

/// Gated: deterministic fault-injection classification. Pushes the
/// standard soak mix through both decoder backends at pinned seeds and
/// pins every typed-error category count (`.count` metrics gate
/// exactly): drift here means the error taxonomy, the injector's
/// deterministic draw/mutation stream, or a backend's bit-exactness
/// changed.
fn pipeline_faults_suite() -> Suite {
    let mut suite = Suite::new("pipeline_faults", true);
    for (backend, seed) in [
        (DecoderBackend::Scalar, FAULT_SEED_SCALAR),
        (DecoderBackend::Native, FAULT_SEED_NATIVE),
    ] {
        let pm = std::sync::Arc::new(PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            backend,
            snr_db: 30.0,
            decoder_iterations: 4,
            ..Default::default()
        };
        let mut pipe = UplinkPipeline::with_metrics(cfg, pm.clone());
        pipe.set_fault_injector(FaultInjector::new(seed));
        let mut b = PacketBuilder::new(1000, 2000);
        for i in 0..FAULT_PACKETS {
            let transport = if i % 3 == 0 {
                Transport::Tcp
            } else {
                Transport::Udp
            };
            let sizes = [64usize, 128, 300, 900];
            let p = b.build(transport, sizes[i % sizes.len()]).expect("valid");
            let _ = pipe.process(&p);
        }
        let prefix = match backend {
            DecoderBackend::Scalar => "scalar",
            DecoderBackend::Native => "native",
        };
        suite.push(format!("{prefix}.ok.count"), pm.ok_packets.get() as f64);
        for cat in ErrorCategory::ALL {
            suite.push(
                format!("{prefix}.errors.{}.count", cat.name()),
                pm.error_count(cat) as f64,
            );
        }
        let injected = pipe.fault_counts().expect("injector attached");
        for kind in FaultKind::ALL {
            if injected[kind as usize] > 0 {
                suite.push(
                    format!("{prefix}.drawn.{}.count", kind.name()),
                    injected[kind as usize] as f64,
                );
            }
        }
    }
    suite
}

/// Ungated: wall-clock smoke numbers from the threaded pipeline —
/// recorded for trajectory plots, never gating CI.
fn pipeline_wallclock_suite(
    report: &vran_net::runner::ThroughputReport,
    pm: &PipelineMetrics,
    rm: &RunnerMetrics,
) -> Suite {
    let mut suite = Suite::new("pipeline_wallclock", false);
    suite.push("mbps", report.mbps);
    suite.push("elapsed_s", report.elapsed_s);
    for s in Stage::ALL {
        suite.push(format!("stage.{}.mean_ns", s.name()), pm.stage(s).mean());
        suite.push(
            format!("stage.{}.p90_ns", s.name()),
            pm.stage(s).quantile_upper(0.9) as f64,
        );
    }
    suite.push("ring.occupancy.mean", rm.ring_occupancy.mean());
    suite.push("ring.push_stalls", rm.push_stalls.get() as f64);
    suite.push("ring.pop_stalls", rm.pop_stalls.get() as f64);
    suite
}

/// Flight-recorder overhead on the stage-graph wall-clock workload:
/// minimum elapsed seconds on each side plus their ratio. The runs
/// interleave (base, recorder, base, recorder, …) so slow thermal or
/// scheduler drift hits both sides equally, and the min-of-N on each
/// side is the noise-floor estimator the <2 % gate judges. The
/// workload runs on a single stage-graph worker: the recorder's
/// per-event cost is identical at any worker count, but multi-worker
/// scheduling jitter on a sub-second run is several percent — far
/// louder than the effect being measured.
fn measure_observe_overhead() -> (f64, f64, f64) {
    let classes = paper_sweep_classes();
    let cfg = PipelineConfig {
        snr_db: 30.0,
        ..Default::default()
    };
    let one = |recorder: Option<std::sync::Arc<FlightRecorder>>| -> f64 {
        run_uplink_stagegraph_metered(
            cfg,
            &classes,
            STAGEGRAPH_WALLCLOCK_PACKETS,
            1,
            StageGraphConfig::default(),
            &RunnerMetrics::new(false, RING_CAPACITY),
            None,
            None,
            recorder,
            None,
        )
        .elapsed_s
    };
    let (mut base_s, mut rec_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..OVERHEAD_RUNS {
        base_s = base_s.min(one(None));
        rec_s = rec_s.min(one(Some(std::sync::Arc::new(
            FlightRecorder::with_capacity(4096),
        ))));
    }
    (base_s, rec_s, rec_s / base_s)
}

/// Gated: both chaos storm schedules — the cell-scale windowed storm
/// with its recovery clock and the six-phase runner storm with armed
/// breakers — plus the flight-recorder overhead boolean. Every count
/// is deterministic from [`CHAOS_SEED`]; the recovery time is pinned
/// exactly. Returns the suite and the flight-recorder JSON dump for
/// the `--flight-dump` CI artifact.
fn chaos_recovery_suite(overhead_within_2pct: bool) -> (Suite, String) {
    let mut suite = Suite::new("chaos_recovery", true);
    let cell = run_cell_chaos(CellChaosConfig::smoke(CHAOS_SEED));
    for (k, v) in cell.snapshot() {
        suite.push(format!("cell.{k}"), v);
    }
    let runner = run_runner_chaos(RunnerChaosConfig::smoke(CHAOS_SEED));
    for (k, v) in runner.snapshot() {
        suite.push(format!("runner.{k}"), v);
    }
    suite.push(
        "flight_recorder.overhead_within_2pct.count",
        f64::from(overhead_within_2pct),
    );
    let dump = runner.recorder.dump_json(FLIGHT_DUMP_EVENTS).to_string();
    (suite, dump)
}

/// Ungated: the raw timings behind the gated overhead boolean —
/// recorded for trajectory plots.
fn observe_overhead_suite(base_s: f64, rec_s: f64, min_ratio: f64) -> Suite {
    let mut suite = Suite::new("observe_overhead", false);
    suite.push("baseline.elapsed_s", base_s);
    suite.push("recorder.elapsed_s", rec_s);
    suite.push("overhead.min.frac", min_ratio - 1.0);
    suite
}

/// Suite names `--only` accepts (also the build order).
const SUITES: [&str; 20] = [
    "arrange_sim",
    "fused_ingest_uarch",
    "decoder_native",
    "encoder_wallclock",
    "downlink_static",
    "downlink_scaleout",
    "uplink_scaleout",
    "uplink_fused_ingest",
    "uplink_fused_ingest_wallclock",
    "uplink_frontend",
    "uplink_frontend_wallclock",
    "uplink_stagegraph",
    "uplink_stagegraph_wallclock",
    "cell_scale_smoke",
    "cell_scale_full",
    "pipeline_static",
    "pipeline_faults",
    "pipeline_wallclock",
    "chaos_recovery",
    "observe_overhead",
];

/// Build the report; also returns the chaos run's flight-recorder
/// dump when that suite ran (for `--flight-dump`).
fn build_report(only: &[String]) -> Result<(BenchReport, Option<String>), String> {
    for name in only {
        if !SUITES.contains(&name.as_str()) {
            return Err(format!(
                "unknown suite {name:?}; known: {}",
                SUITES.join(", ")
            ));
        }
    }
    let want = |name: &str| only.is_empty() || only.iter().any(|o| o == name);
    let mut report = BenchReport::new(git_sha());
    report.config = vec![
        ("core".into(), "beefy+warmed".into()),
        ("sim_k".into(), SIM_K.to_string()),
        ("sim_seed".into(), SIM_SEED.to_string()),
        ("smoke_packets".into(), SMOKE_PACKETS.to_string()),
        ("smoke_wire_len".into(), SMOKE_WIRE_LEN.to_string()),
        ("decode_reps".into(), DECODE_REPS.to_string()),
        ("decode_iters".into(), DECODE_ITERS.to_string()),
        ("fault_packets".into(), FAULT_PACKETS.to_string()),
        ("encode_reps".into(), ENCODE_REPS.to_string()),
        ("scaleout_packets".into(), SCALEOUT_PACKETS.to_string()),
        ("scaleout_wire_len".into(), SCALEOUT_WIRE_LEN.to_string()),
        (
            "scaleout_max_workers".into(),
            SCALEOUT_MAX_WORKERS.to_string(),
        ),
        ("stagegraph_packets".into(), STAGEGRAPH_PACKETS.to_string()),
        (
            "stagegraph_wallclock_packets".into(),
            STAGEGRAPH_WALLCLOCK_PACKETS.to_string(),
        ),
        ("chaos_seed".into(), CHAOS_SEED.to_string()),
        ("overhead_runs".into(), OVERHEAD_RUNS.to_string()),
        (
            "fused_sizes".into(),
            FUSED_SIZES.map(|s| s.to_string()).join("/"),
        ),
        ("fused_reps".into(), FUSED_REPS.to_string()),
    ];
    if want("arrange_sim") {
        report.suites.push(arrange_sim_suite());
    }
    if want("fused_ingest_uarch") {
        report.suites.push(fused_ingest_uarch_suite());
    }
    if want("decoder_native") {
        report.suites.push(decoder_native_suite());
    }
    if want("encoder_wallclock") {
        report.suites.push(encoder_packed_suite());
    }
    if want("downlink_static") {
        report.suites.push(downlink_static_suite());
    }
    if want("downlink_scaleout") {
        report.suites.push(downlink_scaleout_suite());
    }
    if want("uplink_scaleout") {
        report.suites.push(uplink_scaleout_suite());
    }
    if want("uplink_fused_ingest") || want("uplink_fused_ingest_wallclock") {
        let (gated, wallclock) = uplink_fused_ingest_suites();
        if want("uplink_fused_ingest") {
            report.suites.push(gated);
        }
        if want("uplink_fused_ingest_wallclock") {
            report.suites.push(wallclock);
        }
    }
    if want("uplink_frontend") || want("uplink_frontend_wallclock") {
        let (gated, wallclock) = uplink_frontend_suites();
        if want("uplink_frontend") {
            report.suites.push(gated);
        }
        if want("uplink_frontend_wallclock") {
            report.suites.push(wallclock);
        }
    }
    if want("uplink_stagegraph") {
        report.suites.push(uplink_stagegraph_suite());
    }
    if want("uplink_stagegraph_wallclock") {
        report.suites.push(uplink_stagegraph_wallclock_suite());
    }
    if want("cell_scale_smoke") {
        report.suites.push(cell_scale_smoke_suite());
    }
    if want("cell_scale_full") {
        report.suites.push(cell_scale_full_suite());
    }

    // The static and wall-clock pipeline suites share one metered run.
    if want("pipeline_static") || want("pipeline_wallclock") {
        let pm = std::sync::Arc::new(PipelineMetrics::new(true));
        let rm = RunnerMetrics::new(true, RING_CAPACITY);
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let tp = run_throughput_metered(
            cfg,
            Transport::Udp,
            SMOKE_WIRE_LEN,
            SMOKE_PACKETS,
            &rm,
            Some(pm.clone()),
        );
        if want("pipeline_static") {
            report.suites.push(pipeline_static_suite(&pm));
        }
        if want("pipeline_faults") {
            report.suites.push(pipeline_faults_suite());
        }
        if want("pipeline_wallclock") {
            report.suites.push(pipeline_wallclock_suite(&tp, &pm, &rm));
        }
    } else if want("pipeline_faults") {
        report.suites.push(pipeline_faults_suite());
    }

    // The gated overhead boolean and the ungated raw timings share one
    // paired measurement.
    let mut flight_dump = None;
    if want("chaos_recovery") || want("observe_overhead") {
        let (base_s, rec_s, min_ratio) = measure_observe_overhead();
        if want("chaos_recovery") {
            let (suite, dump) = chaos_recovery_suite(min_ratio <= 1.02);
            report.suites.push(suite);
            flight_dump = Some(dump);
        }
        if want("observe_overhead") {
            report
                .suites
                .push(observe_overhead_suite(base_s, rec_s, min_ratio));
        }
    }
    Ok((report, flight_dump))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let (report, flight_dump) = match build_report(&args.only) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::from(2);
        }
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("benchgate: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    if !args.quiet {
        println!(
            "benchgate: wrote {} ({} suites, commit {})",
            args.out,
            report.suites.len(),
            report.git_sha
        );
    }

    if let Some(path) = &args.flight_dump {
        match &flight_dump {
            Some(dump) => {
                if let Err(e) = std::fs::write(path, dump) {
                    eprintln!("benchgate: cannot write flight dump {path}: {e}");
                    return ExitCode::from(2);
                }
                if !args.quiet {
                    println!("benchgate: flight-recorder dump written to {path}");
                }
            }
            None => {
                eprintln!("benchgate: --flight-dump needs the chaos_recovery suite to run");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &args.summary {
        let md = vran_bench::summary::render_markdown(&report);
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("benchgate: cannot write summary {path}: {e}");
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("benchgate: summary written to {path}");
        }
    }

    if args.write_baseline {
        if let Err(e) = std::fs::write(&args.baseline, &json) {
            eprintln!("benchgate: cannot write {}: {e}", args.baseline);
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("benchgate: baseline refreshed at {}", args.baseline);
        }
    }

    if args.check {
        let baseline_text = match std::fs::read_to_string(&args.baseline) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("benchgate: cannot read baseline {}: {e}", args.baseline);
                return ExitCode::from(2);
            }
        };
        let Some(mut baseline) = BenchReport::from_json(&baseline_text) else {
            eprintln!(
                "benchgate: {} is not a {} document",
                args.baseline,
                vran_bench::gate::SCHEMA
            );
            return ExitCode::from(2);
        };
        // Under --only, gate only the suites that were actually run.
        if !args.only.is_empty() {
            baseline
                .suites
                .retain(|s| args.only.iter().any(|o| o == &s.name));
        }
        let regressions = compare(&baseline, &report);
        if regressions.is_empty() {
            if !args.quiet {
                println!(
                    "benchgate: PASS — gated suites match baseline {} within tolerance",
                    baseline.git_sha
                );
            }
        } else {
            eprintln!(
                "benchgate: FAIL — {} regression(s) vs baseline {}:",
                regressions.len(),
                baseline.git_sha
            );
            for r in &regressions {
                eprintln!("  {}", r.describe());
            }
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
