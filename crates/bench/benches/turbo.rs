//! Figures 3/9 complement: turbo decode cost per block size for the
//! scalar fixed-point decoder (the pipeline's workhorse) and the
//! encoder, plus one SIMD-decoder (VM) data point.

use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_bench::turbo_workload;
use vran_phy::bits::random_bits;
use vran_phy::crc::CRC24B;
use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
use vran_phy::turbo::{DecodeScratch, DecoderIsa, NativeTurboDecoder, TurboDecoder, TurboEncoder};
use vran_simd::RegWidth;

fn bench_encoder(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo_encode");
    for k in [512usize, 2048, 6144] {
        let bits = random_bits(k, 5);
        let enc = TurboEncoder::new(k);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &bits, |b, bits| {
            b.iter(|| enc.encode(std::hint::black_box(bits)))
        });
    }
    g.finish();
}

fn bench_decoder(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo_decode_5it");
    g.sample_size(20);
    for k in [512usize, 2048, 6144] {
        let (_, input) = turbo_workload(k, 11);
        let dec = TurboDecoder::new(k, 5);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &input, |b, input| {
            b.iter(|| dec.decode(std::hint::black_box(input)))
        });
    }
    g.finish();
}

fn bench_decoder_early_stop(c: &mut Criterion) {
    // CRC early termination on a clean block — the steady-state cost
    // the capacity model uses.
    let k = 6144;
    let payload = random_bits(k - 24, 3);
    let block = CRC24B.attach(&payload);
    let cw = TurboEncoder::new(k).encode(&block);
    let d = cw.to_dstreams();
    let soft: [Vec<i16>; 3] = d
        .iter()
        .map(|s| {
            s.iter()
                .map(|&b| if b == 0 { 60i16 } else { -60 })
                .collect()
        })
        .collect::<Vec<_>>()
        .try_into()
        .unwrap();
    let input = vran_phy::llr::TurboLlrs::from_dstreams(&soft, k);
    let dec = TurboDecoder::new(k, 8);
    let mut g = c.benchmark_group("turbo_decode_crc_stop");
    g.sample_size(20);
    g.throughput(Throughput::Elements(k as u64));
    g.bench_function("k6144", |b| {
        b.iter(|| dec.decode_with_crc(std::hint::black_box(&input), &CRC24B))
    });
    g.finish();
}

fn bench_native_decoder(c: &mut Criterion) {
    // The real-intrinsics fast path at every ISA level the host
    // supports, on the allocation-free scratch entry point the uplink
    // pipeline uses.
    let k = 6144;
    let (_, input) = turbo_workload(k, 11);
    let mut g = c.benchmark_group("turbo_decode_native_4it");
    g.sample_size(20);
    g.throughput(Throughput::Elements(k as u64));
    for isa in DecoderIsa::available() {
        let dec = NativeTurboDecoder::with_isa(k, 4, isa);
        let mut scratch = DecodeScratch::new();
        let mut bits = Vec::new();
        g.bench_function(isa.name(), |b| {
            b.iter(|| {
                let r = dec.decode_streams_into(
                    std::hint::black_box(&input.streams.sys),
                    &input.streams.p1,
                    &input.streams.p2,
                    &input.tails,
                    None,
                    &mut scratch,
                    &mut bits,
                );
                std::hint::black_box(r)
            })
        });
    }
    g.finish();
}

fn bench_simd_decoder_vm(c: &mut Criterion) {
    // The VM-evaluated SIMD decoder (native mode): slower wall-clock
    // than the scalar decoder (it is an emulator), but bit-exact; this
    // tracks evaluator overhead.
    let k = 512;
    let (_, input) = turbo_workload(k, 13);
    let dec = SimdTurboDecoder::new(k, 2, RegWidth::Sse128);
    let mut g = c.benchmark_group("turbo_decode_simd_vm");
    g.sample_size(10);
    g.bench_function("k512_2it", |b| {
        b.iter(|| dec.decode_native(std::hint::black_box(&input)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_encoder,
    bench_decoder,
    bench_decoder_early_stop,
    bench_native_decoder,
    bench_simd_decoder_vm
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
