//! Batched multi-window decoding and the generalized stride kernels —
//! wall-clock complements to the `abl-batch` and `gen-stride`
//! experiments.

use vran_arrange::StrideKernel;
use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_bench::turbo_workload;
use vran_phy::turbo::batch_decoder::BatchTurboDecoder;
use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
use vran_phy::turbo::{NativeBatchTurboDecoder, NativeTurboDecoder};
use vran_simd::RegWidth;

fn bench_batch_decoder(c: &mut Criterion) {
    let k = 256;
    let inputs: Vec<_> = (0..4).map(|g| turbo_workload(k, 30 + g).1).collect();
    let mut g = c.benchmark_group("batch_decode_vm");
    g.sample_size(10);
    g.throughput(Throughput::Elements(k as u64));
    g.bench_function("single_xmm", |b| {
        let dec = SimdTurboDecoder::new(k, 1, RegWidth::Sse128);
        b.iter(|| dec.decode_native(std::hint::black_box(&inputs[0])))
    });
    g.throughput(Throughput::Elements(4 * k as u64));
    g.bench_function("batch4_zmm", |b| {
        let dec = BatchTurboDecoder::new(k, 1, RegWidth::Avx512);
        b.iter(|| dec.decode_native(std::hint::black_box(&inputs)))
    });
    g.finish();
}

fn bench_native_batch(c: &mut Criterion) {
    // Real-hardware pair decode: two blocks per ymm vs two sequential
    // single-block native decodes on the same inputs.
    let k = 6144;
    let pair = [turbo_workload(k, 30).1, turbo_workload(k, 31).1];
    let mut g = c.benchmark_group("batch_decode_native");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * k as u64));
    g.bench_function("single_x2", |b| {
        let dec = NativeTurboDecoder::new(k, 4);
        b.iter(|| {
            (
                dec.decode(std::hint::black_box(&pair[0])),
                dec.decode(std::hint::black_box(&pair[1])),
            )
        })
    });
    g.bench_function("pair_ymm", |b| {
        let dec = NativeBatchTurboDecoder::new(k, 4);
        b.iter(|| dec.decode_pair(std::hint::black_box(&pair)))
    });
    g.finish();
}

fn bench_stride(c: &mut Criterion) {
    let mut g = c.benchmark_group("stride_deinterleave_vm");
    g.sample_size(15);
    for s in [2usize, 4, 8] {
        let n = 4096;
        let data: Vec<i16> = (0..s * n).map(|i| i as i16).collect();
        g.throughput(Throughput::Elements((s * n) as u64));
        for apcm in [false, true] {
            let kern = StrideKernel::new(RegWidth::Sse128, s, apcm);
            let label = if apcm { "apcm" } else { "original" };
            g.bench_with_input(BenchmarkId::new(label, s), &data, |b, data| {
                b.iter(|| kern.deinterleave(std::hint::black_box(data), false))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_batch_decoder, bench_native_batch, bench_stride
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
