//! Substrate component costs: FFT/OFDM, CRC, scrambler, rate matcher,
//! QPP interleaver, modulation, Viterbi — the per-module cost
//! backdrop of Figures 3–6.

use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_phy::bits::random_bits;
use vran_phy::crc::CRC24A;
use vran_phy::dci::{conv_encode, viterbi_decode_tb};
use vran_phy::interleaver::QppInterleaver;
use vran_phy::modulation::{Cplx, Modulation};
use vran_phy::ofdm::{fft, OfdmConfig};
use vran_phy::rate_match::RateMatcher;
use vran_phy::scrambler::scramble_bits;

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [512usize, 2048] {
        let buf: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f32 * 0.1).sin(), (i as f32 * 0.3).cos()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &buf, |b, buf| {
            b.iter(|| {
                let mut t = buf.clone();
                fft(&mut t, false);
                t
            })
        });
    }
    g.finish();
}

fn bench_ofdm_symbol(c: &mut Criterion) {
    let cfg = OfdmConfig::lte5mhz();
    let syms = Modulation::Qpsk.modulate(&random_bits(600, 1));
    let air = cfg.modulate(&syms);
    let mut g = c.benchmark_group("ofdm");
    g.bench_function("modulate", |b| {
        b.iter(|| cfg.modulate(std::hint::black_box(&syms)))
    });
    g.bench_function("demodulate", |b| {
        b.iter(|| cfg.demodulate(std::hint::black_box(&air)))
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let bits = random_bits(12_000, 2);
    let mut g = c.benchmark_group("crc24a");
    g.throughput(Throughput::Elements(12_000));
    g.bench_function("attach_12k", |b| {
        b.iter(|| CRC24A.attach(std::hint::black_box(&bits)))
    });
    g.finish();
}

fn bench_scrambler(c: &mut Criterion) {
    let mut bits = random_bits(36_000, 3);
    let mut g = c.benchmark_group("scrambler");
    g.throughput(Throughput::Elements(36_000));
    g.bench_function("scramble_36k", |b| {
        b.iter(|| scramble_bits(std::hint::black_box(&mut bits), 0x5A5A5))
    });
    g.finish();
}

fn bench_rate_match(c: &mut Criterion) {
    let k = 6144;
    let rm = RateMatcher::new(k + 4);
    let d = [
        random_bits(k + 4, 1),
        random_bits(k + 4, 2),
        random_bits(k + 4, 3),
    ];
    let tx = rm.rate_match(&d, 2 * k, 0);
    let llrs: Vec<i16> = tx.iter().map(|&b| if b == 0 { 50 } else { -50 }).collect();
    let mut g = c.benchmark_group("rate_match");
    g.throughput(Throughput::Elements(2 * k as u64));
    g.bench_function("match_2k", |b| {
        b.iter(|| rm.rate_match(std::hint::black_box(&d), 2 * k, 0))
    });
    g.bench_function("dematch_2k", |b| {
        b.iter(|| rm.de_rate_match(std::hint::black_box(&llrs), 0))
    });
    g.finish();
}

fn bench_interleaver(c: &mut Criterion) {
    let mut g = c.benchmark_group("qpp");
    g.bench_function("build_k6144", |b| b.iter(|| QppInterleaver::new(6144)));
    let il = QppInterleaver::new(6144);
    let data: Vec<i16> = (0..6144).map(|i| i as i16).collect();
    g.throughput(Throughput::Elements(6144));
    g.bench_function("interleave_k6144", |b| {
        b.iter(|| il.interleave(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_modulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("modulation");
    for m in Modulation::ALL {
        let bits = random_bits(m.bits_per_symbol() * 4096, 4);
        let syms = m.modulate(&bits);
        g.throughput(Throughput::Elements(4096));
        g.bench_with_input(BenchmarkId::new("demap", m.name()), &syms, |b, syms| {
            b.iter(|| m.demodulate(std::hint::black_box(syms), 1.0))
        });
    }
    g.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let bits = random_bits(44, 6);
    let coded = conv_encode(&bits);
    let llrs: Vec<i16> = coded
        .iter()
        .map(|&b| if b == 0 { 80 } else { -80 })
        .collect();
    let mut g = c.benchmark_group("dci");
    g.sample_size(20);
    g.bench_function("viterbi_tb_44", |b| {
        b.iter(|| viterbi_decode_tb(std::hint::black_box(&llrs), 44))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_fft,
    bench_ofdm_symbol,
    bench_crc,
    bench_scrambler,
    bench_rate_match,
    bench_interleaver,
    bench_modulation,
    bench_viterbi
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
