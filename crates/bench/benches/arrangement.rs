//! Figures 8/14/15 complement: the two arrangement mechanisms run in
//! the VM's native evaluation mode at every register width, plus the
//! scalar oracle. Wall-clock here reflects the *evaluator*, not the
//! modeled hardware (the simulator reports that); the interesting
//! output is the relative cost trend and the per-element throughput.

use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_bench::interleaved_workload;
use vran_simd::RegWidth;

const K: usize = 6144;

fn bench_arrangement(c: &mut Criterion) {
    let input = interleaved_workload(K, 7);
    let mut g = c.benchmark_group("arrangement_vm");
    g.throughput(Throughput::Elements(K as u64));
    g.sample_size(20);
    for width in RegWidth::ALL {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Apcm(ApcmVariant::Shuffle),
            Mechanism::Apcm(ApcmVariant::MaskRotate),
        ] {
            let kern = ArrangeKernel::new(width, mech);
            g.bench_with_input(
                BenchmarkId::new(mech.name(), width.name()),
                &input,
                |b, input| b.iter(|| kern.arrange(std::hint::black_box(input), false)),
            );
        }
    }
    g.finish();

    // the scalar oracle as the floor
    let mut g = c.benchmark_group("arrangement_oracle");
    g.throughput(Throughput::Elements(K as u64));
    g.bench_function("scalar_deinterleave", |b| {
        b.iter(|| std::hint::black_box(&input).deinterleave_scalar())
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    // Cost of producing a µop trace (matters for figure regeneration).
    let input = interleaved_workload(K, 9);
    let mut g = c.benchmark_group("arrangement_tracing");
    g.sample_size(10);
    for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
        let kern = ArrangeKernel::new(RegWidth::Sse128, mech);
        g.bench_function(mech.name(), |b| {
            b.iter(|| kern.arrange(std::hint::black_box(&input), true))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_arrangement, bench_trace_generation
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
