//! Figure 13 complement: wall-clock per-packet processing through the
//! complete uplink pipeline, per packet size, transport and
//! arrangement mechanism.

use vran_arrange::{ApcmVariant, Mechanism};
use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{PipelineConfig, UplinkPipeline};
use vran_simd::RegWidth;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_pipeline");
    g.sample_size(10);
    for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
        let cfg = PipelineConfig {
            width: RegWidth::Sse128,
            mechanism: mech,
            snr_db: 30.0,
            decoder_iterations: 3,
            ..Default::default()
        };
        let pipe = UplinkPipeline::new(cfg);
        for size in [256usize, 1500] {
            let mut b = PacketBuilder::new(1, 2);
            let p = b.build(Transport::Udp, size).unwrap();
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_with_input(
                BenchmarkId::new(mech.name(), format!("{size}B")),
                &p,
                |bch, p| {
                    bch.iter(|| {
                        let r = pipe.process(std::hint::black_box(p));
                        assert!(r.is_ok());
                        r
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    // The DPDK-style SPSC ring: per-item transfer cost.
    use vran_net::ring::SpscRing;
    let mut g = c.benchmark_group("spsc_ring");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("push_pop_1024", |b| {
        b.iter(|| {
            let (mut p, mut cns) = SpscRing::with_capacity::<u64>(2048);
            for i in 0..1024u64 {
                p.push(i).unwrap();
            }
            let mut acc = 0u64;
            while let Some(v) = cns.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_pipeline, bench_ring
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
