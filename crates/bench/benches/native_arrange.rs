//! Real-hardware arrangement: the `std::arch` kernels from
//! `vran-arrange::native`, original (`pextrw` ladder) vs APCM
//! (`pshufb`/`vpermi2w`), on whatever SIMD features the host exposes.
//!
//! This is the wall-clock demonstration of the paper's claim on actual
//! silicon: the extract-based original saturates the store ports while
//! APCM's ALU batching runs several times faster — and the AVX-512
//! APCM widens the gap further, exactly the Figure 14 trend.

use vran_arrange::native::{available, deinterleave};
use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_bench::interleaved_workload;

fn bench_native(c: &mut Criterion) {
    for k in [1504usize, 6144] {
        let input = interleaved_workload(k, 3);
        let mut g = c.benchmark_group(format!("native_arrange_k{k}"));
        g.throughput(Throughput::Bytes((3 * k * 2) as u64));
        for imp in available() {
            g.bench_with_input(
                BenchmarkId::from_parameter(imp.name()),
                &input,
                |b, input| b.iter(|| deinterleave(imp, std::hint::black_box(&input.data), k)),
            );
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_native
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
