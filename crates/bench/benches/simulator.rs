//! `vran-uarch` simulation throughput: how fast the port-level
//! scheduler retires µops, and ablation configurations.

use vran_arrange::{ArrangeKernel, Mechanism};
use vran_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vran_bench::interleaved_workload;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim, PortModel};

fn bench_sim_speed(c: &mut Criterion) {
    let input = interleaved_workload(6144, 1);
    let (_, trace) =
        ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline).arrange(&input, true);
    let trace = trace.unwrap();
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(20);
    for (name, cfg) in [
        ("beefy_warm", CoreConfig::beefy().warmed()),
        ("beefy_cold", CoreConfig::beefy()),
        ("wimpy_warm", CoreConfig::wimpy().warmed()),
    ] {
        let sim = CoreSim::new(cfg);
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| sim.run(std::hint::black_box(t)))
        });
    }
    g.finish();
}

fn bench_port_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: would widening the hardware's movement ports
    // (letting extracts borrow the ALU ports) fix the baseline without
    // APCM? Compare simulated cycles under both port models.
    let input = interleaved_workload(6144, 2);
    let (_, trace) =
        ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline).arrange(&input, true);
    let trace = trace.unwrap();
    let mut g = c.benchmark_group("port_ablation");
    g.sample_size(15);
    for (name, ports) in [
        ("paper", PortModel::paper()),
        ("movement_on_alu", PortModel::movement_on_alu()),
    ] {
        let cfg = CoreConfig {
            ports,
            ..CoreConfig::beefy().warmed()
        };
        let sim = CoreSim::new(cfg);
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| sim.run(std::hint::black_box(t)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_sim_speed, bench_port_ablation
}

/// Short measurement windows keep `cargo bench --workspace` in CI
/// territory; pass `--measurement-time` on the command line for
/// higher-precision runs.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(12)
}

criterion_main!(benches);
