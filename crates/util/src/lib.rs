//! # vran-util — zero-dependency substrate for the workspace
//!
//! The build environment for this repository is fully hermetic: no
//! crates-io access at build time, so everything the workspace needs
//! beyond `std` lives here, first-party and tested:
//!
//! * [`rng`] — a small, fast, seedable PRNG (SplitMix64 core) with the
//!   uniform-draw surface the channel/equalizer/scheduler models need.
//! * [`json`] — a minimal JSON value type with a strict parser and a
//!   stable, deterministic writer; the serialization substrate for the
//!   figure exports and the `BENCH_*.json` perf trajectory.
//! * [`pad`] — [`pad::CachePadded`], alignment padding for the SPSC
//!   ring's head/tail counters.
//! * [`mod@proptest`] — a compact property-testing harness exposing the
//!   `proptest!`/strategy subset the workspace's model-based tests use.

pub mod json;
pub mod pad;
pub mod proptest;
pub mod rng;

pub use json::Json;
pub use pad::CachePadded;
pub use rng::SmallRng;
