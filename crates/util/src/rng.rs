//! Seedable pseudo-random generator for the channel / fading /
//! scheduler models.
//!
//! SplitMix64 core (Steele et al., "Fast splittable pseudorandom
//! number generators"): full 64-bit period, passes BigCrush for the
//! statistical load these models put on it (uniform draws feeding
//! Box–Muller), and two instructions per output — determinism and
//! speed are the requirements here, not cryptography.

/// A small, fast, seedable RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Construct from a 64-bit seed. Distinct seeds yield decorrelated
    /// streams (the seed is scrambled through one SplitMix64 round
    /// before use, so adjacent integers do not produce adjacent
    /// states).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut rng = Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64(); // warm through the scrambler once
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.gen_f32()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Standard-normal sample (Box–Muller on two uniform draws; the
    /// first draw is kept away from zero so `ln` stays finite).
    pub fn gauss_f32(&mut self) -> f32 {
        let u1 = self.gen_f32().max(1e-7);
        let u2 = self.gen_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let x = r.gen_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range_f32(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = r.gen_range_usize(10, 20);
            assert!((10..20).contains(&n));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| r.gauss_f32()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(100);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(101);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let matching = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert_eq!(matching, 0);
    }
}
