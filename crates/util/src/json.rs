//! Minimal JSON: a value type, a strict recursive-descent parser and a
//! deterministic writer.
//!
//! This backs every machine-readable artifact the workspace emits —
//! the `results/*.json` figure exports and the `BENCH_*.json` perf
//! trajectory — so the writer is deliberately boring: object keys keep
//! insertion order, numbers print via Rust's shortest-round-trip
//! float formatting, and pretty output uses two-space indents. Equal
//! values always serialize to identical bytes.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Flatten an object tree into `path.to.leaf → f64` pairs — the
    /// shape the bench gate compares. Non-numeric leaves are skipped.
    pub fn flatten_numbers(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        fn walk(v: &Json, prefix: &str, out: &mut BTreeMap<String, f64>) {
            match v {
                Json::Num(n) => {
                    out.insert(prefix.to_string(), *n);
                }
                Json::Obj(pairs) => {
                    for (k, v) in pairs {
                        let p = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        walk(v, &p, out);
                    }
                }
                Json::Arr(items) => {
                    for (i, v) in items.iter().enumerate() {
                        walk(v, &format!("{prefix}[{i}]"), out);
                    }
                }
                _ => {}
            }
        }
        walk(self, "", &mut out);
        out
    }

    /// Two-space-indented serialization (trailing newline included, so
    /// emitted files are POSIX text files).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values print without a fraction: "3" not "3.0".
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

/// Compact serialization (`Display`, so `to_string()` works too).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced, not paired — the
                            // writer never emits them.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj([
            ("name", Json::str("fig8")),
            ("ok", Json::Bool(true)),
            ("count", Json::Num(3.0)),
            ("ipc", Json::Num(1.05)),
            (
                "rows",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::str("a\"b\n")]),
            ),
            ("nested", Json::obj([("x", Json::Num(-2.5e-3))])),
        ])
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = sample();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(-0.25).to_string(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(sample().to_string(), sample().to_string());
        let s = sample().to_string_pretty();
        assert!(s.ends_with('\n'));
        assert!(s.contains("  \"name\": \"fig8\""));
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("fig8"));
        assert_eq!(v.get("ipc").and_then(Json::as_f64), Some(1.05));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("x"))
                .and_then(Json::as_f64),
            Some(-2.5e-3)
        );
        assert_eq!(
            v.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn flatten_collects_numeric_leaves() {
        let flat = sample().flatten_numbers();
        assert_eq!(flat.get("count"), Some(&3.0));
        assert_eq!(flat.get("nested.x"), Some(&-2.5e-3));
        assert_eq!(flat.get("rows[0]"), Some(&1.0));
        assert!(!flat.contains_key("name"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "aA\n\t\"\\ä"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("aA\n\t\"\\ä"));
    }

    #[test]
    fn parses_number_forms() {
        for (text, want) in [
            ("0", 0.0),
            ("-7", -7.0),
            ("3.25", 3.25),
            ("1e3", 1000.0),
            ("-2.5E-2", -0.025),
        ] {
            assert_eq!(Json::parse(text).unwrap().as_f64(), Some(want), "{text}");
        }
    }
}
