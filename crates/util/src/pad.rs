//! Cache-line padding for contended atomics.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes — two 64-byte lines, covering
/// the adjacent-line ("spatial") prefetcher on Intel parts, so a
/// producer-owned counter and a consumer-owned counter never induce
/// false sharing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn derefs_transparently() {
        let p = CachePadded::new(AtomicUsize::new(3));
        p.store(7, Ordering::Relaxed);
        assert_eq!(p.load(Ordering::Relaxed), 7);
        assert_eq!(p.into_inner().into_inner(), 7);
    }
}
