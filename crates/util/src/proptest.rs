//! A compact property-testing harness.
//!
//! Exposes the subset of the `proptest` crate's surface the
//! workspace's model-based tests use — the `proptest!` macro with
//! `arg in strategy` bindings, integer-range and `any::<T>()`
//! strategies, `prop::collection::vec`, `prop_assert*!` and
//! `prop_assume!` — implemented over [`crate::rng::SmallRng`] so the
//! hermetic build needs no external crates. Cases are generated from a
//! seed derived deterministically from the test name and case index:
//! a failure reproduces exactly on re-run, which substitutes for
//! persisted regression files. (No shrinking; failing inputs are
//! printed in full instead.)

use crate::rng::SmallRng;
use std::ops::Range;

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; not a failure.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Full-range strategy for a primitive (`any::<i16>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` constructor.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64);

/// Strategy combinators and collection generators (`prop::…`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeSpec, Strategy, VecStrategy};

        /// `vec(element_strategy, size)` — size is a fixed `usize` or a
        /// `Range<usize>`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeSpec>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub enum SizeSpec {
    /// Exactly this many elements.
    Exact(usize),
    /// Uniformly drawn from the range.
    Range(Range<usize>),
}

impl From<usize> for SizeSpec {
    fn from(n: usize) -> Self {
        SizeSpec::Exact(n)
    }
}

impl From<Range<usize>> for SizeSpec {
    fn from(r: Range<usize>) -> Self {
        SizeSpec::Range(r)
    }
}

/// Strategy for `Vec<S::Value>`.
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeSpec,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let n = match &self.size {
            SizeSpec::Exact(n) => *n,
            SizeSpec::Range(r) => {
                assert!(r.start < r.end, "empty vec-length range");
                rng.gen_range_usize(r.start, r.end)
            }
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Deterministic per-test seed: FNV-1a over the test's full path,
/// mixed with the case index by the RNG's own seed scrambler.
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::{any, prop, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each function's `arg in strategy` bindings
/// are sampled per case; the body runs under `prop_assert*!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::proptest::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::proptest::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::rng::SmallRng::seed_from_u64(
                    $crate::proptest::case_seed(path, case),
                );
                $(let $arg = $crate::proptest::Strategy::sample(&($strat), &mut rng);)*
                let shown = [$( format!("{} = {:?}", stringify!($arg), &$arg) ),*].join(", ");
                let outcome: ::std::result::Result<(), $crate::proptest::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::proptest::TestCaseError::Reject) => continue,
                    Err($crate::proptest::TestCaseError::Fail(msg)) => {
                        panic!("property {path} failed at case {case}: {msg}\n  inputs: {shown}")
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "{} != {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), left, right
                )
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*), left, right
                )
            }
        }
    };
}

/// `assert_ne!` that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "{} == {} (both {:?})",
                    stringify!($a),
                    stringify!($b),
                    left
                )
            }
        }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::proptest::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u8..9, b in 10usize..20, c in -5i16..5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn vec_fixed_and_ranged_lengths(xs in prop::collection::vec(any::<i16>(), 7),
                                        ys in prop::collection::vec(0u8..2, 1..5)) {
            prop_assert_eq!(xs.len(), 7);
            prop_assert!((1..5).contains(&ys.len()));
            prop_assert!(ys.iter().all(|&y| y < 2));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::rng::SmallRng::seed_from_u64(super::case_seed("x::y", case));
            super::Strategy::sample(
                &super::prop::collection::vec(super::any::<u64>(), 5),
                &mut rng,
            )
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn failures_panic_with_inputs() {
        // Run the generated shape by hand: a failing body must panic
        // through the macro path.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[allow(unused)]
                fn always_fails(n in 0u8..2) {
                    prop_assert!(false, "forced failure");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("forced failure"), "{msg}");
        assert!(msg.contains("inputs: n ="), "{msg}");
    }
}
