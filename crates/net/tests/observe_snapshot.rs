//! Concurrency properties of [`MetricsSnapshot`]: a polling thread
//! capturing snapshots mid-run must never observe a histogram whose
//! buckets sum past its count (the capture-order guarantee of
//! `Histogram::snapshot_consistent`), and sequential snapshots must be
//! monotone in every true counter while the uplink runner hammers the
//! registries from its worker threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use vran_net::faultinject::FaultMix;
use vran_net::metrics::{PipelineMetrics, RunnerMetrics};
use vran_net::observe::MetricsSnapshot;
use vran_net::packet::Transport;
use vran_net::pipeline::PipelineConfig;
use vran_net::runner::{run_uplink_stagegraph_metered, FaultPlan, RING_CAPACITY};
use vran_net::StageGraphConfig;

/// Monotonicity applies to counters, not derived gauges — every
/// non-count entry in the snapshot carries "mean" in its key.
fn is_counter(key: &str) -> bool {
    !key.contains("mean")
}

#[test]
fn snapshots_stay_consistent_and_monotone_under_concurrent_load() {
    let pm = Arc::new(PipelineMetrics::new(true));
    let rm = Arc::new(RunnerMetrics::new(true, RING_CAPACITY));
    let done = Arc::new(AtomicBool::new(false));

    let worker = thread::spawn({
        let pm = pm.clone();
        let rm = rm.clone();
        let done = done.clone();
        move || {
            let cfg = PipelineConfig {
                snr_db: 30.0,
                ..Default::default()
            };
            // The soak mix drives every error counter (including
            // worker restarts) while the poller reads.
            let plan = FaultPlan {
                seed: 21,
                mix: FaultMix::soak(),
            };
            let rep = run_uplink_stagegraph_metered(
                cfg,
                &[(Transport::Udp, 128), (Transport::Tcp, 600)],
                800,
                2,
                StageGraphConfig::default(),
                &rm,
                None,
                Some(plan),
                None,
                Some(pm),
            );
            done.store(true, Ordering::Release);
            rep
        }
    });

    let mut polls = 0u64;
    let mut last: Option<MetricsSnapshot> = None;
    while !done.load(Ordering::Acquire) {
        let snap = MetricsSnapshot::capture(Some(&pm), Some(&rm), None);
        for h in &snap.histograms {
            assert!(
                h.bucket_sum() <= h.count,
                "{}: bucket sum {} ran ahead of count {} mid-run",
                h.name,
                h.bucket_sum(),
                h.count
            );
        }
        if let Some(prev) = &last {
            for (key, value) in &snap.counters {
                if !is_counter(key) {
                    continue;
                }
                let before = prev.get(key).expect("stable key set");
                assert!(
                    *value >= before,
                    "{key} went backwards mid-run: {before} -> {value}"
                );
            }
        }
        last = Some(snap);
        polls += 1;
        thread::yield_now();
    }
    let rep = worker.join().expect("runner thread");
    assert!(polls >= 1, "the run must be long enough to poll mid-run");
    assert_eq!(rep.packets as u64 + rep.worker_restarts as u64, 800);

    // The final capture dominates everything the poller saw and
    // serializes to the shared JSON schema.
    let fin = MetricsSnapshot::capture(Some(&pm), Some(&rm), None);
    if let Some(prev) = &last {
        for (key, value) in &fin.counters {
            if !is_counter(key) {
                continue;
            }
            assert!(*value >= prev.get(key).expect("stable key set"));
        }
    }
    assert_eq!(
        fin.get("runner.packets"),
        Some(rep.packets as f64),
        "the settled snapshot matches the report"
    );
    let json = fin.to_json().to_string();
    assert!(json.contains("\"counters\"") && json.contains("\"histograms\""));
}
