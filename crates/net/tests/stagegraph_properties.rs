//! Property tests for the out-of-order stage-graph runtime: per-UE
//! in-order delivery and outcome equivalence with the serial path under
//! random K mixes, fault-injection storms, worker panics, and multiple
//! worker counts — plus the lane-occupancy target on the paper-sweep
//! round-robin workload.
//!
//! The always-on tests stay small enough for debug builds; the
//! `#[ignore]`d throughput gate runs in release via CI (the stage graph
//! must be *at least* as fast as the serial per-packet path on
//! AVX-512BW hosts).

use std::sync::Arc;
use vran_net::error::{ErrorCategory, PipelineError};
use vran_net::faultinject::{FaultInjector, FaultKind, FaultMix};
use vran_net::metrics::{PipelineMetrics, RunnerMetrics, StageGraphMetrics};
use vran_net::observe::{BreakerConfig, BreakerStage};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{PacketResult, PipelineConfig, UplinkPipeline};
use vran_net::runner::{
    run_uplink_serial_mixed, run_uplink_stagegraph_metered, FaultPlan, RING_CAPACITY,
};
use vran_net::{StageGraph, StageGraphConfig};
use vran_util::rng::SmallRng;

const SIZES: [usize; 7] = [64, 128, 300, 600, 900, 1200, 1400];

fn cfg() -> PipelineConfig {
    PipelineConfig {
        snr_db: 30.0,
        ..Default::default()
    }
}

/// Comparable outcome signature across Ok/Err results. Bit-exactness
/// of the decoded payload is enforced *inside* completion (the L2
/// delivery check fails the packet if the decapsulated payload differs
/// from the sent frame), so an `Ok` here certifies exact bits.
fn signature(r: &Result<PacketResult, PipelineError>) -> (bool, usize, usize, usize) {
    match r {
        Ok(p) => (true, p.tb_bits, p.code_blocks, p.decoder_iterations),
        Err(e) => {
            let f = e.decode_failure().copied().unwrap_or_default();
            (false, f.tb_bits, f.code_blocks, f.decoder_iterations)
        }
    }
}

/// Random packet-size / UE schedule for one seed, admitted to a stage
/// graph and to the serial batch-semantics oracle in lockstep; per-UE
/// delivery order must equal per-UE admission order with identical
/// outcome signatures.
fn check_random_mix(seed: u64, n: usize, ues: u64, inject: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut bs = PacketBuilder::new(1000, 2000);
    let mut bg = PacketBuilder::new(1000, 2000);
    // Batch lanes run a fixed iteration count (no CRC early stop), so
    // the iteration-exact oracle is the serial *batch* path.
    let mut serial = UplinkPipeline::new(PipelineConfig {
        batch_decode: true,
        ..cfg()
    });
    let mut graph = StageGraph::with_config(cfg(), StageGraphConfig::default());
    if inject {
        // Same seed on both sides: prepare draws one fault per packet
        // in the same order process does, so the storms are identical.
        serial.set_fault_injector(FaultInjector::new(seed));
        let mut pipe = UplinkPipeline::new(cfg());
        pipe.set_fault_injector(FaultInjector::new(seed));
        graph = StageGraph::new(pipe, StageGraphConfig::default());
    }

    let mut admitted: Vec<u64> = Vec::new(); // UE per admission index
    let mut expect: Vec<(bool, usize, usize, usize)> = Vec::new();
    for _ in 0..n {
        let sz = SIZES[rng.gen_range_usize(0, SIZES.len())];
        let ue = rng.next_u64() % ues;
        let transport = if rng.next_u64().is_multiple_of(2) {
            Transport::Udp
        } else {
            Transport::Tcp
        };
        let ps = bs.build(transport, sz).unwrap();
        let pg = bg.build(transport, sz).unwrap();
        assert_eq!(ps.frame, pg.frame, "builders in lockstep");
        expect.push(signature(&serial.process(&ps)));
        admitted.push(ue);
        graph.admit(ue, &pg);
    }
    graph.drain();

    let mut got: Vec<(u64, (bool, usize, usize, usize))> = Vec::new();
    while let Some((ue, r)) = graph.pop_completed() {
        got.push((ue, signature(&r)));
    }
    assert_eq!(got.len(), n, "seed {seed}: every admission delivers");
    for ue in 0..ues {
        let delivered: Vec<_> = got
            .iter()
            .filter(|(u, _)| *u == ue)
            .map(|(_, s)| *s)
            .collect();
        let want: Vec<_> = expect
            .iter()
            .zip(&admitted)
            .filter(|(_, u)| **u == ue)
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(
            delivered, want,
            "seed {seed} UE {ue}: delivery must be admission-ordered and serial-equivalent"
        );
    }
}

#[test]
fn random_k_mixes_deliver_in_order_and_match_serial() {
    for seed in [11, 22, 33] {
        check_random_mix(seed, 48, 6, false);
    }
}

#[test]
fn fault_storms_preserve_order_and_equivalence() {
    // The default injector mix covers frame corruption, truncation,
    // LLR sabotage and block-count lies — every taxonomy path that
    // does not panic the worker.
    for seed in [17, 18] {
        check_random_mix(seed, 48, 4, true);
    }
}

#[test]
fn worker_panic_storm_conserves_packets() {
    let plan = FaultPlan {
        seed: 5,
        mix: FaultMix::only(FaultKind::Clean)
            .with_weight(FaultKind::Clean, 7)
            .with_weight(FaultKind::WorkerPanic, 1),
    };
    let rm = RunnerMetrics::new(true, RING_CAPACITY);
    let n = 64;
    let rep = run_uplink_stagegraph_metered(
        cfg(),
        &[(Transport::Udp, 128), (Transport::Tcp, 300)],
        n,
        2,
        StageGraphConfig::default(),
        &rm,
        None,
        Some(plan),
        None,
        None,
    );
    assert!(rep.worker_restarts > 0, "panics must have fired: {rep:?}");
    assert_eq!(
        rep.packets + rep.worker_restarts,
        n,
        "a panic consumes exactly its own packet: {rep:?}"
    );
    assert_eq!(rm.worker_restarts.get(), rep.worker_restarts as u64);
    assert_eq!(rm.quarantined.get(), rep.worker_restarts as u64);
    assert!(rep.ok_packets > 0, "survivors decode: {rep:?}");
}

#[test]
fn paper_sweep_round_robin_hits_occupancy_target() {
    // The acceptance workload: both transports at every paper sweep
    // size, round-robin. Same-K tasks re-arrive well inside the age
    // bound, so quads dominate — the ISSUE's ≳90 % zmm lane occupancy.
    let classes: Vec<(Transport, usize)> = [Transport::Udp, Transport::Tcp]
        .into_iter()
        .flat_map(|t| SIZES.iter().map(move |&s| (t, s)))
        .collect();
    for workers in [1, 2] {
        let sg = Arc::new(StageGraphMetrics::default());
        let rep = run_uplink_stagegraph_metered(
            cfg(),
            &classes,
            280,
            workers,
            StageGraphConfig::default(),
            &RunnerMetrics::new(false, RING_CAPACITY),
            Some(sg.clone()),
            None,
            None,
            None,
        );
        assert_eq!(rep.packets, 280);
        assert!(
            sg.lane_occupancy() >= 0.9,
            "{workers} workers: occupancy {:.3} below the 0.9 target \
             (quad={} pair={} single={})",
            sg.lane_occupancy(),
            sg.quad_blocks.get(),
            sg.pair_blocks.get(),
            sg.single_blocks.get()
        );
    }
}

#[test]
fn resequencer_holds_per_ue_order_while_breakers_trip() {
    // Direct single-threaded graph, decoder breaker armed, under an
    // LLR-sabotage storm dense enough to trip it repeatedly. Each UE
    // admits strictly growing payload sizes, so the tb_bits of its
    // delivered Ok packets must come back strictly increasing — any
    // ROB misordering under the breaker's fast-fail churn would break
    // the monotone subsequence.
    let cfg = PipelineConfig {
        snr_db: 30.0,
        breakers: Some(BreakerConfig {
            trip_after: 3,
            cooldown_packets: 4,
        }),
        ..Default::default()
    };
    let mut pipe = UplinkPipeline::new(cfg);
    pipe.set_fault_injector(FaultInjector::with_mix(
        41,
        FaultMix::only(FaultKind::Clean).with_weight(FaultKind::SaturateLlrs, 2),
    ));
    let mut graph = StageGraph::new(pipe, StageGraphConfig::default());
    let sizes = [64usize, 150, 300, 450, 600, 800, 1000, 1200, 1400];
    let ues = 4u64;
    let mut b = PacketBuilder::new(1000, 2000);
    for &sz in &sizes {
        for ue in 0..ues {
            let p = b.build(Transport::Udp, sz).unwrap();
            graph.admit(ue, &p);
        }
    }
    graph.drain();

    let mut per_ue: Vec<Vec<Result<usize, ()>>> = vec![Vec::new(); ues as usize];
    while let Some((ue, r)) = graph.pop_completed() {
        per_ue[ue as usize].push(r.map(|p| p.tb_bits).map_err(|_| ()));
    }
    let (trips, _) = graph
        .pipeline()
        .breaker_counts(BreakerStage::Decoder)
        .expect("breakers armed");
    assert!(trips > 0, "the storm must trip the decoder breaker");
    let mut total_ok = 0;
    for (ue, results) in per_ue.iter().enumerate() {
        assert_eq!(results.len(), sizes.len(), "UE {ue}: nothing lost");
        let oks: Vec<usize> = results.iter().filter_map(|r| r.ok()).collect();
        total_ok += oks.len();
        assert!(
            oks.windows(2).all(|w| w[0] < w[1]),
            "UE {ue}: Ok deliveries out of admission order: {oks:?}"
        );
    }
    assert!(total_ok > 0, "clean packets survive the storm");
}

#[test]
fn chaos_storm_conserves_packets_with_breakers_armed() {
    // Deadline squeeze + worker-kill wave with the equalizer breaker
    // armed: every admission must be accounted for as a delivery or a
    // restart, with the breaker tripping on the sustained
    // DeadlineExceeded aborts and fast-fails bypassing the protected
    // stages.
    let cfg = PipelineConfig {
        snr_db: 30.0,
        deadline_ns: Some(1),
        breakers: Some(BreakerConfig {
            trip_after: 4,
            cooldown_packets: 8,
        }),
        ..Default::default()
    };
    let plan = FaultPlan {
        seed: 9,
        mix: FaultMix::only(FaultKind::Clean)
            .with_weight(FaultKind::Clean, 6)
            .with_weight(FaultKind::WorkerPanic, 1),
    };
    let pm = Arc::new(PipelineMetrics::new(true));
    let rm = RunnerMetrics::new(true, RING_CAPACITY);
    let n = 96;
    let rep = run_uplink_stagegraph_metered(
        cfg,
        &[(Transport::Udp, 128), (Transport::Tcp, 300)],
        n,
        2,
        StageGraphConfig::default(),
        &rm,
        None,
        Some(plan),
        None,
        Some(pm.clone()),
    );
    assert!(rep.worker_restarts > 0, "panics must have fired: {rep:?}");
    assert_eq!(
        rep.packets + rep.worker_restarts,
        n,
        "every admission is a delivery or a restart: {rep:?}"
    );
    assert!(
        pm.error_count(ErrorCategory::DeadlineExceeded) > 0,
        "the 1 ns budget must abort surviving packets"
    );
    assert!(
        pm.breaker_trips.get() > 0,
        "sustained deadline aborts must trip the equalizer breaker"
    );
    assert!(
        pm.breaker_fastfails.get() > 0,
        "open breakers must fast-fail admissions during cooldown"
    );
    assert_eq!(rep.ok_packets, 0, "nothing beats a 1 ns deadline");
}

#[test]
#[ignore = "release-mode perf gate; run via CI on AVX-512BW hosts"]
fn stagegraph_throughput_beats_serial_on_wide_hosts() {
    if !vran_phy::turbo::NativeBatchTurboDecoder::is_zmm_accelerated() {
        eprintln!("skipping: no AVX-512BW quad path on this host");
        return;
    }
    let classes: Vec<(Transport, usize)> = [Transport::Udp, Transport::Tcp]
        .into_iter()
        .flat_map(|t| SIZES.iter().map(move |&s| (t, s)))
        .collect();
    let n = 1400;
    let workers = 2;
    // The serial baseline runs the same fixed-iteration batch decode
    // semantics the stage graph uses (the pre-existing per-packet
    // `batch_decode` path), isolating what cross-packet formation
    // adds. Serial CRC early stop is an orthogonal trade-off the
    // batch lanes give up by design — EXPERIMENTS.md quantifies it.
    let serial_cfg = PipelineConfig {
        batch_decode: true,
        ..cfg()
    };
    // Median of 5 paired runs rides out scheduler noise.
    let mut ratios: Vec<f64> = (0..5)
        .map(|_| {
            let serial = run_uplink_serial_mixed(serial_cfg, &classes, n, workers);
            let graph = run_uplink_stagegraph_metered(
                cfg(),
                &classes,
                n,
                workers,
                StageGraphConfig::default(),
                &RunnerMetrics::new(false, RING_CAPACITY),
                None,
                None,
                None,
                None,
            );
            assert_eq!(graph.packets, serial.packets);
            graph.mbps / serial.mbps
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ratios.len() / 2];
    assert!(
        median >= 1.0,
        "stage graph must not lose to the serial path on zmm hosts: \
         median speedup {median:.3} (all: {ratios:?})"
    );
}
