//! Model-based testing of the SPSC ring: any single-threaded
//! interleaving of pushes and pops must behave exactly like a bounded
//! FIFO (`VecDeque` reference model).

use std::collections::VecDeque;
use vran_net::ring::SpscRing;
use vran_util::proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn behaves_like_a_bounded_fifo(ops in prop::collection::vec(any::<u8>(), 1..400), cap in 2usize..64) {
        let (mut p, mut c) = SpscRing::with_capacity::<u32>(cap);
        let real_cap = cap.next_power_of_two();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut counter = 0u32;
        for op in ops {
            if op % 2 == 0 {
                counter += 1;
                let pushed = p.push(counter).is_ok();
                let model_ok = model.len() < real_cap;
                prop_assert_eq!(pushed, model_ok, "push acceptance diverged at {}", counter);
                if model_ok {
                    model.push_back(counter);
                }
            } else {
                let got = c.pop();
                let want = model.pop_front();
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(p.len(), model.len());
            prop_assert_eq!(c.is_empty(), model.is_empty());
        }
        // drain and compare the tail
        while let Some(v) = c.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }
}

#[test]
fn concurrent_stress_preserves_order_and_count() {
    const N: usize = 50_000;
    for trial in 0..3 {
        let (mut p, mut c) = SpscRing::with_capacity::<usize>(64);
        let consumer = std::thread::spawn(move || {
            let mut expected = 0;
            while expected < N {
                if let Some(v) = c.pop() {
                    assert_eq!(v, expected, "trial {trial}: order violated");
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        for i in 0..N {
            let mut item = i;
            loop {
                match p.push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::hint::spin_loop();
                    }
                }
            }
        }
        consumer.join().unwrap();
    }
}
