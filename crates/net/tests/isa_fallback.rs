//! Scalar-fallback coverage: simulate a SIMD-less host via the
//! `vran-simd` ISA ceiling and prove the Native pipeline still decodes
//! bit-exactly — while flagging the lost speedup as a
//! `native_simd_fallbacks` metrics event.
//!
//! Lives in its own integration-test binary (= its own process)
//! because the ceiling is process-global: unit tests elsewhere assume
//! the host's full capability set.

use std::sync::Arc;
use vran_net::metrics::PipelineMetrics;
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{DecoderBackend, PipelineConfig, UplinkPipeline};
use vran_simd::host::{set_isa_ceiling, HostIsa};

#[test]
fn native_backend_degrades_to_scalar_kernels_without_simd() {
    let cfg = PipelineConfig {
        backend: DecoderBackend::Native,
        snr_db: 12.0,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    let p = b.build(Transport::Udp, 512).unwrap();

    // Reference outcome with the host's real capabilities.
    let native = UplinkPipeline::new(cfg).process(&p).expect("12 dB decodes");

    // Mask every SIMD tier: the same pipeline must still decode — via
    // the native decoder's scalar kernels — and report the fallback.
    set_isa_ceiling(Some(HostIsa::Scalar));
    let metrics = Arc::new(PipelineMetrics::new(true));
    let masked_pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
    let masked = masked_pipe.process(&p).expect("scalar fallback decodes");
    set_isa_ceiling(None);

    assert_eq!(masked.tb_bits, native.tb_bits);
    assert_eq!(masked.code_blocks, native.code_blocks);
    assert_eq!(masked.coded_bits, native.coded_bits);
    assert_eq!(
        masked.decoder_iterations, native.decoder_iterations,
        "scalar kernels must be bit-exact with the SIMD path"
    );
    assert_eq!(
        metrics.native_simd_fallbacks.get(),
        1,
        "the lost SIMD speedup must be observable"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.iter()
            .find(|(name, _)| name == "native_simd_fallbacks")
            .map(|(_, v)| *v),
        Some(1.0),
        "fallback events must appear in snapshots: {snap:?}"
    );
}
