//! Scalar-fallback coverage: simulate a SIMD-less host via the
//! `vran-simd` ISA ceiling and prove both directions survive it —
//! the Native uplink pipeline still decodes bit-exactly, and the
//! Packed downlink encoder still encodes bit-exactly — while flagging
//! the lost speedup as `native_simd_fallbacks` /
//! `packed_encoder_fallbacks` metrics events. The zmm tiers get the
//! same treatment one rung up: under an AVX2 ceiling the quad-in-zmm
//! batch decoder and the 512-bit packed encoder must degrade to their
//! narrower kernels bit-exactly, flagged as `batch_simd_fallbacks` /
//! `zmm_encoder_fallbacks`.
//!
//! Lives in its own integration-test binary (= its own process)
//! because the ceiling is process-global: unit tests elsewhere assume
//! the host's full capability set. Within this binary the tests
//! serialize on [`CEILING_LOCK`] for the same reason.

use std::sync::{Arc, Mutex};
use vran_net::downlink::{DownlinkConfig, DownlinkPipeline};
use vran_net::metrics::PipelineMetrics;
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{DecoderBackend, EncoderBackend, PipelineConfig, UplinkPipeline};
use vran_simd::host::{set_isa_ceiling, HostIsa};

/// The ISA ceiling is process-global; tests in this binary must not
/// overlap their masked regions.
static CEILING_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn native_backend_degrades_to_scalar_kernels_without_simd() {
    let _guard = CEILING_LOCK.lock().unwrap();
    let cfg = PipelineConfig {
        backend: DecoderBackend::Native,
        snr_db: 12.0,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    let p = b.build(Transport::Udp, 512).unwrap();

    // Reference outcome with the host's real capabilities.
    let native = UplinkPipeline::new(cfg).process(&p).expect("12 dB decodes");

    // Mask every SIMD tier: the same pipeline must still decode — via
    // the native decoder's scalar kernels — and report the fallback.
    set_isa_ceiling(Some(HostIsa::Scalar));
    let metrics = Arc::new(PipelineMetrics::new(true));
    let masked_pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
    let masked = masked_pipe.process(&p).expect("scalar fallback decodes");
    set_isa_ceiling(None);

    assert_eq!(masked.tb_bits, native.tb_bits);
    assert_eq!(masked.code_blocks, native.code_blocks);
    assert_eq!(masked.coded_bits, native.coded_bits);
    assert_eq!(
        masked.decoder_iterations, native.decoder_iterations,
        "scalar kernels must be bit-exact with the SIMD path"
    );
    assert_eq!(
        metrics.native_simd_fallbacks.get(),
        1,
        "the lost SIMD speedup must be observable"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.iter()
            .find(|(name, _)| name == "native_simd_fallbacks")
            .map(|(_, v)| *v),
        Some(1.0),
        "fallback events must appear in snapshots: {snap:?}"
    );
}

#[test]
fn batched_decode_degrades_below_avx512_ceiling() {
    let _guard = CEILING_LOCK.lock().unwrap();
    let cfg = PipelineConfig {
        backend: DecoderBackend::Native,
        batch_decode: true,
        snr_db: 12.0,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    // 1500 B segments into several code blocks, so the batch path
    // actually forms quads/pairs rather than a single leftover.
    let p = b.build(Transport::Udp, 1500).unwrap();

    // Reference outcome with the host's real capabilities (quad-in-zmm
    // where available, pair/single otherwise).
    let full = UplinkPipeline::new(cfg).process(&p).expect("12 dB decodes");

    // Cap the ISA at AVX2: the quad kernel is off the table, the batch
    // path must split into ymm pairs bit-exactly and flag the loss.
    set_isa_ceiling(Some(HostIsa::Avx2));
    let metrics = Arc::new(PipelineMetrics::new(true));
    let masked_pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
    let masked = masked_pipe.process(&p).expect("pair fallback decodes");
    set_isa_ceiling(None);

    assert_eq!(masked.tb_bits, full.tb_bits);
    assert_eq!(masked.code_blocks, full.code_blocks);
    assert_eq!(masked.coded_bits, full.coded_bits);
    assert_eq!(
        masked.decoder_iterations, full.decoder_iterations,
        "pair-split batch decode must be bit-exact with the quad kernel"
    );
    assert_eq!(
        metrics.batch_simd_fallbacks.get(),
        1,
        "the lost zmm speedup must be observable"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.iter()
            .find(|(name, _)| name == "batch_simd_fallbacks")
            .map(|(_, v)| *v),
        Some(1.0),
        "fallback events must appear in snapshots: {snap:?}"
    );
}

#[test]
fn packed_encoder_degrades_below_avx512_ceiling() {
    let _guard = CEILING_LOCK.lock().unwrap();
    let cfg = DownlinkConfig {
        encoder_backend: EncoderBackend::Packed,
        snr_db: 25.0,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    let p = b.build(Transport::Udp, 300).unwrap();

    // Reference outcome with the host's real capabilities.
    let full = DownlinkPipeline::new(cfg).process(&p);
    assert!(full.dci_ok && full.data_ok, "{full:?}");

    // Cap the ISA at AVX2: the packed encoder must drop from the
    // 512-bit kernel to the 256-bit one, stay bit-exact, and report
    // the zmm-tier degradation (but NOT the full word64 fallback).
    set_isa_ceiling(Some(HostIsa::Avx2));
    let metrics = Arc::new(PipelineMetrics::new(true));
    let masked_pipe = DownlinkPipeline::with_metrics(cfg, metrics.clone());
    let masked = masked_pipe.process(&p);
    set_isa_ceiling(None);

    assert_eq!(masked.dci_ok, full.dci_ok);
    assert_eq!(masked.data_ok, full.data_ok);
    assert_eq!(masked.code_blocks, full.code_blocks);
    assert_eq!(masked.coded_bits, full.coded_bits);
    assert!(masked.data_ok, "256-bit fallback must stay bit-exact");
    assert_eq!(
        metrics.zmm_encoder_fallbacks.get(),
        1,
        "the lost zmm speedup must be observable"
    );
    assert_eq!(
        metrics.packed_encoder_fallbacks.get(),
        0,
        "AVX2 is still a SIMD tier, not the word64 floor"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.iter()
            .find(|(name, _)| name == "zmm_encoder_fallbacks")
            .map(|(_, v)| *v),
        Some(1.0),
        "fallback events must appear in snapshots: {snap:?}"
    );
}

#[test]
fn packed_encoder_degrades_to_word64_kernel_without_simd() {
    let _guard = CEILING_LOCK.lock().unwrap();
    let cfg = DownlinkConfig {
        encoder_backend: EncoderBackend::Packed,
        snr_db: 25.0,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    let p = b.build(Transport::Udp, 300).unwrap();

    // Reference outcome with the host's real capabilities.
    let native = DownlinkPipeline::new(cfg).process(&p);
    assert!(native.dci_ok && native.data_ok, "{native:?}");

    // Mask every SIMD tier: the packed encoder must fall back to the
    // portable u64 kernel, stay bit-exact, and report the degradation.
    set_isa_ceiling(Some(HostIsa::Scalar));
    let metrics = Arc::new(PipelineMetrics::new(true));
    let masked_pipe = DownlinkPipeline::with_metrics(cfg, metrics.clone());
    let masked = masked_pipe.process(&p);
    set_isa_ceiling(None);

    assert_eq!(masked.dci_ok, native.dci_ok);
    assert_eq!(masked.data_ok, native.data_ok);
    assert_eq!(masked.code_blocks, native.code_blocks);
    assert_eq!(masked.coded_bits, native.coded_bits);
    assert!(masked.data_ok, "u64 fallback must stay bit-exact");
    assert_eq!(
        metrics.packed_encoder_fallbacks.get(),
        1,
        "the lost SIMD speedup must be observable"
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.iter()
            .find(|(name, _)| name == "packed_encoder_fallbacks")
            .map(|(_, v)| *v),
        Some(1.0),
        "fallback events must appear in snapshots: {snap:?}"
    );
}
