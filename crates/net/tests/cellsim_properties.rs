//! Property tests for the cell-scale arrival-process generators:
//! determinism (same seed → byte-identical schedule) and
//! distributional sanity (long-run mean within band of the declared
//! rate) across randomly drawn seeds and process parameters.

use vran_net::cellsim::{ArrivalGen, ArrivalProcess};
use vran_util::proptest::prelude::*;

/// The full arrival schedule of `n` TTIs.
fn schedule(process: ArrivalProcess, seed: u64, n: u64) -> Vec<u32> {
    let mut g = ArrivalGen::new(process, seed);
    (0..n).map(|t| g.draw(t)).collect()
}

/// Long-run empirical mean arrivals per TTI.
fn measured_mean(process: ArrivalProcess, seed: u64, n: u64) -> f64 {
    schedule(process, seed, n)
        .iter()
        .map(|&x| x as u64)
        .sum::<u64>() as f64
        / n as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn constant_schedule_is_seed_deterministic(seed in any::<u64>(),
                                               rate_milli in 1u64..4000) {
        let p = ArrivalProcess::Constant {
            mean_per_tti: rate_milli as f64 / 1000.0,
        };
        prop_assert_eq!(schedule(p, seed, 2_000), schedule(p, seed, 2_000));
        // A different seed must not reproduce the same schedule (the
        // whole-packet part is seed-independent, so compare only when
        // the fractional part leaves room for the draw to matter).
        prop_assume!(rate_milli % 1000 != 0);
        prop_assert_ne!(schedule(p, seed, 2_000), schedule(p, seed ^ 0x5eed, 2_000));
    }

    #[test]
    fn constant_mean_is_within_band(seed in any::<u64>(), rate_milli in 1u64..4000) {
        let rate = rate_milli as f64 / 1000.0;
        let p = ArrivalProcess::Constant { mean_per_tti: rate };
        let m = measured_mean(p, seed, 50_000);
        // Bernoulli noise on the fractional part: sd ≤ 0.5/√N ≈ 0.003.
        prop_assert!(
            (m - rate).abs() < 0.02 * rate + 0.01,
            "measured {m:.4} vs declared {rate:.4}"
        );
    }

    #[test]
    fn bursty_schedule_is_deterministic_and_mean_honest(
        seed in any::<u64>(),
        on_milli in 500u64..3000,
        p_on_off_milli in 5u64..80,
        p_off_on_milli in 5u64..80,
    ) {
        let p = ArrivalProcess::Bursty {
            on_mean_per_tti: on_milli as f64 / 1000.0,
            p_on_to_off: p_on_off_milli as f64 / 1000.0,
            p_off_to_on: p_off_on_milli as f64 / 1000.0,
        };
        let a = schedule(p, seed, 3_000);
        prop_assert_eq!(&a, &schedule(p, seed, 3_000));
        // The on/off chain mixes in ~1/p TTIs; 200k TTIs give ≥ 1000
        // on/off segments at the slowest transition rates drawn here.
        let m = measured_mean(p, seed, 200_000);
        let expected = p.mean_per_tti();
        prop_assert!(
            (m - expected).abs() < 0.15 * expected + 0.02,
            "measured {m:.4} vs stationary {expected:.4}"
        );
    }

    #[test]
    fn diurnal_schedule_is_deterministic_and_mean_honest(
        seed in any::<u64>(),
        mean_milli in 200u64..2000,
        depth_pct in 0u64..101,
        period in 50u64..2000,
    ) {
        let p = ArrivalProcess::Diurnal {
            mean_per_tti: mean_milli as f64 / 1000.0,
            depth: depth_pct as f64 / 100.0,
            period_ttis: period,
        };
        let probe = 4 * period;
        prop_assert_eq!(schedule(p, seed, probe), schedule(p, seed, probe));
        // Average over whole periods: the triangle modulation cancels.
        let cycles = (60_000 / period).max(20);
        let n = cycles * period;
        let m = measured_mean(p, seed, n);
        let expected = p.mean_per_tti();
        prop_assert!(
            (m - expected).abs() < 0.05 * expected + 0.02,
            "measured {m:.4} vs declared {expected:.4} over {cycles} periods"
        );
    }

    #[test]
    fn diurnal_peak_and_trough_straddle_the_mean(
        seed in any::<u64>(),
        period in 400u64..2000,
    ) {
        // With depth 1 the quarter-period around the peak must arrive
        // strictly more than the quarter around the trough.
        let p = ArrivalProcess::Diurnal {
            mean_per_tti: 1.0,
            depth: 1.0,
            period_ttis: period,
        };
        let s = schedule(p, seed, 8 * period);
        let q = (period / 4) as usize;
        let window_sum = |start: usize| -> u64 {
            s.iter()
                .enumerate()
                .filter(|(t, _)| {
                    let phase = t % period as usize;
                    phase >= start && phase < start + q
                })
                .map(|(_, &x)| x as u64)
                .sum()
        };
        // Quarter-windows centered on the peak (phase 0.25·period) and
        // the trough (phase 0.75·period).
        let peak = window_sum(period as usize / 8);
        let trough = window_sum(5 * period as usize / 8);
        prop_assert!(
            peak > trough,
            "peak window {peak} must exceed trough window {trough}"
        );
    }
}
