//! Fault-injection soak: thousands of deliberately damaged packets
//! through every decoder backend, asserting the pipeline never panics,
//! never hangs, and classifies every outcome into the typed error
//! taxonomy — with exact per-category counts pinned against the
//! injector's own draw ledger.
//!
//! The always-on tests keep the packet count small enough for debug
//! builds; CI's `fault-soak` job runs the `#[ignore]`d full soak in
//! release mode (`cargo test --release -p vran-net --test fault_soak
//! -- --ignored`), which defaults to 10 000 packets per backend and
//! honors `FAULT_SOAK_PACKETS` for larger runs.

use std::sync::Arc;
use vran_net::error::ErrorCategory;
use vran_net::faultinject::{FaultInjector, FaultKind, FaultMix};
use vran_net::harq::{HarqReceiver, HarqTransmitter};
use vran_net::metrics::{PipelineMetrics, RunnerMetrics};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{DecoderBackend, PipelineConfig, UplinkPipeline};
use vran_net::runner::{run_multicore_metered, FaultPlan, RING_CAPACITY};

fn full_soak_packets() -> usize {
    std::env::var("FAULT_SOAK_PACKETS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
}

/// Push `n` packets with the standard soak mix through one backend and
/// pin every classification count against the injector's draw ledger.
fn soak_backend(backend: DecoderBackend, n: usize, seed: u64) {
    let metrics = Arc::new(PipelineMetrics::new(true));
    let cfg = PipelineConfig {
        backend,
        snr_db: 30.0, // clean channel: only injected faults can fail
        decoder_iterations: 4,
        ..Default::default()
    };
    let mut pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
    pipe.set_fault_injector(FaultInjector::new(seed));

    let mut b = PacketBuilder::new(1000, 2000);
    let sizes = [64usize, 128, 300, 900];
    let mut ok = 0usize;
    for i in 0..n {
        let transport = if i % 3 == 0 {
            Transport::Tcp
        } else {
            Transport::Udp
        };
        let p = b.build(transport, sizes[i % sizes.len()]).unwrap();
        match pipe.process(&p) {
            Ok(_) => ok += 1,
            Err(e) => {
                // Every error must carry a valid category and Display.
                assert!(!e.category().name().is_empty());
                assert!(!e.to_string().is_empty());
            }
        }
    }

    let injected = pipe.fault_counts().expect("injector attached");
    let drawn = |k: FaultKind| injected[k as usize];
    let errs = |c: ErrorCategory| metrics.error_count(c);

    // Structural faults classify deterministically, 1:1 with draws.
    assert_eq!(
        errs(ErrorCategory::MalformedFrame),
        drawn(FaultKind::CorruptFrame) + drawn(FaultKind::TruncateFrame),
        "{backend:?}: every corrupted/truncated frame must reject at ingress"
    );
    assert_eq!(
        errs(ErrorCategory::SegmentationOverflow),
        drawn(FaultKind::CodeBlockCountLie),
        "{backend:?}: every block-count lie must reject at desegmentation"
    );
    assert_eq!(errs(ErrorCategory::DeadlineExceeded), 0);

    // LLR faults and clean traffic split between success and the two
    // decode-quality categories — nothing else.
    let soft =
        drawn(FaultKind::Clean) + drawn(FaultKind::FlipLlrSigns) + drawn(FaultKind::SaturateLlrs);
    assert_eq!(
        ok as u64 + errs(ErrorCategory::CrcMismatch) + errs(ErrorCategory::DecoderDiverged),
        soft,
        "{backend:?}: unaccounted outcome"
    );
    // A 30 dB channel decodes essentially every untouched packet. A
    // handful of payloads genuinely fail to converge within 4 turbo
    // iterations (residual BLER ~0.04% at this scale — they decode at
    // 8), so the floor is 99%, not exactness.
    assert!(
        ok as u64 * 100 >= drawn(FaultKind::Clean) * 99,
        "{backend:?}: clean packets failing ({ok} ok, {} clean drawn)",
        drawn(FaultKind::Clean)
    );
    assert_eq!(metrics.packets.get(), n as u64);
    assert_eq!(metrics.ok_packets.get(), ok as u64);
    assert_eq!(injected.iter().sum::<u64>(), n as u64);
    // The mix exercises every intended kind at this scale.
    for k in [
        FaultKind::Clean,
        FaultKind::CorruptFrame,
        FaultKind::TruncateFrame,
        FaultKind::FlipLlrSigns,
        FaultKind::SaturateLlrs,
        FaultKind::CodeBlockCountLie,
    ] {
        assert!(drawn(k) > 0, "{backend:?}: {} never drawn in {n}", k.name());
    }
}

#[test]
fn mixed_fault_soak_classifies_every_packet() {
    // Debug-build friendly slice of the full soak; identical logic.
    for (backend, seed) in [(DecoderBackend::Scalar, 17), (DecoderBackend::Native, 18)] {
        soak_backend(backend, 420, seed);
    }
}

#[test]
#[ignore = "full-scale soak; run in release via CI's fault-soak job"]
fn full_fault_soak_every_backend() {
    let n = full_soak_packets();
    for (backend, seed) in [(DecoderBackend::Scalar, 17), (DecoderBackend::Native, 18)] {
        soak_backend(backend, n, seed);
    }
}

#[test]
fn deadline_soak_times_out_every_packet() {
    let metrics = Arc::new(PipelineMetrics::new(true));
    let cfg = PipelineConfig {
        snr_db: 30.0,
        deadline_ns: Some(1),
        ..Default::default()
    };
    let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
    let mut b = PacketBuilder::new(1000, 2000);
    for _ in 0..50 {
        let p = b.build(Transport::Udp, 128).unwrap();
        let e = pipe.process(&p).expect_err("1 ns budget");
        assert_eq!(e.category(), ErrorCategory::DeadlineExceeded);
    }
    assert_eq!(metrics.error_count(ErrorCategory::DeadlineExceeded), 50);
    assert_eq!(metrics.ok_packets.get(), 0);
}

#[test]
fn harq_drop_soak_degrades_gracefully() {
    // Retransmissions are randomly dropped on the "air interface";
    // the receiver must never panic, never see an invalid rv, and
    // every trial must end in a clean verdict within the rv schedule.
    let mut inj = FaultInjector::with_mix(
        77,
        FaultMix::only(FaultKind::DropHarqRetransmission).with_weight(FaultKind::Clean, 2),
    );
    let k = 208;
    let e = 230; // aggressive rate: first attempts often need help
    let mut decoded = 0usize;
    let mut dropped = 0usize;
    for trial in 0..40u64 {
        let payload = vran_phy::bits::random_bits(k - 24, trial + 1);
        let block = vran_phy::crc::CRC24B.attach(&payload);
        let cw = vran_phy::turbo::TurboEncoder::new(k).encode(&block);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(k, 6);
        while let Some((rv, coded)) = tx.next_transmission(e) {
            let kind = inj.next_kind();
            if inj.drop_harq_retransmission(kind) {
                dropped += 1;
                continue; // lost on the air: receiver never sees it
            }
            // 1-in-6 sign flips — needs combining to close.
            let llrs: Vec<vran_phy::llr::Llr> = coded
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    let v: vran_phy::llr::Llr = if b == 0 { 24 } else { -24 };
                    if (i + trial as usize).is_multiple_of(6) {
                        -v
                    } else {
                        v
                    }
                })
                .collect();
            let out = rx.receive(&llrs, rv).expect("scheduled rv is valid");
            assert!(out.attempts <= 4);
            if out.ok {
                assert_eq!(out.bits, block);
                decoded += 1;
                break;
            }
        }
    }
    assert!(dropped > 0, "the drop fault must have fired");
    assert!(
        decoded > 0,
        "combining must still rescue some blocks despite drops"
    );
}

#[test]
#[ignore = "full-scale multicore panic soak; run in release via CI's fault-soak job"]
fn multicore_panic_soak_survives() {
    let cfg = PipelineConfig {
        snr_db: 30.0,
        decoder_iterations: 4,
        ..Default::default()
    };
    let plan = FaultPlan {
        seed: 5,
        mix: FaultMix::only(FaultKind::Clean)
            .with_weight(FaultKind::Clean, 15)
            .with_weight(FaultKind::WorkerPanic, 1),
    };
    let rm = RunnerMetrics::new(true, RING_CAPACITY);
    let n = full_soak_packets() / 5;
    let rep = run_multicore_metered(cfg, Transport::Udp, 256, n, 4, &rm, Some(plan));
    assert!(rep.worker_restarts > 0, "panics must have fired: {rep:?}");
    assert_eq!(rep.packets + rep.worker_restarts, n);
    // Survivors are clean traffic; allow the turbo decoder's residual
    // non-convergence at 4 iterations (~0.04% of clean packets).
    assert!(
        rep.ok_packets * 100 >= rep.packets * 99,
        "survivors must decode: {rep:?}"
    );
    assert!(rep.mbps > 0.0);
    assert_eq!(rm.worker_restarts.get(), rep.worker_restarts as u64);
    assert_eq!(rm.quarantined.get(), rep.worker_restarts as u64);
}
