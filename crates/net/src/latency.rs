//! Cycle-accounting latency and capacity models.
//!
//! Translates `vran-uarch` simulation reports into the paper's
//! packet-level quantities:
//!
//! * per-packet processing time vs packet size and transport (Fig 13),
//! * arrangement vs calculation split at 1500 B (Fig 14),
//! * per-core bandwidth and core counts for 300 Mbps (Fig 16).
//!
//! ## Model structure (documented calibration, DESIGN.md §2)
//!
//! The decoder front end re-arranges its working set once per SISO
//! pass (the extrinsic/a-priori streams are produced in interleaved
//! order, Figure 8a), so for `I` iterations the arrangement kernel
//! processes `2·I` passes over the block. The SIMD calculation cost is
//! the traced max-log-MAP kernel itself. The remaining pipeline
//! (CRC/encode bookkeeping, scrambling, OFDM, demapping) is scalar
//! code the paper shows running near IPC 4 with negligible backend
//! bound; it is charged at a fixed, documented cycles-per-bit rate
//! rather than traced (`SCALAR_CYCLES_PER_BIT`).

use crate::packet::Transport;
use crate::pipeline::{synthetic_interleaved, UplinkPipeline};
use std::collections::HashMap;
use vran_arrange::{ArrangeKernel, Mechanism};
use vran_phy::bits::random_bits;
use vran_phy::llr::{bit_to_llr, TurboLlrs};
use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
use vran_phy::turbo::TurboEncoder;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim, SimReport};

/// Cycles per transport-block bit charged for the scalar pipeline
/// stages (encode-side bookkeeping, scrambling, OFDM share per bit,
/// demapping). Derived from the near-ideal-IPC scalar profile of
/// Figures 5/6; see module docs.
pub const SCALAR_CYCLES_PER_BIT: f64 = 11.0;

/// Fixed per-packet cycles for the TCP reverse-path (ACK build +
/// header processing), absent for UDP.
pub const TCP_ACK_CYCLES: f64 = 9000.0;

/// Reference block size used for kernel tracing; costs scale linearly
/// in the number of triples (both kernels are streaming).
const K_REF: usize = 1024;
/// Reference decoder trace length.
const K_REF_DEC: usize = 512;

/// Per-packet time decomposition in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct PacketTime {
    /// The data arrangement process (all SISO passes).
    pub arrangement_us: f64,
    /// SIMD calculation (max-log-MAP) time.
    pub calculation_us: f64,
    /// Scalar pipeline stages.
    pub other_us: f64,
    /// Transport extra (TCP ACK path).
    pub transport_us: f64,
}

impl PacketTime {
    /// Total per-packet processing time.
    pub fn total_us(&self) -> f64 {
        self.arrangement_us + self.calculation_us + self.other_us + self.transport_us
    }

    /// Arrangement share of the total.
    pub fn arrangement_share(&self) -> f64 {
        self.arrangement_us / self.total_us()
    }
}

/// Cached cycle model over a fixed core configuration.
pub struct LatencyModel {
    core: CoreConfig,
    iterations: usize,
    arrange_cache: HashMap<(RegWidth, &'static str), SimReport>,
    decode_cache: HashMap<RegWidth, SimReport>,
}

impl LatencyModel {
    /// Model over `core`, with `iterations` full turbo iterations per
    /// code block. The core is always run in steady-state (warm-cache)
    /// mode: per-packet kernels execute back to back on resident data.
    pub fn new(core: CoreConfig, iterations: usize) -> Self {
        Self {
            core: core.warmed(),
            iterations,
            arrange_cache: HashMap::new(),
            decode_cache: HashMap::new(),
        }
    }

    /// The core configuration.
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// Simulated report for the arrangement kernel over `K_REF`
    /// triples (cached).
    pub fn arrangement_report(&mut self, width: RegWidth, mech: Mechanism) -> SimReport {
        let core = self.core;
        self.arrange_cache
            .entry((width, mech.name()))
            .or_insert_with(|| {
                let input = synthetic_interleaved(K_REF, 7);
                let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
                CoreSim::new(core).run(&trace.expect("tracing enabled"))
            })
            .clone()
    }

    /// Simulated report for one full decoder iteration over
    /// `K_REF_DEC` steps (cached).
    pub fn decoder_report(&mut self, width: RegWidth) -> SimReport {
        let core = self.core;
        self.decode_cache
            .entry(width)
            .or_insert_with(|| {
                let k = K_REF_DEC;
                let bits = random_bits(k, 99);
                let cw = TurboEncoder::new(k).encode(&bits);
                let d = cw.to_dstreams();
                let soft: [Vec<i16>; 3] = d
                    .iter()
                    .map(|s| s.iter().map(|&b| bit_to_llr(b, 60)).collect())
                    .collect::<Vec<_>>()
                    .try_into()
                    .unwrap();
                let input = TurboLlrs::from_dstreams(&soft, k);
                let dec = SimdTurboDecoder::new(k, 1, width);
                let (_, trace) = dec.decode_traced(&input, 1);
                CoreSim::new(core).run(&trace)
            })
            .clone()
    }

    /// Arrangement cycles for `triples` triples, one pass.
    pub fn arrangement_cycles(&mut self, width: RegWidth, mech: Mechanism, triples: usize) -> f64 {
        let rep = self.arrangement_report(width, mech);
        rep.cycles as f64 * triples as f64 / K_REF as f64
    }

    /// Decoder calculation cycles for `steps` trellis steps over the
    /// configured iterations (arrangement excluded — the traced decoder
    /// consumes pre-arranged streams).
    ///
    /// Width scaling: the α/β state recursions always occupy one
    /// 128-bit lane group (8 states × i16); production decoders (OAI,
    /// FlexRAN) exploit wider registers by **batching decode windows**
    /// — 2 windows per ymm, 4 per zmm. Batching is sub-linear (window
    /// boundary metrics must be exchanged and the γ/extrinsic phases
    /// gain bookkeeping), modeled as a √(lane groups) speedup: ×1.41
    /// at 256 bits, ×2 at 512. This reproduces the paper's Figure 9/16
    /// calculation-time scaling (total throughput 16.4→21.6→25.5
    /// Mbps/core across widths under the original mechanism).
    pub fn decoder_cycles(&mut self, width: RegWidth, steps: usize) -> f64 {
        let rep = self.decoder_report(width);
        let batch = (width.lanes128() as f64).sqrt();
        rep.cycles as f64 * steps as f64 / K_REF_DEC as f64 * self.iterations as f64 / batch
    }

    /// Full per-packet decomposition for a wire-level packet.
    pub fn packet_time(
        &mut self,
        width: RegWidth,
        mech: Mechanism,
        transport: Transport,
        wire_len: usize,
    ) -> PacketTime {
        let triples = UplinkPipeline::arrangement_triples(wire_len);
        // one arrangement pass per SISO pass (2 per iteration)
        let passes = 2.0 * self.iterations as f64;
        let arr = self.arrangement_cycles(width, mech, triples) * passes;
        let dec = self.decoder_cycles(width, triples);
        let other = wire_len as f64 * 8.0 * SCALAR_CYCLES_PER_BIT;
        let tcp = match transport {
            Transport::Udp => 0.0,
            Transport::Tcp => TCP_ACK_CYCLES,
        };
        let freq_hz = self.core.freq_ghz * 1e9;
        PacketTime {
            arrangement_us: arr / freq_hz * 1e6,
            calculation_us: dec / freq_hz * 1e6,
            other_us: other / freq_hz * 1e6,
            transport_us: tcp / freq_hz * 1e6,
        }
    }

    /// Per-core goodput in Mbps at the standard 1500 B packet size
    /// (Figure 16 left axis).
    pub fn mbps_per_core(&mut self, width: RegWidth, mech: Mechanism) -> f64 {
        let t = self.packet_time(width, mech, Transport::Udp, 1500);
        1500.0 * 8.0 / t.total_us()
    }

    /// Cores needed to sustain `target_mbps` (Figure 16 right axis;
    /// paper uses 300 Mbps for an eNodeB \[19\]).
    pub fn cores_for(&mut self, width: RegWidth, mech: Mechanism, target_mbps: f64) -> usize {
        (target_mbps / self.mbps_per_core(width, mech)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::new(CoreConfig::beefy(), 5)
    }

    #[test]
    fn apcm_reduces_arrangement_cycles_sharply() {
        let mut m = model();
        for w in RegWidth::ALL {
            let base = m.arrangement_cycles(w, Mechanism::Baseline, 6144);
            let apcm =
                m.arrangement_cycles(w, Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle), 6144);
            let reduction = 1.0 - apcm / base;
            assert!(
                reduction > 0.55,
                "{w}: APCM must cut arrangement time well past half: {reduction:.2}"
            );
        }
    }

    #[test]
    fn baseline_gets_worse_with_width_apcm_gets_better() {
        let mut m = model();
        let b128 = m.arrangement_cycles(RegWidth::Sse128, Mechanism::Baseline, 6144);
        let b512 = m.arrangement_cycles(RegWidth::Avx512, Mechanism::Baseline, 6144);
        assert!(
            b512 >= b128 * 0.98,
            "original must not improve with width: {b128} → {b512}"
        );
        let apcm = Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle);
        let a128 = m.arrangement_cycles(RegWidth::Sse128, apcm, 6144);
        let a512 = m.arrangement_cycles(RegWidth::Avx512, apcm, 6144);
        assert!(
            a512 < a128 * 0.5,
            "APCM must scale with width: {a128} → {a512}"
        );
    }

    #[test]
    fn packet_time_monotone_in_size() {
        let mut m = model();
        let mut t = |s| {
            m.packet_time(RegWidth::Sse128, Mechanism::Baseline, Transport::Udp, s)
                .total_us()
        };
        assert!(t(256) < t(512));
        assert!(t(512) < t(1024));
        assert!(t(1024) < t(1500));
    }

    #[test]
    fn tcp_costs_more_than_udp() {
        let mut m = model();
        let udp = m.packet_time(RegWidth::Avx256, Mechanism::Baseline, Transport::Udp, 1024);
        let tcp = m.packet_time(RegWidth::Avx256, Mechanism::Baseline, Transport::Tcp, 1024);
        assert!(tcp.total_us() > udp.total_us());
        assert_eq!(udp.arrangement_us, tcp.arrangement_us);
    }

    #[test]
    fn apcm_improves_total_packet_time_meaningfully() {
        // Paper Figure 13: 12% (SSE128) to 20% (AVX512) reduction.
        let mut m = model();
        let apcm = Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle);
        for (w, lo, hi) in [
            (RegWidth::Sse128, 0.05, 0.35),
            (RegWidth::Avx512, 0.08, 0.40),
        ] {
            let base = m
                .packet_time(w, Mechanism::Baseline, Transport::Udp, 1500)
                .total_us();
            let opt = m.packet_time(w, apcm, Transport::Udp, 1500).total_us();
            let red = 1.0 - opt / base;
            assert!(
                (lo..hi).contains(&red),
                "{w}: total reduction {red:.3} outside plausible band"
            );
        }
    }

    #[test]
    fn capacity_improves_and_cores_drop() {
        let mut m = model();
        let apcm = Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle);
        for w in RegWidth::ALL {
            let mb = m.mbps_per_core(w, Mechanism::Baseline);
            let ma = m.mbps_per_core(w, apcm);
            assert!(ma > mb, "{w}: APCM must raise per-core bandwidth");
            let cb = m.cores_for(w, Mechanism::Baseline, 300.0);
            let ca = m.cores_for(w, apcm, 300.0);
            assert!(ca <= cb, "{w}: APCM must not need more cores");
        }
        // wider registers help capacity under APCM
        assert!(m.mbps_per_core(RegWidth::Avx512, apcm) > m.mbps_per_core(RegWidth::Sse128, apcm));
    }
}
