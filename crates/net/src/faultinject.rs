//! Deterministic fault injection for the uplink pipeline.
//!
//! A [`FaultInjector`] is a seeded stream of [`FaultKind`] decisions
//! plus the mutations they imply: corrupting or truncating ingress
//! frames, flipping or saturating receive-side LLRs, lying about the
//! code-block count handed to desegmentation, and (for the runner's
//! panic-isolation tests) raising a deliberate panic mid-packet. The
//! same seed always yields the same fault sequence, so the soak tests
//! and the `pipeline_faults` benchgate suite can pin exact
//! classification counts.
//!
//! The injector plugs into [`crate::pipeline::UplinkPipeline`] via
//! [`crate::pipeline::UplinkPipeline::with_faults`]; HARQ
//! retransmission drops are driven directly by the soak test through
//! [`FaultInjector::drop_harq_retransmission`] since HARQ sits above
//! the per-packet pipeline.

use vran_phy::llr::Llr;
use vran_util::rng::SmallRng;

/// One per-packet fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultKind {
    /// No fault — the packet passes through untouched.
    Clean,
    /// XOR one frame byte at index ≥ 12 (EtherType onward, where the
    /// checksums guarantee detection; the first 12 MAC bytes are only
    /// protected by the Ethernet FCS, which this model does not carry).
    CorruptFrame,
    /// Cut the frame short (possibly to zero bytes).
    TruncateFrame,
    /// Negate a contiguous run of receive-side LLRs.
    FlipLlrSigns,
    /// Drive a contiguous run of receive-side LLRs to ±`i16::MAX`.
    SaturateLlrs,
    /// Hand desegmentation the wrong number of code blocks.
    CodeBlockCountLie,
    /// Drop a HARQ retransmission (soak-level fault).
    DropHarqRetransmission,
    /// Panic mid-packet — exercises the runner's worker isolation.
    WorkerPanic,
}

impl FaultKind {
    /// Number of kinds.
    pub const COUNT: usize = 8;
    /// All kinds, in declaration order.
    pub const ALL: [FaultKind; FaultKind::COUNT] = [
        FaultKind::Clean,
        FaultKind::CorruptFrame,
        FaultKind::TruncateFrame,
        FaultKind::FlipLlrSigns,
        FaultKind::SaturateLlrs,
        FaultKind::CodeBlockCountLie,
        FaultKind::DropHarqRetransmission,
        FaultKind::WorkerPanic,
    ];

    /// Snake-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Clean => "clean",
            FaultKind::CorruptFrame => "corrupt_frame",
            FaultKind::TruncateFrame => "truncate_frame",
            FaultKind::FlipLlrSigns => "flip_llr_signs",
            FaultKind::SaturateLlrs => "saturate_llrs",
            FaultKind::CodeBlockCountLie => "code_block_count_lie",
            FaultKind::DropHarqRetransmission => "drop_harq_retransmission",
            FaultKind::WorkerPanic => "worker_panic",
        }
    }
}

/// Relative draw weights per fault kind (0 disables a kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMix {
    /// Weights indexed by [`FaultKind`] discriminant.
    pub weights: [u32; FaultKind::COUNT],
}

impl FaultMix {
    /// The soak default: half the traffic clean, the rest spread over
    /// the data faults; panic and HARQ-drop faults are opt-in because
    /// they need harness cooperation (catch_unwind / a HARQ session).
    pub fn soak() -> Self {
        let mut weights = [0u32; FaultKind::COUNT];
        weights[FaultKind::Clean as usize] = 5;
        weights[FaultKind::CorruptFrame as usize] = 1;
        weights[FaultKind::TruncateFrame as usize] = 1;
        weights[FaultKind::FlipLlrSigns as usize] = 1;
        weights[FaultKind::SaturateLlrs as usize] = 1;
        weights[FaultKind::CodeBlockCountLie as usize] = 1;
        Self { weights }
    }

    /// Only one kind, always.
    pub fn only(kind: FaultKind) -> Self {
        let mut weights = [0u32; FaultKind::COUNT];
        weights[kind as usize] = 1;
        Self { weights }
    }

    /// Set one kind's weight (builder-style).
    pub fn with_weight(mut self, kind: FaultKind, weight: u32) -> Self {
        self.weights[kind as usize] = weight;
        self
    }

    fn total(&self) -> u32 {
        self.weights.iter().sum()
    }
}

/// Deterministic, seeded fault source. Equal seeds and mixes produce
/// identical fault sequences and identical mutations.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SmallRng,
    mix: FaultMix,
    injected: [u64; FaultKind::COUNT],
}

impl FaultInjector {
    /// Injector with the [`FaultMix::soak`] mix.
    pub fn new(seed: u64) -> Self {
        Self::with_mix(seed, FaultMix::soak())
    }

    /// Injector with an explicit mix. Panics if every weight is zero.
    pub fn with_mix(seed: u64, mix: FaultMix) -> Self {
        assert!(mix.total() > 0, "fault mix must have at least one kind");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            mix,
            injected: [0; FaultKind::COUNT],
        }
    }

    /// Draw the fault decision for the next packet.
    pub fn next_kind(&mut self) -> FaultKind {
        let total = self.mix.total();
        let mut draw = self.rng.next_u32() % total;
        for kind in FaultKind::ALL {
            let w = self.mix.weights[kind as usize];
            if draw < w {
                self.injected[kind as usize] += 1;
                return kind;
            }
            draw -= w;
        }
        unreachable!("weights sum to total");
    }

    /// Times each kind has been drawn, indexed by discriminant.
    pub fn injected(&self) -> &[u64; FaultKind::COUNT] {
        &self.injected
    }

    /// Apply a frame-level fault, returning the mutated frame; `None`
    /// means `kind` does not touch frames.
    pub fn mutate_frame(&mut self, kind: FaultKind, frame: &[u8]) -> Option<Vec<u8>> {
        match kind {
            FaultKind::CorruptFrame => {
                let mut out = frame.to_vec();
                if out.len() > 12 {
                    let i = self.rng.gen_range_usize(12, out.len());
                    let mask = (self.rng.next_u32() % 255 + 1) as u8;
                    out[i] ^= mask;
                } else {
                    out.clear(); // degenerate tiny frame: truncate instead
                }
                Some(out)
            }
            FaultKind::TruncateFrame => {
                let keep = self.rng.gen_range_usize(0, frame.len().clamp(1, 42));
                Some(frame[..keep].to_vec())
            }
            _ => None,
        }
    }

    /// Apply an LLR-level fault in place; returns whether anything was
    /// mutated.
    pub fn mutate_llrs(&mut self, kind: FaultKind, llrs: &mut [Llr]) -> bool {
        if llrs.is_empty() {
            return false;
        }
        let span = (llrs.len() / 4).max(1);
        let start = self.rng.gen_range_usize(0, llrs.len());
        match kind {
            FaultKind::FlipLlrSigns => {
                for i in 0..span {
                    let j = (start + i) % llrs.len();
                    llrs[j] = llrs[j].saturating_neg();
                }
                true
            }
            FaultKind::SaturateLlrs => {
                for i in 0..span {
                    let j = (start + i) % llrs.len();
                    llrs[j] = if self.rng.next_u32() & 1 == 0 {
                        i16::MAX
                    } else {
                        i16::MIN
                    };
                }
                true
            }
            _ => false,
        }
    }

    /// Whether a HARQ retransmission should be dropped under `kind`
    /// (the soak drives this around
    /// [`crate::harq::HarqTransmitter::next_transmission`]).
    pub fn drop_harq_retransmission(&self, kind: FaultKind) -> bool {
        kind == FaultKind::DropHarqRetransmission
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        let seq_a: Vec<FaultKind> = (0..200).map(|_| a.next_kind()).collect();
        let seq_b: Vec<FaultKind> = (0..200).map(|_| b.next_kind()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = FaultInjector::new(8);
        let seq_c: Vec<FaultKind> = (0..200).map(|_| c.next_kind()).collect();
        assert_ne!(seq_a, seq_c, "different seed must differ");
    }

    #[test]
    fn soak_mix_draws_every_enabled_kind() {
        let mut inj = FaultInjector::new(3);
        for _ in 0..2000 {
            inj.next_kind();
        }
        let counts = inj.injected();
        for kind in [
            FaultKind::Clean,
            FaultKind::CorruptFrame,
            FaultKind::TruncateFrame,
            FaultKind::FlipLlrSigns,
            FaultKind::SaturateLlrs,
            FaultKind::CodeBlockCountLie,
        ] {
            assert!(counts[kind as usize] > 0, "{} never drawn", kind.name());
        }
        assert_eq!(counts[FaultKind::WorkerPanic as usize], 0);
        assert_eq!(counts[FaultKind::DropHarqRetransmission as usize], 0);
        assert_eq!(counts.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn corrupt_frame_touches_only_protected_bytes() {
        let frame: Vec<u8> = (0..100u8).collect();
        let mut inj = FaultInjector::with_mix(5, FaultMix::only(FaultKind::CorruptFrame));
        for _ in 0..100 {
            let kind = inj.next_kind();
            let out = inj.mutate_frame(kind, &frame).unwrap();
            assert_eq!(out.len(), frame.len());
            let diffs: Vec<usize> = (0..frame.len()).filter(|&i| out[i] != frame[i]).collect();
            assert_eq!(diffs.len(), 1, "exactly one byte flips");
            assert!(diffs[0] >= 12, "MAC bytes are unprotected — skip them");
        }
    }

    #[test]
    fn truncate_always_shortens_below_header_stack() {
        let frame = vec![0u8; 100];
        let mut inj = FaultInjector::with_mix(5, FaultMix::only(FaultKind::TruncateFrame));
        for _ in 0..100 {
            let kind = inj.next_kind();
            let out = inj.mutate_frame(kind, &frame).unwrap();
            assert!(out.len() < 42, "must cut below the minimum header stack");
        }
    }

    #[test]
    fn llr_faults_mutate_in_place() {
        let mut inj = FaultInjector::with_mix(9, FaultMix::only(FaultKind::FlipLlrSigns));
        let mut llrs: Vec<Llr> = (1..=64).collect();
        let orig = llrs.clone();
        assert!(inj.mutate_llrs(FaultKind::FlipLlrSigns, &mut llrs));
        assert_ne!(llrs, orig);
        let flipped = llrs.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert_eq!(flipped, 16, "a quarter of the span flips");

        let mut llrs: Vec<Llr> = vec![1; 64];
        assert!(inj.mutate_llrs(FaultKind::SaturateLlrs, &mut llrs));
        assert!(llrs.iter().any(|&l| l == i16::MAX || l == i16::MIN));

        // Non-LLR kinds leave the buffer alone.
        let mut llrs: Vec<Llr> = vec![7; 16];
        assert!(!inj.mutate_llrs(FaultKind::CorruptFrame, &mut llrs));
        assert!(llrs.iter().all(|&l| l == 7));
    }

    #[test]
    #[should_panic(expected = "at least one kind")]
    fn empty_mix_is_rejected() {
        FaultInjector::with_mix(
            1,
            FaultMix {
                weights: [0; FaultKind::COUNT],
            },
        );
    }
}
