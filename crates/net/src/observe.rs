//! Flight-recorder observability: a lock-free per-packet trace ring,
//! a consistent point-in-time metrics snapshot, and per-stage circuit
//! breakers.
//!
//! Production vRAN stacks treat observability as a first-class
//! function: when a TTI deadline is blown at 3 a.m. the operator needs
//! the last few hundred packet traces, not a debugger. Three pieces
//! live here:
//!
//! * [`FlightRecorder`] — a fixed-capacity, power-of-two ring of
//!   seqlock-protected trace slots. Writers claim a ticket with one
//!   relaxed `fetch_add` and write four packed words; there is **no
//!   allocation and no lock on the hot path**, so the recorder can stay
//!   attached to every pipeline, stage graph and runner worker in a
//!   release build (the `observe_overhead` bench pins the cost under
//!   2 % of the stage-graph wall-clock suite). [`FlightRecorder::
//!   dump_last`] snapshots the newest `n` events for post-mortem.
//! * [`MetricsSnapshot`] — a consistent copy of every counter and
//!   histogram across the pipeline / runner / stage-graph registries,
//!   pollable mid-run from another thread and serializable to the
//!   first-party [`Json`]. Consistency contract: a snapshot never
//!   observes a histogram whose bucket sum exceeds its count, and two
//!   sequential snapshots are monotone in every counter (see
//!   [`crate::metrics::Histogram::snapshot_consistent`]).
//! * [`CircuitBreaker`] — the per-stage trip/half-open/reset state
//!   machine the pipeline wires in front of its equalizer, demapper
//!   and decoder stages (see [`crate::pipeline::PipelineConfig::
//!   breakers`]): after `trip_after` consecutive stage errors the
//!   breaker opens and fast-fails packets for `cooldown_packets`
//!   admissions, then lets a single half-open probe through; a probe
//!   success closes it again.

use crate::error::ErrorCategory;
use crate::metrics::{PipelineMetrics, RunnerMetrics, Stage, StageGraphMetrics};
use crate::stagegraph::FlushReason;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use vran_util::Json;

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// What one flight-recorder slot describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A packet completed the uplink pipeline successfully.
    PacketDone = 0,
    /// A packet terminated with a typed [`crate::error::PipelineError`]
    /// (the category rides in [`TraceEvent::category`]).
    PacketError = 1,
    /// A stage-graph decode pool launched (`aux` = blocks launched,
    /// `k` = pool K, `flush_reason` = why).
    BatchFlush = 2,
    /// A runner worker restarted after an isolated panic (`ue` = worker
    /// index, `aux` = rebuild generation).
    WorkerRestart = 3,
}

impl TraceKind {
    fn from_u8(v: u8) -> TraceKind {
        match v {
            0 => TraceKind::PacketDone,
            1 => TraceKind::PacketError,
            2 => TraceKind::BatchFlush,
            _ => TraceKind::WorkerRestart,
        }
    }

    /// Snake-case name for dumps.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::PacketDone => "packet_done",
            TraceKind::PacketError => "packet_error",
            TraceKind::BatchFlush => "batch_flush",
            TraceKind::WorkerRestart => "worker_restart",
        }
    }
}

/// Sentinel for "no error category" in the packed representation.
const NO_CATEGORY: u8 = 0xFF;
/// Sentinel for "no flush reason".
const NO_REASON: u8 = 0xFF;

/// One compact per-packet (or per-batch / per-restart) trace record.
/// 32 bytes packed; every field is optional context except `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Event kind discriminant (see [`TraceKind`]).
    pub kind: u8,
    /// Effective decoder backend (0 = native, 1 = scalar, 2 = native
    /// degraded to scalar by the ladder); unused for non-packet events.
    pub backend: u8,
    /// Flush reason discriminant for [`TraceKind::BatchFlush`]
    /// (0 = lanes full, 1 = deadline, 2 = drain, 0xFF = n/a).
    pub flush_reason: u8,
    /// Terminal [`ErrorCategory`] discriminant for
    /// [`TraceKind::PacketError`] (0xFF = none).
    pub category: u8,
    /// UE id (packet events), worker index (restarts).
    pub ue: u16,
    /// First code-block K (packet events) or pool K (batch flushes).
    pub k: u16,
    /// Batch launch ordinal (flush events).
    pub batch_id: u32,
    /// Per-pipeline packet ordinal (packet events).
    pub seq: u32,
    /// Receive-path nanoseconds before decode (encode + transport +
    /// demap + arrangement).
    pub prepare_ns: u32,
    /// Decode-stage nanoseconds.
    pub decode_ns: u32,
    /// Whole-packet nanoseconds.
    pub total_ns: u32,
    /// Kind-specific extra (blocks launched, restart generation).
    pub aux: u32,
}

impl TraceEvent {
    /// Event for a terminal packet outcome.
    #[allow(clippy::too_many_arguments)]
    pub fn packet(
        ue: u64,
        seq: u64,
        k: usize,
        backend: u8,
        category: Option<ErrorCategory>,
        prepare_ns: u64,
        decode_ns: u64,
        total_ns: u64,
    ) -> Self {
        Self {
            kind: match category {
                None => TraceKind::PacketDone as u8,
                Some(_) => TraceKind::PacketError as u8,
            },
            backend,
            flush_reason: NO_REASON,
            category: category.map(|c| c as u8).unwrap_or(NO_CATEGORY),
            ue: ue as u16,
            k: k as u16,
            batch_id: 0,
            seq: seq as u32,
            prepare_ns: prepare_ns.min(u32::MAX as u64) as u32,
            decode_ns: decode_ns.min(u32::MAX as u64) as u32,
            total_ns: total_ns.min(u32::MAX as u64) as u32,
            aux: 0,
        }
    }

    /// Event for a stage-graph pool launch.
    pub fn flush(batch_id: u64, k: usize, blocks: usize, reason: FlushReason) -> Self {
        Self {
            kind: TraceKind::BatchFlush as u8,
            backend: 0,
            flush_reason: match reason {
                FlushReason::LanesFull => 0,
                FlushReason::Deadline => 1,
                FlushReason::Drain => 2,
            },
            category: NO_CATEGORY,
            ue: 0,
            k: k as u16,
            batch_id: batch_id as u32,
            seq: 0,
            prepare_ns: 0,
            decode_ns: 0,
            total_ns: 0,
            aux: blocks as u32,
        }
    }

    /// Event for an isolated worker restart.
    pub fn restart(worker: usize, generation: u64) -> Self {
        Self {
            kind: TraceKind::WorkerRestart as u8,
            backend: 0,
            flush_reason: NO_REASON,
            category: NO_CATEGORY,
            ue: worker as u16,
            k: 0,
            batch_id: 0,
            seq: 0,
            prepare_ns: 0,
            decode_ns: 0,
            total_ns: 0,
            aux: generation as u32,
        }
    }

    /// Decoded event kind.
    pub fn trace_kind(&self) -> TraceKind {
        TraceKind::from_u8(self.kind)
    }

    /// Terminal error category, when this is a `PacketError` event.
    pub fn error_category(&self) -> Option<ErrorCategory> {
        ErrorCategory::ALL.get(self.category as usize).copied()
    }

    fn pack(&self) -> [u64; 4] {
        let w0 = self.kind as u64
            | (self.backend as u64) << 8
            | (self.flush_reason as u64) << 16
            | (self.category as u64) << 24
            | (self.ue as u64) << 32
            | (self.k as u64) << 48;
        let w1 = self.batch_id as u64 | (self.seq as u64) << 32;
        let w2 = self.prepare_ns as u64 | (self.decode_ns as u64) << 32;
        let w3 = self.total_ns as u64 | (self.aux as u64) << 32;
        [w0, w1, w2, w3]
    }

    fn unpack(w: [u64; 4]) -> Self {
        Self {
            kind: w[0] as u8,
            backend: (w[0] >> 8) as u8,
            flush_reason: (w[0] >> 16) as u8,
            category: (w[0] >> 24) as u8,
            ue: (w[0] >> 32) as u16,
            k: (w[0] >> 48) as u16,
            batch_id: w[1] as u32,
            seq: (w[1] >> 32) as u32,
            prepare_ns: w[2] as u32,
            decode_ns: (w[2] >> 32) as u32,
            total_ns: w[3] as u32,
            aux: (w[3] >> 32) as u32,
        }
    }

    /// JSON object for dumps.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind".to_string(), Json::str(self.trace_kind().name())),
            ("ue".to_string(), Json::Num(self.ue as f64)),
            ("k".to_string(), Json::Num(self.k as f64)),
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("backend".to_string(), Json::Num(self.backend as f64)),
        ];
        if let Some(c) = self.error_category() {
            pairs.push(("category".to_string(), Json::str(c.name())));
        }
        if self.trace_kind() == TraceKind::BatchFlush {
            pairs.push(("batch_id".to_string(), Json::Num(self.batch_id as f64)));
            pairs.push((
                "flush_reason".to_string(),
                Json::Num(self.flush_reason as f64),
            ));
        }
        pairs.push(("prepare_ns".to_string(), Json::Num(self.prepare_ns as f64)));
        pairs.push(("decode_ns".to_string(), Json::Num(self.decode_ns as f64)));
        pairs.push(("total_ns".to_string(), Json::Num(self.total_ns as f64)));
        pairs.push(("aux".to_string(), Json::Num(self.aux as f64)));
        Json::Obj(pairs)
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One seqlock-protected ring slot. `seq` holds `2·ticket + 1` while a
/// writer is mid-flight and `2·ticket + 2` once the slot's data words
/// are published; readers re-check `seq` after reading the data and
/// skip any slot whose value moved (torn or overwritten).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    data: [AtomicU64; 4],
}

/// Lock-free fixed-capacity flight recorder: the last `capacity` trace
/// events, overwritten in ring order. Writing is wait-free (one
/// `fetch_add` plus five relaxed/release stores, no allocation);
/// reading ([`Self::dump_last`]) is a best-effort snapshot that skips
/// slots a concurrent writer is touching.
///
/// Multiple threads may record concurrently. A reader can only be
/// fooled into accepting mixed data if one writer stalls mid-write for
/// a full ring lap (≥ `capacity` events) while another laps it — the
/// seqlock ticket check rejects every shorter interleaving.
#[derive(Debug)]
pub struct FlightRecorder {
    mask: u64,
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

impl FlightRecorder {
    /// Recorder holding the last `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Self {
            mask: cap as u64 - 1,
            cursor: AtomicU64::new(0),
            slots,
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded since construction (monotone; may exceed
    /// capacity).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Record one event. Hot-path: no allocation, no lock.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let words = ev.pack();
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        for (d, w) in slot.data.iter().zip(words) {
            d.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Snapshot the newest `n` events, oldest first. Slots that a
    /// concurrent writer is mid-way through (or has already lapped) are
    /// skipped, so the result may hold fewer than `n` events.
    pub fn dump_last(&self, n: usize) -> Vec<TraceEvent> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let span = (n as u64).min(self.slots.len() as u64).min(cursor);
        let mut out = Vec::with_capacity(span as usize);
        for ticket in (cursor - span)..cursor {
            let slot = &self.slots[(ticket & self.mask) as usize];
            let want = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let words = std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue; // torn by a concurrent lap
            }
            out.push(TraceEvent::unpack(words));
        }
        out
    }

    /// JSON dump of the newest `n` events (the CI failure artifact).
    pub fn dump_json(&self, n: usize) -> Json {
        Json::Obj(vec![
            ("recorded".to_string(), Json::Num(self.recorded() as f64)),
            ("capacity".to_string(), Json::Num(self.capacity() as f64)),
            (
                "events".to_string(),
                Json::Arr(self.dump_last(n).iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Circuit breakers
// ---------------------------------------------------------------------------

/// The three receive-path stages the pipeline protects with breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum BreakerStage {
    /// OFDM demodulation / channel equalization — trips on sustained
    /// [`ErrorCategory::DeadlineExceeded`] (the budget gate sits around
    /// the channel-processing phase).
    Equalizer,
    /// Soft demap / frame handling — trips on sustained
    /// [`ErrorCategory::MalformedFrame`] /
    /// [`ErrorCategory::SegmentationOverflow`].
    Demapper,
    /// Turbo decode — trips on sustained
    /// [`ErrorCategory::CrcMismatch`] /
    /// [`ErrorCategory::DecoderDiverged`].
    Decoder,
}

impl BreakerStage {
    /// Number of protected stages.
    pub const COUNT: usize = 3;
    /// All stages in declaration order.
    pub const ALL: [BreakerStage; BreakerStage::COUNT] = [
        BreakerStage::Equalizer,
        BreakerStage::Demapper,
        BreakerStage::Decoder,
    ];

    /// Snake-case name for metrics and dumps.
    pub fn name(self) -> &'static str {
        match self {
            BreakerStage::Equalizer => "equalizer",
            BreakerStage::Demapper => "demapper",
            BreakerStage::Decoder => "decoder",
        }
    }

    /// The pipeline [`Stage`] this breaker fronts.
    pub fn pipeline_stage(self) -> Stage {
        match self {
            BreakerStage::Equalizer => Stage::Ofdm,
            BreakerStage::Demapper => Stage::Modulate,
            BreakerStage::Decoder => Stage::Decode,
        }
    }

    /// Which breaker a terminal error category feeds.
    pub fn for_category(category: ErrorCategory) -> BreakerStage {
        match category {
            ErrorCategory::DeadlineExceeded => BreakerStage::Equalizer,
            ErrorCategory::MalformedFrame | ErrorCategory::SegmentationOverflow => {
                BreakerStage::Demapper
            }
            ErrorCategory::CrcMismatch | ErrorCategory::DecoderDiverged => BreakerStage::Decoder,
        }
    }
}

/// Circuit-breaker tuning, carried (optionally) by
/// [`crate::pipeline::PipelineConfig::breakers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive stage errors before the breaker opens.
    pub trip_after: u32,
    /// Packets fast-failed while open before a half-open probe is let
    /// through. Counted in packets, not wall-clock, so chaos runs stay
    /// deterministic.
    pub cooldown_packets: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 8,
            cooldown_packets: 16,
        }
    }
}

/// Breaker state, in the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, consecutive errors are counted.
    Closed,
    /// Tripped: packets fast-fail for the rest of the cooldown.
    Open,
    /// Cooldown expired: the next packet is a probe; its outcome
    /// decides between `Closed` and re-`Open`.
    HalfOpen,
}

/// One per-stage circuit breaker. Single-threaded interior (`&mut
/// self`), like the pipeline hot state it lives next to; trip/reset
/// totals are exported through [`PipelineMetrics`].
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_left: u32,
    trips: u64,
    resets: u64,
}

impl CircuitBreaker {
    /// Closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_left: 0,
            trips: 0,
            resets: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a half-open probe closed this breaker again.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Admission gate: returns `true` when the packet must fast-fail
    /// (breaker open, cooldown still running — one cooldown tick is
    /// consumed). When the cooldown expires the breaker moves to
    /// half-open and lets the next packet through as a probe.
    pub fn should_fast_fail(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => false,
            BreakerState::Open => {
                if self.cooldown_left > 0 {
                    self.cooldown_left -= 1;
                    true
                } else {
                    self.state = BreakerState::HalfOpen;
                    false
                }
            }
        }
    }

    /// Feed one real (non-fast-failed) stage outcome. Returns `true`
    /// when this call changed the breaker's state (a trip or a reset).
    pub fn on_outcome(&mut self, ok: bool) -> bool {
        if ok {
            self.consecutive_failures = 0;
            if self.state == BreakerState::HalfOpen {
                self.state = BreakerState::Closed;
                self.resets += 1;
                return true;
            }
            false
        } else {
            match self.state {
                BreakerState::HalfOpen => {
                    // Probe failed: straight back to open.
                    self.trip();
                    true
                }
                BreakerState::Closed => {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.cfg.trip_after {
                        self.trip();
                        true
                    } else {
                        false
                    }
                }
                BreakerState::Open => false,
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.cooldown_left = self.cfg.cooldown_packets;
        self.trips += 1;
    }
}

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

/// A consistent copy of one histogram: raw buckets plus count/sum,
/// captured so that `buckets.sum() <= count` always holds (see
/// [`crate::metrics::Histogram::snapshot_consistent`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Snapshot key (e.g. `pipeline.stage.decode`).
    pub name: String,
    /// Inclusive bucket upper bounds (the overflow bucket has none).
    pub edges: Vec<u64>,
    /// Per-bucket counts, `edges.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    fn capture(name: &str, h: &crate::metrics::Histogram) -> Self {
        let (buckets, count, sum) = h.snapshot_consistent();
        Self {
            name: name.to_string(),
            edges: h.edges().to_vec(),
            buckets,
            count,
            sum,
        }
    }

    /// Sum of the captured buckets (≤ [`Self::count`] by construction).
    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket holding the `q`-quantile observation —
    /// same bucket-resolution estimate as
    /// [`crate::metrics::Histogram::quantile_upper`], but over the
    /// captured copy (0 when empty, `u64::MAX` in the overflow
    /// bucket).
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return self.edges.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// A point-in-time copy of every counter and histogram across the
/// three instrumented registries, safe to capture from a polling
/// thread while workers are recording. Counter entries reuse each
/// registry's flat snapshot schema under a `pipeline.` / `runner.` /
/// `stagegraph.` prefix.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Flat `name → value` counter/gauge entries.
    pub counters: Vec<(String, f64)>,
    /// Structural histogram copies.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Capture from whichever registries are attached.
    pub fn capture(
        pipeline: Option<&PipelineMetrics>,
        runner: Option<&RunnerMetrics>,
        stagegraph: Option<&StageGraphMetrics>,
    ) -> Self {
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        if let Some(p) = pipeline {
            for (k, v) in p.snapshot() {
                counters.push((format!("pipeline.{k}"), v));
            }
            for s in Stage::ALL {
                histograms.push(HistogramSnapshot::capture(
                    &format!("pipeline.stage.{}", s.name()),
                    p.stage(s),
                ));
            }
            // The fused-ingest share of the arrangement stage gets its
            // own histogram (the `arrange` stage histogram covers both
            // fused and unfused blocks).
            histograms.push(HistogramSnapshot::capture(
                "pipeline.stage.arrange_fused",
                p.arrange_fused(),
            ));
            // Likewise the SIMD front-end kernels: the `demap` stage
            // histogram covers the combined demap+descramble wall time
            // while these break out the per-kernel shares.
            histograms.push(HistogramSnapshot::capture(
                "pipeline.stage.frontend_demap",
                p.frontend_demap(),
            ));
            histograms.push(HistogramSnapshot::capture(
                "pipeline.stage.frontend_descramble",
                p.frontend_descramble(),
            ));
            histograms.push(HistogramSnapshot::capture(
                "pipeline.stage.frontend_crc",
                p.frontend_crc(),
            ));
        }
        if let Some(r) = runner {
            for (k, v) in r.snapshot() {
                counters.push((format!("runner.{k}"), v));
            }
            histograms.push(HistogramSnapshot::capture(
                "runner.ring_occupancy",
                &r.ring_occupancy,
            ));
        }
        if let Some(g) = stagegraph {
            for (k, v) in g.snapshot() {
                counters.push((format!("stagegraph.{k}"), v));
            }
        }
        Self {
            counters,
            histograms,
        }
    }

    /// Look up one counter entry.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Look up one histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialize to the first-party JSON schema benchgate and the CI
    /// artifacts share.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|h| {
                    (
                        h.name.clone(),
                        Json::Obj(vec![
                            (
                                "edges".to_string(),
                                Json::Arr(h.edges.iter().map(|&e| Json::Num(e as f64)).collect()),
                            ),
                            (
                                "buckets".to_string(),
                                Json::Arr(h.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
                            ),
                            ("count".to_string(), Json::Num(h.count as f64)),
                            ("sum".to_string(), Json::Num(h.sum as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_events_round_trip_through_packing() {
        let cases = [
            TraceEvent::packet(
                7,
                42,
                1504,
                2,
                Some(ErrorCategory::DecoderDiverged),
                123_456,
                789_012,
                999_999,
            ),
            TraceEvent::packet(0, 0, 40, 0, None, 1, 2, 3),
            TraceEvent::flush(99, 512, 4, FlushReason::LanesFull),
            TraceEvent::restart(3, 11),
        ];
        for ev in cases {
            assert_eq!(TraceEvent::unpack(ev.pack()), ev, "{ev:?}");
        }
        assert_eq!(cases[0].trace_kind(), TraceKind::PacketError);
        assert_eq!(
            cases[0].error_category(),
            Some(ErrorCategory::DecoderDiverged)
        );
        assert_eq!(cases[1].trace_kind(), TraceKind::PacketDone);
        assert_eq!(cases[1].error_category(), None);
    }

    #[test]
    fn recorder_keeps_the_newest_events_in_order() {
        let rec = FlightRecorder::with_capacity(16);
        for i in 0..40u64 {
            rec.record(TraceEvent::packet(i, i, 40, 0, None, 0, 0, i));
        }
        assert_eq!(rec.recorded(), 40);
        let dump = rec.dump_last(8);
        assert_eq!(dump.len(), 8);
        let totals: Vec<u32> = dump.iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, (32..40).map(|i| i as u32).collect::<Vec<_>>());
        // Asking for more than capacity clamps to the ring.
        assert_eq!(rec.dump_last(1000).len(), 16);
    }

    #[test]
    fn recorder_capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::with_capacity(100).capacity(), 128);
        assert_eq!(FlightRecorder::with_capacity(0).capacity(), 8);
    }

    #[test]
    fn concurrent_writers_never_produce_garbage_dumps() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..5000u64 {
                        rec.record(TraceEvent::packet(t, i, 40, 0, None, 0, 0, t * 10_000 + i));
                    }
                });
            }
            let rec = rec.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    for ev in rec.dump_last(64) {
                        // Every accepted event must be a value some
                        // writer actually wrote.
                        let t = ev.total_ns as u64 / 10_000;
                        let i = ev.total_ns as u64 % 10_000;
                        assert!(t < 4 && i < 5000, "torn event leaked: {ev:?}");
                        assert_eq!(ev.ue, t as u16, "fields from different writers mixed");
                    }
                }
            });
        });
        assert_eq!(rec.recorded(), 20_000);
    }

    #[test]
    fn breaker_trips_half_opens_and_resets() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_packets: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_outcome(false));
        assert!(!b.on_outcome(false));
        assert!(!b.should_fast_fail(), "still closed below the threshold");
        assert!(b.on_outcome(false), "third consecutive error trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Two cooldown packets fast-fail, then a half-open probe.
        assert!(b.should_fast_fail());
        assert!(b.should_fast_fail());
        assert!(!b.should_fast_fail(), "cooldown over: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe failure re-opens immediately.
        assert!(b.on_outcome(false));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // Burn the cooldown again; this probe succeeds and closes.
        assert!(b.should_fast_fail());
        assert!(b.should_fast_fail());
        assert!(!b.should_fast_fail());
        assert!(b.on_outcome(true));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.resets(), 1);
        // A success streak keeps it closed and clears the error count.
        assert!(!b.on_outcome(false));
        assert!(!b.on_outcome(true));
        assert!(!b.on_outcome(false));
        assert!(!b.on_outcome(false));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_stage_classification_covers_every_category() {
        assert_eq!(
            BreakerStage::for_category(ErrorCategory::DeadlineExceeded),
            BreakerStage::Equalizer
        );
        assert_eq!(
            BreakerStage::for_category(ErrorCategory::MalformedFrame),
            BreakerStage::Demapper
        );
        assert_eq!(
            BreakerStage::for_category(ErrorCategory::SegmentationOverflow),
            BreakerStage::Demapper
        );
        assert_eq!(
            BreakerStage::for_category(ErrorCategory::CrcMismatch),
            BreakerStage::Decoder
        );
        assert_eq!(
            BreakerStage::for_category(ErrorCategory::DecoderDiverged),
            BreakerStage::Decoder
        );
        let names: Vec<_> = BreakerStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["equalizer", "demapper", "decoder"]);
    }

    #[test]
    fn snapshot_captures_counters_and_histograms() {
        let p = PipelineMetrics::new(true);
        p.record_stage(Stage::Decode, 512);
        p.record_arrange_fused(128);
        p.record_packet(true, 2, 8);
        let r = RunnerMetrics::new(true, 16);
        r.record_occupancy(3);
        r.record_packet(100);
        let g = StageGraphMetrics::new(true);
        g.record_launch(4);
        let snap = MetricsSnapshot::capture(Some(&p), Some(&r), Some(&g));
        assert_eq!(snap.get("pipeline.packets"), Some(1.0));
        assert_eq!(snap.get("runner.packets"), Some(1.0));
        assert_eq!(snap.get("stagegraph.batch.quad_blocks.count"), Some(4.0));
        let h = snap.histogram("pipeline.stage.decode").expect("captured");
        assert_eq!(h.count, 1);
        assert_eq!(h.bucket_sum(), 1);
        assert!(h.bucket_sum() <= h.count);
        // The fused-ingest share of arrangement rides as its own
        // histogram alongside the per-stage set.
        let f = snap
            .histogram("pipeline.stage.arrange_fused")
            .expect("fused histogram captured");
        assert_eq!(f.count, 1);
        assert!(
            snap.histogram("pipeline.stage.arrange")
                .is_some_and(|h| h.count == 1),
            "fused recording also lands in the arrange stage histogram"
        );
        // JSON flattens into the benchgate namespace.
        let flat = snap.to_json().flatten_numbers();
        assert_eq!(flat.get("counters.pipeline.packets"), Some(&1.0));
        assert_eq!(
            flat.get("histograms.pipeline.stage.decode.count"),
            Some(&1.0)
        );
    }

    #[test]
    fn dump_json_is_parseable() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(TraceEvent::restart(1, 2));
        let text = rec.dump_json(8).to_string_pretty();
        let back = Json::parse(&text).expect("valid json");
        assert_eq!(back.get("recorded"), Some(&Json::Num(1.0)));
    }
}
