//! Downlink pipeline: PDCCH (DCI over the tail-biting convolutional
//! code) followed by PDSCH (the turbo-coded data channel), optionally
//! over a frequency-selective fading channel with pilot-based
//! equalization.
//!
//! The UE side is honest about its information: it decodes the DCI
//! first and takes the data channel's modulation and redundancy
//! version *from the decoded grant*, so a corrupted PDCCH fails the
//! whole subframe exactly as it would on air.

use crate::metrics::{PipelineMetrics, Stage};
use crate::packet::Packet;
use crate::pipeline::{timed, EncoderBackend};
use std::cell::RefCell;
use std::sync::Arc;
use vran_arrange::{ArrangeKernel, Mechanism};
use vran_phy::bits::{extend_bits_from_words, pack_msb, unpack_msb};
use vran_phy::channel::AwgnChannel;
use vran_phy::crc::{best_crc, CrcImpl, CRC24A, CRC24B};
use vran_phy::dci::{conv_encode_streams, llrs_from_streams, viterbi_decode_tb, Dci};
use vran_phy::demap::{best_demap, demap_with};
use vran_phy::equalizer::{Equalizer, FadingChannel};
use vran_phy::llr::TurboLlrs;
use vran_phy::modulation::{Cplx, Modulation};
use vran_phy::rate_match::conv::ConvRateMatcher;
use vran_phy::rate_match::{PackedRateMatcher, RateMatcher};
use vran_phy::scrambler::{
    best_descramble, descramble_llrs, descramble_llrs_with, scramble_bits, scramble_bits_serial,
};
use vran_phy::segmentation::Segmentation;
use vran_phy::turbo::{EncodeScratch, EncoderIsa, PackedTurboEncoder, TurboDecoder, TurboEncoder};
use vran_simd::RegWidth;

/// Downlink configuration.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkConfig {
    /// Arrangement width.
    pub width: RegWidth,
    /// Arrangement mechanism.
    pub mechanism: Mechanism,
    /// PDSCH modulation (PDCCH is always QPSK).
    pub modulation: Modulation,
    /// Transmit-side encoder implementation (bit-exact by
    /// construction; see [`EncoderBackend`]).
    pub encoder_backend: EncoderBackend,
    /// Es/N0 in dB.
    pub snr_db: f32,
    /// Turbo iteration cap.
    pub decoder_iterations: usize,
    /// Use the frequency-selective fading channel + equalizer instead
    /// of flat AWGN.
    pub fading: bool,
    /// Redundancy version signaled in the DCI.
    pub rv: u8,
    /// Channel seed.
    pub seed: u64,
    /// Native SIMD front end (the default): fixed-point max-log
    /// demapping, word-parallel Gold scrambling/descrambling and
    /// table/clmul CRC — same A/B contrast as
    /// [`PipelineConfig::frontend_simd`](crate::pipeline::PipelineConfig::frontend_simd).
    pub frontend_simd: bool,
}

impl Default for DownlinkConfig {
    fn default() -> Self {
        Self {
            width: RegWidth::Sse128,
            mechanism: Mechanism::Baseline,
            modulation: Modulation::Qam16,
            encoder_backend: EncoderBackend::Packed,
            snr_db: 16.0,
            decoder_iterations: 6,
            fading: false,
            rv: 0,
            seed: 1,
            frontend_simd: true,
        }
    }
}

/// Outcome of one downlink subframe.
#[derive(Debug, Clone)]
pub struct DownlinkResult {
    /// PDCCH decoded to the transmitted grant.
    pub dci_ok: bool,
    /// PDSCH decoded and the frame CRC passed.
    pub data_ok: bool,
    /// Code blocks in the transport block.
    pub code_blocks: usize,
    /// Coded PDSCH bits.
    pub coded_bits: usize,
}

/// MCS index → modulation for the simplified grant table.
fn mcs_to_modulation(mcs: u8) -> Modulation {
    match mcs {
        0..=9 => Modulation::Qpsk,
        10..=19 => Modulation::Qam16,
        _ => Modulation::Qam64,
    }
}

fn modulation_to_mcs(m: Modulation) -> u8 {
    match m {
        Modulation::Qpsk => 5,
        Modulation::Qam16 => 15,
        Modulation::Qam64 => 25,
    }
}

/// The downlink pipeline.
#[derive(Debug, Clone)]
pub struct DownlinkPipeline {
    cfg: DownlinkConfig,
    eq: Equalizer,
    metrics: Option<Arc<PipelineMetrics>>,
    hot: RefCell<EncodeHot>,
}

/// Per-pipeline transmit-side hot state: packed encoders and rate
/// matchers keyed by size, plus reusable word buffers — the
/// steady-state PDSCH encode loop performs no heap allocation.
#[derive(Debug, Clone, Default)]
struct EncodeHot {
    /// Packed encoders, keyed by block size K.
    encs: Vec<PackedTurboEncoder>,
    /// Packed rate matchers, keyed by per-stream length d.
    rms: Vec<(usize, PackedRateMatcher)>,
    /// Packed-word encode scratch shared across block sizes.
    scratch: EncodeScratch,
    /// Circular-buffer words (rate-matcher input).
    wbuf: Vec<u64>,
    /// Rate-matched output words.
    ebuf: Vec<u64>,
}

impl EncodeHot {
    /// Index of the cached packed encoder for block size `k`.
    fn enc_index(&mut self, k: usize) -> usize {
        match self.encs.iter().position(|e| e.k() == k) {
            Some(i) => i,
            None => {
                self.encs.push(PackedTurboEncoder::new(k));
                self.encs.len() - 1
            }
        }
    }

    /// Index of the cached packed rate matcher for stream length `d`.
    fn rm_index(&mut self, d: usize) -> usize {
        match self.rms.iter().position(|(rd, _)| *rd == d) {
            Some(i) => i,
            None => {
                self.rms.push((d, PackedRateMatcher::new(d)));
                self.rms.len() - 1
            }
        }
    }
}

/// Subcarriers per resource grid (5 MHz).
const GRID: usize = 300;

impl DownlinkPipeline {
    /// New pipeline.
    pub fn new(cfg: DownlinkConfig) -> Self {
        Self {
            cfg,
            eq: Equalizer::lte(),
            metrics: None,
            hot: RefCell::default(),
        }
    }

    /// New pipeline recording into `metrics`.
    pub fn with_metrics(cfg: DownlinkConfig, metrics: Arc<PipelineMetrics>) -> Self {
        Self {
            metrics: Some(metrics),
            ..Self::new(cfg)
        }
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_deref()
    }

    /// Turbo-encode + rate-match every code block through the
    /// configured [`EncoderBackend`]; returns the concatenated coded
    /// bits and the per-block rate-match lengths.
    fn encode_blocks(&self, blocks: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
        let cfg = &self.cfg;
        let m = self.metrics.as_deref().filter(|m| m.is_enabled());
        let mut coded = Vec::new();
        let mut block_e = Vec::with_capacity(blocks.len());
        let hot = &mut *self.hot.borrow_mut();
        if let Some(m) = m {
            if cfg.encoder_backend == EncoderBackend::Packed {
                if EncoderIsa::best() == EncoderIsa::Word64 {
                    // Packed was requested but the host (or the test
                    // ISA ceiling) offers no SIMD: the portable u64
                    // kernel still runs 64 trellis steps per word, but
                    // record the degradation for observability.
                    m.packed_encoder_fallbacks.inc();
                }
                if EncoderIsa::best() < EncoderIsa::Avx512 {
                    // Encoding runs below the widest (zmm) tier — the
                    // deployment lost its 512-bit throughput.
                    m.zmm_encoder_fallbacks.inc();
                }
            }
        }
        for blk in blocks {
            let k = blk.len();
            let e = (2 * k).next_multiple_of(cfg.modulation.bits_per_symbol() * 2);
            match cfg.encoder_backend {
                EncoderBackend::Scalar => {
                    let enc = TurboEncoder::new(k);
                    let cw = timed(m, Stage::Encode, || enc.encode(blk));
                    let rm = RateMatcher::new(k + 4);
                    let d = cw.to_dstreams();
                    timed(m, Stage::RateMatch, || {
                        coded.extend(rm.rate_match(&d, e, cfg.rv as usize))
                    });
                }
                EncoderBackend::Packed => {
                    let ei = hot.enc_index(k);
                    let rmi = hot.rm_index(k + 4);
                    timed(m, Stage::Encode, || {
                        hot.encs[ei].encode_dstreams_into(blk, &mut hot.scratch)
                    });
                    timed(m, Stage::RateMatch, || {
                        let rm = &hot.rms[rmi].1;
                        rm.pack_circular_into(hot.scratch.dstream_words(), &mut hot.wbuf)
                            .expect("scratch streams sized to d");
                        rm.try_rate_match_packed_into(
                            &hot.wbuf,
                            e,
                            cfg.rv as usize & 3,
                            &mut hot.ebuf,
                        )
                        .expect("rv masked to 0..4");
                        extend_bits_from_words(&hot.ebuf, e, &mut coded);
                    });
                }
            }
            block_e.push(e);
        }
        (coded, block_e)
    }

    /// Transmit symbols over the configured channel and return
    /// equalized data symbols plus LLR weights.
    fn channel_pass(&self, data: &[Cplx], seed: u64) -> (Vec<Cplx>, f32) {
        if self.cfg.fading {
            let mut out = Vec::with_capacity(data.len());
            let n_pilots = self.eq.pilot_positions(GRID).len();
            let per_grid = GRID - n_pilots;
            let mut chan = FadingChannel::new(GRID, self.cfg.snr_db, 3, seed);
            for chunk in data.chunks(per_grid) {
                let mut d = chunk.to_vec();
                d.resize(per_grid, Cplx::default());
                let (grid, _) = self.eq.insert_pilots(&d, GRID);
                let rx = chan.apply(&grid);
                let h = self.eq.estimate(&rx);
                let (eq_syms, _w) = self.eq.equalize(&rx, &h);
                out.extend_from_slice(&eq_syms[..chunk.len().min(eq_syms.len())]);
            }
            out.truncate(data.len());
            (out, 1.0)
        } else {
            let mut chan = AwgnChannel::new(self.cfg.snr_db, seed);
            let rx = chan.apply(data);
            let scale = (chan.llr_scale() / 8.0).clamp(0.25, 16.0);
            (rx, scale)
        }
    }

    /// Process one subframe carrying `packet` as its transport block.
    pub fn process(&self, packet: &Packet) -> DownlinkResult {
        let cfg = &self.cfg;

        // ---- eNB: PDCCH (conv code + §5.1.4.2 rate matching at
        // aggregation level 2 = 144 coded bits, QPSK) ----
        const PDCCH_E: usize = 144;
        let grant = Dci {
            rb_assignment: 25,
            mcs: modulation_to_mcs(cfg.modulation),
            harq: 0,
            ndi: true,
            rv: cfg.rv & 3,
        };
        let dci_streams = conv_encode_streams(&grant.to_bits());
        let crm = ConvRateMatcher::new(Dci::BITS);
        let dci_coded = crm.rate_match(&dci_streams, PDCCH_E);
        let pdcch_syms = Modulation::Qpsk.modulate(&dci_coded);

        // ---- eNB: PDSCH ----
        let crc_imp = if cfg.frontend_simd {
            best_crc()
        } else {
            CrcImpl::BitSerial
        };
        let frame_bits = unpack_msb(&packet.frame, packet.frame.len() * 8);
        let tb = CRC24A.attach_with(crc_imp, &frame_bits);
        let seg = Segmentation::plan(tb.len());
        let blocks = seg.segment(&tb);
        let (coded, block_e) = self.encode_blocks(&blocks);
        let bps = cfg.modulation.bits_per_symbol();
        let padded = coded.len().next_multiple_of(bps);
        let mut tx_bits = coded;
        tx_bits.resize(padded, 0);
        if cfg.frontend_simd {
            scramble_bits(&mut tx_bits, 0xC0FFEE & 0x7FFF_FFFF);
        } else {
            scramble_bits_serial(&mut tx_bits, 0xC0FFEE & 0x7FFF_FFFF);
        }
        let pdsch_syms = cfg.modulation.modulate(&tx_bits);

        // ---- channel (control then data, separate passes) ----
        let (rx_pdcch, ctrl_scale) = self.channel_pass(&pdcch_syms, cfg.seed);
        let (rx_pdsch, data_scale) = self.channel_pass(&pdsch_syms, cfg.seed ^ 0xD5D5);

        // ---- UE: decode the grant first (de-rate-match, then the
        // tail-biting Viterbi; the 144→66 repetition combines) ----
        let dci_llrs = if cfg.frontend_simd {
            demap_with(best_demap(), Modulation::Qpsk, &rx_pdcch, ctrl_scale)
        } else {
            Modulation::Qpsk.demodulate(&rx_pdcch, ctrl_scale)
        };
        let dci_d = crm.de_rate_match(&dci_llrs[..PDCCH_E]);
        let rx_bits = viterbi_decode_tb(&llrs_from_streams(&dci_d), Dci::BITS);
        let rx_grant = Dci::from_bits(&rx_bits);
        let dci_ok = rx_grant == grant;
        if !dci_ok {
            return DownlinkResult {
                dci_ok,
                data_ok: false,
                code_blocks: blocks.len(),
                coded_bits: padded,
            };
        }

        // ---- UE: PDSCH with parameters FROM THE GRANT ----
        let ue_mod = mcs_to_modulation(rx_grant.mcs);
        let ue_rv = rx_grant.rv as usize;
        let mut llrs = if cfg.frontend_simd {
            demap_with(best_demap(), ue_mod, &rx_pdsch, data_scale)
        } else {
            ue_mod.demodulate(&rx_pdsch, data_scale)
        };
        llrs.truncate(padded);
        if cfg.frontend_simd {
            descramble_llrs_with(best_descramble(), &mut llrs, 0xC0FFEE & 0x7FFF_FFFF);
        } else {
            descramble_llrs(&mut llrs, 0xC0FFEE & 0x7FFF_FFFF);
        }

        let mut decoded = Vec::new();
        let mut pos = 0;
        let mut all_ok = true;
        for (i, blk) in blocks.iter().enumerate() {
            let k = blk.len();
            let e = block_e[i];
            if pos + e > llrs.len() {
                all_ok = false;
                break;
            }
            let rm = RateMatcher::new(k + 4);
            let d = rm.de_rate_match(&llrs[pos..pos + e], ue_rv);
            pos += e;
            let turbo_in = TurboLlrs::from_dstreams(&d, k);
            // arrangement under test, as in the uplink
            let kern = ArrangeKernel::new(cfg.width, cfg.mechanism);
            let (streams, _) = kern.arrange(&turbo_in.to_interleaved(), false);
            let streams = kern.depermute(&streams);
            let input = TurboLlrs {
                k,
                streams,
                tails: turbo_in.tails,
            };
            let dec = TurboDecoder::new(k, cfg.decoder_iterations);
            let out = if blocks.len() > 1 {
                let o = dec.decode_with_crc(&input, &CRC24B);
                if o.crc_ok != Some(true) {
                    all_ok = false;
                }
                o
            } else {
                dec.decode(&input)
            };
            decoded.push(out.bits);
        }

        let data_ok = all_ok
            && decoded.len() == blocks.len()
            && seg
                .desegment(&decoded)
                .and_then(|tb_bits| {
                    CRC24A
                        .check_with(crc_imp, &tb_bits)
                        .map(|p| pack_msb(p) == packet.frame.to_vec())
                })
                .unwrap_or(false);

        DownlinkResult {
            dci_ok,
            data_ok,
            code_blocks: blocks.len(),
            coded_bits: padded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, Transport};
    use vran_arrange::ApcmVariant;

    fn packet(size: usize) -> Packet {
        PacketBuilder::new(80, 443)
            .build(Transport::Udp, size)
            .unwrap()
    }

    #[test]
    fn awgn_downlink_closes_the_loop() {
        let cfg = DownlinkConfig {
            snr_db: 25.0,
            ..Default::default()
        };
        let r = DownlinkPipeline::new(cfg).process(&packet(256));
        assert!(r.dci_ok, "{r:?}");
        assert!(r.data_ok, "{r:?}");
    }

    #[test]
    fn fading_downlink_closes_the_loop_with_equalization() {
        let cfg = DownlinkConfig {
            fading: true,
            snr_db: 24.0,
            modulation: Modulation::Qpsk,
            decoder_iterations: 8,
            ..Default::default()
        };
        let r = DownlinkPipeline::new(cfg).process(&packet(200));
        assert!(r.dci_ok, "{r:?}");
        assert!(r.data_ok, "equalized fading downlink must decode: {r:?}");
    }

    #[test]
    fn grant_signals_modulation_and_rv() {
        // 64-QAM + rv 2 must round-trip purely via the decoded DCI.
        let cfg = DownlinkConfig {
            modulation: Modulation::Qam64,
            rv: 2,
            snr_db: 26.0,
            ..Default::default()
        };
        let r = DownlinkPipeline::new(cfg).process(&packet(512));
        assert!(r.dci_ok && r.data_ok, "{r:?}");
    }

    #[test]
    fn destroyed_control_channel_fails_the_subframe() {
        let cfg = DownlinkConfig {
            snr_db: -12.0,
            decoder_iterations: 2,
            ..Default::default()
        };
        let r = DownlinkPipeline::new(cfg).process(&packet(128));
        assert!(!r.data_ok, "data must not pass without a grant: {r:?}");
    }

    #[test]
    fn mechanism_transparent_on_downlink_too() {
        let mut outcomes = Vec::new();
        for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
            let cfg = DownlinkConfig {
                mechanism: mech,
                snr_db: 14.0,
                ..Default::default()
            };
            let r = DownlinkPipeline::new(cfg).process(&packet(700));
            outcomes.push((r.dci_ok, r.data_ok, r.code_blocks));
        }
        assert_eq!(outcomes[0], outcomes[1]);
    }

    #[test]
    fn packed_and_scalar_downlink_backends_agree() {
        // Same packet, same channel seed: the packed fast path is
        // bit-exact, so every observable field matches the scalar
        // reference — including the noise realization, because the
        // channel sees identical coded bits.
        for (size, rv) in [(256usize, 0u8), (700, 2)] {
            let outcomes: Vec<_> = [EncoderBackend::Scalar, EncoderBackend::Packed]
                .into_iter()
                .map(|encoder_backend| {
                    let cfg = DownlinkConfig {
                        snr_db: 25.0,
                        rv,
                        encoder_backend,
                        ..Default::default()
                    };
                    let r = DownlinkPipeline::new(cfg).process(&packet(size));
                    (r.dci_ok, r.data_ok, r.code_blocks, r.coded_bits)
                })
                .collect();
            assert_eq!(outcomes[0], outcomes[1], "size={size} rv={rv}");
            assert!(outcomes[0].1, "size={size} rv={rv}: {outcomes:?}");
        }
    }

    #[test]
    fn downlink_hot_loop_reuses_encode_scratch() {
        let cfg = DownlinkConfig {
            snr_db: 25.0,
            ..Default::default()
        };
        let pipe = DownlinkPipeline::new(cfg);
        let p = packet(256);
        for _ in 0..4 {
            assert!(pipe.process(&p).data_ok);
        }
        let hot = pipe.hot.borrow();
        assert!(hot.scratch.allocations() > 0);
        assert!(
            hot.scratch.reuses() >= 3,
            "steady-state encodes must reuse scratch: allocs={} reuses={}",
            hot.scratch.allocations(),
            hot.scratch.reuses()
        );
    }

    #[test]
    fn mcs_table_round_trips() {
        for m in Modulation::ALL {
            assert_eq!(mcs_to_modulation(modulation_to_mcs(m)), m);
        }
    }
}
