//! eNB MAC scheduler: per-subframe resource-block allocation across
//! UEs with proportional-fair metric and per-UE link adaptation.
//!
//! The paper's Figure 1 places the MAC scheduler on the eNB's critical
//! path (and its related-work section cites GPU-accelerated PF
//! scheduling); this module provides the functional substrate: a cell
//! with `NUM_RBS` resource blocks per 1 ms subframe, UEs with
//! independently fading channels, PF ("highest instantaneous-to-average
//! ratio") allocation, and AMC via [`crate::amc`].

use crate::amc::{select_mcs, McsEntry};
use vran_util::rng::SmallRng;

/// Resource blocks per subframe at 5 MHz.
pub const NUM_RBS: usize = 25;
/// Information bits one RB carries per bit-per-symbol unit (12
/// subcarriers × 14 symbols, minus reference-signal overhead ≈ 150 RE).
pub const RE_PER_RB: f64 = 150.0;

/// One UE's scheduling state.
#[derive(Debug, Clone)]
pub struct UeContext {
    /// Identifier.
    pub id: u16,
    /// Long-term average SNR (dB) of this UE's channel.
    pub mean_snr_db: f32,
    /// Exponentially averaged served throughput (bits/subframe).
    pub avg_rate: f64,
    /// Total bits served.
    pub served_bits: u64,
    /// Subframes in which the UE was scheduled.
    pub scheduled_count: u64,
}

impl UeContext {
    /// New UE at the given average channel quality.
    pub fn new(id: u16, mean_snr_db: f32) -> Self {
        Self {
            id,
            mean_snr_db,
            avg_rate: 1.0,
            served_bits: 0,
            scheduled_count: 0,
        }
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict round robin, channel-blind.
    RoundRobin,
    /// Proportional fair: maximize instantaneous/average rate.
    ProportionalFair,
    /// Max-C/I: always the best instantaneous channel (throughput-
    /// optimal, starves cell-edge UEs).
    MaxCi,
}

/// One subframe's outcome.
#[derive(Debug, Clone)]
pub struct SubframeResult {
    /// Which UE won the subframe.
    pub ue: u16,
    /// Operating point used.
    pub mcs: Option<McsEntry>,
    /// Bits served (0 when no MCS was feasible).
    pub bits: u64,
}

/// The cell scheduler.
#[derive(Debug)]
pub struct CellScheduler {
    ues: Vec<UeContext>,
    policy: Policy,
    rng: SmallRng,
    rr_next: usize,
    /// PF averaging window (subframes).
    window: f64,
    /// Outer-loop link-adaptation offset applied to the instantaneous
    /// SNR before MCS selection (see [`crate::amc::OuterLoop`]).
    snr_offset_db: f32,
}

impl CellScheduler {
    /// New cell with the given UEs.
    pub fn new(ues: Vec<UeContext>, policy: Policy, seed: u64) -> Self {
        assert!(!ues.is_empty());
        Self {
            ues,
            policy,
            rng: SmallRng::seed_from_u64(seed),
            rr_next: 0,
            window: 100.0,
            snr_offset_db: 0.0,
        }
    }

    /// The UE table.
    pub fn ues(&self) -> &[UeContext] {
        &self.ues
    }

    /// Set the outer-loop link-adaptation offset (dB) applied to every
    /// UE's instantaneous SNR before MCS selection. Fed by
    /// [`crate::amc::OuterLoop`] from decode outcomes: sustained HARQ
    /// failures push it negative, backing the cell off to more robust
    /// operating points.
    pub fn set_snr_offset_db(&mut self, offset_db: f32) {
        self.snr_offset_db = offset_db;
    }

    /// Rayleigh-ish instantaneous SNR draw around the UE's mean
    /// (log-normal shadowing, ±~6 dB swings).
    fn instantaneous_snr(&mut self, ue: usize) -> f32 {
        let g = self.rng.gauss_f32();
        self.ues[ue].mean_snr_db + 3.0 * g
    }

    /// Bits this UE would get this subframe at `snr` (whole-subframe
    /// allocation — single-winner TDM keeps the model crisp).
    fn rate_at(snr: f32) -> (Option<McsEntry>, u64) {
        match select_mcs(snr) {
            Some(m) => {
                let bits = (NUM_RBS as f64 * RE_PER_RB * m.bits_per_symbol()) as u64;
                (Some(m), bits)
            }
            None => (None, 0),
        }
    }

    /// Run one subframe: draw channels, pick a winner, serve it.
    pub fn tick(&mut self) -> SubframeResult {
        let all = vec![true; self.ues.len()];
        self.tick_filtered(&all).expect("all UEs eligible")
    }

    /// [`tick`](Self::tick) restricted to eligible UEs — the cell-scale
    /// workload marks only backlogged UEs eligible, as an operational
    /// scheduler would. Channel draws happen for every UE regardless
    /// (the RNG stream does not depend on eligibility), PF averages
    /// decay for every UE, and `None` is returned when no UE is
    /// eligible (an idle subframe).
    pub fn tick_filtered(&mut self, eligible: &[bool]) -> Option<SubframeResult> {
        let n = self.ues.len();
        assert_eq!(eligible.len(), n, "one eligibility flag per UE");
        let snrs: Vec<f32> = (0..n)
            .map(|u| self.instantaneous_snr(u) + self.snr_offset_db)
            .collect();
        let rates: Vec<u64> = snrs.iter().map(|&s| Self::rate_at(s).1).collect();

        let winner = match self.policy {
            Policy::RoundRobin => {
                let w = (0..n)
                    .map(|i| (self.rr_next + i) % n)
                    .find(|&u| eligible[u]);
                if let Some(w) = w {
                    self.rr_next = (w + 1) % n;
                }
                w
            }
            Policy::MaxCi => (0..n).filter(|&u| eligible[u]).max_by_key(|&u| rates[u]),
            Policy::ProportionalFair => (0..n).filter(|&u| eligible[u]).max_by(|&a, &b| {
                let ma = rates[a] as f64 / self.ues[a].avg_rate.max(1.0);
                let mb = rates[b] as f64 / self.ues[b].avg_rate.max(1.0);
                ma.partial_cmp(&mb).expect("finite")
            }),
        };

        let (mcs, bits) = match winner {
            Some(w) => Self::rate_at(snrs[w]),
            None => (None, 0),
        };
        // PF exponential averaging: every UE's average decays; the
        // winner's includes its service.
        for (u, ue) in self.ues.iter_mut().enumerate() {
            let served = if Some(u) == winner { bits as f64 } else { 0.0 };
            ue.avg_rate += (served - ue.avg_rate) / self.window;
        }
        let w = winner?;
        let ue = &mut self.ues[w];
        ue.served_bits += bits;
        if bits > 0 {
            ue.scheduled_count += 1;
        }
        Some(SubframeResult {
            ue: ue.id,
            mcs,
            bits,
        })
    }

    /// Run `n` subframes and return (cell throughput in Mbps, Jain
    /// fairness index over served bits).
    pub fn run(&mut self, n: usize) -> (f64, f64) {
        let mut total = 0u64;
        for _ in 0..n {
            total += self.tick().bits;
        }
        let served: Vec<f64> = self.ues.iter().map(|u| u.served_bits as f64).collect();
        let sum: f64 = served.iter().sum();
        let sumsq: f64 = served.iter().map(|x| x * x).sum();
        let jain = if sumsq > 0.0 {
            sum * sum / (served.len() as f64 * sumsq)
        } else {
            0.0
        };
        (total as f64 / (n as f64 * 1e-3) / 1e6, jain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(policy: Policy) -> CellScheduler {
        let ues = vec![
            UeContext::new(0, 20.0), // cell center
            UeContext::new(1, 12.0),
            UeContext::new(2, 5.0), // cell edge
        ];
        CellScheduler::new(ues, policy, 42)
    }

    #[test]
    fn pf_beats_round_robin_on_throughput_and_maxci_on_fairness() {
        let (rr_tput, rr_fair) = cell(Policy::RoundRobin).run(4000);
        let (pf_tput, pf_fair) = cell(Policy::ProportionalFair).run(4000);
        let (ci_tput, ci_fair) = cell(Policy::MaxCi).run(4000);
        // classic ordering: throughput CI ≥ PF ≥ RR; fairness RR ≈ PF > CI
        assert!(pf_tput > rr_tput, "PF {pf_tput:.1} vs RR {rr_tput:.1} Mbps");
        assert!(
            ci_tput >= pf_tput,
            "maxC/I {ci_tput:.1} vs PF {pf_tput:.1} Mbps"
        );
        assert!(
            pf_fair > ci_fair,
            "PF fairness {pf_fair:.2} vs maxC/I {ci_fair:.2}"
        );
        assert!(rr_fair > 0.5 && pf_fair > 0.5);
    }

    #[test]
    fn maxci_starves_the_cell_edge() {
        let mut c = cell(Policy::MaxCi);
        c.run(4000);
        let edge = &c.ues()[2];
        let center = &c.ues()[0];
        assert!(
            center.served_bits > edge.served_bits * 10,
            "center {} vs edge {}",
            center.served_bits,
            edge.served_bits
        );
    }

    #[test]
    fn round_robin_schedules_evenly() {
        let mut c = cell(Policy::RoundRobin);
        c.run(3000);
        let counts: Vec<u64> = c.ues().iter().map(|u| u.scheduled_count).collect();
        // scheduled (with a feasible MCS) whenever selected; edge UE may
        // occasionally fail selection, but slots are even
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(min / max > 0.7, "RR slot shares should be even: {counts:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = cell(Policy::ProportionalFair).run(500);
        let b = cell(Policy::ProportionalFair).run(500);
        assert_eq!(a, b);
    }

    #[test]
    fn tick_filtered_respects_eligibility() {
        let mut c = cell(Policy::ProportionalFair);
        // Only the cell-edge UE is backlogged: it must win every round
        // despite its poor channel.
        for _ in 0..50 {
            let r = c.tick_filtered(&[false, false, true]);
            if let Some(r) = r {
                assert_eq!(r.ue, 2, "only the eligible UE may win");
            }
        }
        assert!(c.ues()[2].scheduled_count > 0);
        assert_eq!(c.ues()[0].scheduled_count, 0);
        // Nobody eligible → idle subframe.
        assert!(c.tick_filtered(&[false, false, false]).is_none());
        // Averages still decay on idle subframes.
        let before: Vec<f64> = c.ues().iter().map(|u| u.avg_rate).collect();
        c.tick_filtered(&[false, false, false]);
        for (b, u) in before.iter().zip(c.ues()) {
            assert!(u.avg_rate < *b, "PF averages must decay while idle");
        }
    }

    #[test]
    fn tick_filtered_rng_stream_is_eligibility_independent() {
        // Same seed, different eligibility masks up front: once the
        // masks re-align, the channel draws (and hence outcomes) must
        // match a scheduler that was never masked.
        let mut a = cell(Policy::RoundRobin);
        let mut b = cell(Policy::RoundRobin);
        a.tick_filtered(&[true, false, true]);
        b.tick_filtered(&[true, true, true]);
        let ra = a.tick_filtered(&[true, true, true]).expect("eligible");
        let rb = b.tick_filtered(&[true, true, true]).expect("eligible");
        assert_eq!(ra.bits, rb.bits, "channel draws must not depend on masks");
    }

    #[test]
    fn snr_offset_backs_off_the_operating_point() {
        let served = |offset: f32| {
            let mut c = CellScheduler::new(vec![UeContext::new(0, 10.0)], Policy::RoundRobin, 7);
            c.set_snr_offset_db(offset);
            let mut bits = 0u64;
            for _ in 0..500 {
                bits += c.tick().bits;
            }
            bits
        };
        let nominal = served(0.0);
        let backed_off = served(-6.0);
        let boosted = served(6.0);
        assert!(
            backed_off < nominal && nominal < boosted,
            "served bits must be monotone in the offset: {backed_off} < {nominal} < {boosted}"
        );
    }

    #[test]
    fn served_bits_match_mcs_capacity() {
        let mut c = CellScheduler::new(vec![UeContext::new(0, 30.0)], Policy::RoundRobin, 1);
        let r = c.tick();
        let m = r.mcs.expect("30 dB must be schedulable");
        assert_eq!(
            r.bits,
            (NUM_RBS as f64 * RE_PER_RB * m.bits_per_symbol()) as u64
        );
    }
}
