//! Typed error taxonomy for the uplink packet path.
//!
//! The pipeline used to be infallible-by-signature: malformed frames,
//! garbage LLRs and impossible segmentations either panicked deep in
//! `vran-phy` or silently produced a wrong-looking "ok = false". A
//! production vRAN stack (the OAI deployment study's operational
//! concern) must instead *classify* every failure so operators can tell
//! a fuzzed ingress frame from a diverging decoder from a blown TTI
//! deadline. [`PipelineError`] is that classification; every variant
//! maps onto one [`ErrorCategory`] counted in
//! [`crate::metrics::PipelineMetrics`].

use crate::packet::ParseError;
use vran_phy::rate_match::RateMatchError;
use vran_phy::segmentation::SegError;

/// Coarse error category — the stable metrics/benchgate namespace.
/// Every [`PipelineError`] maps onto exactly one category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ErrorCategory {
    /// Ingress frame failed structural validation (truncated, bad
    /// checksum, unknown protocol, out-of-range HARQ parameters).
    MalformedFrame,
    /// Transport block cannot be segmented within configured limits,
    /// or the receive side was handed an inconsistent code-block set.
    SegmentationOverflow,
    /// The decoder converged on a codeword but a CRC (per-block 24B or
    /// transport 24A) rejected the result.
    CrcMismatch,
    /// The decoder exhausted its iteration budget without ever passing
    /// a CRC check — the input LLRs carry no decodable codeword.
    DecoderDiverged,
    /// The per-packet processing deadline expired before the packet
    /// finished.
    DeadlineExceeded,
}

impl ErrorCategory {
    /// Number of categories.
    pub const COUNT: usize = 5;
    /// All categories, in declaration order.
    pub const ALL: [ErrorCategory; ErrorCategory::COUNT] = [
        ErrorCategory::MalformedFrame,
        ErrorCategory::SegmentationOverflow,
        ErrorCategory::CrcMismatch,
        ErrorCategory::DecoderDiverged,
        ErrorCategory::DeadlineExceeded,
    ];

    /// Snake-case name used in metrics snapshot keys.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::MalformedFrame => "malformed_frame",
            ErrorCategory::SegmentationOverflow => "segmentation_overflow",
            ErrorCategory::CrcMismatch => "crc_mismatch",
            ErrorCategory::DecoderDiverged => "decoder_diverged",
            ErrorCategory::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// Partial receive-side context carried by decode-stage failures, so a
/// failed packet still reports how much work it consumed (the same
/// accounting a successful [`crate::pipeline::PacketResult`] carries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeFailure {
    /// Transport-block size in bits (incl. CRC24A).
    pub tb_bits: usize,
    /// Code blocks the TB split into.
    pub code_blocks: usize,
    /// Blocks whose per-block CRC never passed in-decoder.
    pub failed_blocks: usize,
    /// Decoder iterations consumed, summed over code blocks.
    pub decoder_iterations: usize,
}

/// Why one packet failed the uplink pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Ingress validation rejected the frame before any PHY work.
    MalformedFrame {
        /// What the validator objected to.
        reason: FrameFault,
    },
    /// The transport block cannot be (de)segmented consistently.
    SegmentationOverflow {
        /// Human-readable detail.
        detail: SegFault,
    },
    /// Decode completed but a CRC rejected the reassembled result.
    CrcMismatch(DecodeFailure),
    /// The decoder ran out of iterations without converging.
    DecoderDiverged(DecodeFailure),
    /// The per-packet deadline expired mid-pipeline.
    DeadlineExceeded {
        /// Configured budget in nanoseconds.
        budget_ns: u64,
        /// Wall-clock nanoseconds consumed when the check fired.
        elapsed_ns: u64,
    },
}

/// Structural reasons an ingress frame can be rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Ethernet/IPv4/L4 parse or checksum failure.
    Parse(ParseError),
    /// A HARQ redundancy version outside the spec's `0..4`.
    RedundancyVersion(usize),
    /// An empty or header-only payload where data was required.
    Empty,
}

/// Structural reasons a (de)segmentation can be inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegFault {
    /// The planner rejected the transport block.
    Plan(SegError),
    /// The transport block would exceed the configured code-block cap.
    TooManyBlocks {
        /// Blocks the plan requires.
        blocks: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl PipelineError {
    /// The metrics category this error counts under.
    pub fn category(&self) -> ErrorCategory {
        match self {
            PipelineError::MalformedFrame { .. } => ErrorCategory::MalformedFrame,
            PipelineError::SegmentationOverflow { .. } => ErrorCategory::SegmentationOverflow,
            PipelineError::CrcMismatch(_) => ErrorCategory::CrcMismatch,
            PipelineError::DecoderDiverged(_) => ErrorCategory::DecoderDiverged,
            PipelineError::DeadlineExceeded { .. } => ErrorCategory::DeadlineExceeded,
        }
    }

    /// Receive-side work accounting, when the failure happened late
    /// enough to have any.
    pub fn decode_failure(&self) -> Option<&DecodeFailure> {
        match self {
            PipelineError::CrcMismatch(f) | PipelineError::DecoderDiverged(f) => Some(f),
            _ => None,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MalformedFrame { reason } => {
                write!(f, "malformed frame: {reason:?}")
            }
            PipelineError::SegmentationOverflow { detail } => {
                write!(f, "segmentation overflow: {detail:?}")
            }
            PipelineError::CrcMismatch(d) => write!(
                f,
                "crc mismatch after decode ({}/{} blocks failed, {} iterations)",
                d.failed_blocks, d.code_blocks, d.decoder_iterations
            ),
            PipelineError::DecoderDiverged(d) => write!(
                f,
                "decoder diverged ({}/{} blocks, {} iterations)",
                d.failed_blocks, d.code_blocks, d.decoder_iterations
            ),
            PipelineError::DeadlineExceeded {
                budget_ns,
                elapsed_ns,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ns} ns elapsed of {budget_ns} ns budget"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::MalformedFrame {
            reason: FrameFault::Parse(e),
        }
    }
}

impl From<SegError> for PipelineError {
    fn from(e: SegError) -> Self {
        PipelineError::SegmentationOverflow {
            detail: SegFault::Plan(e),
        }
    }
}

impl From<RateMatchError> for PipelineError {
    fn from(e: RateMatchError) -> Self {
        match e {
            RateMatchError::InvalidRv { rv } => PipelineError::MalformedFrame {
                reason: FrameFault::RedundancyVersion(rv),
            },
            RateMatchError::WrongStreamLength { .. } => PipelineError::SegmentationOverflow {
                detail: SegFault::Plan(SegError::WrongBlockSize {
                    index: 0,
                    expected: 0,
                    got: 0,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_are_unique_and_stable() {
        let names: Vec<_> = ErrorCategory::ALL.iter().map(|c| c.name()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), ErrorCategory::COUNT);
        assert_eq!(names[0], "malformed_frame");
        assert_eq!(names[ErrorCategory::COUNT - 1], "deadline_exceeded");
    }

    #[test]
    fn every_variant_maps_to_its_category() {
        let cases: Vec<(PipelineError, ErrorCategory)> = vec![
            (
                PipelineError::MalformedFrame {
                    reason: FrameFault::Empty,
                },
                ErrorCategory::MalformedFrame,
            ),
            (
                PipelineError::SegmentationOverflow {
                    detail: SegFault::TooManyBlocks { blocks: 99, max: 8 },
                },
                ErrorCategory::SegmentationOverflow,
            ),
            (
                PipelineError::CrcMismatch(DecodeFailure::default()),
                ErrorCategory::CrcMismatch,
            ),
            (
                PipelineError::DecoderDiverged(DecodeFailure::default()),
                ErrorCategory::DecoderDiverged,
            ),
            (
                PipelineError::DeadlineExceeded {
                    budget_ns: 1,
                    elapsed_ns: 2,
                },
                ErrorCategory::DeadlineExceeded,
            ),
        ];
        for (e, cat) in cases {
            assert_eq!(e.category(), cat, "{e}");
        }
    }

    #[test]
    fn conversions_preserve_classification() {
        let e: PipelineError = ParseError::Truncated.into();
        assert_eq!(e.category(), ErrorCategory::MalformedFrame);
        let e: PipelineError = SegError::EmptyBlock.into();
        assert_eq!(e.category(), ErrorCategory::SegmentationOverflow);
        let e: PipelineError = RateMatchError::InvalidRv { rv: 9 }.into();
        assert_eq!(e.category(), ErrorCategory::MalformedFrame);
    }

    #[test]
    fn display_is_informative() {
        let e = PipelineError::DeadlineExceeded {
            budget_ns: 100,
            elapsed_ns: 250,
        };
        let s = e.to_string();
        assert!(s.contains("250") && s.contains("100"), "{s}");
        assert!(e.decode_failure().is_none());
        let e = PipelineError::CrcMismatch(DecodeFailure {
            tb_bits: 1000,
            code_blocks: 2,
            failed_blocks: 1,
            decoder_iterations: 12,
        });
        assert_eq!(e.decode_failure().unwrap().code_blocks, 2);
    }
}
