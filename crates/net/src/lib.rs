//! # vran-net — packet path, userspace rings and the vRAN pipeline
//!
//! The synthetic stand-in for the paper's testbed network path
//! (UE → USRP → eNB containers → EPC): real UDP/TCP framing over a
//! DPDK-style single-producer/single-consumer ring into the full PHY
//! pipeline from `vran-phy`, with the data arrangement step provided by
//! `vran-arrange`.
//!
//! * [`packet`] — Ethernet/IPv4/UDP/TCP header construction and
//!   parsing with real checksums (the workload generator for Figs 13
//!   and 16).
//! * [`ring`] — a lock-free SPSC ring buffer modeling the DPDK
//!   kernel-bypass queue of Figure 2.
//! * [`pipeline`] — transport block building, uplink (encode → channel
//!   → demodulate → de-rate-match → **arrange** → turbo decode) and
//!   downlink processing, parameterized by register width and
//!   arrangement mechanism.
//! * [`latency`] — the per-packet processing-time and capacity models
//!   that turn `vran-uarch` cycle counts into Figure 13/14/16 numbers.
//! * [`runner`] — a threaded source→PHY→sink driver for sustained
//!   throughput measurements, with panic-isolated multicore workers.
//! * [`cellsim`] — cell-scale workload generation: M cells × many UEs,
//!   per-TTI scheduling, bursty/diurnal arrivals, HARQ storms, and
//!   per-packet tail-latency accounting.
//! * [`stagegraph`] — the out-of-order stage-graph runtime: decode
//!   tasks from different packets pool by K and launch as quad-in-zmm /
//!   pair-in-ymm batches, retiring through a ROB with per-UE in-order
//!   delivery. The default uplink path in [`runner`].
//! * [`error`] — the typed fault taxonomy ([`error::PipelineError`])
//!   every receive-path failure classifies into.
//! * [`faultinject`] — deterministic, seeded fault injection for soak
//!   testing the above.
//! * [`observe`] — flight-recorder observability: a lock-free
//!   per-packet trace ring, consistent metrics snapshots, and the
//!   per-stage circuit breakers of the degradation ladder.
//! * [`chaos`] — a deterministic chaos scheduler (phased storms over
//!   [`cellsim`] and [`runner`]) with a CI-gated time-to-recover.
//!
//! # Example
//!
//! ```
//! use vran_net::packet::{PacketBuilder, Transport};
//! use vran_net::pipeline::{PipelineConfig, UplinkPipeline};
//!
//! let mut builder = PacketBuilder::new(5060, 5060);
//! let packet = builder.build(Transport::Udp, 128).unwrap();
//!
//! let cfg = PipelineConfig { snr_db: 30.0, ..Default::default() };
//! let result = UplinkPipeline::new(cfg).process(&packet);
//! assert!(result.is_ok()); // survived encode → OFDM → AWGN → arrange → decode
//! ```

pub mod amc;
pub mod cellsim;
pub mod chaos;
pub mod downlink;
pub mod error;
pub mod faultinject;
pub mod harq;
pub mod l2;
pub mod latency;
pub mod metrics;
pub mod observe;
pub mod packet;
pub mod pipeline;
pub mod ring;
pub mod runner;
pub mod scheduler;
pub mod stagegraph;

pub use error::{ErrorCategory, PipelineError};
pub use observe::{FlightRecorder, MetricsSnapshot, TraceEvent};
pub use packet::{Packet, Transport};
pub use pipeline::{PipelineConfig, UplinkPipeline};
pub use ring::SpscRing;
pub use stagegraph::{FlushReason, StageGraph, StageGraphConfig};
